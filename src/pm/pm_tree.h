#ifndef DIRECTMESH_PM_PM_TREE_H_
#define DIRECTMESH_PM_PM_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "mesh/triangle_mesh.h"
#include "simplify/simplifier.h"

namespace dm {

/// A node of the Progressive Mesh binary tree. Field-for-field the
/// paper's record "(ID, x, y, z, e, parent, child1, child2, wing1,
/// wing2)" plus the footprint MBR the paper requires of every internal
/// node ("all internal nodes of the MTM tree must record ... its
/// 'footprint' as a minimum bounding rectangle of its descendant
/// points").
///
/// `e_low` is the normalized LOD value (the paper's m.e after
/// normalization: 0 at leaves, max(raw, children) inside), and
/// `e_high` the parent's value, so [e_low, e_high) is the node's LOD
/// interval; the root's e_high is +infinity.
struct PmNode {
  VertexId id = kInvalidVertex;
  Point3 pos;
  double e_low = 0.0;
  double e_high = 0.0;
  double e_raw = 0.0;  // un-normalized approximation error
  VertexId parent = kInvalidVertex;
  VertexId child1 = kInvalidVertex;
  VertexId child2 = kInvalidVertex;
  VertexId wing1 = kInvalidVertex;
  VertexId wing2 = kInvalidVertex;
  Rect footprint;

  bool is_leaf() const { return child1 == kInvalidVertex; }
  bool is_root() const { return parent == kInvalidVertex; }
  /// True when the node belongs to the uniform-LOD cut at `e`.
  bool AliveAt(double e) const { return e_low <= e && e < e_high; }
};

/// The Progressive Mesh tree: an unbalanced binary tree whose leaves
/// are the original terrain points and whose internal nodes are the
/// parents created by QEM pair collapses. Serves as the in-memory
/// ground truth that both the database-backed PM baseline and Direct
/// Mesh are validated against.
class PmTree {
 public:
  /// Builds the tree from a fully collapsed simplification run
  /// (`sr.roots.size() == 1`). Leaves are mesh vertices 0..V-1;
  /// parents keep the ids assigned during simplification.
  static Result<PmTree> Build(const TriangleMesh& base,
                              const SimplifyResult& sr);

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_leaves() const { return num_leaves_; }
  VertexId root() const { return root_; }
  const PmNode& node(VertexId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  const std::vector<PmNode>& nodes() const { return nodes_; }

  /// Normalized LOD of the root (the dataset's maximum LOD value,
  /// LODdataset_max in the paper's theta_max formula).
  double max_lod() const { return nodes_[static_cast<size_t>(root_)].e_low; }
  /// Mean normalized LOD over internal nodes ("the average LOD value
  /// of the dataset" used to fix the LOD in the varying-ROI tests).
  double mean_lod() const { return mean_lod_; }
  /// Footprint of the whole terrain.
  const Rect& bounds() const {
    return nodes_[static_cast<size_t>(root_)].footprint;
  }

  /// The LOD value whose uniform cut has about `target` vertices
  /// (|cut(e)| = leaves - #collapses with e_low <= e, inverted over
  /// the sorted collapse LODs). Error values are wildly skewed, so
  /// this is the sane way to pick query LODs.
  double LodForCutSize(int64_t target) const;
  /// Convenience: the LOD keeping `frac` of the original points.
  double LodForCutFraction(double frac) const {
    return LodForCutSize(
        static_cast<int64_t>(frac * static_cast<double>(num_leaves_)));
  }

  /// Uniform-LOD selective refinement (the paper's Q(M, r, e) answered
  /// in memory): descends from the root pruning by footprint, returns
  /// ids of cut nodes whose point lies in `r`, sorted by id.
  std::vector<VertexId> SelectiveRefine(const Rect& r, double e) const;

  /// Viewpoint-dependent selective refinement: `required_e(pos)` gives
  /// the LOD the query plane demands at a footprint position; a node is
  /// output when it is the first on its root-to-leaf path with
  /// e_low <= required_e(node.pos). Returns ids sorted by id.
  std::vector<VertexId> SelectiveRefineView(
      const Rect& r, const std::function<double(const Point3&)>& required_e)
      const;

 private:
  std::vector<PmNode> nodes_;
  VertexId root_ = kInvalidVertex;
  int64_t num_leaves_ = 0;
  double mean_lod_ = 0.0;
  /// Sorted e_low of every internal node, for LodForCutSize.
  std::vector<double> sorted_collapse_lods_;
};

}  // namespace dm

#endif  // DIRECTMESH_PM_PM_TREE_H_
