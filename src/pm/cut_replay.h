#ifndef DIRECTMESH_PM_CUT_REPLAY_H_
#define DIRECTMESH_PM_CUT_REPLAY_H_

#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"

namespace dm {

/// Ground-truth terrain approximation at a uniform LOD: the quotient of
/// the base mesh under the "leaf -> its cut ancestor" mapping.
///
/// Collapsing a set of PM subtrees is graph contraction, and the result
/// of contracting a fixed set of tree edges does not depend on the
/// order, so the approximation at LOD e is exactly the quotient graph
/// of the base mesh where every original vertex maps to its unique
/// ancestor with e_low <= e < e_high. Tests validate both the DM
/// reconstruction and the PM baseline against this.
struct QuotientCut {
  /// Cut vertex ids whose point lies in the query rectangle, sorted.
  std::vector<VertexId> vertices;
  /// Sorted neighbour lists (edges restricted to `vertices`).
  std::unordered_map<VertexId, std::vector<VertexId>> adjacency;

  /// Undirected edge list (u < v), sorted.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;
};

/// Computes the quotient cut at uniform LOD `e` restricted to `r`.
/// `base` must be the mesh the PM tree was built from.
QuotientCut ComputeUniformCut(const TriangleMesh& base, const PmTree& tree,
                              const Rect& r, double e);

/// Maps every base vertex to its cut ancestor at LOD `e` (the unique
/// ancestor with e_low <= e < e_high). Exposed for tests.
std::vector<VertexId> CutAncestors(const PmTree& tree, int64_t num_leaves,
                                   double e);

}  // namespace dm

#endif  // DIRECTMESH_PM_CUT_REPLAY_H_
