#include "pm/pm_tree.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace dm {

Result<PmTree> PmTree::Build(const TriangleMesh& base,
                             const SimplifyResult& sr) {
  if (sr.roots.size() != 1) {
    return Status::InvalidArgument(
        "PM tree requires a fully collapsed mesh (single root), got " +
        std::to_string(sr.roots.size()) + " roots");
  }
  PmTree tree;
  const int64_t total = static_cast<int64_t>(sr.positions.size());
  tree.nodes_.resize(static_cast<size_t>(total));
  tree.num_leaves_ = base.num_vertices();
  tree.root_ = sr.roots[0];

  for (VertexId i = 0; i < total; ++i) {
    PmNode& n = tree.nodes_[static_cast<size_t>(i)];
    n.id = i;
    n.pos = sr.positions[static_cast<size_t>(i)];
  }
  for (const CollapseStep& step : sr.steps) {
    DM_ENSURE(step.record.parent >= 0 && step.record.parent < total &&
                  step.record.child1 >= 0 && step.record.child1 < total &&
                  step.record.child2 >= 0 && step.record.child2 < total,
              Status::InvalidArgument(
                  "collapse step references vertex outside [0, " +
                  std::to_string(total) + ")"));
    PmNode& p = tree.nodes_[static_cast<size_t>(step.record.parent)];
    p.child1 = step.record.child1;
    p.child2 = step.record.child2;
    p.wing1 = step.record.wing1;
    p.wing2 = step.record.wing2;
    p.e_raw = step.error;
    tree.nodes_[static_cast<size_t>(step.record.child1)].parent = p.id;
    tree.nodes_[static_cast<size_t>(step.record.child2)].parent = p.id;
  }

  // LOD normalization (paper, Section 4): leaves get 0, internal nodes
  // max(raw, child1.e, child2.e); intervals are [m.e, parent.e), root
  // ehigh = +inf. Children always precede parents in id order (parents
  // get fresh ids), so one forward pass suffices. Footprints
  // accumulate the same way.
  double lod_sum = 0.0;
  int64_t internal = 0;
  for (VertexId i = 0; i < total; ++i) {
    PmNode& n = tree.nodes_[static_cast<size_t>(i)];
    if (n.is_leaf()) {
      n.e_low = 0.0;
      n.footprint = Rect::Of(n.pos.x, n.pos.y, n.pos.x, n.pos.y);
    } else {
      const PmNode& c1 = tree.nodes_[static_cast<size_t>(n.child1)];
      const PmNode& c2 = tree.nodes_[static_cast<size_t>(n.child2)];
      n.e_low = std::max({n.e_raw, c1.e_low, c2.e_low});
      DM_DCHECK(n.e_low >= c1.e_low && n.e_low >= c2.e_low);
      n.footprint = c1.footprint;
      n.footprint.ExpandToInclude(c2.footprint);
      // Include the node's own point: the QEM-optimal parent position
      // is not guaranteed to lie inside the children's MBR, and the
      // footprint must cover everything a containment search below
      // this node can return.
      n.footprint.ExpandToInclude(n.pos.x, n.pos.y);
      lod_sum += n.e_low;
      ++internal;
    }
  }
  tree.mean_lod_ = internal > 0 ? lod_sum / internal : 0.0;
  tree.sorted_collapse_lods_.reserve(static_cast<size_t>(internal));
  for (const PmNode& n : tree.nodes_) {
    if (!n.is_leaf()) tree.sorted_collapse_lods_.push_back(n.e_low);
  }
  std::sort(tree.sorted_collapse_lods_.begin(),
            tree.sorted_collapse_lods_.end());
  for (VertexId i = 0; i < total; ++i) {
    PmNode& n = tree.nodes_[static_cast<size_t>(i)];
    n.e_high = n.is_root()
                   ? std::numeric_limits<double>::infinity()
                   : tree.nodes_[static_cast<size_t>(n.parent)].e_low;
  }
  return tree;
}

double PmTree::LodForCutSize(int64_t target) const {
  target = std::clamp<int64_t>(target, 1, num_leaves_);
  const int64_t collapses = num_leaves_ - target;
  if (collapses <= 0 || sorted_collapse_lods_.empty()) return 0.0;
  const size_t idx = std::min<size_t>(static_cast<size_t>(collapses),
                                      sorted_collapse_lods_.size()) - 1;
  return sorted_collapse_lods_[idx];
}

std::vector<VertexId> PmTree::SelectiveRefine(const Rect& r, double e) const {
  std::vector<VertexId> out;
  std::vector<VertexId> stack{root_};
  while (!stack.empty()) {
    const PmNode& n = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (!n.footprint.Intersects(r)) continue;
    if (n.AliveAt(e)) {
      if (r.Contains(n.pos.x, n.pos.y)) out.push_back(n.id);
      continue;
    }
    // Reaching here means e < e_low (a visited node always has
    // e < e_high, because otherwise its parent would have been alive
    // and stopped the descent) — including nodes with empty intervals
    // [x, x), which are never alive themselves.
    if (!n.is_leaf()) {
      stack.push_back(n.child1);
      stack.push_back(n.child2);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VertexId> PmTree::SelectiveRefineView(
    const Rect& r,
    const std::function<double(const Point3&)>& required_e) const {
  std::vector<VertexId> out;
  std::vector<VertexId> stack{root_};
  while (!stack.empty()) {
    const PmNode& n = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (!n.footprint.Intersects(r)) continue;
    const double req = required_e(n.pos);
    if (n.e_low <= req || n.is_leaf()) {
      // First node on the path satisfying the local LOD demand, or a
      // leaf (which cannot refine further even if the demand is unmet).
      if (r.Contains(n.pos.x, n.pos.y)) out.push_back(n.id);
      continue;
    }
    stack.push_back(n.child1);
    stack.push_back(n.child2);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dm
