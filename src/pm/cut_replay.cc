#include "pm/cut_replay.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace dm {

std::vector<std::pair<VertexId, VertexId>> QuotientCut::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  for (const auto& [u, nbrs] : adjacency) {
    for (VertexId v : nbrs) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VertexId> CutAncestors(const PmTree& tree, int64_t num_leaves,
                                   double e) {
  DM_CHECK(num_leaves <= tree.num_nodes())
      << "CutAncestors over " << num_leaves << " leaves but the tree has "
      << tree.num_nodes() << " nodes";
  // rep[v] caches the cut ancestor of node v (or the highest known hop
  // toward it), giving near-linear total walk length via path
  // compression across leaves that share ancestors.
  std::vector<VertexId> rep(static_cast<size_t>(tree.num_nodes()),
                            kInvalidVertex);
  std::vector<VertexId> out(static_cast<size_t>(num_leaves));
  std::vector<VertexId> path;
  for (VertexId leaf = 0; leaf < num_leaves; ++leaf) {
    VertexId v = leaf;
    path.clear();
    while (true) {
      if (rep[static_cast<size_t>(v)] != kInvalidVertex) {
        v = rep[static_cast<size_t>(v)];
        break;
      }
      const PmNode& n = tree.node(v);
      if (n.AliveAt(e)) break;
      DM_DCHECK(n.parent != kInvalidVertex)
          << "node " << v << " dead at e=" << e
          << " yet has no parent; intervals must tile [0, inf)";
      path.push_back(v);
      v = n.parent;
    }
    for (VertexId p : path) rep[static_cast<size_t>(p)] = v;
    out[static_cast<size_t>(leaf)] = v;
  }
  return out;
}

QuotientCut ComputeUniformCut(const TriangleMesh& base, const PmTree& tree,
                              const Rect& r, double e) {
  const int64_t num_leaves = base.num_vertices();
  const std::vector<VertexId> anc = CutAncestors(tree, num_leaves, e);

  // Collect cut vertices inside r.
  std::set<VertexId> in_r;
  for (VertexId leaf = 0; leaf < num_leaves; ++leaf) {
    const VertexId a = anc[static_cast<size_t>(leaf)];
    const PmNode& n = tree.node(a);
    if (r.Contains(n.pos.x, n.pos.y)) in_r.insert(a);
  }

  // Project base edges through the ancestor mapping.
  std::set<std::pair<VertexId, VertexId>> edges;
  auto consider = [&](VertexId a, VertexId b) {
    VertexId u = anc[static_cast<size_t>(a)];
    VertexId v = anc[static_cast<size_t>(b)];
    if (u == v) return;
    if (!in_r.count(u) || !in_r.count(v)) return;
    if (u > v) std::swap(u, v);
    edges.emplace(u, v);
  };
  for (const Triangle& t : base.triangles()) {
    consider(t[0], t[1]);
    consider(t[1], t[2]);
    consider(t[2], t[0]);
  }

  QuotientCut cut;
  cut.vertices.assign(in_r.begin(), in_r.end());
  for (VertexId v : cut.vertices) cut.adjacency[v];  // ensure presence
  for (const auto& [u, v] : edges) {
    cut.adjacency[u].push_back(v);
    cut.adjacency[v].push_back(u);
  }
  for (auto& [v, nbrs] : cut.adjacency) std::sort(nbrs.begin(), nbrs.end());
  return cut;
}

}  // namespace dm
