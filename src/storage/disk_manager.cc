#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/check.h"

namespace dm {

namespace {

/// Full-length positioned read; retries on EINTR and partial transfers.
/// Returns the number of bytes read (short only at EOF) or -1 on error.
ssize_t PreadFull(int fd, uint8_t* buf, size_t count, off_t offset) {
  size_t done = 0;
  while (done < count) {
    const ssize_t n =
        ::pread(fd, buf + done, count - done, offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

/// Full-length positioned write; retries on EINTR and partial transfers.
bool PwriteFull(int fd, const uint8_t* buf, size_t count, off_t offset) {
  size_t done = 0;
  while (done < count) {
    const ssize_t n = ::pwrite(fd, buf + done, count - done,
                               offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path, uint32_t page_size, bool truncate) {
  if (page_size < 256 || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument("page size must be a power of two >= 256");
  }
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::IOError("cannot open " + path);

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("stat failed on " + path);
  }
  const PageId pages =
      static_cast<PageId>(static_cast<uint64_t>(st.st_size) / page_size);
  return std::unique_ptr<DiskManager>(new DiskManager(fd, page_size, pages));
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const PageId id = num_pages_.load(std::memory_order_relaxed);
  std::vector<uint8_t> zero(page_size_, 0);
  if (!PwriteFull(fd_, zero.data(), page_size_,
                  static_cast<off_t>(id) * page_size_)) {
    return Status::IOError("short write extending file");
  }
  num_pages_.store(id + 1, std::memory_order_relaxed);
  return id;
}

Status DiskManager::ReadPage(PageId id, uint8_t* out) {
  return ReadPages(id, 1, out);
}

Status DiskManager::ReadPages(PageId first, uint32_t n, uint8_t* out) {
  DM_CHECK(out != nullptr) << "ReadPages into null buffer";
  if (n == 0) return Status::OK();
  const PageId limit = num_pages_.load(std::memory_order_relaxed);
  if (first >= limit || n > limit - first) {
    return Status::OutOfRange("pages [" + std::to_string(first) + ", " +
                              std::to_string(first + n) + ") beyond EOF");
  }
  if (simulated_read_latency_micros_ > 0) {
    // Models seek + transfer of a disk-bound store (the paper's
    // regime); sleeping blocks only this thread, so concurrent
    // readers overlap their "I/O" exactly as with a real device.
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<uint64_t>(simulated_read_latency_micros_) * n));
  }
  const size_t total = static_cast<size_t>(n) * page_size_;
  const ssize_t got =
      PreadFull(fd_, out, total, static_cast<off_t>(first) * page_size_);
  if (got == static_cast<ssize_t>(total)) return Status::OK();
  // Short or failed bulk read (sparse tail, racing extension): fall
  // back to one pread per page so the failing page is identified.
  for (uint32_t i = 0; i < n; ++i) {
    const ssize_t one =
        PreadFull(fd_, out + static_cast<size_t>(i) * page_size_, page_size_,
                  static_cast<off_t>(first + i) * page_size_);
    if (one != static_cast<ssize_t>(page_size_)) {
      return Status::IOError("short read of page " +
                             std::to_string(first + i));
    }
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const uint8_t* data) {
  DM_CHECK(data != nullptr) << "WritePage from null buffer";
  if (id >= num_pages_.load(std::memory_order_relaxed)) {
    return Status::OutOfRange("page " + std::to_string(id) + " beyond EOF");
  }
  if (!PwriteFull(fd_, data, page_size_,
                  static_cast<off_t>(id) * page_size_)) {
    return Status::IOError("short write of page " + std::to_string(id));
  }
  return Status::OK();
}

}  // namespace dm
