#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/check.h"

namespace dm {

namespace {

/// Bytes transferred plus the errno (0 = no syscall error) that
/// stopped a full-length transfer early, so callers can classify
/// ENOSPC / EAGAIN apart from short transfers.
struct XferResult {
  size_t done = 0;
  int err = 0;
};

/// Full-length positioned read; retries on EINTR and partial
/// transfers. Short only at EOF unless `err` is set.
XferResult PreadFull(int fd, uint8_t* buf, size_t count, off_t offset) {
  XferResult r;
  while (r.done < count) {
    const ssize_t n = ::pread(fd, buf + r.done, count - r.done,
                              offset + static_cast<off_t>(r.done));
    if (n < 0) {
      if (errno == EINTR) continue;
      r.err = errno;
      return r;
    }
    if (n == 0) break;  // EOF
    r.done += static_cast<size_t>(n);
  }
  return r;
}

/// Full-length positioned write; retries on EINTR and partial transfers.
XferResult PwriteFull(int fd, const uint8_t* buf, size_t count,
                      off_t offset) {
  XferResult r;
  while (r.done < count) {
    const ssize_t n = ::pwrite(fd, buf + r.done, count - r.done,
                               offset + static_cast<off_t>(r.done));
    if (n < 0) {
      if (errno == EINTR) continue;
      r.err = errno;
      return r;
    }
    if (n == 0) break;  // defensive: pwrite must not return 0 for n>0
    r.done += static_cast<size_t>(n);
  }
  return r;
}

/// Maps a failed/short write to a Status with errno text. EAGAIN is
/// transient (retryable by the buffer pool's backoff loop); ENOSPC
/// gets its own message since the fix (add storage) differs from any
/// other I/O error.
Status ClassifyWriteFailure(const XferResult& r, size_t want,
                            const std::string& what) {
  if (r.err == EAGAIN) {
    return Status::Unavailable(what + ": " + std::strerror(r.err) +
                               " (transient)");
  }
  if (r.err == ENOSPC) {
    return Status::IOError(what + ": disk full (" + std::strerror(r.err) +
                           ")");
  }
  if (r.err != 0) {
    return Status::IOError(what + ": " + std::strerror(r.err));
  }
  return Status::IOError(what + ": short write (" + std::to_string(r.done) +
                         " of " + std::to_string(want) + " bytes)");
}

}  // namespace

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path, uint32_t page_size, bool truncate) {
  if (page_size < 256 || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument("page size must be a power of two >= 256");
  }
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::IOError("cannot open " + path);

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("stat failed on " + path);
  }
  const PageId pages =
      static_cast<PageId>(static_cast<uint64_t>(st.st_size) / page_size);
  return std::unique_ptr<DiskManager>(new DiskManager(fd, page_size, pages));
}

Result<PageId> DiskManager::AllocatePage() {
  MutexLock lock(alloc_mu_);
  const PageId id = num_pages_.load(std::memory_order_relaxed);
  std::vector<uint8_t> zero(page_size_, 0);
  const XferResult w = PwriteFull(fd_, zero.data(), page_size_,
                                  static_cast<off_t>(id) * page_size_);
  if (w.err != 0 || w.done != page_size_) {
    return ClassifyWriteFailure(
        w, page_size_, "extending file to page " + std::to_string(id));
  }
  num_pages_.store(id + 1, std::memory_order_relaxed);
  return id;
}

Status DiskManager::ReadPage(PageId id, uint8_t* out) {
  return ReadPages(id, 1, out);
}

Status DiskManager::ReadPages(PageId first, uint32_t n, uint8_t* out) {
  DM_CHECK(out != nullptr) << "ReadPages into null buffer";
  if (n == 0) return Status::OK();
  const PageId limit = num_pages_.load(std::memory_order_relaxed);
  if (first >= limit || n > limit - first) {
    return Status::OutOfRange("pages [" + std::to_string(first) + ", " +
                              std::to_string(first + n) + ") beyond EOF");
  }
  if (simulated_read_latency_micros_ > 0) {
    // Models seek + transfer of a disk-bound store (the paper's
    // regime); sleeping blocks only this thread, so concurrent
    // readers overlap their "I/O" exactly as with a real device.
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<uint64_t>(simulated_read_latency_micros_) * n));
  }
  const size_t total = static_cast<size_t>(n) * page_size_;
  const XferResult got =
      PreadFull(fd_, out, total, static_cast<off_t>(first) * page_size_);
  if (got.err == 0 && got.done == total) return Status::OK();
  // Short or failed bulk read (sparse tail, racing extension): fall
  // back to one pread per page so the failing page is identified.
  for (uint32_t i = 0; i < n; ++i) {
    const XferResult one =
        PreadFull(fd_, out + static_cast<size_t>(i) * page_size_, page_size_,
                  static_cast<off_t>(first + i) * page_size_);
    if (one.err == EAGAIN) {
      return Status::Unavailable("reading page " + std::to_string(first + i) +
                                 ": " + std::strerror(one.err) +
                                 " (transient)");
    }
    if (one.err != 0) {
      return Status::IOError("reading page " + std::to_string(first + i) +
                             ": " + std::strerror(one.err));
    }
    if (one.done != page_size_) {
      return Status::IOError("short read of page " +
                             std::to_string(first + i) + " (" +
                             std::to_string(one.done) + " of " +
                             std::to_string(page_size_) + " bytes)");
    }
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const uint8_t* data) {
  DM_CHECK(data != nullptr) << "WritePage from null buffer";
  if (id >= num_pages_.load(std::memory_order_relaxed)) {
    return Status::OutOfRange("page " + std::to_string(id) + " beyond EOF");
  }
  const XferResult w = PwriteFull(fd_, data, page_size_,
                                  static_cast<off_t>(id) * page_size_);
  if (w.err != 0 || w.done != page_size_) {
    return ClassifyWriteFailure(w, page_size_,
                                "writing page " + std::to_string(id));
  }
  return Status::OK();
}

}  // namespace dm
