#include "storage/disk_manager.h"

#include <memory>
#include <vector>

#include "common/check.h"

namespace dm {

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path, uint32_t page_size, bool truncate) {
  if (page_size < 256 || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument("page size must be a power of two >= 256");
  }
  std::FILE* f = std::fopen(path.c_str(), truncate ? "wb+" : "rb+");
  if (f == nullptr && !truncate) f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("seek failed on " + path);
  }
  const long size = std::ftell(f);
  const PageId pages = static_cast<PageId>(static_cast<uint64_t>(size) /
                                           page_size);
  return std::unique_ptr<DiskManager>(new DiskManager(f, page_size, pages));
}

Result<PageId> DiskManager::AllocatePage() {
  const PageId id = num_pages_;
  std::vector<uint8_t> zero(page_size_, 0);
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IOError("seek failed extending file");
  }
  if (std::fwrite(zero.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write extending file");
  }
  ++num_pages_;
  return id;
}

Status DiskManager::ReadPage(PageId id, uint8_t* out) {
  DM_CHECK(out != nullptr) << "ReadPage into null buffer";
  if (id >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(id) + " beyond EOF");
  }
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fread(out, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short read of page " + std::to_string(id));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const uint8_t* data) {
  DM_CHECK(data != nullptr) << "WritePage from null buffer";
  if (id >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(id) + " beyond EOF");
  }
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(data, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write of page " + std::to_string(id));
  }
  return Status::OK();
}

}  // namespace dm
