#ifndef DIRECTMESH_STORAGE_PAGE_H_
#define DIRECTMESH_STORAGE_PAGE_H_

#include <cstdint>

namespace dm {

/// Page number within a database file. Page 0 is valid; kInvalidPage
/// marks absent links.
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// Default page size. The benches sweep this in the page-size ablation;
/// everything reads the runtime value from DbEnv.
inline constexpr uint32_t kDefaultPageSize = 4096;

/// Integrity trailer at the end of every page (format v5):
///   [crc32c u32][format u8][reserved u8 x3]
/// The CRC covers the page's logical bytes (physical size minus the
/// trailer), is stamped by the buffer pool on flush, and verified on
/// every disk read. Structures above the pool see only the logical
/// size (`DbEnv::page_size()`), so their layouts need no changes.
/// A freshly allocated all-zero page carries no stamp yet; verify
/// accepts it (crc field 0 + zero payload) so allocate-then-read
/// races stay legal.
inline constexpr uint32_t kPageTrailerSize = 8;
inline constexpr uint8_t kPageFormatVersion = 5;
inline constexpr uint32_t kPageTrailerCrcOff = 0;
inline constexpr uint32_t kPageTrailerFormatOff = 4;

/// Reference to a record inside a heap file: page plus slot index.
struct RecordId {
  PageId page = kInvalidPage;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPage; }

  /// Packs into 48 bits (page:32, slot:16) for storage in index
  /// payloads.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RecordId Unpack(uint64_t packed) {
    RecordId rid;
    rid.page = static_cast<PageId>(packed >> 16);
    rid.slot = static_cast<uint16_t>(packed & 0xFFFF);
    return rid;
  }

  friend bool operator==(const RecordId& a, const RecordId& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_PAGE_H_
