#include "storage/heap_file.h"

#include <cstring>

#include "common/check.h"

namespace dm {

namespace {

// Page header offsets.
constexpr uint32_t kNextPageOff = 0;   // u32
constexpr uint32_t kSlotCountOff = 4;  // u16
constexpr uint32_t kFreeOffOff = 6;    // u16
constexpr uint32_t kHeaderSize = 8;
constexpr uint32_t kSlotSize = 4;  // u16 offset + u16 length

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint16_t LoadU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void StoreU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

Result<HeapFile> HeapFile::Create(DbEnv* env) {
  DM_ASSIGN_OR_RETURN(PageGuard page, env->pool().NewPage());
  StoreU32(page.data() + kNextPageOff, kInvalidPage);
  StoreU16(page.data() + kSlotCountOff, 0);
  StoreU16(page.data() + kFreeOffOff, kHeaderSize);
  page.MarkDirty();
  return HeapFile(env, page.id());
}

HeapFile HeapFile::Open(DbEnv* env, PageId first_page) {
  HeapFile hf(env, first_page);
  // Walk to the tail to support further appends; also recounts records.
  PageId id = first_page;
  hf.num_pages_ = 0;
  hf.num_records_ = 0;
  while (id != kInvalidPage) {
    auto page_or = env->pool().Fetch(id);
    if (!page_or.ok()) break;  // truncated file: treat walked prefix as all
    PageGuard page = std::move(page_or).value();
    hf.num_records_ += LoadU16(page.data() + kSlotCountOff);
    ++hf.num_pages_;
    hf.tail_page_ = id;
    id = LoadU32(page.data() + kNextPageOff);
  }
  return hf;
}

Result<RecordId> HeapFile::Append(const uint8_t* data, uint32_t size) {
  if (size > MaxRecordSize()) {
    return Status::InvalidArgument("record of " + std::to_string(size) +
                                   " bytes exceeds page capacity");
  }
  DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(tail_page_));
  uint16_t slot_count = LoadU16(page.data() + kSlotCountOff);
  uint16_t free_off = LoadU16(page.data() + kFreeOffOff);
  const uint32_t page_size = env_->page_size();
  const uint32_t dir_top = page_size - (slot_count + 1u) * kSlotSize;

  if (free_off + size > dir_top) {
    // Tail page full: chain a new page.
    DM_ASSIGN_OR_RETURN(PageGuard fresh, env_->pool().NewPage());
    StoreU32(fresh.data() + kNextPageOff, kInvalidPage);
    StoreU16(fresh.data() + kSlotCountOff, 0);
    StoreU16(fresh.data() + kFreeOffOff, kHeaderSize);
    fresh.MarkDirty();
    StoreU32(page.data() + kNextPageOff, fresh.id());
    page.MarkDirty();
    tail_page_ = fresh.id();
    ++num_pages_;
    page = std::move(fresh);
    slot_count = 0;
    free_off = kHeaderSize;
  }

  std::memcpy(page.data() + free_off, data, size);
  uint8_t* slot = page.data() + page_size - (slot_count + 1u) * kSlotSize;
  StoreU16(slot, static_cast<uint16_t>(free_off));
  StoreU16(slot + 2, static_cast<uint16_t>(size));
  StoreU16(page.data() + kSlotCountOff, static_cast<uint16_t>(slot_count + 1));
  StoreU16(page.data() + kFreeOffOff, static_cast<uint16_t>(free_off + size));
  page.MarkDirty();
  ++num_records_;
  return RecordId{page.id(), slot_count};
}

Status HeapFile::AppendMany(const std::vector<std::vector<uint8_t>>& records,
                            std::vector<RecordId>* rids) {
  if (records.empty()) return Status::OK();
  const uint32_t page_size = env_->page_size();
  DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(tail_page_));
  uint16_t slot_count = LoadU16(page.data() + kSlotCountOff);
  uint16_t free_off = LoadU16(page.data() + kFreeOffOff);
  for (const std::vector<uint8_t>& rec : records) {
    const auto size = static_cast<uint32_t>(rec.size());
    if (size > MaxRecordSize()) {
      return Status::InvalidArgument("record of " + std::to_string(size) +
                                     " bytes exceeds page capacity");
    }
    const uint32_t dir_top = page_size - (slot_count + 1u) * kSlotSize;
    if (free_off + size > dir_top) {
      DM_ASSIGN_OR_RETURN(PageGuard fresh, env_->pool().NewPage());
      StoreU32(fresh.data() + kNextPageOff, kInvalidPage);
      StoreU16(fresh.data() + kSlotCountOff, 0);
      StoreU16(fresh.data() + kFreeOffOff, kHeaderSize);
      fresh.MarkDirty();
      StoreU32(page.data() + kNextPageOff, fresh.id());
      page.MarkDirty();
      tail_page_ = fresh.id();
      ++num_pages_;
      page = std::move(fresh);
      slot_count = 0;
      free_off = kHeaderSize;
    }
    std::memcpy(page.data() + free_off, rec.data(), size);
    uint8_t* slot = page.data() + page_size - (slot_count + 1u) * kSlotSize;
    StoreU16(slot, free_off);
    StoreU16(slot + 2, static_cast<uint16_t>(size));
    ++num_records_;
    if (rids != nullptr) rids->push_back(RecordId{page.id(), slot_count});
    ++slot_count;
    free_off = static_cast<uint16_t>(free_off + size);
    StoreU16(page.data() + kSlotCountOff, slot_count);
    StoreU16(page.data() + kFreeOffOff, free_off);
    page.MarkDirty();
  }
  return Status::OK();
}

namespace {

/// Locates record `slot` inside a pinned page, validating the slot
/// directory before any bytes are touched.
Status LocateSlot(const uint8_t* page_data, uint32_t page_size, PageId page_id,
                  uint16_t slot_idx, const uint8_t** data, uint16_t* len) {
  const uint16_t slot_count = LoadU16(page_data + kSlotCountOff);
  if (slot_idx >= slot_count) {
    return Status::NotFound("slot " + std::to_string(slot_idx) +
                            " out of range on page " +
                            std::to_string(page_id));
  }
  const uint8_t* slot = page_data + page_size - (slot_idx + 1u) * kSlotSize;
  const uint16_t off = LoadU16(slot);
  *len = LoadU16(slot + 2);
  DM_ENSURE(off >= kHeaderSize &&
                static_cast<uint32_t>(off) + *len <= page_size,
            Status::Corruption("slot " + std::to_string(slot_idx) +
                               " on page " + std::to_string(page_id) +
                               " points outside the page"));
  *data = page_data + off;
  return Status::OK();
}

}  // namespace

Status HeapFile::Get(RecordId rid, std::vector<uint8_t>* out) const {
  DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(rid.page));
  const uint8_t* data = nullptr;
  uint16_t len = 0;
  DM_RETURN_NOT_OK(LocateSlot(page.data(), env_->page_size(), rid.page,
                              rid.slot, &data, &len));
  out->assign(data, data + len);
  return Status::OK();
}

Status HeapFile::GetMany(
    const std::vector<RecordId>& rids,
    const std::function<Status(RecordId, const uint8_t*, uint32_t)>& callback)
    const {
  return GetMany(rids, callback, nullptr);
}

Status HeapFile::GetMany(
    const std::vector<RecordId>& rids,
    const std::function<Status(RecordId, const uint8_t*, uint32_t)>& callback,
    std::vector<RecordFetchFailure>* failures) const {
  const uint32_t max_run = env_->pool().MaxRunPages();
  size_t i = 0;
  while (i < rids.size()) {
    // Grow a run of consecutive distinct pages, capped by the pool's
    // pin budget.
    const PageId first = rids[i].page;
    PageId last = first;
    uint32_t npages = 1;
    size_t j = i + 1;
    for (; j < rids.size(); ++j) {
      DM_DCHECK(rids[j - 1].Pack() <= rids[j].Pack())
          << "GetMany requires rids sorted by (page, slot)";
      const PageId p = rids[j].page;
      if (p == last) continue;
      if (p == last + 1 && npages < max_run) {
        last = p;
        ++npages;
        continue;
      }
      break;
    }
    std::vector<PageGuard> guards;
    const Status run_st = env_->pool().FetchRun(first, npages, &guards);
    if (!run_st.ok()) {
      if (failures == nullptr) return run_st;
      // Tolerant fallback: re-fetch the failed run one page at a time
      // so only the records on the bad page are lost.
      size_t k = i;
      while (k < j) {
        const PageId p = rids[k].page;
        size_t e = k;
        while (e < j && rids[e].page == p) ++e;
        auto page_or = env_->pool().Fetch(p);
        if (!page_or.ok()) {
          for (size_t t = k; t < e; ++t) {
            failures->push_back({rids[t], page_or.status()});
          }
        } else {
          PageGuard page = std::move(page_or).value();
          for (size_t t = k; t < e; ++t) {
            const uint8_t* data = nullptr;
            uint16_t len = 0;
            const Status st = LocateSlot(page.data(), env_->page_size(), p,
                                         rids[t].slot, &data, &len);
            if (!st.ok()) {
              failures->push_back({rids[t], st});
              continue;
            }
            DM_RETURN_NOT_OK(callback(rids[t], data, len));
          }
        }
        k = e;
      }
      i = j;
      continue;
    }
    for (size_t k = i; k < j; ++k) {
      const RecordId rid = rids[k];
      const uint8_t* data = nullptr;
      uint16_t len = 0;
      const Status st = LocateSlot(guards[rid.page - first].data(),
                                   env_->page_size(), rid.page, rid.slot,
                                   &data, &len);
      if (!st.ok()) {
        if (failures == nullptr) return st;
        failures->push_back({rid, st});
        continue;
      }
      DM_RETURN_NOT_OK(callback(rid, data, len));
    }
    // Release pins in ascending page order so the LRU ends up exactly
    // as a sequence of per-record Get calls would have left it.
    for (auto& g : guards) g.Release();
    i = j;
  }
  return Status::OK();
}

Status HeapFile::Scan(
    const std::function<bool(RecordId, const uint8_t*, uint32_t)>& callback)
    const {
  PageId id = first_page_;
  while (id != kInvalidPage) {
    DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(id));
    const uint16_t slot_count = LoadU16(page.data() + kSlotCountOff);
    for (uint16_t s = 0; s < slot_count; ++s) {
      const uint8_t* slot =
          page.data() + env_->page_size() - (s + 1u) * kSlotSize;
      const uint16_t off = LoadU16(slot);
      const uint16_t len = LoadU16(slot + 2);
      DM_ENSURE(off >= kHeaderSize &&
                    static_cast<uint32_t>(off) + len <= env_->page_size(),
                Status::Corruption("slot " + std::to_string(s) + " on page " +
                                   std::to_string(id) +
                                   " points outside the page"));
      if (!callback(RecordId{id, s}, page.data() + off, len)) {
        return Status::OK();
      }
    }
    id = LoadU32(page.data() + kNextPageOff);
  }
  return Status::OK();
}

}  // namespace dm
