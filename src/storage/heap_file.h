#ifndef DIRECTMESH_STORAGE_HEAP_FILE_H_
#define DIRECTMESH_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/db_env.h"
#include "storage/page.h"

namespace dm {

/// One record a tolerant batch fetch could not produce, with the
/// Status (kIOError, kCorruption, kUnavailable after retries...) that
/// sank it. Queries map these to degraded nodes instead of failing.
struct RecordFetchFailure {
  RecordId rid;
  Status status;
};

/// Append-only heap file of variable-length records in slotted pages.
///
/// Page layout: [next_page u32][slot_count u16][free_off u16]
/// [record bytes grow up][...free...][slot dir grows down], slot =
/// [offset u16][length u16]. Records never span pages; the largest
/// storable record is page_size - 12.
///
/// Terrain nodes are appended in Hilbert order of their (x, y) so disk
/// pages preserve spatial clustering, as the paper's setup requires.
///
/// Concurrency: `Get`, `GetMany`, and `Scan` are const and safe to
/// call from many threads once building is done (all mutable state is
/// behind the thread-safe buffer pool). `Append` is single-writer.
class HeapFile {
 public:
  /// Creates a new heap file in `env`, allocating its first page.
  static Result<HeapFile> Create(DbEnv* env);

  /// Opens an existing heap file by its first page id.
  static HeapFile Open(DbEnv* env, PageId first_page);

  PageId first_page() const { return first_page_; }
  int64_t num_records() const { return num_records_; }
  int64_t num_pages() const { return num_pages_; }

  /// Largest record this file can store.
  uint32_t MaxRecordSize() const { return env_->page_size() - 12; }

  /// Appends a record, returns its id.
  Result<RecordId> Append(const uint8_t* data, uint32_t size);

  /// Appends `records` back to back, pushing each record's id to
  /// `rids` (when non-null). Produces exactly the pages repeated
  /// Append calls would — same ids, same bytes — but pins the tail
  /// page once per page instead of once per record, which is the
  /// dominant cost of bulk loading.
  Status AppendMany(const std::vector<std::vector<uint8_t>>& records,
                    std::vector<RecordId>* rids = nullptr);

  /// Reads record `rid` into `out` (replacing its contents).
  Status Get(RecordId rid, std::vector<uint8_t>* out) const;

  /// Batch point lookup: `rids` must be sorted ascending by
  /// (page, slot) — the order `RecordId::Pack` sorts in. Runs of
  /// adjacent heap pages are pinned together and their misses
  /// coalesced into single scatter-gather disk reads
  /// (DiskManager::ReadPages), cutting syscalls on large fetch cubes.
  /// Disk-read accounting matches per-record Get calls exactly. The
  /// callback sees each record's bytes in `rids` order.
  Status GetMany(
      const std::vector<RecordId>& rids,
      const std::function<Status(RecordId, const uint8_t*, uint32_t)>&
          callback) const;

  /// Tolerant batch fetch: like GetMany, but an unreadable or corrupt
  /// page fails only the records on it. When a coalesced run fails,
  /// the run is re-fetched page by page so one bad sector cannot sink
  /// its neighbours; each lost record lands in `failures` with the
  /// Status that killed it, and the overall call still returns OK.
  /// Callback errors (the caller's own decode logic) stay fatal.
  Status GetMany(
      const std::vector<RecordId>& rids,
      const std::function<Status(RecordId, const uint8_t*, uint32_t)>&
          callback,
      std::vector<RecordFetchFailure>* failures) const;

  /// Full scan in storage order. The callback may return false to stop.
  Status Scan(const std::function<bool(RecordId, const uint8_t*, uint32_t)>&
                  callback) const;

 private:
  HeapFile(DbEnv* env, PageId first_page)
      : env_(env), first_page_(first_page), tail_page_(first_page) {}

  DbEnv* env_;
  PageId first_page_;
  PageId tail_page_;
  int64_t num_records_ = 0;
  int64_t num_pages_ = 1;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_HEAP_FILE_H_
