#ifndef DIRECTMESH_STORAGE_DISK_MANAGER_H_
#define DIRECTMESH_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace dm {

/// Narrow interface between the buffer pool and whatever supplies
/// pages: the real `DiskManager`, or a `FaultInjectingDevice`
/// (fault_env.h) wrapped around it for fault drills. Implementations
/// must be thread-safe; status classes follow the failure taxonomy in
/// DESIGN.md §11 (kUnavailable = transient/retryable, kIOError =
/// permanent, kCorruption = bad bytes).
class PageDevice {
 public:
  virtual ~PageDevice() = default;

  virtual uint32_t page_size() const = 0;
  virtual PageId num_pages() const = 0;
  virtual Result<PageId> AllocatePage() = 0;
  virtual Status ReadPage(PageId id, uint8_t* out) = 0;
  virtual Status ReadPages(PageId first, uint32_t n, uint8_t* out) = 0;
  virtual Status WritePage(PageId id, const uint8_t* data) = 0;
};

/// Fixed-size-page file storage. One DiskManager per database file;
/// all structures of a dataset share it (one "tablespace"), so the
/// buffer pool above it sees the union of their page traffic — the
/// same accounting granularity as the Oracle statistics report the
/// paper measures disk accesses from.
///
/// Thread-safe: reads and writes use positioned I/O (`pread`/`pwrite`)
/// on a shared file descriptor, so concurrent calls from the sharded
/// buffer pool never interleave a seek with another thread's transfer.
/// `AllocatePage` serializes on an internal mutex.
class DiskManager final : public PageDevice {
 public:
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  ~DiskManager() override;

  /// Creates (truncating) or opens a page file.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path,
                                                   uint32_t page_size,
                                                   bool truncate);

  uint32_t page_size() const override { return page_size_; }
  PageId num_pages() const override {
    return num_pages_.load(std::memory_order_relaxed);
  }

  /// Extends the file by one zeroed page and returns its id.
  /// Distinguishes a full disk (ENOSPC, with errno text) from a short
  /// write, so operators can tell "add storage" from "kernel bug".
  Result<PageId> AllocatePage() override;

  /// Reads page `id` into `out` (page_size bytes).
  Status ReadPage(PageId id, uint8_t* out) override;

  /// Reads `n` consecutive pages starting at `first` into `out`
  /// (n * page_size bytes) with a single positioned read — the
  /// scatter-gather path the batched heap fetch uses to cut syscalls
  /// on large cubes. Falls back to a per-page `pread` loop when the
  /// kernel returns a short read.
  Status ReadPages(PageId first, uint32_t n, uint8_t* out) override;

  /// Writes page `id` from `data` (page_size bytes).
  Status WritePage(PageId id, const uint8_t* data) override;

  /// Adds a fixed sleep of `micros` per page read, modelling the
  /// disk-bound regime the paper measures (its datasets dwarf RAM;
  /// ours sit in the OS page cache, where a pread costs microseconds).
  /// Throughput benches use this so I/O overlap across worker threads
  /// is observable; 0 (the default) turns it off and is the paper-
  /// exact configuration. Not thread-safe; set before serving starts.
  void set_simulated_read_latency_micros(uint32_t micros) {
    simulated_read_latency_micros_ = micros;
  }
  uint32_t simulated_read_latency_micros() const {
    return simulated_read_latency_micros_;
  }

 private:
  DiskManager(int fd, uint32_t page_size, PageId num_pages)
      : fd_(fd), page_size_(page_size), num_pages_(num_pages) {}

  int fd_;
  uint32_t page_size_;
  std::atomic<PageId> num_pages_;
  /// Serializes file extension: the zero-fill pwrite and the
  /// num_pages_ bump must be atomic with respect to other allocators
  /// (readers only need the atomic).
  Mutex alloc_mu_;
  uint32_t simulated_read_latency_micros_ = 0;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_DISK_MANAGER_H_
