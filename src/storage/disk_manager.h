#ifndef DIRECTMESH_STORAGE_DISK_MANAGER_H_
#define DIRECTMESH_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace dm {

/// Fixed-size-page file storage. One DiskManager per database file;
/// all structures of a dataset share it (one "tablespace"), so the
/// buffer pool above it sees the union of their page traffic — the
/// same accounting granularity as the Oracle statistics report the
/// paper measures disk accesses from.
class DiskManager {
 public:
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  ~DiskManager();

  /// Creates (truncating) or opens a page file.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path,
                                                   uint32_t page_size,
                                                   bool truncate);

  uint32_t page_size() const { return page_size_; }
  PageId num_pages() const { return num_pages_; }

  /// Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `out` (page_size bytes).
  Status ReadPage(PageId id, uint8_t* out);

  /// Writes page `id` from `data` (page_size bytes).
  Status WritePage(PageId id, const uint8_t* data);

 private:
  DiskManager(std::FILE* file, uint32_t page_size, PageId num_pages)
      : file_(file), page_size_(page_size), num_pages_(num_pages) {}

  std::FILE* file_;
  uint32_t page_size_;
  PageId num_pages_;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_DISK_MANAGER_H_
