#include "storage/fault_env.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/check.h"

namespace dm {

void FaultInjectingDevice::set_plan(const FaultPlan& plan) {
  MutexLock lock(mu_);
  plan_ = plan;
  rng_.Seed(plan.seed);
  op_index_ = 0;
}

void FaultInjectingDevice::ResetStats() {
  stats_.ops.store(0);
  stats_.read_errors.store(0);
  stats_.read_transients.store(0);
  stats_.short_reads.store(0);
  stats_.bit_flips.store(0);
  stats_.write_errors.store(0);
  stats_.torn_writes.store(0);
  stats_.latency_spikes.store(0);
}

FaultInjectingDevice::Fault FaultInjectingDevice::NextFault(
    bool is_read, uint64_t* detail) {
  MutexLock lock(mu_);
  const uint64_t op = op_index_++;
  stats_.ops.fetch_add(1, std::memory_order_relaxed);
  // Always draw the same two values per op so the schedule depends
  // only on (seed, op index), not on which faults earlier ops hit.
  const double roll = rng_.NextDouble();
  *detail = rng_.Next();
  if (!plan_.AnyFaults() || op < plan_.trigger_after_n) return Fault::kNone;

  // Stack the rates into one cumulative ladder per op class; a single
  // roll picks at most one fault, so rates compose predictably.
  double acc = 0.0;
  if (is_read) {
    if (roll < (acc += plan_.read_error_rate)) return Fault::kReadError;
    if (roll < (acc += plan_.read_transient_rate)) {
      return Fault::kReadTransient;
    }
    if (roll < (acc += plan_.short_read_rate)) return Fault::kShortRead;
    if (roll < (acc += plan_.bit_flip_rate)) return Fault::kBitFlip;
  } else {
    if (roll < (acc += plan_.write_error_rate)) return Fault::kWriteError;
    if (roll < (acc += plan_.torn_write_rate)) return Fault::kTornWrite;
  }
  if (roll < acc + plan_.latency_spike_rate) return Fault::kLatencySpike;
  return Fault::kNone;
}

Result<PageId> FaultInjectingDevice::AllocatePage() {
  uint64_t detail = 0;
  const Fault fault = NextFault(/*is_read=*/false, &detail);
  switch (fault) {
    case Fault::kWriteError:
      stats_.write_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("injected EIO extending file");
    case Fault::kLatencySpike:
      stats_.latency_spikes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(plan_.latency_spike_micros));
      break;
    default:
      break;  // torn writes do not apply to zero-extension
  }
  return base_->AllocatePage();
}

Status FaultInjectingDevice::ReadPage(PageId id, uint8_t* out) {
  return ReadPages(id, 1, out);
}

Status FaultInjectingDevice::ReadPages(PageId first, uint32_t n,
                                       uint8_t* out) {
  if (n == 0) return base_->ReadPages(first, n, out);
  uint64_t detail = 0;
  const Fault fault = NextFault(/*is_read=*/true, &detail);
  const uint32_t page_size = base_->page_size();
  // The victim page within the run (for multi-page reads the fault
  // hits one page, like a single bad sector under a large pread).
  const uint32_t victim = static_cast<uint32_t>(detail % n);
  switch (fault) {
    case Fault::kReadError:
      stats_.read_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("injected EIO reading page " +
                             std::to_string(first + victim));
    case Fault::kReadTransient:
      stats_.read_transients.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("injected EINTR storm reading page " +
                                 std::to_string(first + victim));
    case Fault::kShortRead: {
      stats_.short_reads.fetch_add(1, std::memory_order_relaxed);
      // Transfer everything before the victim, half the victim page,
      // nothing after — what a pread hitting a bad sector returns.
      DM_RETURN_NOT_OK(base_->ReadPages(first, victim, out));
      std::memset(out + static_cast<size_t>(victim) * page_size, 0,
                  static_cast<size_t>(n - victim) * page_size);
      std::vector<uint8_t> whole(page_size);
      DM_RETURN_NOT_OK(base_->ReadPage(first + victim, whole.data()));
      std::memcpy(out + static_cast<size_t>(victim) * page_size,
                  whole.data(), page_size / 2);
      return Status::IOError("injected short read of page " +
                             std::to_string(first + victim));
    }
    case Fault::kBitFlip: {
      stats_.bit_flips.fetch_add(1, std::memory_order_relaxed);
      DM_RETURN_NOT_OK(base_->ReadPages(first, n, out));
      const uint64_t bit =
          (detail >> 8) % (static_cast<uint64_t>(page_size) * 8);
      uint8_t* page = out + static_cast<size_t>(victim) * page_size;
      page[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      return Status::OK();  // silent on the wire; CRC must catch it
    }
    case Fault::kLatencySpike:
      stats_.latency_spikes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(plan_.latency_spike_micros));
      break;
    default:
      break;
  }
  return base_->ReadPages(first, n, out);
}

Status FaultInjectingDevice::WritePage(PageId id, const uint8_t* data) {
  uint64_t detail = 0;
  const Fault fault = NextFault(/*is_read=*/false, &detail);
  switch (fault) {
    case Fault::kWriteError:
      stats_.write_errors.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("injected EIO writing page " +
                             std::to_string(id));
    case Fault::kTornWrite: {
      stats_.torn_writes.fetch_add(1, std::memory_order_relaxed);
      // First half of the new bytes land, the rest keeps whatever the
      // page held before — the on-platter state after a mid-write
      // crash. The caller is told the write failed.
      const uint32_t page_size = base_->page_size();
      std::vector<uint8_t> torn(page_size);
      DM_RETURN_NOT_OK(base_->ReadPage(id, torn.data()));
      std::memcpy(torn.data(), data, page_size / 2);
      DM_RETURN_NOT_OK(base_->WritePage(id, torn.data()));
      return Status::IOError("injected torn write of page " +
                             std::to_string(id));
    }
    case Fault::kLatencySpike:
      stats_.latency_spikes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(plan_.latency_spike_micros));
      break;
    default:
      break;
  }
  return base_->WritePage(id, data);
}

}  // namespace dm
