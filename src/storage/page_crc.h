#ifndef DIRECTMESH_STORAGE_PAGE_CRC_H_
#define DIRECTMESH_STORAGE_PAGE_CRC_H_

#include <cstring>
#include <string>

#include "common/crc32c.h"
#include "common/status.h"
#include "storage/page.h"

namespace dm {

/// Trailer stamp/verify helpers shared by the buffer pool (every
/// flush/fetch) and `dmctl scrub` (whole-file audit). The CRC covers
/// the logical bytes; the format byte and reserved bytes are checked
/// literally, so a bit flip anywhere in the physical page is caught.

inline bool PageIsAllZero(const uint8_t* page, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    if (page[i] != 0) return false;
  }
  return true;
}

/// Writes the integrity trailer over the last kPageTrailerSize bytes.
inline void StampPageTrailer(uint8_t* page, uint32_t physical_size) {
  const uint32_t logical = physical_size - kPageTrailerSize;
  uint8_t* t = page + logical;
  const uint32_t crc = Crc32c(page, logical);
  std::memcpy(t + kPageTrailerCrcOff, &crc, 4);
  t[kPageTrailerFormatOff] = kPageFormatVersion;
  t[kPageTrailerFormatOff + 1] = 0;
  t[kPageTrailerFormatOff + 2] = 0;
  t[kPageTrailerFormatOff + 3] = 0;
}

/// Verifies the trailer of page `id`. A page that has never been
/// flushed (freshly allocated, all-zero including its trailer) passes;
/// anything else must carry the current format byte and a matching
/// CRC. Returns kCorruption naming the page otherwise.
inline Status VerifyPageTrailer(const uint8_t* page, uint32_t physical_size,
                                PageId id) {
  const uint32_t logical = physical_size - kPageTrailerSize;
  const uint8_t* t = page + logical;
  if (t[kPageTrailerFormatOff] == kPageFormatVersion) {
    if (t[kPageTrailerFormatOff + 1] != 0 ||
        t[kPageTrailerFormatOff + 2] != 0 ||
        t[kPageTrailerFormatOff + 3] != 0) {
      return Status::Corruption("page " + std::to_string(id) +
                                ": nonzero reserved trailer bytes");
    }
    uint32_t stored = 0;
    std::memcpy(&stored, t + kPageTrailerCrcOff, 4);
    const uint32_t actual = Crc32c(page, logical);
    if (actual != stored) {
      return Status::Corruption("page " + std::to_string(id) +
                                ": checksum mismatch (stored " +
                                std::to_string(stored) + ", computed " +
                                std::to_string(actual) + ")");
    }
    return Status::OK();
  }
  if (PageIsAllZero(page, physical_size)) return Status::OK();
  return Status::Corruption(
      "page " + std::to_string(id) + ": bad format byte " +
      std::to_string(t[kPageTrailerFormatOff]) + " (want " +
      std::to_string(kPageFormatVersion) + ")");
}

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_PAGE_CRC_H_
