#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "storage/page_crc.h"

namespace dm {

namespace {
/// Bounded retry policy for transient-class (kUnavailable) I/O
/// failures: 4 attempts total with 100/200/400 us backoff. Sized so an
/// EINTR storm costs under a millisecond but a persistent fault still
/// fails fast enough for the query deadline to degrade gracefully.
constexpr int kMaxIoAttempts = 4;
constexpr int64_t kIoBackoffBaseMicros = 100;
}  // namespace

PageGuard::PageGuard(BufferPool* pool, PageId id, uint8_t* data)
    : pool_(pool), id_(id), data_(data) {}

PageGuard::PageGuard(PageGuard&& o) noexcept
    : pool_(o.pool_), id_(o.id_), data_(o.data_) {
  o.pool_ = nullptr;
  o.data_ = nullptr;
  o.id_ = kInvalidPage;
}

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    id_ = o.id_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.id_ = kInvalidPage;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  DM_CHECK(valid()) << "MarkDirty on an empty PageGuard";
  pool_->MarkDirty(id_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPage;
  }
}

BufferPool::BufferPool(PageDevice* disk, uint32_t capacity_pages,
                       uint32_t num_shards)
    : disk_(disk), capacity_(capacity_pages) {
  DM_CHECK(capacity_ > 0) << "buffer pool needs at least one frame";
  num_shards = std::clamp<uint32_t>(num_shards, 1, capacity_);
  shards_.reserve(num_shards);
  const uint32_t base = capacity_ / num_shards;
  const uint32_t extra = capacity_ % num_shards;
  for (uint32_t s = 0; s < num_shards; ++s) {
    // dm-lint: allow(hot-path-alloc) construction time, once per pool
    auto shard = std::make_unique<Shard>();
    const uint32_t frames = base + (s < extra ? 1 : 0);
    shard->frame_count = frames;
    // The shard is not yet published, but its members are guarded and
    // the lock is uncontended — taking it keeps the annotations
    // provable without an analysis escape hatch.
    MutexLock lock(shard->mu);
    shard->frames.resize(frames);
    for (auto& f : shard->frames) f.data.resize(disk_->page_size());
    // ~2x frames of power-of-two buckets keeps chains short.
    uint32_t buckets = 4;
    while (buckets < 2 * frames) buckets *= 2;
    shard->buckets.assign(buckets, kNoFrame);
    shard->free_list.reserve(frames);
    for (uint32_t i = 0; i < frames; ++i) {
      shard->free_list.push_back(frames - 1 - i);
    }
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  // Best-effort write-back; errors at teardown are not recoverable.
  (void)FlushAll();
}

IoStats BufferPool::stats() const {
  IoStats total;
  for (const auto& s : shards_) {
    total.logical_fetches += s->logical_fetches.load(std::memory_order_relaxed);
    total.disk_reads += s->disk_reads.load(std::memory_order_relaxed);
    total.disk_writes += s->disk_writes.load(std::memory_order_relaxed);
    total.evictions += s->evictions.load(std::memory_order_relaxed);
  }
  total.io_retries = io_retries_.load(std::memory_order_relaxed);
  total.corrupt_pages = corrupt_pages_.load(std::memory_order_relaxed);
  return total;
}

void BufferPool::ResetStats() {
  for (const auto& s : shards_) {
    s->logical_fetches.store(0, std::memory_order_relaxed);
    s->disk_reads.store(0, std::memory_order_relaxed);
    s->disk_writes.store(0, std::memory_order_relaxed);
    s->evictions.store(0, std::memory_order_relaxed);
  }
  io_retries_.store(0, std::memory_order_relaxed);
  corrupt_pages_.store(0, std::memory_order_relaxed);
}

Status BufferPool::ReadWithRetry(PageId first, uint32_t n, uint8_t* out) {
  Status st;
  for (int attempt = 0;; ++attempt) {
    st = disk_->ReadPages(first, n, out);
    if (st.code() != StatusCode::kUnavailable) break;
    if (attempt + 1 >= kMaxIoAttempts) break;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(kIoBackoffBaseMicros << attempt));
  }
  DM_RETURN_NOT_OK(st);
  if (verify_checksums_) {
    const uint32_t page_size = disk_->page_size();
    for (uint32_t i = 0; i < n; ++i) {
      const Status v =
          VerifyPageTrailer(out + static_cast<size_t>(i) * page_size,
                            page_size, first + i);
      if (!v.ok()) {
        corrupt_pages_.fetch_add(1, std::memory_order_relaxed);
        return v;
      }
    }
  }
  return Status::OK();
}

Status BufferPool::WriteWithStamp(Shard& s, Frame& f) {
  StampPageTrailer(f.data.data(), disk_->page_size());
  Status st;
  for (int attempt = 0;; ++attempt) {
    st = disk_->WritePage(f.id, f.data.data());
    if (st.code() != StatusCode::kUnavailable) break;
    if (attempt + 1 >= kMaxIoAttempts) break;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(kIoBackoffBaseMicros << attempt));
  }
  if (st.ok()) s.disk_writes.fetch_add(1, std::memory_order_relaxed);
  return st;
}

int64_t BufferPool::pinned_frames() const {
  int64_t n = 0;
  for (const auto& s : shards_) {
    MutexLock lock(s->mu);
    for (const Frame& f : s->frames) {
      if (f.mapped && f.pins > 0) ++n;
    }
  }
  return n;
}

int64_t BufferPool::total_pins() const {
  int64_t n = 0;
  for (const auto& s : shards_) {
    MutexLock lock(s->mu);
    for (const Frame& f : s->frames) {
      if (f.mapped) n += f.pins;
    }
  }
  return n;
}

uint32_t BufferPool::TableFind(const Shard& s, PageId id) {
  for (uint32_t idx = s.buckets[BucketFor(s, id)]; idx != kNoFrame;
       idx = s.frames[idx].hash_next) {
    if (s.frames[idx].id == id) return idx;
  }
  return kNoFrame;
}

void BufferPool::TableInsert(Shard& s, uint32_t idx) {
  uint32_t& head = s.buckets[BucketFor(s, s.frames[idx].id)];
  s.frames[idx].hash_next = head;
  head = idx;
  s.frames[idx].mapped = true;
}

void BufferPool::TableErase(Shard& s, uint32_t idx) {
  uint32_t* link = &s.buckets[BucketFor(s, s.frames[idx].id)];
  while (*link != idx) {
    DM_DCHECK(*link != kNoFrame)
        << "frame " << idx << " missing from its bucket chain";
    link = &s.frames[*link].hash_next;
  }
  *link = s.frames[idx].hash_next;
  s.frames[idx].hash_next = kNoFrame;
  s.frames[idx].mapped = false;
}

void BufferPool::LruPushBack(Shard& s, uint32_t idx) {
  Frame& f = s.frames[idx];
  f.lru_prev = s.lru_tail;
  f.lru_next = kNoFrame;
  if (s.lru_tail != kNoFrame) {
    s.frames[s.lru_tail].lru_next = idx;
  } else {
    s.lru_head = idx;
  }
  s.lru_tail = idx;
  f.in_lru = true;
}

void BufferPool::LruErase(Shard& s, uint32_t idx) {
  Frame& f = s.frames[idx];
  if (f.lru_prev != kNoFrame) {
    s.frames[f.lru_prev].lru_next = f.lru_next;
  } else {
    s.lru_head = f.lru_next;
  }
  if (f.lru_next != kNoFrame) {
    s.frames[f.lru_next].lru_prev = f.lru_prev;
  } else {
    s.lru_tail = f.lru_prev;
  }
  f.lru_prev = kNoFrame;
  f.lru_next = kNoFrame;
  f.in_lru = false;
}

Result<uint32_t> BufferPool::GetFreeFrameLocked(Shard& s) {
  if (!s.free_list.empty()) {
    const uint32_t idx = s.free_list.back();
    s.free_list.pop_back();
    return idx;
  }
  if (s.lru_head == kNoFrame) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames pinned");
  }
  const uint32_t idx = s.lru_head;
  LruErase(s, idx);
  s.evictions.fetch_add(1, std::memory_order_relaxed);
  Frame& f = s.frames[idx];
  if (f.dirty) {
    DM_RETURN_NOT_OK(WriteWithStamp(s, f));
    f.dirty = false;
  }
  TableErase(s, idx);
  return idx;
}

uint8_t* BufferPool::PinIfPresentLocked(Shard& s, PageId id) {
  const uint32_t idx = TableFind(s, id);
  if (idx == kNoFrame) return nullptr;
  Frame& f = s.frames[idx];
  if (f.pins == 0 && f.in_lru) {
    LruErase(s, idx);
  }
  ++f.pins;
  return f.data.data();
}

Result<uint8_t*> BufferPool::InstallLocked(Shard& s, PageId id,
                                           const uint8_t* data) {
  DM_ASSIGN_OR_RETURN(const uint32_t idx, GetFreeFrameLocked(s));
  Frame& f = s.frames[idx];
  std::copy(data, data + disk_->page_size(), f.data.begin());
  f.id = id;
  f.pins = 1;
  f.dirty = false;
  TableInsert(s, idx);
  return f.data.data();
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  Shard& s = ShardFor(id);
  MutexLock lock(s.mu);
  s.logical_fetches.fetch_add(1, std::memory_order_relaxed);
  if (uint8_t* data = PinIfPresentLocked(s, id)) {
    return PageGuard(this, id, data);
  }
  DM_ASSIGN_OR_RETURN(const uint32_t idx, GetFreeFrameLocked(s));
  Frame& f = s.frames[idx];
  DM_RETURN_NOT_OK(ReadWithRetry(id, 1, f.data.data()));
  s.disk_reads.fetch_add(1, std::memory_order_relaxed);
  f.id = id;
  f.pins = 1;
  f.dirty = false;
  TableInsert(s, idx);
  return PageGuard(this, id, f.data.data());
}

uint32_t BufferPool::MaxRunPages() const {
  uint32_t min_shard = capacity_;
  for (const auto& s : shards_) {
    min_shard = std::min(min_shard, s->frame_count);
  }
  return std::max<uint32_t>(1, std::min<uint32_t>(32, min_shard));
}

Status BufferPool::FetchRun(PageId first, uint32_t n,
                            std::vector<PageGuard>* out) {
  DM_CHECK(out != nullptr) << "FetchRun into null output";
  DM_CHECK(n > 0 && n <= MaxRunPages())
      << "FetchRun of " << n << " pages exceeds the pin budget";
  std::vector<PageGuard> guards(n);
  std::vector<uint32_t> missing;  // offsets within the run
  // Pass 1: pin resident pages, note misses.
  for (uint32_t i = 0; i < n; ++i) {
    const PageId id = first + i;
    Shard& s = ShardFor(id);
    MutexLock lock(s.mu);
    s.logical_fetches.fetch_add(1, std::memory_order_relaxed);
    if (uint8_t* data = PinIfPresentLocked(s, id)) {
      guards[i] = PageGuard(this, id, data);
    } else {
      missing.push_back(i);
    }
  }
  // Pass 2: read each maximal run of consecutive missing pages with a
  // single scatter-gather call, outside any shard lock.
  std::vector<uint8_t> scratch;
  const uint32_t page_size = disk_->page_size();
  for (size_t m = 0; m < missing.size();) {
    size_t end = m + 1;
    while (end < missing.size() && missing[end] == missing[end - 1] + 1) {
      ++end;
    }
    const uint32_t run = static_cast<uint32_t>(end - m);
    scratch.resize(static_cast<size_t>(run) * page_size);
    DM_RETURN_NOT_OK(ReadWithRetry(first + missing[m], run, scratch.data()));
    // Pass 3: install in ascending page order; another worker may have
    // installed a page meanwhile, in which case its copy wins.
    for (uint32_t r = 0; r < run; ++r) {
      const uint32_t i = missing[m] + r;
      const PageId id = first + i;
      Shard& s = ShardFor(id);
      MutexLock lock(s.mu);
      s.disk_reads.fetch_add(1, std::memory_order_relaxed);
      if (uint8_t* data = PinIfPresentLocked(s, id)) {
        guards[i] = PageGuard(this, id, data);
        continue;
      }
      DM_ASSIGN_OR_RETURN(
          uint8_t* data,
          InstallLocked(s, id,
                        scratch.data() + static_cast<size_t>(r) * page_size));
      guards[i] = PageGuard(this, id, data);
    }
    m = end;
  }
  out->reserve(out->size() + n);
  for (auto& g : guards) out->push_back(std::move(g));
  return Status::OK();
}

Result<PageGuard> BufferPool::NewPage() {
  DM_ASSIGN_OR_RETURN(const PageId id, disk_->AllocatePage());
  Shard& s = ShardFor(id);
  MutexLock lock(s.mu);
  DM_ASSIGN_OR_RETURN(const uint32_t idx, GetFreeFrameLocked(s));
  Frame& f = s.frames[idx];
  std::fill(f.data.begin(), f.data.end(), 0);
  f.id = id;
  f.pins = 1;
  f.dirty = true;
  TableInsert(s, idx);
  return PageGuard(this, id, f.data.data());
}

void BufferPool::Unpin(PageId id) {
  Shard& s = ShardFor(id);
  MutexLock lock(s.mu);
  const uint32_t idx = TableFind(s, id);
  DM_CHECK(idx != kNoFrame) << "unpin of unmapped page " << id;
  Frame& f = s.frames[idx];
  DM_CHECK(f.pins > 0) << "pin/unpin imbalance on page " << id;
  if (--f.pins == 0) {
    LruPushBack(s, idx);
  }
}

void BufferPool::MarkDirty(PageId id) {
  Shard& s = ShardFor(id);
  MutexLock lock(s.mu);
  const uint32_t idx = TableFind(s, id);
  DM_CHECK(idx != kNoFrame) << "MarkDirty on unmapped page " << id;
  s.frames[idx].dirty = true;
}

Status BufferPool::FlushAll() {
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock lock(s.mu);
    for (uint32_t idx = 0; idx < s.frames.size(); ++idx) {
      Frame& f = s.frames[idx];
      if (!f.mapped) continue;
      if (f.dirty) {
        DM_RETURN_NOT_OK(WriteWithStamp(s, f));
        f.dirty = false;
      }
      if (f.pins == 0) {
        if (f.in_lru) {
          LruErase(s, idx);
        }
        TableErase(s, idx);
        f.id = kInvalidPage;
        s.free_list.push_back(idx);
      }
    }
  }
  return Status::OK();
}

Status BufferPool::FlushDirty() {
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    MutexLock lock(s.mu);
    for (uint32_t idx = 0; idx < s.frames.size(); ++idx) {
      Frame& f = s.frames[idx];
      if (!f.mapped || !f.dirty || f.pins > 0) continue;
      DM_RETURN_NOT_OK(WriteWithStamp(s, f));
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace dm
