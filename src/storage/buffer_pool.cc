#include "storage/buffer_pool.h"

#include "common/check.h"

namespace dm {

PageGuard::PageGuard(BufferPool* pool, PageId id, uint8_t* data)
    : pool_(pool), id_(id), data_(data) {}

PageGuard::PageGuard(PageGuard&& o) noexcept
    : pool_(o.pool_), id_(o.id_), data_(o.data_) {
  o.pool_ = nullptr;
  o.data_ = nullptr;
  o.id_ = kInvalidPage;
}

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    id_ = o.id_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.id_ = kInvalidPage;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  DM_CHECK(valid()) << "MarkDirty on an empty PageGuard";
  pool_->MarkDirty(id_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPage;
  }
}

BufferPool::BufferPool(DiskManager* disk, uint32_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  DM_CHECK(capacity_ > 0) << "buffer pool needs at least one frame";
  frames_.resize(capacity_);
  for (auto& f : frames_) f.data.resize(disk_->page_size());
  free_list_.reserve(capacity_);
  for (uint32_t i = 0; i < capacity_; ++i) {
    free_list_.push_back(capacity_ - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Best-effort write-back; errors at teardown are not recoverable.
  (void)FlushAll();
}

int64_t BufferPool::pinned_frames() const {
  int64_t n = 0;
  for (const auto& [id, idx] : page_table_) {
    if (frames_[idx].pins > 0) ++n;
  }
  return n;
}

int64_t BufferPool::total_pins() const {
  int64_t n = 0;
  for (const auto& [id, idx] : page_table_) {
    n += frames_[idx].pins;
  }
  return n;
}

Result<uint32_t> BufferPool::GetFreeFrame() {
  if (!free_list_.empty()) {
    const uint32_t idx = free_list_.back();
    free_list_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  const uint32_t idx = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[idx];
  f.in_lru = false;
  if (f.dirty) {
    DM_RETURN_NOT_OK(disk_->WritePage(f.id, f.data.data()));
    ++stats_.disk_writes;
    f.dirty = false;
  }
  page_table_.erase(f.id);
  return idx;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  ++stats_.logical_fetches;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pins == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return PageGuard(this, id, f.data.data());
  }
  DM_ASSIGN_OR_RETURN(const uint32_t idx, GetFreeFrame());
  Frame& f = frames_[idx];
  DM_RETURN_NOT_OK(disk_->ReadPage(id, f.data.data()));
  ++stats_.disk_reads;
  f.id = id;
  f.pins = 1;
  f.dirty = false;
  page_table_[id] = idx;
  return PageGuard(this, id, f.data.data());
}

Result<PageGuard> BufferPool::NewPage() {
  DM_ASSIGN_OR_RETURN(const PageId id, disk_->AllocatePage());
  DM_ASSIGN_OR_RETURN(const uint32_t idx, GetFreeFrame());
  Frame& f = frames_[idx];
  std::fill(f.data.begin(), f.data.end(), 0);
  f.id = id;
  f.pins = 1;
  f.dirty = true;
  page_table_[id] = idx;
  return PageGuard(this, id, f.data.data());
}

void BufferPool::Unpin(PageId id) {
  auto it = page_table_.find(id);
  DM_CHECK(it != page_table_.end()) << "unpin of unmapped page " << id;
  Frame& f = frames_[it->second];
  DM_CHECK(f.pins > 0) << "pin/unpin imbalance on page " << id;
  if (--f.pins == 0) {
    lru_.push_back(it->second);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

void BufferPool::MarkDirty(PageId id) {
  auto it = page_table_.find(id);
  DM_CHECK(it != page_table_.end()) << "MarkDirty on unmapped page " << id;
  frames_[it->second].dirty = true;
}

Status BufferPool::FlushAll() {
  for (uint32_t idx = 0; idx < capacity_; ++idx) {
    Frame& f = frames_[idx];
    if (f.id == kInvalidPage || page_table_.find(f.id) == page_table_.end())
      continue;
    if (page_table_[f.id] != idx) continue;
    if (f.dirty) {
      DM_RETURN_NOT_OK(disk_->WritePage(f.id, f.data.data()));
      ++stats_.disk_writes;
      f.dirty = false;
    }
    if (f.pins == 0) {
      if (f.in_lru) {
        lru_.erase(f.lru_pos);
        f.in_lru = false;
      }
      page_table_.erase(f.id);
      f.id = kInvalidPage;
      free_list_.push_back(idx);
    }
  }
  return Status::OK();
}

}  // namespace dm
