#include "storage/db_env.h"

namespace dm {

Result<std::unique_ptr<DbEnv>> DbEnv::Open(const std::string& path,
                                           const DbOptions& options) {
  DM_ASSIGN_OR_RETURN(
      auto disk,
      DiskManager::Open(path, options.page_size, options.truncate));
  auto pool = std::make_unique<BufferPool>(disk.get(), options.pool_pages,
                                           options.pool_shards);
  return std::unique_ptr<DbEnv>(
      new DbEnv(std::move(disk), std::move(pool), options));
}

}  // namespace dm
