#include "storage/db_env.h"

namespace dm {

Result<std::unique_ptr<DbEnv>> DbEnv::Open(const std::string& path,
                                           const DbOptions& options) {
  DM_ASSIGN_OR_RETURN(
      auto disk,
      DiskManager::Open(path, options.page_size, options.truncate));
  std::unique_ptr<FaultInjectingDevice> fault;
  PageDevice* device = disk.get();
  if (options.enable_fault_injection) {
    fault = std::make_unique<FaultInjectingDevice>(disk.get());
    device = fault.get();
  }
  auto pool = std::make_unique<BufferPool>(device, options.pool_pages,
                                           options.pool_shards);
  pool->set_verify_checksums(options.verify_checksums);
  return std::unique_ptr<DbEnv>(new DbEnv(
      std::move(disk), std::move(fault), std::move(pool), options));
}

}  // namespace dm
