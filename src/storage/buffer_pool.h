#ifndef DIRECTMESH_STORAGE_BUFFER_POOL_H_
#define DIRECTMESH_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace dm {

/// I/O counters. `disk_reads` is the paper's metric: the number of
/// pages fetched from disk ("number of disk accesses obtained from
/// Oracle's performance statistics report"). Benches flush the pool
/// and reset these before each query, mirroring the paper's
/// "database and system buffer is flushed before each test".
struct IoStats {
  int64_t logical_fetches = 0;
  int64_t disk_reads = 0;
  int64_t disk_writes = 0;
  /// LRU victims reclaimed under capacity pressure (a frame taken from
  /// the free list is not an eviction). Diagnoses pool thrash next to
  /// the node-cache counters in `dmctl cache-stats`.
  int64_t evictions = 0;
  /// Transient-class I/O failures (kUnavailable: EINTR storms, EAGAIN)
  /// absorbed by the bounded-backoff retry loop. A retried op that
  /// eventually succeeds is invisible to callers except here.
  int64_t io_retries = 0;
  /// Pages whose trailer failed checksum verification on fetch. Each
  /// one surfaced as Status::Corruption naming the page.
  int64_t corrupt_pages = 0;

  void Reset() { *this = IoStats{}; }
};

class BufferPool;

/// RAII pin on a buffer frame. The page stays in memory while any
/// guard on it is alive. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, uint8_t* data);
  PageGuard(PageGuard&& o) noexcept;
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const uint8_t* data() const { return data_; }
  uint8_t* data() { return data_; }

  /// Marks the frame dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  uint8_t* data_ = nullptr;
};

/// Sharded, thread-safe LRU buffer pool over a PageDevice. Pages hash
/// to one of `num_shards` independent sub-pools, each with its own
/// mutex, page table, LRU list, and free list, so concurrent query
/// workers only contend when they touch the same shard. Per-shard I/O
/// counters use relaxed atomics and are summed on read.
///
/// Paper-exact accounting: with `num_shards == 1` (the constructor
/// default, used by every paper bench and by `DbOptions`) a single
/// query stream sees exactly the eviction decisions — and therefore
/// exactly the `disk_reads` counts — of the original single-threaded
/// pool. Concurrent servers (QueryService, bench_throughput) pass
/// `kDefaultShards`.
class BufferPool {
 public:
  /// Shard count used by the concurrent serving paths.
  static constexpr uint32_t kDefaultShards = 16;

  /// `num_shards` is clamped to [1, capacity_pages]; frames are split
  /// evenly across shards (earlier shards take the remainder).
  BufferPool(PageDevice* disk, uint32_t capacity_pages,
             uint32_t num_shards = 1);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t capacity() const { return capacity_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// Page bytes usable by structures above the pool: the physical page
  /// minus the integrity trailer the pool owns. All layouts (heap
  /// slots, index fan-out) are computed from this.
  uint32_t logical_page_size() const {
    return disk_->page_size() - kPageTrailerSize;
  }

  /// Toggles trailer verification on fetch (stamping on flush is
  /// unconditional, so the file stays valid either way). On by
  /// default; the throughput bench turns it off to measure checksum
  /// overhead. Set before serving starts.
  void set_verify_checksums(bool verify) { verify_checksums_ = verify; }
  bool verify_checksums() const { return verify_checksums_; }
  /// Aggregated counters (sum over shards).
  IoStats stats() const;
  void ResetStats();

  /// Number of frames currently holding at least one pin. A quiescent
  /// pool (no live PageGuard) must report 0; the invariant checker
  /// audits this after every traversal.
  int64_t pinned_frames() const;
  /// Sum of pin counts across all frames.
  int64_t total_pins() const;

  /// Fetches a page, reading from disk on miss.
  Result<PageGuard> Fetch(PageId id);

  /// Pins `n` consecutive pages [first, first + n), coalescing runs of
  /// pages that miss the pool into bulk `DiskManager::ReadPages`
  /// calls. `out` receives one guard per page in ascending order.
  /// `n` must not exceed `MaxRunPages()` (frames for the whole run are
  /// pinned simultaneously). Accounting matches n sequential Fetch
  /// calls: every miss counts one disk read.
  Status FetchRun(PageId first, uint32_t n, std::vector<PageGuard>* out);

  /// Largest run FetchRun accepts without risking frame exhaustion.
  uint32_t MaxRunPages() const;

  /// Allocates a fresh zeroed page and returns it pinned and dirty.
  Result<PageGuard> NewPage();

  /// Writes back all dirty frames and drops every unpinned frame
  /// (cold-cache state for the next query). Requires quiescence: no
  /// other thread may hold guards or fetch concurrently, because
  /// pinned dirty frames are written back while their owner could
  /// still be mutating them.
  Status FlushAll();

  /// Writes back dirty *unpinned* frames without evicting anything —
  /// warm-cache steady state for throughput benches. Safe to call
  /// concurrently with readers: pinned frames (possibly mid-mutation)
  /// are skipped and stay dirty.
  Status FlushDirty();

 private:
  friend class PageGuard;

  /// Sentinel frame index for the intrusive LRU links.
  static constexpr uint32_t kNoFrame = UINT32_MAX;

  struct Frame {
    PageId id = kInvalidPage;
    std::vector<uint8_t> data;
    int32_t pins = 0;
    bool dirty = false;
    // Intrusive LRU links (frame indices) when unpinned. Linking a
    // frame in or out of the list never touches the heap, which keeps
    // Unpin allocation-free on the query hot path.
    uint32_t lru_prev = kNoFrame;
    uint32_t lru_next = kNoFrame;
    bool in_lru = false;
    // Next frame in the same page-table bucket chain.
    uint32_t hash_next = kNoFrame;
    // True while the frame is installed in the page table under `id`.
    bool mapped = false;
  };

  /// One independent sub-pool. All mutable state is guarded by `mu`
  /// (machine-checked: every member below is DM_GUARDED_BY it); the
  /// stats counters are relaxed atomics so aggregation never blocks a
  /// fetch.
  ///
  /// The page table is an intrusive chained hash over the frames
  /// themselves (`buckets` holds chain heads, `Frame::hash_next` the
  /// links): lookup, install, and eviction never allocate, unlike a
  /// node-based std::unordered_map which would heap-allocate on every
  /// page install — one allocation per disk read on the query path.
  struct Shard {
    mutable Mutex mu;
    /// Frame count, fixed at construction; duplicated outside the
    /// guarded state so MaxRunPages can size runs without taking every
    /// shard lock on each FetchRun.
    uint32_t frame_count = 0;
    std::vector<Frame> frames DM_GUARDED_BY(mu);
    // Power-of-two chain heads of the intrusive page table.
    std::vector<uint32_t> buckets DM_GUARDED_BY(mu);
    uint32_t lru_head DM_GUARDED_BY(mu) = kNoFrame;  // least recently used
    uint32_t lru_tail DM_GUARDED_BY(mu) = kNoFrame;  // most recently used
    // Frames never used / dropped.
    std::vector<uint32_t> free_list DM_GUARDED_BY(mu);
    std::atomic<int64_t> logical_fetches{0};
    std::atomic<int64_t> disk_reads{0};
    std::atomic<int64_t> disk_writes{0};
    std::atomic<int64_t> evictions{0};
  };

  Shard& ShardFor(PageId id) {
    if (shards_.size() == 1) return *shards_[0];
    // Fibonacci hash spreads sequential page ids across shards.
    const uint32_t h =
        static_cast<uint32_t>(static_cast<uint64_t>(id) * 2654435769u);
    return *shards_[(h >> 16) % shards_.size()];
  }
  const Shard& ShardFor(PageId id) const {
    return const_cast<BufferPool*>(this)->ShardFor(id);
  }

  void Unpin(PageId id);
  void MarkDirty(PageId id);
  /// Intrusive-LRU helpers; f.in_lru must be consistent.
  static void LruPushBack(Shard& s, uint32_t idx) DM_REQUIRES(s.mu);
  static void LruErase(Shard& s, uint32_t idx) DM_REQUIRES(s.mu);
  /// Intrusive page-table helpers.
  static uint32_t BucketFor(const Shard& s, PageId id) DM_REQUIRES(s.mu) {
    // Fibonacci hash; buckets.size() is a power of two.
    const uint32_t h =
        static_cast<uint32_t>(static_cast<uint64_t>(id) * 2654435769u);
    return (h >> 16) & (static_cast<uint32_t>(s.buckets.size()) - 1);
  }
  /// Frame index of `id`, or kNoFrame.
  static uint32_t TableFind(const Shard& s, PageId id) DM_REQUIRES(s.mu);
  /// Installs frame `idx` (whose Frame::id is already set) in the table.
  static void TableInsert(Shard& s, uint32_t idx) DM_REQUIRES(s.mu);
  /// Unlinks frame `idx` from the table.
  static void TableErase(Shard& s, uint32_t idx) DM_REQUIRES(s.mu);
  /// Reads `n` pages at `first`, retrying transient (kUnavailable)
  /// failures with exponential backoff up to kMaxIoAttempts, then
  /// verifies every page's trailer. Corruption is not retried: the
  /// bytes are wrong, not late. Touches no shard state; FetchRun calls
  /// it outside any shard lock so bulk reads never block other workers.
  Status ReadWithRetry(PageId first, uint32_t n, uint8_t* out);
  /// Writes back frame `f` of shard `s` (stamping its trailer first)
  /// with the same transient-retry policy. The frame's bytes are
  /// guarded by s.mu, hence the capability requirement.
  Status WriteWithStamp(Shard& s, Frame& f) DM_REQUIRES(s.mu);

  /// May evict (writing back a dirty victim).
  Result<uint32_t> GetFreeFrameLocked(Shard& s) DM_REQUIRES(s.mu);
  /// Pins the frame of `id` if resident.
  uint8_t* PinIfPresentLocked(Shard& s, PageId id) DM_REQUIRES(s.mu);
  /// Claims a frame, installs `data` (page bytes) under `id`, and pins
  /// it.
  Result<uint8_t*> InstallLocked(Shard& s, PageId id, const uint8_t* data)
      DM_REQUIRES(s.mu);

  PageDevice* disk_;
  uint32_t capacity_;
  bool verify_checksums_ = true;
  std::atomic<int64_t> io_retries_{0};
  std::atomic<int64_t> corrupt_pages_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_BUFFER_POOL_H_
