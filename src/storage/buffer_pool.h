#ifndef DIRECTMESH_STORAGE_BUFFER_POOL_H_
#define DIRECTMESH_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace dm {

/// I/O counters. `disk_reads` is the paper's metric: the number of
/// pages fetched from disk ("number of disk accesses obtained from
/// Oracle's performance statistics report"). Benches flush the pool
/// and reset these before each query, mirroring the paper's
/// "database and system buffer is flushed before each test".
struct IoStats {
  int64_t logical_fetches = 0;
  int64_t disk_reads = 0;
  int64_t disk_writes = 0;

  void Reset() { *this = IoStats{}; }
};

class BufferPool;

/// RAII pin on a buffer frame. The page stays in memory while any
/// guard on it is alive. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, uint8_t* data);
  PageGuard(PageGuard&& o) noexcept;
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const uint8_t* data() const { return data_; }
  uint8_t* data() { return data_; }

  /// Marks the frame dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  uint8_t* data_ = nullptr;
};

/// LRU buffer pool over a DiskManager. Single-threaded by design: the
/// paper's workload is a single query stream, and keeping the pool
/// lock-free makes the disk-access counts exactly reproducible.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, uint32_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t capacity() const { return capacity_; }
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Number of frames currently holding at least one pin. A quiescent
  /// pool (no live PageGuard) must report 0; the invariant checker
  /// audits this after every traversal.
  int64_t pinned_frames() const;
  /// Sum of pin counts across all frames.
  int64_t total_pins() const;

  /// Fetches a page, reading from disk on miss.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh zeroed page and returns it pinned and dirty.
  Result<PageGuard> NewPage();

  /// Writes back all dirty frames and drops every unpinned frame
  /// (cold-cache state for the next query).
  Status FlushAll();

 private:
  friend class PageGuard;

  struct Frame {
    PageId id = kInvalidPage;
    std::vector<uint8_t> data;
    int32_t pins = 0;
    bool dirty = false;
    // Position in lru_ when unpinned.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id);
  void MarkDirty(PageId id);
  Result<uint32_t> GetFreeFrame();  // may evict

  DiskManager* disk_;
  uint32_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, uint32_t> page_table_;
  std::list<uint32_t> lru_;          // front = least recently used
  std::vector<uint32_t> free_list_;  // frames never used / dropped
  IoStats stats_;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_BUFFER_POOL_H_
