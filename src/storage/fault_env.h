#ifndef DIRECTMESH_STORAGE_FAULT_ENV_H_
#define DIRECTMESH_STORAGE_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "storage/disk_manager.h"

namespace dm {

/// A reproducible fault schedule. Rates are per *operation* (one
/// ReadPage/ReadPages/WritePage/AllocatePage call counts as one op);
/// which ops fail is fully determined by `seed` and the op sequence,
/// so a failing sweep replays exactly from its seed. `trigger_after_n`
/// arms injection only from the Nth op on (0 = from the start), which
/// lets a test build a clean store and then torture only the query
/// phase.
struct FaultPlan {
  uint64_t seed = 0;

  /// Permanent read failure (EIO-class): ReadPage/ReadPages returns
  /// kIOError without transferring bytes.
  double read_error_rate = 0.0;
  /// Transient read failure (EINTR/EAGAIN storm): returns kUnavailable.
  /// A bounded retry loop above must absorb these.
  double read_transient_rate = 0.0;
  /// Short read: only the first half of the first affected page is
  /// transferred, rest of the buffer untouched; returns kIOError.
  double short_read_rate = 0.0;
  /// Single-bit flip in one read page: the read "succeeds" but one bit
  /// of the returned buffer is inverted. Only checksums catch this.
  double bit_flip_rate = 0.0;
  /// Write failure (EIO-class / disk-full): returns kIOError without
  /// writing.
  double write_error_rate = 0.0;
  /// Torn multi-page/partial write: for WritePage, the first half of
  /// the page is written and the rest left stale; returns kIOError
  /// (the device knows the write failed — the torn bytes model what a
  /// crash leaves on the platter).
  double torn_write_rate = 0.0;
  /// Latency spike: the op sleeps `latency_spike_micros` first, then
  /// proceeds normally. Exercises deadlines, not error paths.
  double latency_spike_rate = 0.0;
  uint32_t latency_spike_micros = 2000;

  /// Ops before injection arms. Ops below this threshold (and the
  /// draw consumed for them) still advance the schedule so the fault
  /// sequence depends only on (seed, op index).
  uint64_t trigger_after_n = 0;

  bool AnyFaults() const {
    return read_error_rate > 0 || read_transient_rate > 0 ||
           short_read_rate > 0 || bit_flip_rate > 0 ||
           write_error_rate > 0 || torn_write_rate > 0 ||
           latency_spike_rate > 0;
  }
};

/// Counters for what the shim actually injected, so tests can assert
/// "every injected corruption was detected" structurally instead of
/// hoping.
struct FaultStats {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> read_errors{0};
  std::atomic<uint64_t> read_transients{0};
  std::atomic<uint64_t> short_reads{0};
  std::atomic<uint64_t> bit_flips{0};
  std::atomic<uint64_t> write_errors{0};
  std::atomic<uint64_t> torn_writes{0};
  std::atomic<uint64_t> latency_spikes{0};

  uint64_t injected_total() const {
    return read_errors.load() + read_transients.load() + short_reads.load() +
           bit_flips.load() + write_errors.load() + torn_writes.load();
  }
};

/// Deterministic fault-injection shim between the buffer pool and the
/// real DiskManager. All fault decisions come from one xoshiro256**
/// stream guarded by a mutex: the Nth device op always draws the Nth
/// random values, so a schedule is reproducible for a fixed seed and
/// op sequence (single-threaded tests replay bit-for-bit; concurrent
/// tests still get a deterministic *set* of faults per run length).
///
/// The shim never fabricates success: an injected error returns a
/// non-OK Status, and an injected corruption (bit flip, torn write)
/// produces bytes the checksum layer must catch. "Silent escape" in
/// tests means a bit flip that a successful fetch returned without
/// kCorruption.
class FaultInjectingDevice final : public PageDevice {
 public:
  explicit FaultInjectingDevice(PageDevice* base)
      : base_(base), rng_(0) {}

  /// Installs a new plan and rewinds the schedule to op 0 with the
  /// plan's seed. Not thread-safe against in-flight ops; swap plans
  /// only between query batches.
  void set_plan(const FaultPlan& plan);
  const FaultPlan& plan() const { return plan_; }

  FaultStats& stats() { return stats_; }
  void ResetStats();

  uint32_t page_size() const override { return base_->page_size(); }
  PageId num_pages() const override { return base_->num_pages(); }
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, uint8_t* out) override;
  Status ReadPages(PageId first, uint32_t n, uint8_t* out) override;
  Status WritePage(PageId id, const uint8_t* data) override;

 private:
  /// One decision per op class, drawn under the schedule lock.
  enum class Fault : uint8_t {
    kNone,
    kReadError,
    kReadTransient,
    kShortRead,
    kBitFlip,
    kWriteError,
    kTornWrite,
    kLatencySpike,
  };

  /// Draws the next scheduled fault for a read (`is_read`) or write
  /// op; advances the op counter either way. `detail` receives the
  /// draw used to pick the victim bit/offset so corruption placement
  /// is deterministic too.
  Fault NextFault(bool is_read, uint64_t* detail);

  PageDevice* base_;
  /// Written only by set_plan between query batches (see its contract)
  /// and read concurrently by the op paths; deliberately not guarded —
  /// guarding it here would serialize every fault draw against plan
  /// reads that are immutable while ops are in flight.
  FaultPlan plan_;
  FaultStats stats_;
  /// Guards the deterministic schedule: the rng stream and op counter
  /// must advance together so the Nth op always draws the Nth values.
  Mutex mu_;
  Rng rng_ DM_GUARDED_BY(mu_);
  uint64_t op_index_ DM_GUARDED_BY(mu_) = 0;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_FAULT_ENV_H_
