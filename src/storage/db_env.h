#ifndef DIRECTMESH_STORAGE_DB_ENV_H_
#define DIRECTMESH_STORAGE_DB_ENV_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dm {

/// Options for opening a database environment.
struct DbOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Buffer pool capacity in pages. The default (2048 pages = 8 MiB at
  /// 4 KiB pages) is small relative to the datasets, as in the paper's
  /// 512 MB machine vs multi-GB terrain; the buffer ablation sweeps it.
  uint32_t pool_pages = 2048;
  bool truncate = true;
};

/// One database: a single page file shared by every table and index of
/// a dataset (heap files, B+-trees, R*-trees, quadtrees), fronted by
/// one buffer pool. Disk-access accounting is therefore global across
/// structures, matching how the paper reads Oracle's counters.
class DbEnv {
 public:
  static Result<std::unique_ptr<DbEnv>> Open(const std::string& path,
                                             const DbOptions& options = {});

  BufferPool& pool() { return *pool_; }
  DiskManager& disk() { return *disk_; }
  uint32_t page_size() const { return disk_->page_size(); }

  const IoStats& stats() const { return pool_->stats(); }
  void ResetStats() { pool_->ResetStats(); }

  /// Cold-cache reset: write back dirty pages and empty the pool.
  Status FlushAll() { return pool_->FlushAll(); }

 private:
  DbEnv(std::unique_ptr<DiskManager> disk, std::unique_ptr<BufferPool> pool)
      : disk_(std::move(disk)), pool_(std::move(pool)) {}

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_DB_ENV_H_
