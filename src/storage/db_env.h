#ifndef DIRECTMESH_STORAGE_DB_ENV_H_
#define DIRECTMESH_STORAGE_DB_ENV_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dm {

/// Options for opening a database environment.
struct DbOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Buffer pool capacity in pages. The default (2048 pages = 8 MiB at
  /// 4 KiB pages) is small relative to the datasets, as in the paper's
  /// 512 MB machine vs multi-GB terrain; the buffer ablation sweeps it.
  uint32_t pool_pages = 2048;
  /// Buffer pool shards. Defaults to 1 so the paper benches reproduce
  /// the single-LRU eviction decisions (and disk-access counts) of the
  /// original pool exactly; concurrent servers set
  /// `BufferPool::kDefaultShards` (16) to spread lock contention.
  uint32_t pool_shards = 1;
  bool truncate = true;
};

/// One database: a single page file shared by every table and index of
/// a dataset (heap files, B+-trees, R*-trees, quadtrees), fronted by
/// one buffer pool. Disk-access accounting is therefore global across
/// structures, matching how the paper reads Oracle's counters.
///
/// Concurrency: the pool and disk manager are thread-safe; the
/// structures above them are immutable after build/open, so their
/// const read paths may run from many threads at once (DESIGN.md §8).
class DbEnv {
 public:
  static Result<std::unique_ptr<DbEnv>> Open(const std::string& path,
                                             const DbOptions& options = {});

  BufferPool& pool() { return *pool_; }
  DiskManager& disk() { return *disk_; }
  uint32_t page_size() const { return disk_->page_size(); }

  IoStats stats() const { return pool_->stats(); }
  void ResetStats() { pool_->ResetStats(); }

  /// Cold-cache reset: write back dirty pages and empty the pool.
  /// Requires quiescence (see BufferPool::FlushAll).
  Status FlushAll() { return pool_->FlushAll(); }

  /// Write-back without eviction (warm-cache steady state); safe to
  /// call while readers are active.
  Status FlushDirty() { return pool_->FlushDirty(); }

 private:
  DbEnv(std::unique_ptr<DiskManager> disk, std::unique_ptr<BufferPool> pool)
      : disk_(std::move(disk)), pool_(std::move(pool)) {}

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_DB_ENV_H_
