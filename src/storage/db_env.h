#ifndef DIRECTMESH_STORAGE_DB_ENV_H_
#define DIRECTMESH_STORAGE_DB_ENV_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_env.h"

namespace dm {

/// Options for opening a database environment.
struct DbOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Buffer pool capacity in pages. The default (2048 pages = 8 MiB at
  /// 4 KiB pages) is small relative to the datasets, as in the paper's
  /// 512 MB machine vs multi-GB terrain; the buffer ablation sweeps it.
  uint32_t pool_pages = 2048;
  /// Buffer pool shards. Defaults to 1 so the paper benches reproduce
  /// the single-LRU eviction decisions (and disk-access counts) of the
  /// original pool exactly; concurrent servers set
  /// `BufferPool::kDefaultShards` (16) to spread lock contention.
  uint32_t pool_shards = 1;
  /// Decoded-node cache budget in bytes (see dm/node_cache.h). Defaults
  /// to 0 = disabled so the paper benches keep their disk-read counts
  /// bit-identical to an uncached run; servers opt in (e.g. 64 MiB).
  /// Stored here as a plain number — the cache itself lives in the dm
  /// layer (DmStore), which reads this knob at Build/Open.
  size_t node_cache_bytes = 0;
  /// Shards for the decoded-node cache (NodeCache::kDefaultShards).
  uint32_t node_cache_shards = 16;
  bool truncate = true;
  /// Verify every fetched page's CRC32C trailer (DESIGN.md §11). On by
  /// default; benches toggle it to measure checksum overhead.
  bool verify_checksums = true;
  /// Interpose a FaultInjectingDevice between the pool and the disk.
  /// The shim starts with an empty plan (no faults); tests arm it via
  /// `fault_device()->set_plan(...)` after building their store.
  bool enable_fault_injection = false;
};

/// One database: a single page file shared by every table and index of
/// a dataset (heap files, B+-trees, R*-trees, quadtrees), fronted by
/// one buffer pool. Disk-access accounting is therefore global across
/// structures, matching how the paper reads Oracle's counters.
///
/// Concurrency: the pool and disk manager are thread-safe; the
/// structures above them are immutable after build/open, so their
/// const read paths may run from many threads at once (DESIGN.md §8).
class DbEnv {
 public:
  static Result<std::unique_ptr<DbEnv>> Open(const std::string& path,
                                             const DbOptions& options = {});

  BufferPool& pool() { return *pool_; }
  DiskManager& disk() { return *disk_; }
  /// The fault shim, or nullptr when `enable_fault_injection` is off.
  FaultInjectingDevice* fault_device() { return fault_.get(); }
  /// Logical page size: what every structure above the buffer pool
  /// sizes its layout from. Physical minus the integrity trailer.
  uint32_t page_size() const { return pool_->logical_page_size(); }
  /// The options this environment was opened with (layers above storage
  /// read their knobs — e.g. node_cache_bytes — from here).
  const DbOptions& options() const { return options_; }

  IoStats stats() const { return pool_->stats(); }
  void ResetStats() { pool_->ResetStats(); }

  /// Cold-cache reset: write back dirty pages and empty the pool.
  /// Requires quiescence (see BufferPool::FlushAll).
  Status FlushAll() { return pool_->FlushAll(); }

  /// Write-back without eviction (warm-cache steady state); safe to
  /// call while readers are active.
  Status FlushDirty() { return pool_->FlushDirty(); }

 private:
  DbEnv(std::unique_ptr<DiskManager> disk,
        std::unique_ptr<FaultInjectingDevice> fault,
        std::unique_ptr<BufferPool> pool, const DbOptions& options)
      : disk_(std::move(disk)),
        fault_(std::move(fault)),
        pool_(std::move(pool)),
        options_(options) {}

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<FaultInjectingDevice> fault_;  // may be null
  std::unique_ptr<BufferPool> pool_;
  DbOptions options_;
};

}  // namespace dm

#endif  // DIRECTMESH_STORAGE_DB_ENV_H_
