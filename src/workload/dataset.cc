#include "workload/dataset.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "dem/crater.h"
#include "dem/fractal.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"
#include "simplify/simplifier.h"

namespace dm {

namespace {

// Bump whenever the on-disk layout of any store changes; cached builds
// with a different version are rebuilt. v4: wave-based simplification
// changed the collapse sequence (and thus every store) relative to the
// strict-greedy v3 builds. v5: every page carries an 8-byte CRC32C
// trailer, shrinking the logical page size and moving every record.
constexpr int64_t kFormatVersion = 5;

int SideFromEnv(const char* var, int fallback) {
  const char* v = std::getenv(var);
  if (v == nullptr) return fallback;
  const int s = std::atoi(v);
  return s >= 17 ? s : fallback;
}

std::string MetaPath(const std::string& dir, const DatasetSpec& spec) {
  return dir + "/" + spec.name + ".meta";
}
std::string DbPath(const std::string& dir, const DatasetSpec& spec,
                   const char* method) {
  return dir + "/" + spec.name + "." + method + ".db";
}

/// Tiny key=value catalog file for reopening builds.
class MetaFile {
 public:
  void Set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    kv_[key] = buf;
  }
  void Set(const std::string& key, int64_t v) {
    kv_[key] = std::to_string(v);
  }
  void Set(const std::string& key, uint64_t v) {
    kv_[key] = std::to_string(v);
  }

  double GetDouble(const std::string& key) const {
    return std::strtod(kv_.at(key).c_str(), nullptr);
  }
  int64_t GetInt(const std::string& key) const {
    return std::strtoll(kv_.at(key).c_str(), nullptr, 10);
  }
  bool Has(const std::string& key) const { return kv_.count(key) > 0; }

  Status Save(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return Status::IOError("cannot write " + path);
    for (const auto& [k, v] : kv_) out << k << "=" << v << "\n";
    return Status::OK();
  }
  static Result<MetaFile> Load(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Status::NotFound(path);
    MetaFile mf;
    std::string line;
    while (std::getline(in, line)) {
      const auto eq = line.find('=');
      if (eq == std::string::npos) continue;
      mf.kv_[line.substr(0, eq)] = line.substr(eq + 1);
    }
    return mf;
  }

 private:
  std::map<std::string, std::string> kv_;
};

void SaveRect(MetaFile* mf, const std::string& prefix, const Rect& r) {
  mf->Set(prefix + ".lo_x", r.lo_x);
  mf->Set(prefix + ".lo_y", r.lo_y);
  mf->Set(prefix + ".hi_x", r.hi_x);
  mf->Set(prefix + ".hi_y", r.hi_y);
}
Rect LoadRect(const MetaFile& mf, const std::string& prefix) {
  return Rect::Of(mf.GetDouble(prefix + ".lo_x"),
                  mf.GetDouble(prefix + ".lo_y"),
                  mf.GetDouble(prefix + ".hi_x"),
                  mf.GetDouble(prefix + ".hi_y"));
}

constexpr double kQuantileFractions[] = {1.0,  0.75, 0.5,   0.25,
                                         0.1,  0.05, 0.02,  0.01,
                                         0.005, 0.002, 0.001};

}  // namespace

double BuiltDataset::LodForCutFraction(double frac) const {
  if (lod_quantiles.empty()) return 0.0;
  frac = std::clamp(frac, lod_quantiles.back().first,
                    lod_quantiles.front().first);
  for (size_t i = 1; i < lod_quantiles.size(); ++i) {
    const auto& [f_hi, e_lo] = lod_quantiles[i - 1];  // bigger fraction
    const auto& [f_lo, e_hi] = lod_quantiles[i];
    if (frac <= f_hi && frac >= f_lo) {
      if (f_hi == f_lo) return e_lo;
      const double t = (f_hi - frac) / (f_hi - f_lo);
      return e_lo + t * (e_hi - e_lo);
    }
  }
  return lod_quantiles.back().second;
}

DatasetSpec SmallDatasetSpec() {
  DatasetSpec spec;
  spec.name = "small";
  spec.side = SideFromEnv("DM_SMALL_SIDE", 193);
  spec.seed = 42;
  spec.crater = false;
  return spec;
}

DatasetSpec CraterDatasetSpec() {
  DatasetSpec spec;
  spec.name = "crater";
  spec.side = SideFromEnv("DM_CRATER_SIDE", 385);
  spec.seed = 4242;
  spec.crater = true;
  return spec;
}

void DropDatasetCache(const std::string& dir, const DatasetSpec& spec) {
  std::remove(MetaPath(dir, spec).c_str());
  std::remove(DbPath(dir, spec, "dm").c_str());
  std::remove(DbPath(dir, spec, "pm").c_str());
  std::remove(DbPath(dir, spec, "hdov").c_str());
}

Result<BuiltDataset> BuildOrLoadDataset(const std::string& dir,
                                        const DatasetSpec& spec,
                                        const DbOptions& options,
                                        int build_threads) {
  BuiltDataset ds;
  ds.spec = spec;

  // Try the cache.
  auto meta_or = MetaFile::Load(MetaPath(dir, spec));
  if (meta_or.ok()) {
    const MetaFile mf = std::move(meta_or).value();
    const bool match =
        mf.Has("format.version") &&
        mf.GetInt("format.version") == kFormatVersion &&
        mf.Has("spec.side") && mf.GetInt("spec.side") == spec.side &&
        mf.GetInt("spec.seed") == static_cast<int64_t>(spec.seed) &&
        mf.GetInt("spec.page_size") ==
            static_cast<int64_t>(options.page_size);
    if (match) {
      DbOptions open = options;
      open.truncate = false;
      DM_ASSIGN_OR_RETURN(ds.dm_env,
                          DbEnv::Open(DbPath(dir, spec, "dm"), open));
      DM_ASSIGN_OR_RETURN(ds.pm_env,
                          DbEnv::Open(DbPath(dir, spec, "pm"), open));
      DM_ASSIGN_OR_RETURN(ds.hdov_env,
                          DbEnv::Open(DbPath(dir, spec, "hdov"), open));

      DmMeta dmm;
      dmm.heap_first = static_cast<PageId>(mf.GetInt("dm.heap_first"));
      dmm.rtree_root = static_cast<PageId>(mf.GetInt("dm.rtree_root"));
      dmm.rtree_size = mf.GetInt("dm.rtree_size");
      dmm.num_nodes = mf.GetInt("num_nodes");
      dmm.num_leaves = mf.GetInt("num_leaves");
      dmm.max_lod = mf.GetDouble("max_lod");
      dmm.mean_lod = mf.GetDouble("mean_lod");
      dmm.bounds = LoadRect(mf, "bounds");
      DM_ASSIGN_OR_RETURN(ds.dm, DmStore::Open(ds.dm_env.get(), dmm));

      PmDbMeta pmm;
      pmm.heap_first = static_cast<PageId>(mf.GetInt("pm.heap_first"));
      pmm.quadtree_root =
          static_cast<PageId>(mf.GetInt("pm.quadtree_root"));
      pmm.quadtree_size = mf.GetInt("pm.quadtree_size");
      pmm.btree_root = static_cast<PageId>(mf.GetInt("pm.btree_root"));
      pmm.btree_size = mf.GetInt("pm.btree_size");
      pmm.pm_root = mf.GetInt("pm.pm_root");
      pmm.num_nodes = dmm.num_nodes;
      pmm.max_lod = dmm.max_lod;
      pmm.mean_lod = dmm.mean_lod;
      pmm.bounds = dmm.bounds;
      DM_ASSIGN_OR_RETURN(ds.pm, PmDbStore::Open(ds.pm_env.get(), pmm));

      HdovMeta hm;
      hm.heap_first = static_cast<PageId>(mf.GetInt("hdov.heap_first"));
      hm.root_record =
          static_cast<uint64_t>(mf.GetInt("hdov.root_record"));
      hm.num_nodes = mf.GetInt("hdov.num_nodes");
      hm.max_lod = dmm.max_lod;
      hm.bounds = dmm.bounds;
      DM_ASSIGN_OR_RETURN(ds.hdov, HdovTree::Open(ds.hdov_env.get(), hm));

      ds.max_lod = dmm.max_lod;
      ds.mean_lod = dmm.mean_lod;
      ds.bounds = dmm.bounds;
      ds.num_leaves = dmm.num_leaves;
      ds.num_nodes = dmm.num_nodes;
      ds.conn_stats.avg_similar_lod = mf.GetDouble("conn.avg_similar");
      ds.conn_stats.max_similar_lod = mf.GetInt("conn.max_similar");
      ds.conn_stats.avg_total_connections = mf.GetDouble("conn.avg_total");
      ds.conn_stats.sampled_nodes = mf.GetInt("conn.sampled");
      const int64_t nq = mf.Has("lodq.count") ? mf.GetInt("lodq.count") : 0;
      for (int64_t i = 0; i < nq; ++i) {
        const std::string p = "lodq." + std::to_string(i);
        ds.lod_quantiles.emplace_back(mf.GetDouble(p + ".f"),
                                      mf.GetDouble(p + ".e"));
      }

      // Cold caches for the first query.
      DM_RETURN_NOT_OK(ds.dm_env->FlushAll());
      DM_RETURN_NOT_OK(ds.pm_env->FlushAll());
      DM_RETURN_NOT_OK(ds.hdov_env->FlushAll());
      ds.dm_env->ResetStats();
      ds.pm_env->ResetStats();
      ds.hdov_env->ResetStats();
      return ds;
    }
  }

  // Full build.
  DemGrid dem;
  if (spec.crater) {
    CraterParams cp;
    cp.side = spec.side;
    cp.seed = spec.seed;
    dem = GenerateCraterDem(cp);
  } else {
    FractalParams fp;
    fp.side = spec.side;
    fp.seed = spec.seed;
    dem = GenerateFractalDem(fp);
  }
  const TriangleMesh base = TriangulateDem(dem);
  SimplifyOptions simplify_options;
  simplify_options.threads = build_threads;
  const SimplifyResult sr = SimplifyMesh(base, simplify_options);
  DM_ASSIGN_OR_RETURN(const PmTree tree, PmTree::Build(base, sr));

  DM_ASSIGN_OR_RETURN(ds.dm_env,
                      DbEnv::Open(DbPath(dir, spec, "dm"), options));
  DM_ASSIGN_OR_RETURN(ds.pm_env,
                      DbEnv::Open(DbPath(dir, spec, "pm"), options));
  DM_ASSIGN_OR_RETURN(ds.hdov_env,
                      DbEnv::Open(DbPath(dir, spec, "hdov"), options));
  // The connection lists feed both the DM store and the connectivity
  // stats below; build them once.
  const auto conn = BuildConnectionLists(base, tree, sr, build_threads);
  DmStoreOptions dm_options;
  dm_options.threads = build_threads;
  dm_options.connections = &conn;
  DM_ASSIGN_OR_RETURN(
      ds.dm, DmStore::Build(ds.dm_env.get(), base, tree, sr, dm_options));
  DM_ASSIGN_OR_RETURN(ds.pm, PmDbStore::Build(ds.pm_env.get(), tree));
  DM_ASSIGN_OR_RETURN(ds.hdov, HdovTree::Build(ds.hdov_env.get(), base,
                                               tree));

  ds.max_lod = tree.max_lod();
  ds.mean_lod = tree.mean_lod();
  ds.bounds = tree.bounds();
  ds.num_leaves = tree.num_leaves();
  ds.num_nodes = tree.num_nodes();
  {
    // LOD quantile catalog: |cut(e)| = leaves - #collapses with
    // e_low <= e, inverted over the sorted collapse LODs.
    std::vector<double> collapse_lods;
    collapse_lods.reserve(static_cast<size_t>(tree.num_nodes()));
    for (const PmNode& n : tree.nodes()) {
      if (!n.is_leaf()) collapse_lods.push_back(n.e_low);
    }
    std::sort(collapse_lods.begin(), collapse_lods.end());
    for (double f : kQuantileFractions) {
      const int64_t target = std::clamp<int64_t>(
          static_cast<int64_t>(f * static_cast<double>(ds.num_leaves)), 1,
          ds.num_leaves);
      const int64_t k = ds.num_leaves - target;
      double e = 0.0;
      if (k > 0) {
        const size_t idx = std::min<size_t>(static_cast<size_t>(k),
                                            collapse_lods.size()) - 1;
        e = collapse_lods[idx];
      }
      ds.lod_quantiles.emplace_back(f, e);
    }
  }
  ds.conn_stats =
      ComputeConnectivityStats(base, tree, conn, /*sample=*/512, build_threads);

  // Persist the catalog.
  MetaFile mf;
  mf.Set("format.version", kFormatVersion);
  mf.Set("spec.side", static_cast<int64_t>(spec.side));
  mf.Set("spec.seed", static_cast<int64_t>(spec.seed));
  mf.Set("spec.page_size", static_cast<int64_t>(options.page_size));
  mf.Set("num_nodes", ds.num_nodes);
  mf.Set("num_leaves", ds.num_leaves);
  mf.Set("max_lod", ds.max_lod);
  mf.Set("mean_lod", ds.mean_lod);
  SaveRect(&mf, "bounds", ds.bounds);
  mf.Set("dm.heap_first", static_cast<int64_t>(ds.dm->meta().heap_first));
  mf.Set("dm.rtree_root", static_cast<int64_t>(ds.dm->meta().rtree_root));
  mf.Set("dm.rtree_size", ds.dm->meta().rtree_size);
  mf.Set("pm.heap_first", static_cast<int64_t>(ds.pm->meta().heap_first));
  mf.Set("pm.quadtree_root",
         static_cast<int64_t>(ds.pm->meta().quadtree_root));
  mf.Set("pm.quadtree_size", ds.pm->meta().quadtree_size);
  mf.Set("pm.btree_root", static_cast<int64_t>(ds.pm->meta().btree_root));
  mf.Set("pm.btree_size", ds.pm->meta().btree_size);
  mf.Set("pm.pm_root", ds.pm->meta().pm_root);
  mf.Set("hdov.heap_first",
         static_cast<int64_t>(ds.hdov->meta().heap_first));
  mf.Set("hdov.root_record",
         static_cast<uint64_t>(ds.hdov->meta().root_record));
  mf.Set("hdov.num_nodes", ds.hdov->meta().num_nodes);
  mf.Set("conn.avg_similar", ds.conn_stats.avg_similar_lod);
  mf.Set("conn.max_similar", ds.conn_stats.max_similar_lod);
  mf.Set("conn.avg_total", ds.conn_stats.avg_total_connections);
  mf.Set("conn.sampled", ds.conn_stats.sampled_nodes);
  mf.Set("lodq.count", static_cast<int64_t>(ds.lod_quantiles.size()));
  for (size_t i = 0; i < ds.lod_quantiles.size(); ++i) {
    const std::string p = "lodq." + std::to_string(i);
    mf.Set(p + ".f", ds.lod_quantiles[i].first);
    mf.Set(p + ".e", ds.lod_quantiles[i].second);
  }
  DM_RETURN_NOT_OK(mf.Save(MetaPath(dir, spec)));

  DM_RETURN_NOT_OK(ds.dm_env->FlushAll());
  DM_RETURN_NOT_OK(ds.pm_env->FlushAll());
  DM_RETURN_NOT_OK(ds.hdov_env->FlushAll());
  ds.dm_env->ResetStats();
  ds.pm_env->ResetStats();
  ds.hdov_env->ResetStats();
  return ds;
}

}  // namespace dm
