#ifndef DIRECTMESH_WORKLOAD_BENCH_CONTEXT_H_
#define DIRECTMESH_WORKLOAD_BENCH_CONTEXT_H_

#include <string>
#include <vector>

#include "workload/dataset.h"

namespace dm {

/// The competing methods of the paper's evaluation.
enum class Method { kDmSingleBase, kDmMultiBase, kPm, kHdov };

const char* MethodName(Method m);

/// Average query measurements over the sampled ROI locations.
struct BenchPoint {
  double x = 0.0;  // the swept parameter (ROI %, LOD %, angle %)
  double disk_accesses = 0.0;
  double nodes_fetched = 0.0;
  double cpu_millis = 0.0;
  double vertices = 0.0;
};

/// Shared harness of all figure benches: owns the three databases of a
/// dataset and runs cold-cache queries the way the paper does ("the
/// database and system buffer is flushed before each test"; results
/// are "the average value of creating the same mesh at 20
/// randomly-selected locations").
class BenchContext {
 public:
  static Result<BenchContext> Create(const std::string& dir,
                                     const DatasetSpec& spec,
                                     const DbOptions& options = {});

  const BuiltDataset& dataset() const { return ds_; }
  BuiltDataset& mutable_dataset() { return ds_; }

  /// Square ROIs covering `area_fraction` of the terrain at
  /// `locations` deterministic random positions.
  std::vector<Rect> SampleRois(double area_fraction, int locations = 20,
                               uint64_t seed = 7) const;

  /// Viewpoint-independent query, cold cache.
  Result<QueryStats> RunUniform(Method m, const Rect& roi, double e);

  /// Viewpoint-dependent query, cold cache. The viewer stands at the
  /// center of the ROI's near (e_min) edge.
  Result<QueryStats> RunView(Method m, const ViewQuery& q);

  /// Averages a query over ROIs; `run` maps an ROI to stats.
  template <typename Fn>
  Result<BenchPoint> Average(const std::vector<Rect>& rois, const Fn& run) {
    BenchPoint p;
    for (const Rect& roi : rois) {
      auto stats_or = run(roi);
      if (!stats_or.ok()) return stats_or.status();
      const QueryStats& s = stats_or.value();
      p.disk_accesses += static_cast<double>(s.disk_accesses);
      p.nodes_fetched += static_cast<double>(s.nodes_fetched);
      p.cpu_millis += s.cpu_millis;
    }
    const double n = static_cast<double>(rois.size());
    p.disk_accesses /= n;
    p.nodes_fetched /= n;
    p.cpu_millis /= n;
    return p;
  }

 private:
  explicit BenchContext(BuiltDataset ds) : ds_(std::move(ds)) {}

  Status FlushAll();

  BuiltDataset ds_;
};

/// Default cache directory for bench datasets (honours DM_DATA_DIR,
/// falls back to "./dm_bench_data"); created if missing.
std::string BenchDataDir();

}  // namespace dm

#endif  // DIRECTMESH_WORKLOAD_BENCH_CONTEXT_H_
