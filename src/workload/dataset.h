#ifndef DIRECTMESH_WORKLOAD_DATASET_H_
#define DIRECTMESH_WORKLOAD_DATASET_H_

#include <memory>
#include <optional>
#include <string>

#include "baseline/hdov/hdov_tree.h"
#include "baseline/pmdb/pmdb_store.h"
#include "common/status.h"
#include "dm/connectivity.h"
#include "dm/dm_store.h"
#include "storage/db_env.h"

namespace dm {

/// Specification of a benchmark dataset. The two paper datasets map to
///   small : fractal DEM  (stand-in for the 2M-point mining dataset)
///   crater: caldera DEM  (stand-in for the 17M-point Crater Lake DEM)
/// scaled by `side` (side x side grid points).
struct DatasetSpec {
  std::string name = "small";
  int side = 257;
  uint64_t seed = 42;
  bool crater = false;

  int64_t num_points() const {
    return static_cast<int64_t>(side) * side;
  }
};

/// Returns the spec for a paper dataset at the bench scale. `side` can
/// be overridden with the environment variables DM_SMALL_SIDE /
/// DM_CRATER_SIDE (e.g. set 1449 / 4097 to approximate the paper's
/// full 2M / 17M points).
DatasetSpec SmallDatasetSpec();
DatasetSpec CraterDatasetSpec();

/// A fully built (or reopened) dataset: one database file per method,
/// as three independently tuned systems would have, plus the shared
/// catalog numbers the benches need.
struct BuiltDataset {
  DatasetSpec spec;
  std::unique_ptr<DbEnv> dm_env;
  std::unique_ptr<DbEnv> pm_env;
  std::unique_ptr<DbEnv> hdov_env;
  std::optional<DmStore> dm;
  std::optional<PmDbStore> pm;
  std::optional<HdovTree> hdov;

  double max_lod = 0.0;
  double mean_lod = 0.0;
  Rect bounds;
  int64_t num_leaves = 0;
  int64_t num_nodes = 0;
  ConnectivityStats conn_stats;

  /// Catalog of LOD quantiles: (fraction of original points kept by
  /// the uniform cut, the LOD value e achieving it), fractions
  /// descending from 1.0. QEM errors span many orders of magnitude, so
  /// sweeping e as a naive percentage of the maximum degenerates; the
  /// benches sweep these resolution fractions instead and report the
  /// corresponding e (see EXPERIMENTS.md).
  std::vector<std::pair<double, double>> lod_quantiles;

  /// LOD value whose uniform cut keeps about `frac` of the original
  /// points (log-linear interpolation of the catalog).
  double LodForCutFraction(double frac) const;
};

/// Builds the dataset under `dir` (creating DEM -> mesh -> QEM -> PM
/// -> the three databases), or reopens it when a matching build is
/// already cached there. Deterministic: same spec => same files and
/// the same disk-access counts, at any `build_threads` (<= 0 means one
/// per hardware core) — the parallel build stages are bit-reproducible
/// by construction.
Result<BuiltDataset> BuildOrLoadDataset(const std::string& dir,
                                        const DatasetSpec& spec,
                                        const DbOptions& options = {},
                                        int build_threads = 1);

/// Deletes a cached build (used by ablations that vary page size).
void DropDatasetCache(const std::string& dir, const DatasetSpec& spec);

}  // namespace dm

#endif  // DIRECTMESH_WORKLOAD_DATASET_H_
