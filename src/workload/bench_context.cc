#include "workload/bench_context.h"

#include <cmath>
#include <cstdlib>
#include <sys/stat.h>

#include "baseline/pmdb/pmdb_query.h"
#include "common/rng.h"
#include "dm/dm_query.h"

namespace dm {

const char* MethodName(Method m) {
  switch (m) {
    case Method::kDmSingleBase:
      return "DM-SB";
    case Method::kDmMultiBase:
      return "DM-MB";
    case Method::kPm:
      return "PM";
    case Method::kHdov:
      return "HDoV";
  }
  return "?";
}

std::string BenchDataDir() {
  const char* env = std::getenv("DM_DATA_DIR");
  const std::string dir = env != nullptr ? env : "./dm_bench_data";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

Result<BenchContext> BenchContext::Create(const std::string& dir,
                                          const DatasetSpec& spec,
                                          const DbOptions& options) {
  DM_ASSIGN_OR_RETURN(BuiltDataset ds,
                      BuildOrLoadDataset(dir, spec, options));
  return BenchContext(std::move(ds));
}

std::vector<Rect> BenchContext::SampleRois(double area_fraction,
                                           int locations,
                                           uint64_t seed) const {
  const Rect& b = ds_.bounds;
  const double side =
      std::sqrt(area_fraction * b.Area());
  Rng rng(seed ^ (ds_.spec.seed * 0x9e3779b97f4a7c15ULL));
  std::vector<Rect> rois;
  rois.reserve(static_cast<size_t>(locations));
  for (int i = 0; i < locations; ++i) {
    const double x = rng.Uniform(b.lo_x, std::max(b.lo_x, b.hi_x - side));
    const double y = rng.Uniform(b.lo_y, std::max(b.lo_y, b.hi_y - side));
    rois.push_back(Rect::Of(x, y, std::min(x + side, b.hi_x),
                            std::min(y + side, b.hi_y)));
  }
  return rois;
}

Status BenchContext::FlushAll() {
  DM_RETURN_NOT_OK(ds_.dm_env->FlushAll());
  DM_RETURN_NOT_OK(ds_.pm_env->FlushAll());
  DM_RETURN_NOT_OK(ds_.hdov_env->FlushAll());
  return Status::OK();
}

Result<QueryStats> BenchContext::RunUniform(Method m, const Rect& roi,
                                            double e) {
  DM_RETURN_NOT_OK(FlushAll());
  switch (m) {
    case Method::kDmSingleBase:
    case Method::kDmMultiBase: {
      DmQueryProcessor proc(&*ds_.dm);
      DM_ASSIGN_OR_RETURN(DmQueryResult r, proc.ViewpointIndependent(roi, e));
      return r.stats;
    }
    case Method::kPm: {
      PmQueryProcessor proc(&*ds_.pm);
      DM_ASSIGN_OR_RETURN(PmQueryResult r, proc.Uniform(roi, e));
      return r.stats;
    }
    case Method::kHdov: {
      DM_ASSIGN_OR_RETURN(DmQueryResult r, ds_.hdov->Uniform(roi, e));
      return r.stats;
    }
  }
  return Status::InvalidArgument("unknown method");
}

Result<QueryStats> BenchContext::RunView(Method m, const ViewQuery& q) {
  DM_RETURN_NOT_OK(FlushAll());
  switch (m) {
    case Method::kDmSingleBase: {
      DmQueryProcessor proc(&*ds_.dm);
      DM_ASSIGN_OR_RETURN(DmQueryResult r, proc.SingleBase(q));
      return r.stats;
    }
    case Method::kDmMultiBase: {
      DmQueryProcessor proc(&*ds_.dm);
      DM_ASSIGN_OR_RETURN(DmQueryResult r, proc.MultiBase(q));
      return r.stats;
    }
    case Method::kPm: {
      PmQueryProcessor proc(&*ds_.pm);
      DM_ASSIGN_OR_RETURN(PmQueryResult r, proc.ViewDependent(q));
      return r.stats;
    }
    case Method::kHdov: {
      // Viewer at the center of the near (fine-LOD) edge of the ROI.
      Point2 viewer;
      if (q.gradient_along_y) {
        viewer = Point2{(q.roi.lo_x + q.roi.hi_x) / 2, q.roi.lo_y};
      } else {
        viewer = Point2{q.roi.lo_x, (q.roi.lo_y + q.roi.hi_y) / 2};
      }
      DM_ASSIGN_OR_RETURN(DmQueryResult r,
                          ds_.hdov->ViewDependent(q, viewer));
      return r.stats;
    }
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace dm
