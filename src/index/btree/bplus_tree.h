#ifndef DIRECTMESH_INDEX_BTREE_BPLUS_TREE_H_
#define DIRECTMESH_INDEX_BTREE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "common/status.h"
#include "storage/db_env.h"
#include "storage/page.h"

namespace dm {

/// Disk-based B+-tree mapping int64 keys to uint64 payloads (record
/// ids). The paper creates "B+-tree indexes ... wherever necessary for
/// all the tables used"; here they back the ID -> record lookups that
/// dominate the PM baseline's ancestor fetches.
///
/// Keys are unique; Insert overwrites an existing key's value. The
/// tree is built once per dataset and then read-only, so node merging
/// on delete is intentionally not implemented.
///
/// Concurrency: after the build the tree is frozen; the const read
/// paths (Get, range scans) are safe from many threads through the
/// thread-safe buffer pool. `Insert` is single-writer.
class BPlusTree {
 public:
  /// Creates an empty tree in `env`.
  static Result<BPlusTree> Create(DbEnv* env);

  /// Opens an existing tree rooted at `root`.
  static BPlusTree Open(DbEnv* env, PageId root, int64_t size);

  PageId root() const { return root_; }
  int64_t size() const { return size_; }
  /// Height in levels (1 = root is a leaf); derived during operations.
  int height() const { return height_; }

  Status Insert(int64_t key, uint64_t value);

  /// Point lookup.
  Result<std::optional<uint64_t>> Get(int64_t key) const;

  /// In-order scan of keys in [lo, hi]; callback may return false to
  /// stop early.
  Status Scan(int64_t lo, int64_t hi,
              const std::function<bool(int64_t, uint64_t)>& callback) const;

 private:
  BPlusTree(DbEnv* env, PageId root) : env_(env), root_(root) {}

  struct SplitResult {
    bool split = false;
    int64_t sep_key = 0;
    PageId right = kInvalidPage;
  };

  Result<SplitResult> InsertRecursive(PageId node, int64_t key,
                                      uint64_t value);

  DbEnv* env_;
  PageId root_;
  int64_t size_ = 0;
  int height_ = 1;
};

}  // namespace dm

#endif  // DIRECTMESH_INDEX_BTREE_BPLUS_TREE_H_
