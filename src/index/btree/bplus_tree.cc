#include "index/btree/bplus_tree.h"

#include <cstring>
#include <vector>

#include "common/check.h"

namespace dm {

namespace {

// Node layout.
//   [node_type u8][pad u8][count u16]
//   leaf:     [next_leaf u32] then count * (key i64, value u64)
//   internal: [pad u32] [child0 u32] then count * (key i64, child u32)
// Keys in an internal node separate children: child i holds keys
// < key[i]; child count holds keys >= key[count-1].
constexpr uint32_t kTypeOff = 0;
constexpr uint32_t kCountOff = 2;
constexpr uint32_t kNextLeafOff = 4;   // leaves
constexpr uint32_t kChild0Off = 8;     // internals
constexpr uint32_t kEntriesOff = 12;   // internals: after child0
constexpr uint32_t kLeafEntriesOff = 8;
constexpr uint8_t kLeaf = 1;
constexpr uint8_t kInternal = 0;
constexpr uint32_t kLeafEntrySize = 16;      // i64 + u64
constexpr uint32_t kInternalEntrySize = 12;  // i64 + u32

uint16_t LoadU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
int64_t LoadI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
void StoreU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void StoreI64(uint8_t* p, int64_t v) { std::memcpy(p, &v, 8); }
void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }

uint32_t LeafCapacity(uint32_t page_size) {
  return (page_size - kLeafEntriesOff) / kLeafEntrySize;
}
uint32_t InternalCapacity(uint32_t page_size) {
  return (page_size - kEntriesOff) / kInternalEntrySize;
}

uint8_t* LeafEntry(uint8_t* page, uint32_t i) {
  return page + kLeafEntriesOff + i * kLeafEntrySize;
}
const uint8_t* LeafEntry(const uint8_t* page, uint32_t i) {
  return page + kLeafEntriesOff + i * kLeafEntrySize;
}
uint8_t* InternalEntry(uint8_t* page, uint32_t i) {
  return page + kEntriesOff + i * kInternalEntrySize;
}
const uint8_t* InternalEntry(const uint8_t* page, uint32_t i) {
  return page + kEntriesOff + i * kInternalEntrySize;
}

// First index i in the leaf with key[i] >= key.
uint32_t LeafLowerBound(const uint8_t* page, uint32_t count, int64_t key) {
  uint32_t lo = 0;
  uint32_t hi = count;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (LoadI64(LeafEntry(page, mid)) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot to descend into for `key`: number of separators <= key.
uint32_t InternalChildIndex(const uint8_t* page, uint32_t count,
                            int64_t key) {
  uint32_t lo = 0;
  uint32_t hi = count;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (LoadI64(InternalEntry(page, mid)) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId InternalChild(const uint8_t* page, uint32_t idx) {
  if (idx == 0) return LoadU32(page + kChild0Off);
  return LoadU32(InternalEntry(page, idx - 1) + 8);
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(DbEnv* env) {
  DM_ASSIGN_OR_RETURN(PageGuard page, env->pool().NewPage());
  page.data()[kTypeOff] = kLeaf;
  StoreU16(page.data() + kCountOff, 0);
  StoreU32(page.data() + kNextLeafOff, kInvalidPage);
  page.MarkDirty();
  return BPlusTree(env, page.id());
}

BPlusTree BPlusTree::Open(DbEnv* env, PageId root, int64_t size) {
  BPlusTree t(env, root);
  t.size_ = size;
  return t;
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRecursive(PageId node,
                                                          int64_t key,
                                                          uint64_t value) {
  DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(node));
  const uint32_t page_size = env_->page_size();
  uint16_t count = LoadU16(page.data() + kCountOff);
  const uint8_t type = page.data()[kTypeOff];
  DM_ENSURE(type == kLeaf || type == kInternal,
            Status::Corruption("b+tree page " + std::to_string(node) +
                               " has unknown node type"));
  DM_ENSURE(count <= (type == kLeaf ? LeafCapacity(page_size)
                                    : InternalCapacity(page_size)),
            Status::Corruption("b+tree page " + std::to_string(node) +
                               " entry count exceeds capacity"));

  if (type == kLeaf) {
    const uint32_t pos = LeafLowerBound(page.data(), count, key);
    if (pos < count && LoadI64(LeafEntry(page.data(), pos)) == key) {
      StoreU64(LeafEntry(page.data(), pos) + 8, value);  // overwrite
      page.MarkDirty();
      return SplitResult{};
    }
    if (count < LeafCapacity(page_size)) {
      std::memmove(LeafEntry(page.data(), pos + 1),
                   LeafEntry(page.data(), pos),
                   (count - pos) * kLeafEntrySize);
      StoreI64(LeafEntry(page.data(), pos), key);
      StoreU64(LeafEntry(page.data(), pos) + 8, value);
      StoreU16(page.data() + kCountOff, static_cast<uint16_t>(count + 1));
      page.MarkDirty();
      ++size_;
      return SplitResult{};
    }
    // Split the leaf: left keeps half, right takes the rest.
    DM_ASSIGN_OR_RETURN(PageGuard right, env_->pool().NewPage());
    right.data()[kTypeOff] = kLeaf;
    const uint32_t left_n = count / 2;
    const uint32_t right_n = count - left_n;
    std::memcpy(LeafEntry(right.data(), 0), LeafEntry(page.data(), left_n),
                right_n * kLeafEntrySize);
    StoreU16(right.data() + kCountOff, static_cast<uint16_t>(right_n));
    StoreU32(right.data() + kNextLeafOff,
             LoadU32(page.data() + kNextLeafOff));
    StoreU16(page.data() + kCountOff, static_cast<uint16_t>(left_n));
    StoreU32(page.data() + kNextLeafOff, right.id());
    right.MarkDirty();
    page.MarkDirty();
    // Insert into the appropriate half.
    const int64_t sep = LoadI64(LeafEntry(right.data(), 0));
    PageGuard* target = key < sep ? &page : &right;
    uint16_t tcount = LoadU16(target->data() + kCountOff);
    const uint32_t tpos = LeafLowerBound(target->data(), tcount, key);
    std::memmove(LeafEntry(target->data(), tpos + 1),
                 LeafEntry(target->data(), tpos),
                 (tcount - tpos) * kLeafEntrySize);
    StoreI64(LeafEntry(target->data(), tpos), key);
    StoreU64(LeafEntry(target->data(), tpos) + 8, value);
    StoreU16(target->data() + kCountOff, static_cast<uint16_t>(tcount + 1));
    target->MarkDirty();
    ++size_;
    SplitResult res;
    res.split = true;
    res.sep_key = LoadI64(LeafEntry(right.data(), 0));
    res.right = right.id();
    return res;
  }

  // Internal node.
  const uint32_t idx = InternalChildIndex(page.data(), count, key);
  const PageId child = InternalChild(page.data(), idx);
  // Release the pin across the recursive call to bound pin depth? Keep
  // it: tree height is tiny (<6) and pinned path splits are simpler.
  DM_ASSIGN_OR_RETURN(SplitResult child_split,
                      InsertRecursive(child, key, value));
  if (!child_split.split) return SplitResult{};

  // Insert (sep_key, right) after slot idx.
  if (count < InternalCapacity(page_size)) {
    std::memmove(InternalEntry(page.data(), idx + 1),
                 InternalEntry(page.data(), idx),
                 (count - idx) * kInternalEntrySize);
    StoreI64(InternalEntry(page.data(), idx), child_split.sep_key);
    StoreU32(InternalEntry(page.data(), idx) + 8, child_split.right);
    StoreU16(page.data() + kCountOff, static_cast<uint16_t>(count + 1));
    page.MarkDirty();
    return SplitResult{};
  }

  // Split the internal node. Gather entries into a scratch vector,
  // insert, redistribute around the median.
  struct Entry {
    int64_t key;
    PageId child;
  };
  std::vector<Entry> entries;
  entries.reserve(count + 1u);
  for (uint32_t i = 0; i < count; ++i) {
    entries.push_back(Entry{LoadI64(InternalEntry(page.data(), i)),
                            LoadU32(InternalEntry(page.data(), i) + 8)});
  }
  entries.insert(entries.begin() + idx,
                 Entry{child_split.sep_key, child_split.right});
  const PageId child0 = LoadU32(page.data() + kChild0Off);

  const uint32_t total = static_cast<uint32_t>(entries.size());
  const uint32_t mid = total / 2;  // entries[mid] moves up
  DM_ASSIGN_OR_RETURN(PageGuard right, env_->pool().NewPage());
  right.data()[kTypeOff] = kInternal;
  StoreU32(right.data() + kChild0Off, entries[mid].child);
  uint32_t rn = 0;
  for (uint32_t i = mid + 1; i < total; ++i, ++rn) {
    StoreI64(InternalEntry(right.data(), rn), entries[i].key);
    StoreU32(InternalEntry(right.data(), rn) + 8, entries[i].child);
  }
  StoreU16(right.data() + kCountOff, static_cast<uint16_t>(rn));
  right.MarkDirty();

  StoreU32(page.data() + kChild0Off, child0);
  for (uint32_t i = 0; i < mid; ++i) {
    StoreI64(InternalEntry(page.data(), i), entries[i].key);
    StoreU32(InternalEntry(page.data(), i) + 8, entries[i].child);
  }
  StoreU16(page.data() + kCountOff, static_cast<uint16_t>(mid));
  page.MarkDirty();

  SplitResult res;
  res.split = true;
  res.sep_key = entries[mid].key;
  res.right = right.id();
  return res;
}

Status BPlusTree::Insert(int64_t key, uint64_t value) {
  DM_ASSIGN_OR_RETURN(SplitResult split, InsertRecursive(root_, key, value));
  if (!split.split) return Status::OK();
  // Grow a new root.
  DM_ASSIGN_OR_RETURN(PageGuard new_root, env_->pool().NewPage());
  new_root.data()[kTypeOff] = kInternal;
  StoreU16(new_root.data() + kCountOff, 1);
  StoreU32(new_root.data() + kChild0Off, root_);
  StoreI64(InternalEntry(new_root.data(), 0), split.sep_key);
  StoreU32(InternalEntry(new_root.data(), 0) + 8, split.right);
  new_root.MarkDirty();
  root_ = new_root.id();
  ++height_;
  return Status::OK();
}

Result<std::optional<uint64_t>> BPlusTree::Get(int64_t key) const {
  PageId node = root_;
  while (true) {
    DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(node));
    const uint16_t count = LoadU16(page.data() + kCountOff);
    DM_ENSURE(count <= env_->page_size() / kInternalEntrySize,
              Status::Corruption("b+tree page " + std::to_string(node) +
                                 " entry count exceeds page capacity"));
    if (page.data()[kTypeOff] == kLeaf) {
      const uint32_t pos = LeafLowerBound(page.data(), count, key);
      if (pos < count && LoadI64(LeafEntry(page.data(), pos)) == key) {
        return std::optional<uint64_t>(
            LoadU64(LeafEntry(page.data(), pos) + 8));
      }
      return std::optional<uint64_t>();
    }
    node = InternalChild(page.data(),
                         InternalChildIndex(page.data(), count, key));
  }
}

Status BPlusTree::Scan(
    int64_t lo, int64_t hi,
    const std::function<bool(int64_t, uint64_t)>& callback) const {
  // Descend to the leaf containing lo.
  PageId node = root_;
  while (true) {
    DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(node));
    const uint16_t count = LoadU16(page.data() + kCountOff);
    if (page.data()[kTypeOff] == kLeaf) break;
    node = InternalChild(page.data(),
                         InternalChildIndex(page.data(), count, lo));
  }
  // Walk the leaf chain.
  while (node != kInvalidPage) {
    DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(node));
    const uint16_t count = LoadU16(page.data() + kCountOff);
    for (uint32_t i = LeafLowerBound(page.data(), count, lo); i < count;
         ++i) {
      const int64_t k = LoadI64(LeafEntry(page.data(), i));
      if (k > hi) return Status::OK();
      if (!callback(k, LoadU64(LeafEntry(page.data(), i) + 8))) {
        return Status::OK();
      }
    }
    node = LoadU32(page.data() + kNextLeafOff);
  }
  return Status::OK();
}

}  // namespace dm
