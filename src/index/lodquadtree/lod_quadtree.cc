#include "index/lodquadtree/lod_quadtree.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <vector>

#include "common/check.h"

namespace dm {

namespace {

// Node page layout. Every node stores its region box explicitly.
//   common: [type u8][split_dim u8][count u16][pad u32]
//           [region box 6 x f64 = 48 bytes]
//   leaf (type 1): [next_overflow u32][pad u32]
//                  then count * (x f64, y f64, e f64, payload u64)
//   internal (type 0): split_dim 0 => 4 children (x, y quadrants,
//                  order: SW, SE, NW, NE around the region center);
//                  split_dim 1 => 2 children (e <= split_e, e > split_e)
//                  [split_e f64][children u32 x 4]
constexpr uint32_t kTypeOff = 0;
constexpr uint32_t kSplitDimOff = 1;
constexpr uint32_t kCountOff = 2;
constexpr uint32_t kBoxOff = 8;
constexpr uint32_t kLeafNextOff = 56;
constexpr uint32_t kLeafEntriesOff = 64;
constexpr uint32_t kSplitEOff = 56;
constexpr uint32_t kChildrenOff = 64;
constexpr uint32_t kInternalEnd = 80;
constexpr uint8_t kLeaf = 1;
constexpr uint8_t kInternal = 0;
constexpr uint32_t kPointSize = 32;

struct PointEntry {
  double x, y, e;
  uint64_t payload;
};

void StoreBox(uint8_t* page, const Box& box) {
  std::memcpy(page + kBoxOff, box.lo.data(), 24);
  std::memcpy(page + kBoxOff + 24, box.hi.data(), 24);
}
Box LoadBox(const uint8_t* page) {
  Box box;
  std::memcpy(box.lo.data(), page + kBoxOff, 24);
  std::memcpy(box.hi.data(), page + kBoxOff + 24, 24);
  return box;
}
uint16_t LoadCount(const uint8_t* page) {
  uint16_t c;
  std::memcpy(&c, page + kCountOff, 2);
  return c;
}
void StoreCount(uint8_t* page, uint16_t c) {
  std::memcpy(page + kCountOff, &c, 2);
}
PointEntry LoadPoint(const uint8_t* page, uint32_t i) {
  PointEntry p;
  std::memcpy(&p, page + kLeafEntriesOff + i * kPointSize, kPointSize);
  return p;
}
void StorePoint(uint8_t* page, uint32_t i, const PointEntry& p) {
  std::memcpy(page + kLeafEntriesOff + i * kPointSize, &p, kPointSize);
}

}  // namespace

uint32_t LodQuadtree::LeafCapacity() const {
  return (env_->page_size() - kLeafEntriesOff) / kPointSize;
}

Result<LodQuadtree> LodQuadtree::Create(DbEnv* env, const Rect& bounds,
                                        double e_max) {
  DM_ASSIGN_OR_RETURN(PageGuard page, env->pool().NewPage());
  page.data()[kTypeOff] = kLeaf;
  StoreCount(page.data(), 0);
  StoreBox(page.data(), Box::FromRect(bounds, 0.0, e_max));
  uint32_t invalid = kInvalidPage;
  std::memcpy(page.data() + kLeafNextOff, &invalid, 4);
  page.MarkDirty();
  return LodQuadtree(env, page.id());
}

LodQuadtree LodQuadtree::Open(DbEnv* env, PageId root, int64_t size) {
  LodQuadtree t(env, root);
  t.size_ = size;
  return t;
}

Status LodQuadtree::Insert(double x, double y, double e, uint64_t payload) {
  DM_RETURN_NOT_OK(InsertInto(root_, x, y, e, payload));
  ++size_;
  return Status::OK();
}

Status LodQuadtree::InsertInto(PageId node, double x, double y, double e,
                               uint64_t payload) {
  while (true) {
    DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(node));
    if (page.data()[kTypeOff] == kInternal) {
      const Box region = LoadBox(page.data());
      const uint8_t dim = page.data()[kSplitDimOff];
      uint32_t child_idx;
      if (dim == 0) {
        const double cx = (region.lo[0] + region.hi[0]) / 2;
        const double cy = (region.lo[1] + region.hi[1]) / 2;
        child_idx = (x >= cx ? 1u : 0u) | (y >= cy ? 2u : 0u);
      } else {
        double split_e;
        std::memcpy(&split_e, page.data() + kSplitEOff, 8);
        child_idx = e > split_e ? 1u : 0u;
      }
      PageId child;
      std::memcpy(&child, page.data() + kChildrenOff + child_idx * 4, 4);
      node = child;
      continue;
    }
    // Leaf: append here or in its overflow chain.
    const uint32_t cap = LeafCapacity();
    uint16_t count = LoadCount(page.data());
    if (count < cap) {
      StorePoint(page.data(), count, PointEntry{x, y, e, payload});
      StoreCount(page.data(), static_cast<uint16_t>(count + 1));
      page.MarkDirty();
      return Status::OK();
    }
    // Full. Try splitting; SplitLeaf falls back to an overflow page
    // when the points cannot be separated.
    const PageId leaf_id = page.id();
    page.Release();
    DM_RETURN_NOT_OK(SplitLeaf(leaf_id));
    // Retry from this node (now internal, or leaf with free space in
    // the overflow chain head swap).
  }
}

Status LodQuadtree::SplitLeaf(PageId leaf_id) {
  DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(leaf_id));
  const Box region = LoadBox(page.data());
  // Gather the head page's points plus any overflow chain (a chain
  // forms when earlier contents were inseparable; a later split must
  // redistribute those points too).
  std::vector<PointEntry> points;
  {
    const uint16_t head_count = LoadCount(page.data());
    points.reserve(head_count);
    for (uint32_t i = 0; i < head_count; ++i) {
      points.push_back(LoadPoint(page.data(), i));
    }
    PageId next;
    std::memcpy(&next, page.data() + kLeafNextOff, 4);
    while (next != kInvalidPage) {
      DM_ASSIGN_OR_RETURN(PageGuard ov, env_->pool().Fetch(next));
      const uint16_t c = LoadCount(ov.data());
      for (uint32_t i = 0; i < c; ++i) {
        points.push_back(LoadPoint(ov.data(), i));
      }
      std::memcpy(&next, ov.data() + kLeafNextOff, 4);
    }
  }

  // Choose the split dimension adaptively: compare the spread of the
  // points in (x, y) vs e, each normalized by the region extent.
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  double min_e = points[0].e, max_e = points[0].e;
  for (const auto& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
    min_e = std::min(min_e, p.e);
    max_e = std::max(max_e, p.e);
  }
  const double ext_xy =
      std::max(region.Extent(0), region.Extent(1)) + 1e-300;
  const double ext_e = region.Extent(2) + 1e-300;
  const double spread_xy =
      std::max(max_x - min_x, max_y - min_y) / ext_xy;
  const double spread_e = (max_e - min_e) / ext_e;

  const double cx = (region.lo[0] + region.hi[0]) / 2;
  const double cy = (region.lo[1] + region.hi[1]) / 2;

  // Writes `pts` as a chain of leaf pages covering `box`; returns the
  // head page id. Chaining keeps the structure correct even if a
  // child receives more points than one page holds.
  const uint32_t cap = LeafCapacity();
  auto write_leaf_chain =
      [&](const Box& box,
          const std::vector<PointEntry>& pts) -> Result<PageId> {
    PageId head = kInvalidPage;
    PageId prev = kInvalidPage;
    size_t off = 0;
    do {
      DM_ASSIGN_OR_RETURN(PageGuard p, env_->pool().NewPage());
      p.data()[kTypeOff] = kLeaf;
      StoreBox(p.data(), box);
      const uint32_t n =
          static_cast<uint32_t>(std::min<size_t>(cap, pts.size() - off));
      for (uint32_t i = 0; i < n; ++i) {
        StorePoint(p.data(), i, pts[off + i]);
      }
      StoreCount(p.data(), static_cast<uint16_t>(n));
      uint32_t invalid = kInvalidPage;
      std::memcpy(p.data() + kLeafNextOff, &invalid, 4);
      p.MarkDirty();
      if (head == kInvalidPage) {
        head = p.id();
      } else {
        DM_ASSIGN_OR_RETURN(PageGuard pp, env_->pool().Fetch(prev));
        const uint32_t id32 = p.id();
        std::memcpy(pp.data() + kLeafNextOff, &id32, 4);
        pp.MarkDirty();
      }
      prev = p.id();
      off += n;
    } while (off < pts.size());
    return head;
  };

  bool split_e_dim = spread_e > spread_xy;
  double split_e_value = 0.0;
  if (split_e_dim) {
    // Median split on e (adaptive to the heavy skew of LOD values).
    std::vector<double> es;
    es.reserve(points.size());
    for (const auto& p : points) es.push_back(p.e);
    std::nth_element(es.begin(), es.begin() + es.size() / 2, es.end());
    split_e_value = es[es.size() / 2];
    // Degenerate medians (all e above/below) cannot separate.
    size_t lo_n = 0;
    for (const auto& p : points) lo_n += p.e <= split_e_value ? 1 : 0;
    if (lo_n == 0 || lo_n == points.size()) split_e_dim = false;
  }
  if (!split_e_dim) {
    // Check the quad split separates at least one point.
    bool separable = false;
    const uint32_t q0 =
        (points[0].x >= cx ? 1u : 0u) | (points[0].y >= cy ? 2u : 0u);
    for (const auto& p : points) {
      const uint32_t q = (p.x >= cx ? 1u : 0u) | (p.y >= cy ? 2u : 0u);
      if (q != q0) {
        separable = true;
        break;
      }
    }
    if (!separable && spread_e > 0) {
      // Points identical in (x, y); force an e median split if it can
      // separate (recheck).
      std::vector<double> es;
      for (const auto& p : points) es.push_back(p.e);
      std::nth_element(es.begin(), es.begin() + es.size() / 2, es.end());
      split_e_value = es[es.size() / 2];
      size_t lo_n = 0;
      for (const auto& p : points) lo_n += p.e <= split_e_value ? 1 : 0;
      if (lo_n > 0 && lo_n < points.size()) {
        split_e_dim = true;
        separable = true;
      }
    }
    if (!separable && !split_e_dim) {
      // All points coincide in every dimension: chain an overflow page.
      // The old page becomes the overflow and a fresh head replaces it
      // in place, keeping the parent pointer stable.
      DM_ASSIGN_OR_RETURN(PageGuard overflow, env_->pool().NewPage());
      std::memcpy(overflow.data(), page.data(), env_->page_size());
      uint8_t* d = page.data();
      StoreCount(d, 0);
      const uint32_t ov = overflow.id();
      std::memcpy(d + kLeafNextOff, &ov, 4);
      overflow.MarkDirty();
      page.MarkDirty();
      return Status::OK();
    }
  }

  // Build children and convert this page to an internal node. (Old
  // overflow pages of this leaf become unreferenced; the file is
  // build-once, so the space is not reclaimed.)
  PageId children[4] = {kInvalidPage, kInvalidPage, kInvalidPage,
                        kInvalidPage};
  if (split_e_dim) {
    Box lo_box = region;
    lo_box.hi[2] = split_e_value;
    Box hi_box = region;
    hi_box.lo[2] = split_e_value;
    std::vector<PointEntry> lo_pts;
    std::vector<PointEntry> hi_pts;
    for (const auto& p : points) {
      (p.e > split_e_value ? hi_pts : lo_pts).push_back(p);
    }
    DM_ASSIGN_OR_RETURN(children[0], write_leaf_chain(lo_box, lo_pts));
    DM_ASSIGN_OR_RETURN(children[1], write_leaf_chain(hi_box, hi_pts));
  } else {
    std::vector<PointEntry> quads[4];
    for (const auto& p : points) {
      const uint32_t q = (p.x >= cx ? 1u : 0u) | (p.y >= cy ? 2u : 0u);
      quads[q].push_back(p);
    }
    for (uint32_t q = 0; q < 4; ++q) {
      Box b = region;
      if (q & 1) {
        b.lo[0] = cx;
      } else {
        b.hi[0] = cx;
      }
      if (q & 2) {
        b.lo[1] = cy;
      } else {
        b.hi[1] = cy;
      }
      DM_ASSIGN_OR_RETURN(children[q], write_leaf_chain(b, quads[q]));
    }
  }

  uint8_t* d = page.data();
  d[kTypeOff] = kInternal;
  d[kSplitDimOff] = split_e_dim ? 1 : 0;
  StoreCount(d, split_e_dim ? 2 : 4);
  if (split_e_dim) std::memcpy(d + kSplitEOff, &split_e_value, 8);
  std::memcpy(d + kChildrenOff, children, 16);
  static_assert(kInternalEnd == kChildrenOff + 16);
  page.MarkDirty();
  return Status::OK();
}

Status LodQuadtree::RangeQuery(const Box& query,
                               std::vector<uint64_t>* out) const {
  return RangeQueryEntries(
      query, [out](double, double, double, uint64_t payload) {
        out->push_back(payload);
        return true;
      });
}

Status LodQuadtree::RangeQueryEntries(
    const Box& query,
    const std::function<bool(double, double, double, uint64_t)>& callback)
    const {
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(id));
    const Box region = LoadBox(page.data());
    if (!region.Intersects(query)) continue;
    if (page.data()[kTypeOff] == kInternal) {
      const uint16_t n = LoadCount(page.data());
      DM_ENSURE(n <= 4, Status::Corruption(
                            "lod-quadtree internal node " + std::to_string(id) +
                            " claims " + std::to_string(n) + " children"));
      for (uint16_t i = 0; i < n; ++i) {
        PageId child;
        std::memcpy(&child, page.data() + kChildrenOff + i * 4, 4);
        stack.push_back(child);
      }
      continue;
    }
    const uint16_t count = LoadCount(page.data());
    DM_ENSURE(count <= LeafCapacity(),
              Status::Corruption("lod-quadtree leaf " + std::to_string(id) +
                                 " entry count exceeds page capacity"));
    for (uint32_t i = 0; i < count; ++i) {
      const PointEntry p = LoadPoint(page.data(), i);
      if (query.Contains(p.x, p.y, p.e)) {
        if (!callback(p.x, p.y, p.e, p.payload)) return Status::OK();
      }
    }
    PageId next;
    std::memcpy(&next, page.data() + kLeafNextOff, 4);
    if (next != kInvalidPage) stack.push_back(next);
  }
  return Status::OK();
}

std::vector<size_t> LodQuadtree::ClusterOrder(
    const std::vector<Point>& points, const Rect& bounds, double e_max,
    uint32_t leaf_capacity) {
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (leaf_capacity == 0) return order;

  // Recursive in-memory mirror of SplitLeaf's adaptive rule, emitting
  // leaves in DFS order (which is the order RangeQuery visits them).
  std::vector<size_t> out;
  out.reserve(points.size());
  const std::function<void(std::vector<size_t>&, const Box&)> recurse =
      [&](std::vector<size_t>& span, const Box& region) {
        if (span.size() <= leaf_capacity) {
          out.insert(out.end(), span.begin(), span.end());
          return;
        }
        double min_x = points[span[0]].x, max_x = min_x;
        double min_y = points[span[0]].y, max_y = min_y;
        double min_e = points[span[0]].e, max_e = min_e;
        for (size_t i : span) {
          min_x = std::min(min_x, points[i].x);
          max_x = std::max(max_x, points[i].x);
          min_y = std::min(min_y, points[i].y);
          max_y = std::max(max_y, points[i].y);
          min_e = std::min(min_e, points[i].e);
          max_e = std::max(max_e, points[i].e);
        }
        const double ext_xy =
            std::max(region.Extent(0), region.Extent(1)) + 1e-300;
        const double ext_e = region.Extent(2) + 1e-300;
        const double spread_xy =
            std::max(max_x - min_x, max_y - min_y) / ext_xy;
        const double spread_e = (max_e - min_e) / ext_e;
        const double cx = (region.lo[0] + region.hi[0]) / 2;
        const double cy = (region.lo[1] + region.hi[1]) / 2;

        bool use_e = spread_e > spread_xy;
        double split_e = 0.0;
        if (use_e) {
          std::vector<double> es;
          es.reserve(span.size());
          for (size_t i : span) es.push_back(points[i].e);
          std::nth_element(es.begin(), es.begin() + es.size() / 2,
                           es.end());
          split_e = es[es.size() / 2];
          size_t lo_n = 0;
          for (size_t i : span) lo_n += points[i].e <= split_e ? 1 : 0;
          if (lo_n == 0 || lo_n == span.size()) use_e = false;
        }
        if (use_e) {
          std::vector<size_t> lo;
          std::vector<size_t> hi;
          for (size_t i : span) {
            (points[i].e > split_e ? hi : lo).push_back(i);
          }
          Box lo_box = region;
          lo_box.hi[2] = split_e;
          Box hi_box = region;
          hi_box.lo[2] = split_e;
          recurse(lo, lo_box);
          recurse(hi, hi_box);
          return;
        }
        std::vector<size_t> quads[4];
        for (size_t i : span) {
          const uint32_t q = (points[i].x >= cx ? 1u : 0u) |
                             (points[i].y >= cy ? 2u : 0u);
          quads[q].push_back(i);
        }
        bool separable = false;
        for (uint32_t q = 0; q < 4; ++q) {
          separable |= !quads[q].empty() && quads[q].size() != span.size();
        }
        if (!separable) {
          // Identical points: emit as one run.
          out.insert(out.end(), span.begin(), span.end());
          return;
        }
        for (uint32_t q = 0; q < 4; ++q) {
          if (quads[q].empty()) continue;
          Box b = region;
          if (q & 1) {
            b.lo[0] = cx;
          } else {
            b.hi[0] = cx;
          }
          if (q & 2) {
            b.lo[1] = cy;
          } else {
            b.hi[1] = cy;
          }
          recurse(quads[q], b);
        }
      };
  recurse(order, Box::FromRect(bounds, 0.0, e_max));
  return out;
}

Status LodQuadtree::CountNodes(int64_t* internal_nodes,
                               int64_t* leaf_nodes) const {
  *internal_nodes = 0;
  *leaf_nodes = 0;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(id));
    if (page.data()[kTypeOff] == kInternal) {
      ++*internal_nodes;
      const uint16_t n = LoadCount(page.data());
      for (uint16_t i = 0; i < n; ++i) {
        PageId child;
        std::memcpy(&child, page.data() + kChildrenOff + i * 4, 4);
        stack.push_back(child);
      }
    } else {
      ++*leaf_nodes;
      PageId next;
      std::memcpy(&next, page.data() + kLeafNextOff, 4);
      if (next != kInvalidPage) stack.push_back(next);
    }
  }
  return Status::OK();
}

}  // namespace dm
