#ifndef DIRECTMESH_INDEX_LODQUADTREE_LOD_QUADTREE_H_
#define DIRECTMESH_INDEX_LODQUADTREE_LOD_QUADTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "storage/db_env.h"
#include "storage/page.h"

namespace dm {

/// Disk-based adaptive 3D quadtree over (x, y, e) points — the
/// LOD-quadtree of Xu (ADC 2003), the index the paper uses for the PM
/// baseline and "reported as having better performance than other
/// spatial indexes for MTM data".
///
/// The LOD dimension is added to the usual 2D quadtree; because points
/// are "more uniformly distributed in the (x, y) space but severely
/// skewed in the LOD dimension", a node that overflows splits either
/// into four (x, y) quadrants at its region center, or into two
/// e-halves at the *median* e of its points — whichever dimension has
/// the larger normalized spread. Internal nodes treat PM points as
/// point data (the structural weakness the paper calls out; the
/// baseline inherits it faithfully).
class LodQuadtree {
 public:
  /// Creates an empty tree covering `bounds` (footprint) x [0, e_max].
  static Result<LodQuadtree> Create(DbEnv* env, const Rect& bounds,
                                    double e_max);

  static LodQuadtree Open(DbEnv* env, PageId root, int64_t size);

  PageId root() const { return root_; }
  int64_t size() const { return size_; }

  /// Inserts point (x, y, e) with an opaque payload.
  Status Insert(double x, double y, double e, uint64_t payload);

  /// Collects payloads of points inside `query` (inclusive bounds).
  Status RangeQuery(const Box& query, std::vector<uint64_t>* out) const;

  /// Streaming variant; callback gets (x, y, e, payload), may return
  /// false to stop.
  Status RangeQueryEntries(
      const Box& query,
      const std::function<bool(double, double, double, uint64_t)>& callback)
      const;

  /// Number of nodes (pages) in the tree, by level histogram.
  Status CountNodes(int64_t* internal_nodes, int64_t* leaf_nodes) const;

  /// A bare (x, y, e) point for ClusterOrder.
  struct Point {
    double x = 0.0;
    double y = 0.0;
    double e = 0.0;
  };

  /// Computes the leaf (DFS) order an adaptive quadtree over these
  /// points would produce, using the same split rule as the disk
  /// structure. Callers clustering their record file with the index
  /// write records in this order, so a quadtree range query touches
  /// consecutive heap pages.
  static std::vector<size_t> ClusterOrder(const std::vector<Point>& points,
                                          const Rect& bounds, double e_max,
                                          uint32_t leaf_capacity);

 private:
  LodQuadtree(DbEnv* env, PageId root) : env_(env), root_(root) {}

  uint32_t LeafCapacity() const;

  Status InsertInto(PageId node, double x, double y, double e,
                    uint64_t payload);
  Status SplitLeaf(PageId leaf);

  DbEnv* env_;
  PageId root_;
  int64_t size_ = 0;
};

}  // namespace dm

#endif  // DIRECTMESH_INDEX_LODQUADTREE_LOD_QUADTREE_H_
