#include "index/rtree/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace dm {

namespace {

// Node page layout: [level u16][count u16][pad u32] then count entries
// of (6 x f64 box, u64 payload) = 56 bytes each.
constexpr uint32_t kLevelOff = 0;
constexpr uint32_t kCountOff = 2;
constexpr uint32_t kEntriesOff = 8;
constexpr uint32_t kEntrySize = 56;

// Fraction of capacity required in every node (R* default 40%), and
// the share of entries removed by forced reinsert (R* default 30%).
constexpr double kMinFill = 0.4;
constexpr double kReinsertShare = 0.3;

double Enlargement(const Box& box, const Box& add) {
  Box u = box;
  u.ExpandToInclude(add);
  return u.Volume() - box.Volume();
}

double OverlapWith(const Box& box, const std::vector<Box>& others,
                   size_t skip) {
  double total = 0.0;
  for (size_t i = 0; i < others.size(); ++i) {
    if (i == skip) continue;
    total += box.Intersection(others[i]).Volume();
  }
  return total;
}

}  // namespace

uint32_t RStarTree::MaxEntries() const {
  // One slot per page is reserved so a node can transiently hold
  // M + 1 entries on disk between the insert that overflows it and
  // the overflow treatment that splits or reinserts.
  return (env_->page_size() - kEntriesOff) / kEntrySize - 1;
}

uint32_t RStarTree::MinEntries() const {
  const uint32_t m = static_cast<uint32_t>(MaxEntries() * kMinFill);
  return std::max(2u, m);
}

uint32_t RStarTree::LeafCapacityFor(uint32_t page_size) {
  return (page_size - kEntriesOff) / kEntrySize - 1;
}

std::vector<size_t> RStarTree::StrOrder(const std::vector<Box>& boxes,
                                        uint32_t leaf_capacity) {
  WorkerPool pool(1);
  return StrOrder(boxes, leaf_capacity, pool);
}

std::vector<size_t> RStarTree::StrOrder(const std::vector<Box>& boxes,
                                        uint32_t leaf_capacity,
                                        WorkerPool& pool) {
  // Sort-Tile-Recursive in 3D: slice by x into vertical slabs, each
  // slab by y into runs, each run by e. Slab counts follow the cube
  // root rule so leaves get near-square extents. Every comparator is a
  // total order (index tie-break), so each sorted range has exactly
  // one answer: the x sort parallelizes as a stable merge sort and the
  // independent slab/run sorts fan out over the pool without changing
  // the permutation.
  const size_t n = boxes.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  if (n == 0 || leaf_capacity == 0) return order;

  auto center = [&](size_t i, int d) {
    return (boxes[i].lo[static_cast<size_t>(d)] +
            boxes[i].hi[static_cast<size_t>(d)]) /
           2;
  };
  const auto num_leaves =
      static_cast<size_t>((n + leaf_capacity - 1) / leaf_capacity);
  const auto slabs_x = static_cast<size_t>(
      std::ceil(std::cbrt(static_cast<double>(num_leaves))));
  ParallelStableSort(pool, order, [&](size_t a, size_t b) {
    const double ca = center(a, 0);
    const double cb = center(b, 0);
    if (ca != cb) return ca < cb;
    return a < b;
  });
  const size_t slab_size = (n + slabs_x - 1) / slabs_x;

  // Collect the slab ranges, y-sort them in parallel, then collect the
  // run ranges of every slab and e-sort those in parallel. Ranges are
  // disjoint, so workers never touch the same elements.
  std::vector<std::pair<size_t, size_t>> slabs;
  for (size_t s0 = 0; s0 < n; s0 += slab_size) {
    slabs.emplace_back(s0, std::min(n, s0 + slab_size));
  }
  ParallelFor(pool, static_cast<int64_t>(slabs.size()), 1,
              [&](int64_t begin, int64_t end) {
                for (int64_t s = begin; s < end; ++s) {
                  const auto [s0, s1] = slabs[static_cast<size_t>(s)];
                  std::sort(order.begin() + static_cast<ptrdiff_t>(s0),
                            order.begin() + static_cast<ptrdiff_t>(s1),
                            [&](size_t a, size_t b) {
                              const double ca = center(a, 1);
                              const double cb = center(b, 1);
                              if (ca != cb) return ca < cb;
                              return a < b;
                            });
                }
              });
  std::vector<std::pair<size_t, size_t>> runs;
  for (const auto& [s0, s1] : slabs) {
    const size_t leaves_in_slab =
        ((s1 - s0) + leaf_capacity - 1) / leaf_capacity;
    const auto runs_y = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(leaves_in_slab))));
    const size_t run_size = ((s1 - s0) + runs_y - 1) / runs_y;
    for (size_t r0 = s0; r0 < s1; r0 += run_size) {
      runs.emplace_back(r0, std::min(s1, r0 + run_size));
    }
  }
  ParallelFor(pool, static_cast<int64_t>(runs.size()), 1,
              [&](int64_t begin, int64_t end) {
                for (int64_t r = begin; r < end; ++r) {
                  const auto [r0, r1] = runs[static_cast<size_t>(r)];
                  std::sort(order.begin() + static_cast<ptrdiff_t>(r0),
                            order.begin() + static_cast<ptrdiff_t>(r1),
                            [&](size_t a, size_t b) {
                              const double ca = center(a, 2);
                              const double cb = center(b, 2);
                              if (ca != cb) return ca < cb;
                              return a < b;
                            });
                }
              });
  return order;
}

Result<RStarTree> RStarTree::BulkLoad(
    DbEnv* env, const std::vector<std::pair<Box, uint64_t>>& ordered) {
  RStarTree tree(env, kInvalidPage);
  if (ordered.empty()) {
    Node root;
    root.level = 0;
    DM_ASSIGN_OR_RETURN(tree.root_, tree.AllocNode(root));
    return tree;
  }
  const uint32_t cap = tree.MaxEntries();

  // Level 0: pack consecutive runs into leaves.
  std::vector<Entry> level;  // (node box, node page) of the last level
  {
    Node leaf;
    leaf.level = 0;
    for (const auto& [box, payload] : ordered) {
      leaf.entries.push_back(Entry{box, payload});
      if (leaf.entries.size() == cap) {
        DM_ASSIGN_OR_RETURN(const PageId id, tree.AllocNode(leaf));
        level.push_back(Entry{NodeBox(leaf), id});
        leaf.entries.clear();
      }
    }
    if (!leaf.entries.empty()) {
      DM_ASSIGN_OR_RETURN(const PageId id, tree.AllocNode(leaf));
      level.push_back(Entry{NodeBox(leaf), id});
    }
  }

  // Upper levels: pack consecutive children until one node remains.
  uint16_t lvl = 1;
  while (level.size() > 1) {
    std::vector<Entry> next;
    Node node;
    node.level = lvl;
    for (const Entry& child : level) {
      node.entries.push_back(child);
      if (node.entries.size() == cap) {
        DM_ASSIGN_OR_RETURN(const PageId id, tree.AllocNode(node));
        next.push_back(Entry{NodeBox(node), id});
        node.entries.clear();
      }
    }
    if (!node.entries.empty()) {
      DM_ASSIGN_OR_RETURN(const PageId id, tree.AllocNode(node));
      next.push_back(Entry{NodeBox(node), id});
    }
    level = std::move(next);
    ++lvl;
  }
  tree.root_ = static_cast<PageId>(level.front().payload);
  tree.size_ = static_cast<int64_t>(ordered.size());
  return tree;
}

Result<RStarTree> RStarTree::Create(DbEnv* env) {
  RStarTree tree(env, kInvalidPage);
  Node root;
  root.level = 0;
  DM_ASSIGN_OR_RETURN(tree.root_, tree.AllocNode(root));
  return tree;
}

RStarTree RStarTree::Open(DbEnv* env, PageId root, int64_t size) {
  RStarTree t(env, root);
  t.size_ = size;
  return t;
}

Result<RStarTree::Node> RStarTree::ReadNode(PageId id) const {
  DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(id));
  Node node;
  uint16_t count;
  std::memcpy(&node.level, page.data() + kLevelOff, 2);
  std::memcpy(&count, page.data() + kCountOff, 2);
  // M + 1 entries may legitimately sit on disk between an overflowing
  // insert and its overflow treatment.
  DM_ENSURE(kEntriesOff + static_cast<uint32_t>(count) * kEntrySize <=
                env_->page_size(),
            Status::Corruption("R*-tree node " + std::to_string(id) +
                               " entry count " + std::to_string(count) +
                               " exceeds page capacity"));
  node.entries.resize(count);
  const uint8_t* p = page.data() + kEntriesOff;
  for (uint16_t i = 0; i < count; ++i, p += kEntrySize) {
    std::memcpy(node.entries[i].box.lo.data(), p, 24);
    std::memcpy(node.entries[i].box.hi.data(), p + 24, 24);
    std::memcpy(&node.entries[i].payload, p + 48, 8);
  }
  return node;
}

Status RStarTree::WriteNode(PageId id, const Node& node) {
  DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(id));
  const uint16_t count = static_cast<uint16_t>(node.entries.size());
  std::memcpy(page.data() + kLevelOff, &node.level, 2);
  std::memcpy(page.data() + kCountOff, &count, 2);
  uint8_t* p = page.data() + kEntriesOff;
  for (uint16_t i = 0; i < count; ++i, p += kEntrySize) {
    std::memcpy(p, node.entries[i].box.lo.data(), 24);
    std::memcpy(p + 24, node.entries[i].box.hi.data(), 24);
    std::memcpy(p + 48, &node.entries[i].payload, 8);
  }
  page.MarkDirty();
  return Status::OK();
}

Result<PageId> RStarTree::AllocNode(const Node& node) {
  DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().NewPage());
  const PageId id = page.id();
  page.Release();
  DM_RETURN_NOT_OK(WriteNode(id, node));
  return id;
}

Box RStarTree::NodeBox(const Node& node) {
  Box box;
  for (const Entry& e : node.entries) box.ExpandToInclude(e.box);
  return box;
}

Result<RStarTree::Path> RStarTree::ChoosePath(const Box& box,
                                              uint16_t target_level) const {
  Path path;
  PageId id = root_;
  while (true) {
    path.pages.push_back(id);
    DM_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    if (node.level == target_level) return path;

    uint32_t best = 0;
    if (node.level == target_level + 1 && node.level > 0 &&
        target_level == 0) {
      // Children are leaves: minimize overlap enlargement (ties: area
      // enlargement, then area).
      std::vector<Box> child_boxes;
      child_boxes.reserve(node.entries.size());
      for (const Entry& e : node.entries) child_boxes.push_back(e.box);
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enl = best_overlap;
      double best_area = best_overlap;
      for (size_t i = 0; i < node.entries.size(); ++i) {
        Box enlarged = node.entries[i].box;
        enlarged.ExpandToInclude(box);
        const double before =
            OverlapWith(node.entries[i].box, child_boxes, i);
        const double after = OverlapWith(enlarged, child_boxes, i);
        const double d_overlap = after - before;
        const double d_enl = Enlargement(node.entries[i].box, box);
        const double area = node.entries[i].box.Volume();
        if (d_overlap < best_overlap ||
            (d_overlap == best_overlap &&
             (d_enl < best_enl ||
              (d_enl == best_enl && area < best_area)))) {
          best_overlap = d_overlap;
          best_enl = d_enl;
          best_area = area;
          best = static_cast<uint32_t>(i);
        }
      }
    } else {
      // Minimize area enlargement (ties: area).
      double best_enl = std::numeric_limits<double>::infinity();
      double best_area = best_enl;
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const double d_enl = Enlargement(node.entries[i].box, box);
        const double area = node.entries[i].box.Volume();
        if (d_enl < best_enl || (d_enl == best_enl && area < best_area)) {
          best_enl = d_enl;
          best_area = area;
          best = static_cast<uint32_t>(i);
        }
      }
    }
    path.slots.push_back(best);
    id = static_cast<PageId>(node.entries[best].payload);
  }
}

Status RStarTree::AdjustPath(const Path& path) {
  // Recompute exact MBRs bottom-up (handles both growth and shrink).
  for (size_t i = path.pages.size(); i-- > 1;) {
    DM_ASSIGN_OR_RETURN(Node child, ReadNode(path.pages[i]));
    DM_ASSIGN_OR_RETURN(Node parent, ReadNode(path.pages[i - 1]));
    parent.entries[path.slots[i - 1]].box = NodeBox(child);
    DM_RETURN_NOT_OK(WriteNode(path.pages[i - 1], parent));
  }
  return Status::OK();
}

void RStarTree::SplitNode(const Node& node, uint32_t min_entries, Node* left,
                          Node* right) {
  // R* topological split. ChooseSplitAxis: for each axis, sort by lo
  // (and by hi) and sum margins over all legal distributions; pick the
  // axis with the minimum margin sum. ChooseSplitIndex: on that axis,
  // pick the distribution with minimum overlap (ties: minimum total
  // area).
  const uint32_t total = static_cast<uint32_t>(node.entries.size());
  const uint32_t m = min_entries;

  int best_axis = -1;
  bool best_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();

  std::vector<uint32_t> order(total);
  auto eval_axis = [&](int axis, bool by_hi) {
    for (uint32_t i = 0; i < total; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const Box& ba = node.entries[a].box;
      const Box& bb = node.entries[b].box;
      const double ka = by_hi ? ba.hi[axis] : ba.lo[axis];
      const double kb = by_hi ? bb.hi[axis] : bb.lo[axis];
      if (ka != kb) return ka < kb;
      return a < b;
    });
    // Prefix/suffix boxes for O(n) distribution evaluation.
    std::vector<Box> prefix(total);
    std::vector<Box> suffix(total);
    Box acc;
    for (uint32_t i = 0; i < total; ++i) {
      acc.ExpandToInclude(node.entries[order[i]].box);
      prefix[i] = acc;
    }
    acc = Box{};
    for (uint32_t i = total; i-- > 0;) {
      acc.ExpandToInclude(node.entries[order[i]].box);
      suffix[i] = acc;
    }
    double margin_sum = 0.0;
    for (uint32_t k = m; k <= total - m; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
      best_by_hi = by_hi;
    }
  };
  for (int axis = 0; axis < 3; ++axis) {
    eval_axis(axis, false);
    eval_axis(axis, true);
  }

  // Re-sort on the chosen axis and pick the best split index.
  for (uint32_t i = 0; i < total; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Box& ba = node.entries[a].box;
    const Box& bb = node.entries[b].box;
    const double ka = best_by_hi ? ba.hi[best_axis] : ba.lo[best_axis];
    const double kb = best_by_hi ? bb.hi[best_axis] : bb.lo[best_axis];
    if (ka != kb) return ka < kb;
    return a < b;
  });
  std::vector<Box> prefix(total);
  std::vector<Box> suffix(total);
  Box acc;
  for (uint32_t i = 0; i < total; ++i) {
    acc.ExpandToInclude(node.entries[order[i]].box);
    prefix[i] = acc;
  }
  acc = Box{};
  for (uint32_t i = total; i-- > 0;) {
    acc.ExpandToInclude(node.entries[order[i]].box);
    suffix[i] = acc;
  }
  uint32_t best_k = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = best_overlap;
  for (uint32_t k = m; k <= total - m; ++k) {
    const double overlap = prefix[k - 1].Intersection(suffix[k]).Volume();
    const double area = prefix[k - 1].Volume() + suffix[k].Volume();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  left->level = node.level;
  right->level = node.level;
  left->entries.clear();
  right->entries.clear();
  for (uint32_t i = 0; i < total; ++i) {
    (i < best_k ? left : right)->entries.push_back(node.entries[order[i]]);
  }
}

Status RStarTree::HandleOverflow(Path path, std::vector<bool>* reinserted) {
  const PageId node_id = path.pages.back();
  DM_ASSIGN_OR_RETURN(Node node, ReadNode(node_id));
  const bool is_root = node_id == root_;

  if (!is_root && node.level < reinserted->size() &&
      !(*reinserted)[node.level]) {
    // Forced reinsert: remove the 30% of entries whose centers are
    // farthest from the node MBR center, tighten the node, and
    // reinsert them (closest first — Beckmann's "close reinsert").
    (*reinserted)[node.level] = true;
    const Box nb = NodeBox(node);
    std::array<double, 3> c{(nb.lo[0] + nb.hi[0]) / 2,
                            (nb.lo[1] + nb.hi[1]) / 2,
                            (nb.lo[2] + nb.hi[2]) / 2};
    auto dist2 = [&](const Entry& e) {
      double d = 0;
      for (int k = 0; k < 3; ++k) {
        const double ec = (e.box.lo[k] + e.box.hi[k]) / 2;
        d += (ec - c[k]) * (ec - c[k]);
      }
      return d;
    };
    std::vector<uint32_t> order(node.entries.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const double da = dist2(node.entries[a]);
      const double db = dist2(node.entries[b]);
      if (da != db) return da > db;  // farthest first
      return a < b;
    });
    const uint32_t p = std::max<uint32_t>(
        1, static_cast<uint32_t>(node.entries.size() * kReinsertShare));
    std::vector<Entry> removed;
    removed.reserve(p);
    std::vector<bool> drop(node.entries.size(), false);
    for (uint32_t i = 0; i < p; ++i) {
      removed.push_back(node.entries[order[i]]);
      drop[order[i]] = true;
    }
    Node kept;
    kept.level = node.level;
    for (uint32_t i = 0; i < node.entries.size(); ++i) {
      if (!drop[i]) kept.entries.push_back(node.entries[i]);
    }
    DM_RETURN_NOT_OK(WriteNode(node_id, kept));
    DM_RETURN_NOT_OK(AdjustPath(path));
    // Close reinsert: insert in increasing distance order.
    for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
      DM_RETURN_NOT_OK(InsertEntry(*it, node.level, reinserted));
    }
    return Status::OK();
  }

  // Split.
  Node left;
  Node right;
  SplitNode(node, MinEntries(), &left, &right);
  DM_RETURN_NOT_OK(WriteNode(node_id, left));
  DM_ASSIGN_OR_RETURN(const PageId right_id, AllocNode(right));

  if (is_root) {
    Node new_root;
    new_root.level = static_cast<uint16_t>(node.level + 1);
    new_root.entries.push_back(Entry{NodeBox(left), node_id});
    new_root.entries.push_back(Entry{NodeBox(right), right_id});
    DM_ASSIGN_OR_RETURN(root_, AllocNode(new_root));
    return Status::OK();
  }

  // Update the parent: tighten the left box, add the right entry.
  path.pages.pop_back();
  const uint32_t slot = path.slots.back();
  path.slots.pop_back();
  const PageId parent_id = path.pages.back();
  DM_ASSIGN_OR_RETURN(Node parent, ReadNode(parent_id));
  parent.entries[slot].box = NodeBox(left);
  parent.entries.push_back(Entry{NodeBox(right), right_id});
  const bool parent_overflow = parent.entries.size() > MaxEntries();
  DM_RETURN_NOT_OK(WriteNode(parent_id, parent));
  DM_RETURN_NOT_OK(AdjustPath(path));
  if (parent_overflow) {
    DM_RETURN_NOT_OK(HandleOverflow(std::move(path), reinserted));
  }
  return Status::OK();
}

Status RStarTree::InsertEntry(const Entry& entry, uint16_t target_level,
                              std::vector<bool>* reinserted) {
  DM_ASSIGN_OR_RETURN(Path path, ChoosePath(entry.box, target_level));
  const PageId node_id = path.pages.back();
  DM_ASSIGN_OR_RETURN(Node node, ReadNode(node_id));
  node.entries.push_back(entry);
  const bool overflow = node.entries.size() > MaxEntries();
  DM_RETURN_NOT_OK(WriteNode(node_id, node));
  DM_RETURN_NOT_OK(AdjustPath(path));
  if (overflow) {
    DM_RETURN_NOT_OK(HandleOverflow(std::move(path), reinserted));
  }
  return Status::OK();
}

Status RStarTree::Insert(const Box& box, uint64_t payload) {
  if (box.empty()) return Status::InvalidArgument("cannot insert empty box");
  // One reinsert pass allowed per level per top-level insertion.
  DM_ASSIGN_OR_RETURN(Node root, ReadNode(root_));
  std::vector<bool> reinserted(static_cast<size_t>(root.level) + 2, false);
  DM_RETURN_NOT_OK(InsertEntry(Entry{box, payload}, 0, &reinserted));
  ++size_;
  return Status::OK();
}

Status RStarTree::RangeQuery(const Box& query,
                             std::vector<uint64_t>* out) const {
  return RangeQueryEntries(query, [out](const Box&, uint64_t payload) {
    out->push_back(payload);
    return true;
  });
}

Status RStarTree::RangeQueryEntries(
    const Box& query,
    const std::function<bool(const Box&, uint64_t)>& callback) const {
  // Read-only traversal on the query hot path: entries are decoded
  // in place from the pinned page instead of materializing a Node
  // (whose entry vector would heap-allocate per visited page). The
  // callback runs with the page pinned; it must not re-enter the pool
  // deeply enough to exhaust frames (existing callers only collect
  // payloads). The traversal stack is thread-local so the steady state
  // allocates nothing.
  thread_local std::vector<PageId> stack;
  stack.clear();
  stack.push_back(root_);
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(id));
    uint16_t level;
    uint16_t count;
    std::memcpy(&level, page.data() + kLevelOff, 2);
    std::memcpy(&count, page.data() + kCountOff, 2);
    DM_ENSURE(kEntriesOff + static_cast<uint32_t>(count) * kEntrySize <=
                  env_->page_size(),
              Status::Corruption("R*-tree node " + std::to_string(id) +
                                 " entry count " + std::to_string(count) +
                                 " exceeds page capacity"));
    const uint8_t* p = page.data() + kEntriesOff;
    for (uint16_t i = 0; i < count; ++i, p += kEntrySize) {
      Box box;
      uint64_t payload;
      std::memcpy(box.lo.data(), p, 24);
      std::memcpy(box.hi.data(), p + 24, 24);
      std::memcpy(&payload, p + 48, 8);
      if (!box.Intersects(query)) continue;
      if (level == 0) {
        if (!callback(box, payload)) return Status::OK();
      } else {
        stack.push_back(static_cast<PageId>(payload));
      }
    }
  }
  return Status::OK();
}

Status RStarTree::CollectNodeExtents(std::vector<RTreeNodeExtent>* out) const {
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    DM_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    RTreeNodeExtent ext;
    ext.box = NodeBox(node);
    ext.level = node.level;
    ext.count = static_cast<uint16_t>(node.entries.size());
    out->push_back(ext);
    if (node.level > 0) {
      for (const Entry& e : node.entries) {
        stack.push_back(static_cast<PageId>(e.payload));
      }
    }
  }
  return Status::OK();
}

Status RStarTree::VisitNodes(
    const std::function<bool(PageId, uint16_t,
                             const std::vector<std::pair<Box, uint64_t>>&)>&
        callback) const {
  std::vector<PageId> stack{root_};
  std::vector<std::pair<Box, uint64_t>> entries;
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    DM_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    entries.clear();
    entries.reserve(node.entries.size());
    for (const Entry& e : node.entries) {
      entries.emplace_back(e.box, e.payload);
    }
    if (!callback(id, node.level, entries)) return Status::OK();
    if (node.level > 0) {
      for (const Entry& e : node.entries) {
        stack.push_back(static_cast<PageId>(e.payload));
      }
    }
  }
  return Status::OK();
}

Result<int> RStarTree::Height() const {
  DM_ASSIGN_OR_RETURN(Node root, ReadNode(root_));
  return static_cast<int>(root.level) + 1;
}

Result<Box> RStarTree::RootBox() const {
  DM_ASSIGN_OR_RETURN(Node root, ReadNode(root_));
  return NodeBox(root);
}

}  // namespace dm
