#ifndef DIRECTMESH_INDEX_RTREE_RSTAR_TREE_H_
#define DIRECTMESH_INDEX_RTREE_RSTAR_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/geometry.h"
#include "common/parallel.h"
#include "common/status.h"
#include "storage/db_env.h"
#include "storage/page.h"

namespace dm {

/// The MBR and level of one R*-tree node; the multi-base optimizer
/// feeds these into the Kamel-Faloutsos expected-disk-access formula,
/// which sums over the nodes of the index ("the size of R-tree nodes
/// can be found from the R-tree index").
struct RTreeNodeExtent {
  Box box;
  uint16_t level = 0;  // 0 = leaf
  uint16_t count = 0;
};

/// Disk-based R*-tree (Beckmann et al., SIGMOD 1990) over 3D boxes.
/// 2D indexing uses degenerate boxes (lo[2] == hi[2] == 0). One node
/// per page; entries are (Box, payload) where payload is a child page
/// id in internal nodes and an opaque 64-bit value (typically a packed
/// RecordId) in leaves.
///
/// Implements the full R* insertion heuristics: least-overlap
/// ChooseSubtree at the leaf level, forced reinsert of the 30%
/// farthest entries on first overflow per level, and the
/// margin-driven topological split.
///
/// Concurrency: once loading is done the tree structure is frozen, so
/// the const traversals (RangeQuery, RangeQueryEntries,
/// CollectNodeExtents, VisitNodes, Height, RootBox) are safe from many
/// threads; node pages are materialized through the thread-safe buffer
/// pool. `Insert` is single-writer and must not overlap with readers.
class RStarTree {
 public:
  /// Creates an empty tree (root = empty leaf) in `env`.
  static Result<RStarTree> Create(DbEnv* env);

  /// Opens an existing tree.
  static RStarTree Open(DbEnv* env, PageId root, int64_t size);

  /// Computes the Sort-Tile-Recursive packing order (Leutenegger et
  /// al.; the packed R-trees of Kamel-Faloutsos that the paper's cost
  /// model assumes): the returned permutation lists the boxes in leaf
  /// order, consecutive `leaf_capacity`-sized runs forming one leaf.
  /// Callers that co-locate records with the index (clustered storage)
  /// write their data file in this order.
  ///
  /// The overload taking a WorkerPool runs the x sort as a parallel
  /// stable merge sort and fans the per-slab y / per-run e sorts out
  /// over the pool; every comparator is a total order (index
  /// tie-break), so the permutation is identical at any thread count.
  static std::vector<size_t> StrOrder(const std::vector<Box>& boxes,
                                      uint32_t leaf_capacity);
  static std::vector<size_t> StrOrder(const std::vector<Box>& boxes,
                                      uint32_t leaf_capacity,
                                      WorkerPool& pool);
  /// Capacity used by BulkLoad leaves (== MaxEntries()).
  static uint32_t LeafCapacityFor(uint32_t page_size);

  /// Builds a packed tree from entries already arranged in StrOrder.
  static Result<RStarTree> BulkLoad(
      DbEnv* env, const std::vector<std::pair<Box, uint64_t>>& ordered);

  PageId root() const { return root_; }
  int64_t size() const { return size_; }
  /// Number of levels (1 = the root is a leaf).
  Result<int> Height() const;

  Status Insert(const Box& box, uint64_t payload);

  /// Collects payloads of all leaf entries whose box intersects
  /// `query`.
  Status RangeQuery(const Box& query, std::vector<uint64_t>* out) const;

  /// Streaming variant exposing entry boxes; callback may return false
  /// to stop.
  Status RangeQueryEntries(
      const Box& query,
      const std::function<bool(const Box&, uint64_t)>& callback) const;

  /// Enumerates every node's MBR/level/count (root included).
  Status CollectNodeExtents(std::vector<RTreeNodeExtent>* out) const;

  /// Depth-first structural traversal for audits: the callback sees
  /// each node's page id, level, and entries (payloads are child page
  /// ids when level > 0, opaque leaf payloads at level 0). Returning
  /// false stops the walk early.
  Status VisitNodes(
      const std::function<bool(PageId, uint16_t,
                               const std::vector<std::pair<Box, uint64_t>>&)>&
          callback) const;

  /// The MBR of the whole tree (empty box when the tree is empty).
  Result<Box> RootBox() const;

 private:
  struct Entry {
    Box box;
    uint64_t payload = 0;
  };
  struct Node {
    uint16_t level = 0;
    std::vector<Entry> entries;
  };

  RStarTree(DbEnv* env, PageId root) : env_(env), root_(root) {}

  uint32_t MaxEntries() const;
  uint32_t MinEntries() const;

  Result<Node> ReadNode(PageId id) const;
  Status WriteNode(PageId id, const Node& node);
  Result<PageId> AllocNode(const Node& node);

  /// Root-to-target path of page ids; `slots[i]` is the entry index of
  /// path[i+1] inside path[i].
  struct Path {
    std::vector<PageId> pages;
    std::vector<uint32_t> slots;
  };
  Result<Path> ChoosePath(const Box& box, uint16_t target_level) const;

  /// Recomputes exact parent MBRs along the path, bottom-up.
  Status AdjustPath(const Path& path);

  /// Overflow at path.back(); splits or force-reinserts.
  Status HandleOverflow(Path path, std::vector<bool>* reinserted);

  Status InsertEntry(const Entry& entry, uint16_t target_level,
                     std::vector<bool>* reinserted);

  static Box NodeBox(const Node& node);
  static void SplitNode(const Node& node, uint32_t min_entries, Node* left,
                        Node* right);

  DbEnv* env_;
  PageId root_;
  int64_t size_ = 0;
};

}  // namespace dm

#endif  // DIRECTMESH_INDEX_RTREE_RSTAR_TREE_H_
