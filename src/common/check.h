#ifndef DIRECTMESH_COMMON_CHECK_H_
#define DIRECTMESH_COMMON_CHECK_H_

#include <sstream>
#include <string>

/// Release-safe invariant macros, glog-style. Unlike <cassert>, these
/// fire in every build type, carry a streamed message, and print the
/// failing expression with its location before aborting. Use
/// DM_CHECK for conditions whose violation means the process state is
/// unrecoverable (memory-safety preconditions, broken data-structure
/// invariants); use DM_ENSURE where the caller can recover, which
/// funnels the failure through Status instead of aborting.
///
///   DM_CHECK(frame.pins > 0) << "unpin of unpinned page " << id;
///   DM_DCHECK(std::is_sorted(v.begin(), v.end()));
///   DM_CHECK_OK(env->FlushAll());
///   DM_ENSURE(size >= kFixedSize, Status::Corruption("record too small"));

namespace dm {
namespace internal {

/// Collects the streamed message and aborts in its destructor. Built
/// only on the failure path, so the happy path costs one branch.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr);
  [[noreturn]] ~CheckFailStream();

  /// Lvalue self-reference so the voidifier can bind to a temporary
  /// (the LOG(FATAL).stream() trick).
  CheckFailStream& self() { return *this; }

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Makes `DM_CHECK(x) << msg` an expression of type void in both
/// branches (the classic LOG voidifier).
struct Voidify {
  void operator&(CheckFailStream&) {}
};

}  // namespace internal
}  // namespace dm

/// Aborts with the expression, location, and streamed message when
/// `cond` is false. Enabled in every build type.
#define DM_CHECK(cond)                          \
  (cond) ? (void)0                              \
         : ::dm::internal::Voidify() &          \
               ::dm::internal::CheckFailStream(__FILE__, __LINE__, #cond) \
                   .self()

/// Debug-only DM_CHECK. Compiles to nothing under NDEBUG but still
/// odr-uses its operands, so no unused-variable warnings appear in
/// release builds.
#ifdef NDEBUG
#define DM_DCHECK(cond) DM_CHECK(true || (cond))
#else
#define DM_DCHECK(cond) DM_CHECK(cond)
#endif

/// Aborts when a Status- or Result-returning expression fails; the
/// status message is included in the report. Deliberately generic (any
/// type with ok() / ToString() or ok() / status()) so this header does
/// not depend on status.h.
#define DM_CHECK_OK(expr)                                              \
  do {                                                                 \
    const auto& _dm_check_st = (expr);                                 \
    DM_CHECK(_dm_check_st.ok()) << ::dm::internal::StatusText(_dm_check_st); \
  } while (0)

namespace dm {
namespace internal {
template <typename S>
auto StatusText(const S& s) -> decltype(s.ToString()) {
  return s.ToString();
}
template <typename R>
auto StatusText(const R& r) -> decltype(r.status().ToString()) {
  return r.status().ToString();
}
}  // namespace internal
}  // namespace dm

/// Recoverable invariant: returns `status_expr` to the caller when
/// `cond` is false instead of aborting. Use in Status/Result functions
/// for conditions triggered by bad input or on-disk corruption.
#define DM_ENSURE(cond, status_expr)       \
  do {                                     \
    if (!(cond)) return (status_expr);     \
  } while (0)

#endif  // DIRECTMESH_COMMON_CHECK_H_
