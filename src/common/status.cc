#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace dm {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void DieOnError(const Status& status) {
  std::fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace dm
