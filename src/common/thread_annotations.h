#ifndef DIRECTMESH_COMMON_THREAD_ANNOTATIONS_H_
#define DIRECTMESH_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// Clang thread-safety annotations (DESIGN.md §12) plus the annotated
/// lock vocabulary the whole concurrent layer uses. Under Clang the
/// macros expand to the `capability` attribute family, so a build with
/// `-Wthread-safety -Werror=thread-safety` (the DM_THREAD_SAFETY CMake
/// option) machine-checks the locking discipline: every DM_GUARDED_BY
/// member access, every DM_REQUIRES precondition, every scoped
/// acquire/release. Under GCC the macros expand to nothing and the
/// wrappers are zero-cost veneers over the std primitives.
///
/// House rules (enforced by tools/dm_lint.py):
///   - raw std::mutex / std::lock_guard / std::unique_lock /
///     std::condition_variable never appear outside this header;
///   - every mutex-protected member is DM_GUARDED_BY its mutex;
///   - private helpers that assume a lock are DM_REQUIRES it.
///
/// Condition-variable waits use explicit `while (!cond) cv.Wait(mu);`
/// loops instead of predicate lambdas: the analysis checks lambda
/// bodies as separate unannotated functions, so a predicate reading a
/// guarded member would (correctly) fail the build even though the
/// wait holds the lock. The explicit loop keeps the read inside the
/// annotated caller where the capability is visible.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DM_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef DM_THREAD_ANNOTATION_
#define DM_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// A type that is a lockable capability ("mutex" names the kind in
/// diagnostics).
#define DM_CAPABILITY(x) DM_THREAD_ANNOTATION_(capability(x))

/// RAII type that acquires a capability at construction and releases
/// it at destruction.
#define DM_SCOPED_CAPABILITY DM_THREAD_ANNOTATION_(scoped_lockable)

/// Member that may only be read or written while holding `x`.
#define DM_GUARDED_BY(x) DM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define DM_PT_GUARDED_BY(x) DM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that may only be called while holding the listed
/// capabilities (which it neither acquires nor releases).
#define DM_REQUIRES(...) \
  DM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (held on return).
#define DM_ACQUIRE(...) \
  DM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (held on entry).
#define DM_RELEASE(...) \
  DM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `b`.
#define DM_TRY_ACQUIRE(b, ...) \
  DM_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Function that must NOT be called while holding the listed
/// capabilities (deadlock prevention for self-locking methods).
#define DM_EXCLUDES(...) DM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables analysis inside one function body. Every use
/// needs a comment saying why the analysis cannot see the invariant.
#define DM_NO_THREAD_SAFETY_ANALYSIS \
  DM_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dm {

class CondVar;

/// Annotated exclusive mutex. Method names follow the std BasicLockable
/// convention so CondVar (condition_variable_any) can drop and reacquire
/// it during a wait; user code should prefer MutexLock over calling
/// lock()/unlock() directly.
class DM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DM_ACQUIRE() { mu_.lock(); }
  void unlock() DM_RELEASE() { mu_.unlock(); }
  bool try_lock() DM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped lock on a Mutex. Supports the unlock-while-calling-out
/// pattern (Unlock/Lock) that worker loops use around callbacks; the
/// analysis tracks the scoped state, so touching a guarded member in
/// the unlocked window fails the build.
class DM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DM_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() DM_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. before running a user callback).
  void Unlock() DM_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  /// Reacquires after Unlock().
  void Lock() DM_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to dm::Mutex. Wait atomically releases the
/// mutex and reacquires it before returning, so callers keep their
/// DM_REQUIRES obligations across the wait. Spurious wakeups are
/// possible; always wait in a `while (!condition)` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. `mu` must be held (and is held again on
  /// return).
  void Wait(Mutex& mu) DM_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until notified or `timeout` elapses; returns false on
  /// timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      DM_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dm

#endif  // DIRECTMESH_COMMON_THREAD_ANNOTATIONS_H_
