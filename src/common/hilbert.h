#ifndef DIRECTMESH_COMMON_HILBERT_H_
#define DIRECTMESH_COMMON_HILBERT_H_

#include <cstdint>

namespace dm {

/// Maps a 2D cell coordinate to its index along the Hilbert
/// space-filling curve of order `order` (grid side 2^order).
/// Used to cluster terrain points on disk so that their (x, y)
/// locality is preserved, as the paper's evaluation setup requires
/// ("terrain data is arranged on the disk in such a way that their
/// (x, y) clustering is preserved as much as possible").
uint64_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y);

/// Inverse of HilbertIndex.
void HilbertPoint(uint32_t order, uint64_t index, uint32_t* x, uint32_t* y);

/// Convenience: Hilbert key of a point in [0,1)^2 on a 2^16 grid.
uint64_t HilbertKeyUnit(double x01, double y01);

}  // namespace dm

#endif  // DIRECTMESH_COMMON_HILBERT_H_
