#ifndef DIRECTMESH_COMMON_FLAT_HASH_H_
#define DIRECTMESH_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "common/arena.h"
#include "common/check.h"

namespace dm {

/// Finalizer of splitmix64: a fast, well-mixed hash for the integer
/// keys (VertexId, packed RecordId) the query hot path indexes by.
inline uint64_t FlatHashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename K>
struct FlatHashDefault {
  size_t operator()(const K& k) const {
    return static_cast<size_t>(FlatHashMix(static_cast<uint64_t>(k)));
  }
};

/// Open-addressing hash map with linear probing over one flat slot
/// array: no per-element nodes, so inserts are a key store + placement
/// new and lookups touch one cache line per probe. Built for the query
/// hot path, where std::unordered_map's per-node allocations dominated
/// the profile.
///
/// - `empty_key` is a reserved key value marking vacant slots (the DM
///   pipeline uses kInvalidVertex / ~0 record ids); inserting it is a
///   programming error.
/// - Backing arrays come from the optional Arena (old arrays are
///   abandoned to the arena on rehash, reclaimed by its Reset) or from
///   the global heap when arena == nullptr.
/// - Iteration order is the probe order of the table, not insertion
///   order; callers needing determinism sort, as the query pipeline
///   already does for cuts.
/// - Move-only. References are invalidated by rehash; reserve() up
///   front to pin them.
template <typename K, typename V, typename Hash = FlatHashDefault<K>>
class FlatHashMap {
  static_assert(std::is_trivially_copyable_v<K>,
                "flat hash keys must be trivially copyable");

 public:
  explicit FlatHashMap(K empty_key, Arena* arena = nullptr)
      : empty_key_(empty_key), arena_(arena) {}

  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;
  FlatHashMap(FlatHashMap&& o) noexcept
      : empty_key_(o.empty_key_),
        arena_(o.arena_),
        keys_(o.keys_),
        values_(o.values_),
        capacity_(o.capacity_),
        size_(o.size_) {
    o.keys_ = nullptr;
    o.values_ = nullptr;
    o.capacity_ = 0;
    o.size_ = 0;
  }
  FlatHashMap& operator=(FlatHashMap&&) = delete;

  ~FlatHashMap() { DestroyAndFree(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Grows the table so `n` entries fit without rehashing.
  void reserve(size_t n) {
    const size_t needed = NormalizeCapacity(n);
    if (needed > capacity_) Rehash(needed);
  }

  V* find(const K& k) {
    if (capacity_ == 0) return nullptr;
    const size_t i = Probe(k);
    return keys_[i] == empty_key_ ? nullptr : values_ + i;
  }
  const V* find(const K& k) const {
    return const_cast<FlatHashMap*>(this)->find(k);
  }
  bool contains(const K& k) const { return find(k) != nullptr; }

  /// Returns the value of `k`, inserting V(args...) if absent (the
  /// args let arena-allocated values receive their allocator).
  template <typename... Args>
  V& FindOrEmplace(const K& k, Args&&... args) {
    DM_DCHECK(!(k == empty_key_)) << "insert of the reserved empty key";
    if (capacity_ == 0 || (size_ + 1) * 4 > capacity_ * 3) {
      Rehash(NormalizeCapacity(size_ + 1));
    }
    const size_t i = Probe(k);
    if (keys_[i] == empty_key_) {
      keys_[i] = k;
      ::new (static_cast<void*>(values_ + i)) V(std::forward<Args>(args)...);
      ++size_;
    }
    return values_[i];
  }

  /// Iterates occupied slots as a {first, second} reference pair. Bind
  /// with `const auto& [k, v]` or `auto&& [k, v]` (operator* returns a
  /// proxy by value).
  struct Entry {
    const K& first;
    V& second;
  };
  class iterator {
   public:
    iterator(const FlatHashMap* m, size_t i) : m_(m), i_(i) { Skip(); }
    Entry operator*() const {
      return Entry{m_->keys_[i_], m_->values_[i_]};
    }
    iterator& operator++() {
      ++i_;
      Skip();
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    void Skip() {
      while (i_ < m_->capacity_ && m_->keys_[i_] == m_->empty_key_) ++i_;
    }
    const FlatHashMap* m_;
    size_t i_;
  };
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, capacity_); }

 private:
  static size_t NormalizeCapacity(size_t n) {
    // Smallest power of two keeping load factor <= 0.75 for n entries.
    size_t cap = 16;
    while (n * 4 > cap * 3) cap *= 2;
    return cap;
  }

  size_t Probe(const K& k) const {
    const size_t mask = capacity_ - 1;
    size_t i = Hash{}(k)&mask;
    while (!(keys_[i] == empty_key_) && !(keys_[i] == k)) i = (i + 1) & mask;
    return i;
  }

  void Rehash(size_t new_cap) {
    K* old_keys = keys_;
    V* old_values = values_;
    const size_t old_cap = capacity_;
    keys_ = static_cast<K*>(Allocate(new_cap * sizeof(K), alignof(K)));
    values_ = static_cast<V*>(Allocate(new_cap * sizeof(V), alignof(V)));
    capacity_ = new_cap;
    for (size_t i = 0; i < new_cap; ++i) keys_[i] = empty_key_;
    for (size_t i = 0; i < old_cap; ++i) {
      if (old_keys[i] == empty_key_) continue;
      const size_t j = Probe(old_keys[i]);
      keys_[j] = old_keys[i];
      ::new (static_cast<void*>(values_ + j)) V(std::move(old_values[i]));
      old_values[i].~V();
    }
    Free(old_keys);
    Free(old_values);
  }

  void* Allocate(size_t bytes, size_t align) {
    if (arena_ != nullptr) return arena_->Allocate(bytes, align);
    return ::operator new(bytes);
  }
  void Free(void* p) {
    // Arena memory is reclaimed wholesale by Arena::Reset.
    if (arena_ == nullptr) ::operator delete(p);
  }

  void DestroyAndFree() {
    if constexpr (!std::is_trivially_destructible_v<V>) {
      for (size_t i = 0; i < capacity_; ++i) {
        if (!(keys_[i] == empty_key_)) values_[i].~V();
      }
    }
    Free(keys_);
    Free(values_);
    keys_ = nullptr;
    values_ = nullptr;
    capacity_ = 0;
    size_ = 0;
  }

  K empty_key_;
  Arena* arena_;
  K* keys_ = nullptr;
  V* values_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

/// Open-addressing hash set; the map's probing scheme without a value
/// array. Replaces the `std::unordered_map<VertexId, bool>`-as-a-set
/// pattern the cut-membership tests used.
template <typename K, typename Hash = FlatHashDefault<K>>
class FlatHashSet {
  static_assert(std::is_trivially_copyable_v<K>,
                "flat hash keys must be trivially copyable");

 public:
  explicit FlatHashSet(K empty_key, Arena* arena = nullptr)
      : empty_key_(empty_key), arena_(arena) {}

  FlatHashSet(const FlatHashSet&) = delete;
  FlatHashSet& operator=(const FlatHashSet&) = delete;
  FlatHashSet(FlatHashSet&& o) noexcept
      : empty_key_(o.empty_key_),
        arena_(o.arena_),
        keys_(o.keys_),
        capacity_(o.capacity_),
        size_(o.size_) {
    o.keys_ = nullptr;
    o.capacity_ = 0;
    o.size_ = 0;
  }
  FlatHashSet& operator=(FlatHashSet&&) = delete;

  ~FlatHashSet() {
    if (arena_ == nullptr) ::operator delete(keys_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void reserve(size_t n) {
    size_t cap = 16;
    while (n * 4 > cap * 3) cap *= 2;
    if (cap > capacity_) Rehash(cap);
  }

  /// Returns true if `k` was inserted (false: already present).
  bool insert(const K& k) {
    DM_DCHECK(!(k == empty_key_)) << "insert of the reserved empty key";
    if (capacity_ == 0 || (size_ + 1) * 4 > capacity_ * 3) {
      size_t cap = capacity_ == 0 ? 16 : capacity_ * 2;
      while ((size_ + 1) * 4 > cap * 3) cap *= 2;
      Rehash(cap);
    }
    const size_t i = Probe(k);
    if (keys_[i] == empty_key_) {
      keys_[i] = k;
      ++size_;
      return true;
    }
    return false;
  }

  bool contains(const K& k) const {
    if (capacity_ == 0) return false;
    const size_t i = Probe(k);
    return !(keys_[i] == empty_key_);
  }

 private:
  size_t Probe(const K& k) const {
    const size_t mask = capacity_ - 1;
    size_t i = Hash{}(k)&mask;
    while (!(keys_[i] == empty_key_) && !(keys_[i] == k)) i = (i + 1) & mask;
    return i;
  }

  void Rehash(size_t new_cap) {
    K* old_keys = keys_;
    const size_t old_cap = capacity_;
    keys_ = static_cast<K*>(
        arena_ != nullptr ? arena_->Allocate(new_cap * sizeof(K), alignof(K))
                          : ::operator new(new_cap * sizeof(K)));
    capacity_ = new_cap;
    for (size_t i = 0; i < new_cap; ++i) keys_[i] = empty_key_;
    for (size_t i = 0; i < old_cap; ++i) {
      if (old_keys[i] == empty_key_) continue;
      keys_[Probe(old_keys[i])] = old_keys[i];
    }
    if (arena_ == nullptr) ::operator delete(old_keys);
  }

  K empty_key_;
  Arena* arena_;
  K* keys_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace dm

#endif  // DIRECTMESH_COMMON_FLAT_HASH_H_
