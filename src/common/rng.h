#ifndef DIRECTMESH_COMMON_RNG_H_
#define DIRECTMESH_COMMON_RNG_H_

#include <cstdint>

namespace dm {

/// Deterministic 64-bit RNG (xoshiro256**, seeded via splitmix64).
/// Every experiment in this repository is reproducible because all
/// randomness flows through explicitly seeded instances of this class.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s = t ^ (t >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic, throughput is irrelevant here).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

inline double Rng::NextGaussian() {
  // Rejection-free Box-Muller; discard the second value.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double two_pi = 6.283185307179586;
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(two_pi * u2);
}

}  // namespace dm

#endif  // DIRECTMESH_COMMON_RNG_H_
