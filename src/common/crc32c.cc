#include "common/crc32c.h"

#include <array>

namespace dm {

namespace {

/// Four 256-entry tables for slice-by-4, generated at static-init time
/// from the reflected Castagnoli polynomial. Table 0 alone is the
/// classic Sarwate byte-at-a-time table; tables 1-3 fold four input
/// bytes per iteration.
struct CrcTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  CrcTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const CrcTables& Tables() {
  static const CrcTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc ^= 0xFFFFFFFFu;
  // Head: align to 4 bytes so the sliced loads stay in one word.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3u) != 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  while (n >= 4) {
    uint32_t word;
    __builtin_memcpy(&word, p, 4);
    crc ^= word;
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dm
