#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace dm {
namespace internal {

CheckFailStream::CheckFailStream(const char* file, int line,
                                 const char* expr) {
  stream_ << file << ":" << line << ": DM_CHECK failed: " << expr;
  stream_ << " ";
}

CheckFailStream::~CheckFailStream() {
  const std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace dm
