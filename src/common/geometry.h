#ifndef DIRECTMESH_COMMON_GEOMETRY_H_
#define DIRECTMESH_COMMON_GEOMETRY_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace dm {

/// Identifier of a mesh/PM/DM vertex. Dense, assigned in creation order:
/// original DEM points first, then parents in collapse order.
using VertexId = int64_t;
inline constexpr VertexId kInvalidVertex = -1;

/// A point in the plane (terrain footprint coordinates).
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2& a, const Point2& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// A point in 3D terrain space; z is elevation.
struct Point3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Point2 xy() const { return Point2{x, y}; }

  friend Point3 operator+(const Point3& a, const Point3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Point3 operator-(const Point3& a, const Point3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Point3 operator*(const Point3& a, double s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend bool operator==(const Point3& a, const Point3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

inline double Dot(const Point3& a, const Point3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
inline Point3 Cross(const Point3& a, const Point3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
inline double Norm(const Point3& a) { return std::sqrt(Dot(a, a)); }
inline double DistanceXY(const Point3& a, const Point3& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Axis-aligned rectangle in the (x, y) plane. Empty when lo > hi.
struct Rect {
  double lo_x = std::numeric_limits<double>::infinity();
  double lo_y = std::numeric_limits<double>::infinity();
  double hi_x = -std::numeric_limits<double>::infinity();
  double hi_y = -std::numeric_limits<double>::infinity();

  static Rect Of(double lo_x, double lo_y, double hi_x, double hi_y) {
    return Rect{lo_x, lo_y, hi_x, hi_y};
  }

  bool empty() const { return lo_x > hi_x || lo_y > hi_y; }
  double width() const { return empty() ? 0.0 : hi_x - lo_x; }
  double height() const { return empty() ? 0.0 : hi_y - lo_y; }
  double Area() const { return width() * height(); }
  /// Half-perimeter; the R*-tree margin criterion.
  double Margin() const { return width() + height(); }

  bool Contains(double x, double y) const {
    return x >= lo_x && x <= hi_x && y >= lo_y && y <= hi_y;
  }
  bool Contains(const Rect& o) const {
    return o.lo_x >= lo_x && o.hi_x <= hi_x && o.lo_y >= lo_y &&
           o.hi_y <= hi_y;
  }
  bool Intersects(const Rect& o) const {
    return !(o.lo_x > hi_x || o.hi_x < lo_x || o.lo_y > hi_y ||
             o.hi_y < lo_y);
  }

  void ExpandToInclude(double x, double y) {
    lo_x = std::min(lo_x, x);
    lo_y = std::min(lo_y, y);
    hi_x = std::max(hi_x, x);
    hi_y = std::max(hi_y, y);
  }
  void ExpandToInclude(const Rect& o) {
    if (o.empty()) return;
    lo_x = std::min(lo_x, o.lo_x);
    lo_y = std::min(lo_y, o.lo_y);
    hi_x = std::max(hi_x, o.hi_x);
    hi_y = std::max(hi_y, o.hi_y);
  }

  Rect Intersection(const Rect& o) const {
    Rect r;
    r.lo_x = std::max(lo_x, o.lo_x);
    r.lo_y = std::max(lo_y, o.lo_y);
    r.hi_x = std::min(hi_x, o.hi_x);
    r.hi_y = std::min(hi_y, o.hi_y);
    if (r.empty()) return Rect{};
    return r;
  }

  std::string ToString() const;
};

/// Axis-aligned box in (x, y, e) space. The third axis is the LOD axis
/// throughout this codebase. Empty when lo > hi on any axis.
struct Box {
  std::array<double, 3> lo{std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::infinity()};
  std::array<double, 3> hi{-std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};

  static Box Of(double lx, double ly, double lz, double hx, double hy,
                double hz) {
    Box b;
    b.lo = {lx, ly, lz};
    b.hi = {hx, hy, hz};
    return b;
  }
  /// Box spanning a rectangle in (x, y) and an interval on the LOD axis.
  static Box FromRect(const Rect& r, double e_lo, double e_hi) {
    return Of(r.lo_x, r.lo_y, e_lo, r.hi_x, r.hi_y, e_hi);
  }
  /// Degenerate box for a single point.
  static Box FromPoint(double x, double y, double e) {
    return Of(x, y, e, x, y, e);
  }

  bool empty() const {
    for (int d = 0; d < 3; ++d) {
      if (lo[d] > hi[d]) return true;
    }
    return false;
  }
  double Extent(int d) const { return empty() ? 0.0 : hi[d] - lo[d]; }
  double Volume() const {
    return Extent(0) * Extent(1) * Extent(2);
  }
  /// Sum of side lengths; the 3D margin criterion.
  double Margin() const { return Extent(0) + Extent(1) + Extent(2); }

  bool Contains(double x, double y, double e) const {
    return x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] &&
           e >= lo[2] && e <= hi[2];
  }
  bool Contains(const Box& o) const {
    for (int d = 0; d < 3; ++d) {
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    }
    return true;
  }
  bool Intersects(const Box& o) const {
    for (int d = 0; d < 3; ++d) {
      if (o.lo[d] > hi[d] || o.hi[d] < lo[d]) return false;
    }
    return true;
  }

  void ExpandToInclude(const Box& o) {
    if (o.empty()) return;
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], o.lo[d]);
      hi[d] = std::max(hi[d], o.hi[d]);
    }
  }

  Box Intersection(const Box& o) const {
    Box r;
    for (int d = 0; d < 3; ++d) {
      r.lo[d] = std::max(lo[d], o.lo[d]);
      r.hi[d] = std::min(hi[d], o.hi[d]);
    }
    if (r.empty()) return Box{};
    return r;
  }

  Rect rect_xy() const { return Rect::Of(lo[0], lo[1], hi[0], hi[1]); }

  std::string ToString() const;
};

}  // namespace dm

#endif  // DIRECTMESH_COMMON_GEOMETRY_H_
