#include "common/hilbert.h"

#include <algorithm>

namespace dm {

namespace {
// One step of the classic rotate/flip transform.
void Rot(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    std::swap(*x, *y);
  }
}
}  // namespace

uint64_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y) {
  uint64_t d = 0;
  for (uint32_t s = order; s-- > 0;) {
    const uint32_t side = 1u << s;
    const uint32_t rx = (x & side) ? 1 : 0;
    const uint32_t ry = (y & side) ? 1 : 0;
    d += static_cast<uint64_t>(side) * side * ((3 * rx) ^ ry);
    Rot(1u << order, &x, &y, rx, ry);
  }
  return d;
}

void HilbertPoint(uint32_t order, uint64_t index, uint32_t* out_x,
                  uint32_t* out_y) {
  uint32_t x = 0;
  uint32_t y = 0;
  uint64_t t = index;
  for (uint32_t s = 0; s < order; ++s) {
    const uint32_t side = 1u << s;
    const uint32_t rx = 1 & static_cast<uint32_t>(t / 2);
    const uint32_t ry = 1 & static_cast<uint32_t>(t ^ rx);
    Rot(side, &x, &y, rx, ry);
    x += side * rx;
    y += side * ry;
    t /= 4;
  }
  *out_x = x;
  *out_y = y;
}

uint64_t HilbertKeyUnit(double x01, double y01) {
  const uint32_t kOrder = 16;
  const double side = static_cast<double>(1u << kOrder);
  auto clamp = [&](double v) {
    if (v < 0.0) v = 0.0;
    if (v >= 1.0) v = 0x1.fffffep-1;
    return v;
  };
  const auto gx = static_cast<uint32_t>(clamp(x01) * side);
  const auto gy = static_cast<uint32_t>(clamp(y01) * side);
  return HilbertIndex(kOrder, gx, gy);
}

}  // namespace dm
