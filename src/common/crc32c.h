#ifndef DIRECTMESH_COMMON_CRC32C_H_
#define DIRECTMESH_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dm {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum iSCSI, ext4, and LevelDB/RocksDB use for block
/// integrity. Software slice-by-4 table implementation: no SSE4.2
/// dependency, ~1 byte/cycle, far faster than the page-flush rate the
/// store sustains.
///
/// `Crc32c(data, n)` returns the CRC of the buffer with the standard
/// init/final XOR (0xFFFFFFFF). `Extend` continues a running CRC over
/// a second buffer, so a page can be checksummed around a hole (the
/// trailer bytes themselves).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace dm

#endif  // DIRECTMESH_COMMON_CRC32C_H_
