#include "common/parallel.h"

#include "common/check.h"

namespace dm {

int EffectiveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

WorkerPool::WorkerPool(int threads) : threads_(threads) {
  DM_CHECK(threads_ >= 1) << "WorkerPool needs at least one thread, got "
                          << threads_;
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::WorkerLoop(int index) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) {
        work_cv_.Wait(mu_);
      }
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(index);
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) done_cv_.NotifyOne();
    }
  }
}

void WorkerPool::RunOnAll(const std::function<void(int)>& fn) {
  if (threads_ == 1) {
    fn(0);
    return;
  }
  {
    MutexLock lock(mu_);
    job_ = &fn;
    pending_ = threads_ - 1;
    ++generation_;
  }
  work_cv_.NotifyAll();
  fn(0);
  MutexLock lock(mu_);
  while (pending_ != 0) {
    done_cv_.Wait(mu_);
  }
  job_ = nullptr;
}

void ParallelFor(WorkerPool& pool, int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (n <= grain) {
    fn(0, n);
    return;
  }
  if (pool.threads() == 1) {
    // Same grain-aligned decomposition as the parallel path, run
    // serially in ascending order, so callers keying per-chunk state
    // off `begin / grain` see identical chunks at any thread count.
    for (int64_t begin = 0; begin < n; begin += grain) {
      fn(begin, std::min(begin + grain, n));
    }
    return;
  }
  std::atomic<int64_t> next{0};
  pool.RunOnAll([&](int) {
    for (;;) {
      const int64_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(begin, std::min(begin + grain, n));
    }
  });
}

}  // namespace dm
