#ifndef DIRECTMESH_COMMON_ARENA_H_
#define DIRECTMESH_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/check.h"

namespace dm {

/// Bump allocator for per-query scratch memory. Allocations are O(1)
/// pointer arithmetic out of geometrically growing blocks; nothing is
/// freed individually — `Reset()` rewinds the whole arena in O(blocks)
/// while retaining the largest block, so a long-lived arena (one per
/// query worker) converges to zero heap traffic per query.
///
/// Arena memory never runs constructors or destructors; callers that
/// place non-trivially-destructible objects in it (FlatHashMap does)
/// must destroy them before Reset. Not thread-safe: one arena belongs
/// to one worker.
class Arena {
 public:
  explicit Arena(size_t min_block_bytes = 4096)
      : min_block_bytes_(min_block_bytes < 64 ? 64 : min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (any power of two).
  void* Allocate(size_t bytes, size_t align) {
    DM_DCHECK(align != 0 && (align & (align - 1)) == 0)
        << "arena alignment must be a power of two, got " << align;
    uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
    const uintptr_t aligned = (p + (align - 1)) & ~(uintptr_t{align} - 1);
    const size_t padding = static_cast<size_t>(aligned - p);
    if (ptr_ == nullptr || padding + bytes > static_cast<size_t>(end_ - ptr_)) {
      NewBlock(bytes + align);
      return Allocate(bytes, align);
    }
    ptr_ = reinterpret_cast<uint8_t*>(aligned) + bytes;
    bytes_used_ += padding + bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Rewinds all allocations. Keeps only the largest block, so steady
  /// state reuses one slab and repeated Reset cycles stop allocating.
  void Reset() {
    if (blocks_.empty()) return;
    size_t largest = 0;
    for (size_t i = 1; i < blocks_.size(); ++i) {
      if (blocks_[i].size > blocks_[largest].size) largest = i;
    }
    if (largest != 0) std::swap(blocks_[0], blocks_[largest]);
    blocks_.resize(1);
    ptr_ = blocks_[0].data.get();
    end_ = ptr_ + blocks_[0].size;
    bytes_used_ = 0;
  }

  /// Live bytes handed out since the last Reset (including padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Total slab capacity currently owned.
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Slabs requested from the heap over the arena's lifetime; a warm
  /// arena stops growing this.
  int64_t block_allocations() const { return block_allocations_; }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  void NewBlock(size_t at_least) {
    size_t size = blocks_.empty() ? min_block_bytes_ : blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    Block b;
    b.data = std::unique_ptr<uint8_t[]>(new uint8_t[size]);
    b.size = size;
    ptr_ = b.data.get();
    end_ = ptr_ + size;
    bytes_reserved_ += size;
    ++block_allocations_;
    blocks_.push_back(std::move(b));
  }

  size_t min_block_bytes_;
  std::vector<Block> blocks_;
  uint8_t* ptr_ = nullptr;
  uint8_t* end_ = nullptr;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  int64_t block_allocations_ = 0;
};

/// std-compatible allocator over an Arena, with a global-heap fallback
/// when constructed without one (arena == nullptr). The fallback lets
/// the same container types run in arena and no-arena modes, which the
/// hot-path bench uses to measure the difference.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_(o.arena()) {}

  T* allocate(size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace dm

#endif  // DIRECTMESH_COMMON_ARENA_H_
