#ifndef DIRECTMESH_COMMON_STATUS_H_
#define DIRECTMESH_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace dm {

/// Error category for a failed operation. Mirrors the RocksDB/Arrow
/// convention of returning a Status object instead of throwing across
/// module boundaries.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kOutOfRange,
  kNotSupported,
  kInternal,
  /// Transient condition (overload shed, queue-wait budget exceeded,
  /// interrupted I/O): safe to retry after backing off.
  kUnavailable,
  /// A bounded resource (buffer-pool frames, queue slots) is fully
  /// claimed. Distinct from kUnavailable so callers can size fixes
  /// (bigger pool) apart from load fixes (fewer concurrent queries).
  kResourceExhausted,
};

/// Result of a fallible operation: a code plus a human-readable message.
/// `Status::OK()` is cheap (no allocation); error statuses carry a message.
///
/// [[nodiscard]]: silently dropping a Status is how I/O errors became
/// invisible in every storage system ever; the compiler now flags any
/// call site that ignores one. Discarding deliberately (teardown
/// paths) takes an explicit `(void)` cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error container. Use `ok()` / `status()` to inspect, and
/// `value()` (asserting) or `ValueOrDie()` to extract. [[nodiscard]]
/// for the same reason as Status: an ignored Result is an ignored
/// error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    DM_CHECK(!status_.ok()) << "OK status must carry a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DM_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    DM_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DM_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  /// Extracts the value, aborting with the status message on error.
  T ValueOrDie() &&;

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnError(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnError(status_);
  return std::move(*value_);
}

/// Propagates a non-OK Status from an expression to the caller.
#define DM_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::dm::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define DM_ASSIGN_OR_RETURN(lhs, expr)         \
  auto DM_CONCAT_(_res, __LINE__) = (expr);    \
  if (!DM_CONCAT_(_res, __LINE__).ok())        \
    return DM_CONCAT_(_res, __LINE__).status();\
  lhs = std::move(DM_CONCAT_(_res, __LINE__)).value()

#define DM_CONCAT_IMPL_(a, b) a##b
#define DM_CONCAT_(a, b) DM_CONCAT_IMPL_(a, b)

}  // namespace dm

#endif  // DIRECTMESH_COMMON_STATUS_H_
