#include "common/geometry.h"

#include <cstdio>

namespace dm {

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g]x[%.6g,%.6g]", lo_x, hi_x,
                lo_y, hi_y);
  return buf;
}

std::string Box::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g]x[%.6g,%.6g]x[%.6g,%.6g]",
                lo[0], hi[0], lo[1], hi[1], lo[2], hi[2]);
  return buf;
}

}  // namespace dm
