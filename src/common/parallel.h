#ifndef DIRECTMESH_COMMON_PARALLEL_H_
#define DIRECTMESH_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace dm {

/// Resolves a user-facing thread-count knob: values <= 0 mean "one
/// thread per hardware core", anything else is taken literally.
int EffectiveThreads(int requested);

/// A fixed-size pool of worker threads. The pool spawns `threads - 1`
/// background workers; the caller of RunOnAll always participates as
/// worker 0, so `threads == 1` costs nothing (no threads are spawned
/// and jobs run inline on the caller).
///
/// Determinism contract: the pool itself never influences results —
/// callers are responsible for making the *work* thread-count
/// invariant (disjoint writes, order-independent reductions). All
/// helpers below honour that contract.
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(worker_index) once on every participant (indices
  /// 0..threads-1, caller is 0) and returns when all are done.
  void RunOnAll(const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int index);

  const int threads_;
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(int)>* job_ DM_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ DM_GUARDED_BY(mu_) = 0;
  int pending_ DM_GUARDED_BY(mu_) = 0;
  bool stop_ DM_GUARDED_BY(mu_) = false;
};

/// Chunked parallel loop over [0, n): `fn(begin, end)` is invoked over
/// disjoint subranges that exactly cover [0, n). Chunk boundaries are
/// multiples of `grain` and therefore independent of the thread count;
/// which worker executes which chunk is not specified, so the body
/// must only write to state owned by its index range. Runs inline on
/// the caller when the pool has one thread or the range fits in a
/// single chunk.
void ParallelFor(WorkerPool& pool, int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

namespace parallel_internal {

/// Smallest power of two >= x (x >= 1).
inline int NextPow2(int x) {
  int p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace parallel_internal

/// Stable sort of `v` using the pool. Because a stable sort's output
/// is a *unique* permutation of its input for any comparator, the
/// result is bit-identical to std::stable_sort regardless of thread
/// count or chunking: chunks are stable-sorted independently and then
/// combined with std::merge, which takes from the left-hand (earlier)
/// run on ties. Small inputs fall through to std::stable_sort.
template <typename T, typename Cmp>
void ParallelStableSort(WorkerPool& pool, std::vector<T>& v, Cmp cmp) {
  constexpr int64_t kMinParallel = 8192;
  const int64_t n = static_cast<int64_t>(v.size());
  if (pool.threads() <= 1 || n < kMinParallel) {
    std::stable_sort(v.begin(), v.end(), cmp);
    return;
  }

  const int chunks = parallel_internal::NextPow2(pool.threads());
  std::vector<int64_t> bounds(static_cast<size_t>(chunks) + 1);
  for (int i = 0; i <= chunks; ++i) {
    bounds[static_cast<size_t>(i)] = n * i / chunks;
  }

  // Sort each chunk independently.
  std::atomic<int> next_chunk{0};
  pool.RunOnAll([&](int) {
    for (;;) {
      const int c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      std::stable_sort(v.begin() + bounds[static_cast<size_t>(c)],
                       v.begin() + bounds[static_cast<size_t>(c) + 1], cmp);
    }
  });

  // log2(chunks) parallel merge passes, ping-ponging through scratch.
  std::vector<T> scratch(v.size());
  T* src = v.data();
  T* dst = scratch.data();
  int runs = chunks;
  while (runs > 1) {
    const int pairs = runs / 2;
    std::atomic<int> next_pair{0};
    pool.RunOnAll([&](int) {
      for (;;) {
        const int p = next_pair.fetch_add(1, std::memory_order_relaxed);
        if (p >= pairs) return;
        const int64_t lo = bounds[static_cast<size_t>(2 * p)];
        const int64_t mid = bounds[static_cast<size_t>(2 * p + 1)];
        const int64_t hi = bounds[static_cast<size_t>(2 * p + 2)];
        std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, cmp);
      }
    });
    for (int i = 0; i <= pairs; ++i) {
      bounds[static_cast<size_t>(i)] = bounds[static_cast<size_t>(2 * i)];
    }
    runs = pairs;
    std::swap(src, dst);
  }
  if (src != v.data()) {
    std::copy(scratch.begin(), scratch.end(), v.begin());
  }
}

template <typename T>
void ParallelStableSort(WorkerPool& pool, std::vector<T>& v) {
  ParallelStableSort(pool, v, std::less<T>());
}

}  // namespace dm

#endif  // DIRECTMESH_COMMON_PARALLEL_H_
