#ifndef DIRECTMESH_BASELINE_PMDB_PMDB_STORE_H_
#define DIRECTMESH_BASELINE_PMDB_PMDB_STORE_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "index/btree/bplus_tree.h"
#include "index/lodquadtree/lod_quadtree.h"
#include "pm/pm_tree.h"
#include "storage/db_env.h"
#include "storage/heap_file.h"

namespace dm {

/// A PM node record as stored by the baseline: the paper's
/// "(ID, x, y, z, e, parent, child1, child2, wing1, wing2)" plus the
/// footprint MBR every internal node must carry. Fixed 120-byte
/// encoding.
struct PmDbNode {
  VertexId id = kInvalidVertex;
  Point3 pos;
  double e_low = 0.0;
  double e_high = 0.0;
  VertexId parent = kInvalidVertex;
  VertexId child1 = kInvalidVertex;
  VertexId child2 = kInvalidVertex;
  VertexId wing1 = kInvalidVertex;
  VertexId wing2 = kInvalidVertex;
  Rect footprint;

  bool is_leaf() const { return child1 == kInvalidVertex; }
  bool AliveAt(double e) const { return e_low <= e && e < e_high; }

  static constexpr uint32_t kEncodedSize = 6 * 8 + 5 * 8 + 4 * 8;
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Result<PmDbNode> Decode(const uint8_t* data, uint32_t size);
};

/// Reopen handles of a built PM baseline database.
struct PmDbMeta {
  PageId heap_first = kInvalidPage;
  PageId quadtree_root = kInvalidPage;
  int64_t quadtree_size = 0;
  PageId btree_root = kInvalidPage;
  int64_t btree_size = 0;
  VertexId pm_root = kInvalidVertex;
  int64_t num_nodes = 0;
  double max_lod = 0.0;
  double mean_lod = 0.0;
  Rect bounds;
};

/// The paper's baseline storage: PM node records in a Hilbert-ordered
/// heap file, a 3D LOD-quadtree on (x, y, e_low) to find internal
/// nodes, and a B+-tree on node id for the per-node fetches that
/// selective refinement needs when a required record was not covered
/// by the range query (children below the cut, ancestors outside the
/// ROI).
class PmDbStore {
 public:
  static Result<PmDbStore> Build(DbEnv* env, const PmTree& tree);
  static Result<PmDbStore> Open(DbEnv* env, const PmDbMeta& meta);

  const PmDbMeta& meta() const { return meta_; }
  DbEnv* env() const { return env_; }
  const LodQuadtree& quadtree() const { return quadtree_; }
  const BPlusTree& btree() const { return btree_; }
  const HeapFile& heap() const { return heap_; }

  Result<PmDbNode> FetchNode(RecordId rid) const;

  /// Fetches a node by id: one B+-tree descent plus one heap access.
  Result<PmDbNode> FetchNodeById(VertexId id) const;

 private:
  PmDbStore(DbEnv* env, HeapFile heap, LodQuadtree quadtree, BPlusTree btree)
      : env_(env),
        heap_(std::move(heap)),
        quadtree_(std::move(quadtree)),
        btree_(std::move(btree)) {}

  DbEnv* env_;
  HeapFile heap_;
  LodQuadtree quadtree_;
  BPlusTree btree_;
  PmDbMeta meta_;
};

}  // namespace dm

#endif  // DIRECTMESH_BASELINE_PMDB_PMDB_STORE_H_
