#include "baseline/pmdb/pmdb_query.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <set>

#include "mesh/extract.h"

namespace dm {

namespace {

/// Incrementally maintained approximation mesh during selective
/// refinement: adjacency sets over the current frontier.
class RefineMesh {
 public:
  void AddVertex(VertexId v) { adj_[v]; }
  bool Has(VertexId v) const { return adj_.count(v) > 0; }
  void AddEdge(VertexId a, VertexId b) {
    if (a == b) return;
    adj_[a].insert(b);
    adj_[b].insert(a);
  }
  std::vector<VertexId> Neighbors(VertexId v) const {
    auto it = adj_.find(v);
    if (it == adj_.end()) return {};
    return std::vector<VertexId>(it->second.begin(), it->second.end());
  }
  void RemoveVertex(VertexId v) {
    auto it = adj_.find(v);
    if (it == adj_.end()) return;
    for (VertexId n : it->second) adj_[n].erase(v);
    adj_.erase(it);
  }
  const std::unordered_map<VertexId, std::set<VertexId>>& adjacency() const {
    return adj_;
  }

 private:
  std::unordered_map<VertexId, std::set<VertexId>> adj_;
};

// Which side of the directed line a->b is p on (sign of the cross
// product in the footprint plane)?
double Side(const Point3& a, const Point3& b, const Point3& p) {
  return (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
}

}  // namespace

Result<const PmDbNode*> PmQueryProcessor::GetOrFetch(VertexId id,
                                                     NodeMap* nodes,
                                                     QueryStats* stats) {
  auto it = nodes->find(id);
  if (it == nodes->end()) {
    DM_ASSIGN_OR_RETURN(PmDbNode node, store_->FetchNodeById(id));
    ++stats->nodes_fetched;
    it = nodes->emplace(id, std::move(node)).first;
  }
  return &it->second;
}

Result<PmQueryResult> PmQueryProcessor::Run(
    const Rect& r, double fetch_lo,
    const std::function<double(const PmDbNode&)>& required_e) {
  QueryStats stats;
  const int64_t reads0 = store_->env()->stats().disk_reads;

  // Phase 1: bulk fetch with the quadtree range query.
  NodeMap nodes;
  {
    ++stats.range_queries;
    std::vector<uint64_t> rids;
    DM_RETURN_NOT_OK(store_->quadtree().RangeQuery(
        Box::FromRect(r, fetch_lo, store_->meta().max_lod), &rids));
    std::sort(rids.begin(), rids.end());
    for (uint64_t packed : rids) {
      DM_ASSIGN_OR_RETURN(PmDbNode node,
                          store_->FetchNode(RecordId::Unpack(packed)));
      ++stats.nodes_fetched;
      nodes.emplace(node.id, std::move(node));
    }
  }

  // Phase 2: top-down selective refinement from the root, fetching
  // every missing record individually.
  RefineMesh mesh;
  // Coarse-to-fine split order keeps the wings of each split present
  // in the frontier when the split runs.
  auto cmp = [&nodes](VertexId a, VertexId b) {
    return nodes.at(a).e_low < nodes.at(b).e_low;
  };
  std::priority_queue<VertexId, std::vector<VertexId>, decltype(cmp)> queue(
      cmp);

  DM_ASSIGN_OR_RETURN(const PmDbNode* root,
                      GetOrFetch(store_->meta().pm_root, &nodes, &stats));
  mesh.AddVertex(root->id);
  queue.push(root->id);

  while (!queue.empty()) {
    const VertexId pid = queue.top();
    queue.pop();
    const PmDbNode n = nodes.at(pid);  // copy: map may rehash below
    if (!n.footprint.Intersects(r)) continue;
    if (n.is_leaf() || n.e_low <= required_e(n)) continue;

    ++stats.refinement_splits;
    DM_ASSIGN_OR_RETURN(const PmDbNode* c1p,
                        GetOrFetch(n.child1, &nodes, &stats));
    const PmDbNode c1 = *c1p;
    DM_ASSIGN_OR_RETURN(const PmDbNode* c2p,
                        GetOrFetch(n.child2, &nodes, &stats));
    const PmDbNode c2 = *c2p;

    // Vertex split: replace the parent by its children and rewire the
    // parent's neighbours. Wings attach to both children; the rest of
    // the ring splits by which side of the wing line it falls on
    // (children lie on opposite sides, since the child edge crosses
    // it).
    const std::vector<VertexId> ring = mesh.Neighbors(pid);
    mesh.RemoveVertex(pid);
    mesh.AddVertex(c1.id);
    mesh.AddVertex(c2.id);
    mesh.AddEdge(c1.id, c2.id);

    const bool w1 = n.wing1 != kInvalidVertex && mesh.Has(n.wing1);
    const bool w2 = n.wing2 != kInvalidVertex && mesh.Has(n.wing2);
    if (w1) {
      mesh.AddEdge(c1.id, n.wing1);
      mesh.AddEdge(c2.id, n.wing1);
    }
    if (w2) {
      mesh.AddEdge(c1.id, n.wing2);
      mesh.AddEdge(c2.id, n.wing2);
    }
    for (VertexId nb : ring) {
      if (nb == n.wing1 || nb == n.wing2) continue;
      if (!mesh.Has(nb)) continue;
      bool to_c1;
      if (w1 && w2) {
        const Point3& a = nodes.at(n.wing1).pos;
        const Point3& b = nodes.at(n.wing2).pos;
        const double side_c1 = Side(a, b, c1.pos);
        const double side_nb = Side(a, b, nodes.at(nb).pos);
        to_c1 = side_c1 * side_nb >= 0;
      } else {
        // Boundary split: assign by proximity.
        const Point3& pn = nodes.at(nb).pos;
        to_c1 = DistanceXY(pn, c1.pos) <= DistanceXY(pn, c2.pos);
      }
      mesh.AddEdge(to_c1 ? c1.id : c2.id, nb);
    }

    queue.push(c1.id);
    queue.push(c2.id);
  }

  // Phase 3: assemble the result restricted to the ROI.
  const auto t0 = std::chrono::steady_clock::now();
  PmQueryResult result;
  std::unordered_map<VertexId, std::vector<VertexId>> adj;
  for (const auto& [v, nbrs] : mesh.adjacency()) {
    const PmDbNode& n = nodes.at(v);
    if (!r.Contains(n.pos.x, n.pos.y)) continue;
    result.vertices.push_back(v);
  }
  std::sort(result.vertices.begin(), result.vertices.end());
  std::set<VertexId> kept(result.vertices.begin(), result.vertices.end());
  for (VertexId v : result.vertices) {
    std::vector<VertexId> nbrs;
    for (VertexId nb : mesh.Neighbors(v)) {
      if (kept.count(nb)) nbrs.push_back(nb);
    }
    std::sort(nbrs.begin(), nbrs.end());
    adj.emplace(v, std::move(nbrs));
    result.positions.push_back(nodes.at(v).pos);
  }
  GraphView view;
  view.position = [&](VertexId v) { return nodes.at(v).pos; };
  view.neighbors = [&](VertexId v) -> const std::vector<VertexId>& {
    return adj.at(v);
  };
  result.triangles = ExtractTriangles(result.vertices, view);
  const auto t1 = std::chrono::steady_clock::now();

  stats.cpu_millis =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  stats.disk_accesses = store_->env()->stats().disk_reads - reads0;
  result.stats = stats;
  return result;
}

Result<PmQueryResult> PmQueryProcessor::Uniform(const Rect& r, double e) {
  return Run(r, e, [e](const PmDbNode&) { return e; });
}

Result<PmQueryResult> PmQueryProcessor::ViewDependent(const ViewQuery& q) {
  return Run(q.roi, q.e_min, [&q](const PmDbNode& n) {
    return q.RequiredE(n.pos.x, n.pos.y);
  });
}

}  // namespace dm
