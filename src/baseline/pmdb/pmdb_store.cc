#include "baseline/pmdb/pmdb_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/hilbert.h"

namespace dm {

namespace {
constexpr double kInfSentinel = std::numeric_limits<double>::max();

template <typename T>
void Append(std::vector<uint8_t>* out, T v) {
  const size_t n = out->size();
  out->resize(n + sizeof(T));
  std::memcpy(out->data() + n, &v, sizeof(T));
}
template <typename T>
T Read(const uint8_t*& p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}
}  // namespace

void PmDbNode::EncodeTo(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + kEncodedSize);
  Append<int64_t>(out, id);
  Append<int64_t>(out, parent);
  Append<int64_t>(out, child1);
  Append<int64_t>(out, child2);
  Append<int64_t>(out, wing1);
  Append<int64_t>(out, wing2);
  Append<double>(out, pos.x);
  Append<double>(out, pos.y);
  Append<double>(out, pos.z);
  Append<double>(out, e_low);
  Append<double>(out, std::isinf(e_high) ? kInfSentinel : e_high);
  Append<double>(out, footprint.lo_x);
  Append<double>(out, footprint.lo_y);
  Append<double>(out, footprint.hi_x);
  Append<double>(out, footprint.hi_y);
}

Result<PmDbNode> PmDbNode::Decode(const uint8_t* data, uint32_t size) {
  if (size != kEncodedSize) {
    return Status::Corruption("PM node record size mismatch");
  }
  const uint8_t* p = data;
  PmDbNode n;
  n.id = Read<int64_t>(p);
  n.parent = Read<int64_t>(p);
  n.child1 = Read<int64_t>(p);
  n.child2 = Read<int64_t>(p);
  n.wing1 = Read<int64_t>(p);
  n.wing2 = Read<int64_t>(p);
  n.pos.x = Read<double>(p);
  n.pos.y = Read<double>(p);
  n.pos.z = Read<double>(p);
  n.e_low = Read<double>(p);
  n.e_high = Read<double>(p);
  if (n.e_high == kInfSentinel) {
    n.e_high = std::numeric_limits<double>::infinity();
  }
  n.footprint.lo_x = Read<double>(p);
  n.footprint.lo_y = Read<double>(p);
  n.footprint.hi_x = Read<double>(p);
  n.footprint.hi_y = Read<double>(p);
  return n;
}

Result<PmDbStore> PmDbStore::Build(DbEnv* env, const PmTree& tree) {
  const int64_t total = tree.num_nodes();
  const Rect bounds = tree.bounds();

  // Records are clustered in the LOD-quadtree's leaf order — the same
  // clustered-storage treatment the DM store gets from its R*-tree, so
  // the two methods differ only in what the paper says they differ in.
  std::vector<LodQuadtree::Point> qpoints(static_cast<size_t>(total));
  for (VertexId i = 0; i < total; ++i) {
    const PmNode& n = tree.node(i);
    qpoints[static_cast<size_t>(i)] =
        LodQuadtree::Point{n.pos.x, n.pos.y, n.e_low};
  }
  const uint32_t leaf_cap = (env->page_size() - 64) / 32;
  const std::vector<size_t> order = LodQuadtree::ClusterOrder(
      qpoints, bounds, std::max(tree.max_lod(), 1e-12), leaf_cap);

  DM_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(env));
  DM_ASSIGN_OR_RETURN(
      LodQuadtree quadtree,
      LodQuadtree::Create(env, bounds, std::max(tree.max_lod(), 1e-12)));
  DM_ASSIGN_OR_RETURN(BPlusTree btree, BPlusTree::Create(env));
  PmDbStore store(env, std::move(heap), std::move(quadtree),
                  std::move(btree));

  std::vector<uint8_t> buf;
  for (size_t idx : order) {
    const PmNode& n = tree.node(static_cast<VertexId>(idx));
    PmDbNode rec;
    rec.id = n.id;
    rec.pos = n.pos;
    rec.e_low = n.e_low;
    rec.e_high = n.e_high;
    rec.parent = n.parent;
    rec.child1 = n.child1;
    rec.child2 = n.child2;
    rec.wing1 = n.wing1;
    rec.wing2 = n.wing2;
    rec.footprint = n.footprint;
    buf.clear();
    rec.EncodeTo(&buf);
    DM_ASSIGN_OR_RETURN(
        const RecordId rid,
        store.heap_.Append(buf.data(), static_cast<uint32_t>(buf.size())));
    // The LOD-quadtree treats every node — internal ones included — as
    // the point (x, y, e_low); the paper notes this is exactly what
    // degrades it versus an MBR-per-subtree index.
    DM_RETURN_NOT_OK(
        store.quadtree_.Insert(n.pos.x, n.pos.y, n.e_low, rid.Pack()));
    DM_RETURN_NOT_OK(store.btree_.Insert(n.id, rid.Pack()));
  }

  store.meta_.heap_first = store.heap_.first_page();
  store.meta_.quadtree_root = store.quadtree_.root();
  store.meta_.quadtree_size = store.quadtree_.size();
  store.meta_.btree_root = store.btree_.root();
  store.meta_.btree_size = store.btree_.size();
  store.meta_.pm_root = tree.root();
  store.meta_.num_nodes = total;
  store.meta_.max_lod = tree.max_lod();
  store.meta_.mean_lod = tree.mean_lod();
  store.meta_.bounds = bounds;
  return store;
}

Result<PmDbStore> PmDbStore::Open(DbEnv* env, const PmDbMeta& meta) {
  HeapFile heap = HeapFile::Open(env, meta.heap_first);
  LodQuadtree quadtree =
      LodQuadtree::Open(env, meta.quadtree_root, meta.quadtree_size);
  BPlusTree btree = BPlusTree::Open(env, meta.btree_root, meta.btree_size);
  PmDbStore store(env, std::move(heap), std::move(quadtree),
                  std::move(btree));
  store.meta_ = meta;
  return store;
}

Result<PmDbNode> PmDbStore::FetchNode(RecordId rid) const {
  std::vector<uint8_t> buf;
  DM_RETURN_NOT_OK(heap_.Get(rid, &buf));
  return PmDbNode::Decode(buf.data(), static_cast<uint32_t>(buf.size()));
}

Result<PmDbNode> PmDbStore::FetchNodeById(VertexId id) const {
  DM_ASSIGN_OR_RETURN(const std::optional<uint64_t> packed, btree_.Get(id));
  if (!packed.has_value()) {
    return Status::NotFound("node id " + std::to_string(id));
  }
  return FetchNode(RecordId::Unpack(*packed));
}

}  // namespace dm
