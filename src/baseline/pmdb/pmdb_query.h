#ifndef DIRECTMESH_BASELINE_PMDB_PMDB_QUERY_H_
#define DIRECTMESH_BASELINE_PMDB_PMDB_QUERY_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "baseline/pmdb/pmdb_store.h"
#include "dm/dm_query.h"

namespace dm {

/// Result of a PM-baseline query; same shape as DmQueryResult so the
/// benches and tests treat all methods uniformly.
using PmQueryResult = DmQueryResult;

/// Database-backed selective refinement over the PM tree, following
/// Hoppe's algorithm with the LOD-quadtree as the spatial index (the
/// paper's "PM approach ... implemented following the algorithms in
/// [9]", indexed per [20]).
///
/// A query first issues one 3D range query for the cube
/// r x [e, dataset max] — fetching the above-cut part of the subtree
/// that lies inside the ROI — then refines top-down from the root.
/// Every record the refinement needs that the cube did not cover (cut
/// nodes below e, ancestors whose own point lies outside the ROI) is
/// fetched individually through the B+-tree: this per-node traffic is
/// precisely the cost the paper's Direct Mesh removes.
class PmQueryProcessor {
 public:
  explicit PmQueryProcessor(PmDbStore* store) : store_(store) {}

  /// Viewpoint-independent Q(M, r, e).
  Result<PmQueryResult> Uniform(const Rect& r, double e);

  /// Viewpoint-dependent query; the fetch cube's top plane is the
  /// dataset maximum LOD (the paper: "the top plane is ... the maximum
  /// LOD of the data set (i.e., that of the root node)" for PM).
  Result<PmQueryResult> ViewDependent(const ViewQuery& q);

 private:
  using NodeMap = std::unordered_map<VertexId, PmDbNode>;

  Result<PmQueryResult> Run(
      const Rect& r, double fetch_lo,
      const std::function<double(const PmDbNode&)>& required_e);

  /// Gets a node from the map, fetching it by id on miss (charging the
  /// B+-tree + heap I/O that motivates the paper).
  Result<const PmDbNode*> GetOrFetch(VertexId id, NodeMap* nodes,
                                     QueryStats* stats);

  PmDbStore* store_;
};

}  // namespace dm

#endif  // DIRECTMESH_BASELINE_PMDB_PMDB_QUERY_H_
