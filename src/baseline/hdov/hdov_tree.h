#ifndef DIRECTMESH_BASELINE_HDOV_HDOV_TREE_H_
#define DIRECTMESH_BASELINE_HDOV_HDOV_TREE_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "dm/dm_query.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"
#include "storage/db_env.h"
#include "storage/heap_file.h"

namespace dm {

/// Build parameters of the HDoV-tree.
struct HdovOptions {
  /// The terrain is partitioned into grid_side x grid_side tiles,
  /// "which serve as the objects in the HDoV tree" (paper Section 6).
  /// Rounded down to a power of sqrt(fanout).
  int grid_side = 16;
  /// Children per directory node. R-tree nodes are page-sized, so the
  /// real structure has a large fanout — and since each level stores
  /// one approximation, large fanout means a coarse LOD ladder, which
  /// is the structural reason the HDoV/LOD-R-tree family over-fetches
  /// between levels. Must be a perfect square (arranged as
  /// sqrt(fanout) x sqrt(fanout) blocks).
  int fanout = 16;
  /// Resolution reduction per level of the hierarchy: an internal
  /// node's approximation is "created by combining and generalizing
  /// the meshes of all its children nodes" (the LOD-R-tree
  /// construction), keeping 1/generalization of the children's
  /// combined points. With fanout > generalization, node payloads grow
  /// toward the root — the whole-object retrieval granularity the
  /// paper criticizes. Setting it equal to `fanout` would keep every
  /// node the same size (unrealistically favorable).
  int generalization = 4;
  /// Number of viewpoint sectors for which per-node visibility is
  /// precomputed (the stored "degree of visibility").
  int visibility_sectors = 8;
};

/// Reopen handles and catalog of a built HDoV database.
struct HdovMeta {
  PageId heap_first = kInvalidPage;
  /// Record id (packed) of the root directory record.
  uint64_t root_record = 0;
  int64_t num_nodes = 0;
  double max_lod = 0.0;
  Rect bounds;
};

/// HDoV-tree (Shou et al., ICDE 2003): an LOD-R-tree over terrain
/// tiles with per-node visibility information.
///
/// Hierarchy: a balanced quad hierarchy over the tile grid (an R-tree
/// whose node regions nest perfectly, which is the best case for the
/// baseline). Every node stores one approximation of its region — the
/// PM cut whose LOD matches the node's level, computed so that each
/// node holds roughly the same number of points — using the paper's
/// "indexed-vertical storage scheme": the node's points are laid out
/// contiguously in the heap file, and the directory record holds
/// (first record, count) so a hit fetches exactly those pages.
///
/// Visibility: for each of `visibility_sectors` viewing directions,
/// the fraction of sample points of the node's region whose line of
/// sight toward a distant viewer in that direction clears the terrain
/// horizon (computed against per-tile max elevations). Low visibility
/// lets the query accept a coarser approximation, which is HDoV's
/// data-reduction idea; on open terrain most sectors are near fully
/// visible, which is why the paper finds it "does not help ... much".
class HdovTree {
 public:
  static Result<HdovTree> Build(DbEnv* env, const TriangleMesh& base,
                                const PmTree& tree,
                                const HdovOptions& options = {});

  static Result<HdovTree> Open(DbEnv* env, const HdovMeta& meta);

  const HdovMeta& meta() const { return meta_; }
  DbEnv* env() const { return env_; }

  /// Viewpoint-independent query: fetch, for every part of `r`, the
  /// shallowest node whose approximation LOD is <= e.
  Result<DmQueryResult> Uniform(const Rect& r, double e);

  /// Viewpoint-dependent query: the required LOD comes from the query
  /// plane; a node's visibility in the viewer's sector scales the
  /// acceptable error by 1/visibility (fully occluded regions accept
  /// any LOD). `viewer` is the viewpoint's footprint position (on the
  /// e_min edge of the plane). `use_visibility` = false ignores the
  /// stored visibility (plain LOD-R-tree behaviour), which the
  /// visibility ablation sweeps to reproduce the paper's finding that
  /// "the visibility selection does not help the HDoV-tree much"
  /// on open terrain.
  Result<DmQueryResult> ViewDependent(const ViewQuery& q, Point2 viewer,
                                      bool use_visibility = true);

 private:
  struct DirRecord;  // directory record codec (in .cc)

  HdovTree(DbEnv* env, HeapFile heap)
      : env_(env), heap_(std::move(heap)) {}

  /// `visibility(region, sectors)` returns the degree of visibility in
  /// [0, 1] for a node given its stored per-sector values.
  Status Traverse(
      const Rect& r, const std::function<double(const Rect&)>& required_e,
      const std::function<double(const Rect&, const std::vector<float>&)>&
          visibility,
      DmQueryResult* result, QueryStats* stats);

  DbEnv* env_;
  HeapFile heap_;
  HdovMeta meta_;
};

}  // namespace dm

#endif  // DIRECTMESH_BASELINE_HDOV_HDOV_TREE_H_
