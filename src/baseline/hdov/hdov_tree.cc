#include "baseline/hdov/hdov_tree.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>

#include "pm/cut_replay.h"

namespace dm {

namespace {

// Mesh-vertex record: what an LOD-R-tree node actually stores per
// vertex of its approximation mesh — position, shading normal, and the
// triangle fan (ids of the adjacent vertices in this LOD's mesh).
// Layout: [id i64][x y z f64][nx ny nz f64][fan_count u32][fan i64...]
struct PointRec {
  int64_t id = 0;
  double x = 0, y = 0, z = 0;
  double nx = 0, ny = 0, nz = 1;
  std::vector<int64_t> fan;

  uint32_t EncodedSize() const {
    return 8 + 48 + 4 + static_cast<uint32_t>(fan.size()) * 8;
  }
  void EncodeTo(std::vector<uint8_t>* out) const {
    out->clear();
    out->resize(EncodedSize());
    uint8_t* p = out->data();
    std::memcpy(p, &id, 8);
    std::memcpy(p + 8, &x, 8);
    std::memcpy(p + 16, &y, 8);
    std::memcpy(p + 24, &z, 8);
    std::memcpy(p + 32, &nx, 8);
    std::memcpy(p + 40, &ny, 8);
    std::memcpy(p + 48, &nz, 8);
    const uint32_t k = static_cast<uint32_t>(fan.size());
    std::memcpy(p + 56, &k, 4);
    std::memcpy(p + 60, fan.data(), static_cast<size_t>(k) * 8);
  }
  static bool Decode(const uint8_t* data, uint32_t size, PointRec* out) {
    if (size < 60) return false;
    std::memcpy(&out->id, data, 8);
    std::memcpy(&out->x, data + 8, 8);
    std::memcpy(&out->y, data + 16, 8);
    std::memcpy(&out->z, data + 24, 8);
    std::memcpy(&out->nx, data + 32, 8);
    std::memcpy(&out->ny, data + 40, 8);
    std::memcpy(&out->nz, data + 48, 8);
    uint32_t k = 0;
    std::memcpy(&k, data + 56, 4);
    if (size != 60 + k * 8) return false;
    out->fan.resize(k);
    std::memcpy(out->fan.data(), data + 60, static_cast<size_t>(k) * 8);
    return true;
  }
};

// Elevation angle of the line-of-sight rays used for horizon
// visibility (a viewer slightly above the terrain at great distance).
constexpr double kLosSlope = 0.08;  // ~4.6 degrees

template <typename T>
void Append(std::vector<uint8_t>* out, T v) {
  const size_t n = out->size();
  out->resize(n + sizeof(T));
  std::memcpy(out->data() + n, &v, sizeof(T));
}
template <typename T>
T Read(const uint8_t*& p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

}  // namespace

// Directory record: region rect, approximation LOD, level, the
// contiguous run of point records (first packed rid + count), the
// visibility sector values, and (for internal nodes) four child
// directory rids. Variable length.
struct HdovTree::DirRecord {
  Rect region;
  double lod = 0.0;
  int32_t level = 0;  // 0 = leaf (single tile)
  uint64_t first_point = 0;
  int64_t point_count = 0;
  std::vector<float> visibility;
  std::vector<uint64_t> children;  // empty for leaves

  void EncodeTo(std::vector<uint8_t>* out) const {
    Append<double>(out, region.lo_x);
    Append<double>(out, region.lo_y);
    Append<double>(out, region.hi_x);
    Append<double>(out, region.hi_y);
    Append<double>(out, lod);
    Append<int32_t>(out, level);
    Append<uint64_t>(out, first_point);
    Append<int64_t>(out, point_count);
    Append<uint32_t>(out, static_cast<uint32_t>(visibility.size()));
    for (float v : visibility) Append<float>(out, v);
    Append<uint32_t>(out, static_cast<uint32_t>(children.size()));
    for (uint64_t c : children) Append<uint64_t>(out, c);
  }

  static Result<DirRecord> Decode(const uint8_t* data, uint32_t size) {
    if (size < 8 * 5 + 4 + 8 + 8 + 4 + 4) {
      return Status::Corruption("HDoV directory record too small");
    }
    const uint8_t* p = data;
    DirRecord r;
    r.region.lo_x = Read<double>(p);
    r.region.lo_y = Read<double>(p);
    r.region.hi_x = Read<double>(p);
    r.region.hi_y = Read<double>(p);
    r.lod = Read<double>(p);
    r.level = Read<int32_t>(p);
    r.first_point = Read<uint64_t>(p);
    r.point_count = Read<int64_t>(p);
    const uint32_t nv = Read<uint32_t>(p);
    r.visibility.resize(nv);
    for (uint32_t i = 0; i < nv; ++i) r.visibility[i] = Read<float>(p);
    const uint32_t nc = Read<uint32_t>(p);
    r.children.resize(nc);
    for (uint32_t i = 0; i < nc; ++i) r.children[i] = Read<uint64_t>(p);
    return r;
  }
};

Result<HdovTree> HdovTree::Build(DbEnv* env, const TriangleMesh& base,
                                 const PmTree& tree,
                                 const HdovOptions& options) {
  // Blocks per side multiply by s = sqrt(fanout) per level; round the
  // grid to a power of s so the hierarchy is exact.
  const int s = std::max(
      2, static_cast<int>(std::lround(std::sqrt(options.fanout))));
  int grid = 1;
  while (grid * s <= options.grid_side) grid *= s;
  int depth_max = 0;
  for (int g = grid; g > 1; g /= s) ++depth_max;

  const Rect bounds = tree.bounds();
  const double wx = std::max(bounds.width(), 1e-12);
  const double wy = std::max(bounds.height(), 1e-12);

  // Per-tile maximum elevation, for the horizon visibility test.
  std::vector<double> tile_max(static_cast<size_t>(grid) * grid,
                               -1e300);
  auto tile_of = [&](double x, double y) {
    int tx = static_cast<int>((x - bounds.lo_x) / wx * grid);
    int ty = static_cast<int>((y - bounds.lo_y) / wy * grid);
    tx = std::clamp(tx, 0, grid - 1);
    ty = std::clamp(ty, 0, grid - 1);
    return ty * grid + tx;
  };
  for (const Point3& v : base.vertices()) {
    auto& m = tile_max[static_cast<size_t>(tile_of(v.x, v.y))];
    m = std::max(m, v.z);
  }

  // Per-depth approximation LOD: chosen so a node at depth d holds
  // roughly total/4^depth_max * 4^d... i.e. constant points per node.
  // |cut(e)| = leaves - #collapses with e_low <= e, so invert by
  // binary search over the sorted collapse LODs.
  std::vector<double> collapse_lods;
  collapse_lods.reserve(static_cast<size_t>(tree.num_nodes()));
  for (const PmNode& n : tree.nodes()) {
    if (!n.is_leaf()) collapse_lods.push_back(n.e_low);
  }
  std::sort(collapse_lods.begin(), collapse_lods.end());
  const int64_t leaves = tree.num_leaves();
  auto lod_for_cut_size = [&](int64_t target) {
    target = std::clamp<int64_t>(target, 1, leaves);
    // Need #collapses applied = leaves - target.
    const int64_t k = leaves - target;
    if (k <= 0) return 0.0;
    if (k >= static_cast<int64_t>(collapse_lods.size())) {
      return collapse_lods.back();
    }
    return collapse_lods[static_cast<size_t>(k - 1)];
  };
  std::vector<double> depth_lod(static_cast<size_t>(depth_max) + 1, 0.0);
  const int64_t r = std::max(2, options.generalization);
  for (int d = 0; d < depth_max; ++d) {
    // A node at height h = depth_max - d keeps 1/r of its children's
    // combined resolution, so the global cut backing this depth has
    // leaves / r^h points.
    int64_t divisor = 1;
    for (int i = 0; i < depth_max - d; ++i) divisor *= r;
    depth_lod[static_cast<size_t>(d)] =
        lod_for_cut_size(std::max<int64_t>(1, leaves / divisor));
  }
  depth_lod[static_cast<size_t>(depth_max)] = 0.0;  // leaves: full res

  // Global approximation meshes per depth: vertices plus adjacency,
  // from which each node's stored mesh records (vertex + normal +
  // triangle fan) are cut out.
  std::vector<QuotientCut> depth_cut(static_cast<size_t>(depth_max) + 1);
  for (int d = 0; d <= depth_max; ++d) {
    depth_cut[static_cast<size_t>(d)] = ComputeUniformCut(
        base, tree, bounds, depth_lod[static_cast<size_t>(d)]);
  }

  DM_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(env));
  HdovTree hdov(env, std::move(heap));
  int64_t dir_count = 0;

  // Horizon visibility of a region for a viewing sector: fraction of
  // 3x3 sample points whose LOS (rising at kLosSlope) clears every
  // tile-max along the ray to the terrain edge.
  const int sectors = std::max(1, options.visibility_sectors);
  auto region_visibility = [&](const Rect& region) {
    std::vector<float> vis(static_cast<size_t>(sectors), 0.0f);
    for (int s = 0; s < sectors; ++s) {
      const double theta = 2.0 * 3.14159265358979 * (s + 0.5) / sectors;
      const double dx = std::cos(theta);
      const double dy = std::sin(theta);
      int clear = 0;
      int total = 0;
      for (int sy = 0; sy < 3; ++sy) {
        for (int sx = 0; sx < 3; ++sx) {
          const double px =
              region.lo_x + (sx + 0.5) / 3.0 * region.width();
          const double py =
              region.lo_y + (sy + 0.5) / 3.0 * region.height();
          const double pz =
              tile_max[static_cast<size_t>(tile_of(px, py))];
          ++total;
          bool blocked = false;
          const double step = std::min(wx, wy) / grid;
          for (double t = step; ; t += step) {
            const double qx = px + dx * t;
            const double qy = py + dy * t;
            if (!bounds.Contains(qx, qy)) break;
            const double horizon = pz + kLosSlope * t;
            if (tile_max[static_cast<size_t>(tile_of(qx, qy))] >
                horizon) {
              blocked = true;
              break;
            }
          }
          if (!blocked) ++clear;
        }
      }
      vis[static_cast<size_t>(s)] =
          static_cast<float>(clear) / static_cast<float>(total);
    }
    return vis;
  };

  // Post-order build so children rids exist before the parent record.
  std::function<Result<uint64_t>(int, int, int)> build_node =
      [&](int d, int bx, int by) -> Result<uint64_t> {
    int blocks = 1;  // blocks per side at this depth: s^d
    for (int i = 0; i < d; ++i) blocks *= s;
    Rect region = Rect::Of(bounds.lo_x + wx * bx / blocks,
                           bounds.lo_y + wy * by / blocks,
                           bounds.lo_x + wx * (bx + 1) / blocks,
                           bounds.lo_y + wy * (by + 1) / blocks);
    DirRecord rec;
    rec.region = region;
    rec.level = depth_max - d;
    rec.lod = depth_lod[static_cast<size_t>(d)];
    rec.visibility = region_visibility(region);

    if (d < depth_max) {
      for (int cy = 0; cy < s; ++cy) {
        for (int cx = 0; cx < s; ++cx) {
          DM_ASSIGN_OR_RETURN(
              const uint64_t child,
              build_node(d + 1, bx * s + cx, by * s + cy));
          rec.children.push_back(child);
        }
      }
    }

    // This node's approximation mesh: the depth cut restricted to the
    // region, laid out contiguously ("indexed-vertical storage").
    bool first = true;
    std::vector<uint8_t> buf;
    const QuotientCut& cut = depth_cut[static_cast<size_t>(d)];
    for (VertexId v : cut.vertices) {
      const PmNode& n = tree.node(v);
      if (!region.Contains(n.pos.x, n.pos.y)) continue;
      PointRec pr;
      pr.id = v;
      pr.x = n.pos.x;
      pr.y = n.pos.y;
      pr.z = n.pos.z;
      auto adj_it = cut.adjacency.find(v);
      if (adj_it != cut.adjacency.end()) {
        pr.fan.assign(adj_it->second.begin(), adj_it->second.end());
      }
      // Shading normal: sum of the fan triangles' cross products.
      Point3 acc{0, 0, 0};
      if (pr.fan.size() >= 2) {
        std::vector<VertexId> ring(pr.fan.begin(), pr.fan.end());
        std::sort(ring.begin(), ring.end(), [&](VertexId a, VertexId b) {
          const Point3& pa = tree.node(a).pos;
          const Point3& pb = tree.node(b).pos;
          return std::atan2(pa.y - n.pos.y, pa.x - n.pos.x) <
                 std::atan2(pb.y - n.pos.y, pb.x - n.pos.x);
        });
        for (size_t i = 0; i < ring.size(); ++i) {
          const Point3& a = tree.node(ring[i]).pos;
          const Point3& b = tree.node(ring[(i + 1) % ring.size()]).pos;
          acc = acc + Cross(a - n.pos, b - n.pos);
        }
      }
      const double len = Norm(acc);
      if (len > 1e-12) {
        pr.nx = acc.x / len;
        pr.ny = acc.y / len;
        pr.nz = acc.z / len;
      }
      pr.EncodeTo(&buf);
      DM_ASSIGN_OR_RETURN(
          const RecordId rid,
          hdov.heap_.Append(buf.data(), static_cast<uint32_t>(buf.size())));
      if (first) {
        rec.first_point = rid.Pack();
        first = false;
      }
      ++rec.point_count;
    }

    buf.clear();
    rec.EncodeTo(&buf);
    DM_ASSIGN_OR_RETURN(
        const RecordId rid,
        hdov.heap_.Append(buf.data(), static_cast<uint32_t>(buf.size())));
    ++dir_count;
    return rid.Pack();
  };

  DM_ASSIGN_OR_RETURN(const uint64_t root, build_node(0, 0, 0));
  hdov.meta_.heap_first = hdov.heap_.first_page();
  hdov.meta_.root_record = root;
  hdov.meta_.num_nodes = dir_count;
  hdov.meta_.max_lod = tree.max_lod();
  hdov.meta_.bounds = bounds;
  return hdov;
}

Result<HdovTree> HdovTree::Open(DbEnv* env, const HdovMeta& meta) {
  HeapFile heap = HeapFile::Open(env, meta.heap_first);
  HdovTree hdov(env, std::move(heap));
  hdov.meta_ = meta;
  return hdov;
}

Status HdovTree::Traverse(
    const Rect& r, const std::function<double(const Rect&)>& required_e,
    const std::function<double(const Rect&, const std::vector<float>&)>&
        visibility,
    DmQueryResult* result, QueryStats* stats) {
  std::vector<uint64_t> stack{meta_.root_record};
  std::vector<uint8_t> buf;
  while (!stack.empty()) {
    const uint64_t packed = stack.back();
    stack.pop_back();
    DM_RETURN_NOT_OK(heap_.Get(RecordId::Unpack(packed), &buf));
    DM_ASSIGN_OR_RETURN(
        DirRecord dir,
        DirRecord::Decode(buf.data(), static_cast<uint32_t>(buf.size())));
    ++stats->nodes_fetched;
    if (!dir.region.Intersects(r)) continue;

    // A barely visible region tolerates a proportionally larger
    // approximation error — HDoV's data reduction.
    const double vis = std::max(0.05, visibility(dir.region,
                                                 dir.visibility));
    const double req = required_e(dir.region) / vis;
    if (dir.lod <= req || dir.children.empty()) {
      // Fetch this node's contiguous point run; records were appended
      // back-to-back, so the run walks the heap page chain.
      RecordId rid = RecordId::Unpack(dir.first_point);
      for (int64_t i = 0; i < dir.point_count; ++i) {
        DM_RETURN_NOT_OK(heap_.Get(rid, &buf));
        PointRec pr;
        if (!PointRec::Decode(buf.data(), static_cast<uint32_t>(buf.size()),
                              &pr)) {
          return Status::Corruption("HDoV mesh record malformed");
        }
        if (r.Contains(pr.x, pr.y)) {
          result->vertices.push_back(pr.id);
          result->positions.push_back(Point3{pr.x, pr.y, pr.z});
        }
        // Advance to the next record of the run.
        DM_ASSIGN_OR_RETURN(PageGuard page, env_->pool().Fetch(rid.page));
        uint16_t slot_count;
        std::memcpy(&slot_count, page.data() + 4, 2);
        ++rid.slot;
        if (rid.slot >= slot_count) {
          PageId next;
          std::memcpy(&next, page.data(), 4);  // heap next_page header
          rid.page = next;
          rid.slot = 0;
        }
        if (rid.page == kInvalidPage && i + 1 < dir.point_count) {
          return Status::Corruption("HDoV point run truncated");
        }
      }
      continue;
    }
    for (uint64_t c : dir.children) stack.push_back(c);
  }
  return Status::OK();
}

Result<DmQueryResult> HdovTree::Uniform(const Rect& r, double e) {
  DmQueryResult result;
  QueryStats stats;
  const int64_t reads0 = env_->stats().disk_reads;
  DM_RETURN_NOT_OK(Traverse(
      r, [e](const Rect&) { return e; },
      [](const Rect&, const std::vector<float>&) { return 1.0; }, &result,
      &stats));
  stats.disk_accesses = env_->stats().disk_reads - reads0;
  result.stats = stats;
  return result;
}

Result<DmQueryResult> HdovTree::ViewDependent(const ViewQuery& q,
                                              Point2 viewer,
                                              bool use_visibility) {
  DmQueryResult result;
  QueryStats stats;
  const int64_t reads0 = env_->stats().disk_reads;

  DM_RETURN_NOT_OK(Traverse(
      q.roi,
      [&q](const Rect& region) {
        // Most demanding LOD over the region (conservative: the finer
        // of the two plane corners).
        const double e00 = q.RequiredE(region.lo_x, region.lo_y);
        const double e11 = q.RequiredE(region.hi_x, region.hi_y);
        return std::min(e00, e11);
      },
      [viewer, use_visibility](const Rect& region,
                               const std::vector<float>& sectors) {
        if (!use_visibility || sectors.empty()) return 1.0;
        // Stored degree of visibility for the sector facing the
        // viewer (the direction the region is seen from).
        const double cx = (region.lo_x + region.hi_x) / 2;
        const double cy = (region.lo_y + region.hi_y) / 2;
        const double theta =
            std::atan2(viewer.y - cy, viewer.x - cx);
        const double two_pi = 2.0 * 3.14159265358979;
        double frac = theta / two_pi;
        frac -= std::floor(frac);
        const size_t s = std::min(
            sectors.size() - 1,
            static_cast<size_t>(frac * static_cast<double>(sectors.size())));
        return static_cast<double>(sectors[s]);
      },
      &result, &stats));
  stats.disk_accesses = env_->stats().disk_reads - reads0;
  result.stats = stats;
  return result;
}

}  // namespace dm
