#include "mesh/extract.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dm {

std::vector<Triangle> ExtractTriangles(const std::vector<VertexId>& vertices,
                                       const GraphView& graph) {
  std::vector<Triangle> out;
  // A planar triangulation has < 2V faces; one reservation replaces
  // the growth reallocations on the query hot path.
  out.reserve(vertices.size() * 2);
  // Scratch for one vertex's angularly-sorted neighbour ring; its
  // capacity persists across calls so the steady state allocates
  // nothing beyond the returned triangle list.
  thread_local std::vector<VertexId> ring;
  for (VertexId u : vertices) {
    const auto& nbrs = graph.neighbors(u);
    // The mutual-adjacency test below binary-searches neighbour lists.
    DM_DCHECK(std::is_sorted(nbrs.begin(), nbrs.end()))
        << "neighbour list of vertex " << u << " is not sorted";
    if (nbrs.size() < 2) continue;
    const Point3 pu = graph.position(u);
    ring.assign(nbrs.begin(), nbrs.end());
    std::sort(ring.begin(), ring.end(), [&](VertexId a, VertexId b) {
      const Point3 pa = graph.position(a);
      const Point3 pb = graph.position(b);
      return std::atan2(pa.y - pu.y, pa.x - pu.x) <
             std::atan2(pb.y - pu.y, pb.x - pu.x);
    });
    // A face (u, a, b) requires a and b to be angularly consecutive
    // around u (otherwise some neighbour lies inside the wedge and the
    // 3-cycle is not empty), mutually adjacent, and CCW (the
    // wrap-around pair of a boundary fan spans the reflex wedge and is
    // CW, which drops it). Each face is emitted once, from its
    // minimum-id corner.
    const size_t k = ring.size();
    for (size_t i = 0; i < k; ++i) {
      const VertexId a = ring[i];
      const VertexId b = ring[(i + 1) % k];
      if (a == b || a < u || b < u) continue;
      const auto& na = graph.neighbors(a);
      if (!std::binary_search(na.begin(), na.end(), b)) continue;
      const Point3 pa = graph.position(a);
      const Point3 pb = graph.position(b);
      const double cross = (pa.x - pu.x) * (pb.y - pu.y) -
                           (pa.y - pu.y) * (pb.x - pu.x);
      if (cross <= 0) continue;
      out.push_back(Triangle{{u, a, b}});
    }
  }
  return out;
}

}  // namespace dm
