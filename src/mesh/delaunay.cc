#include "mesh/delaunay.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace dm {

namespace {

double Orient2d(const Point3& a, const Point3& b, const Point3& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

}  // namespace

bool InCircumcircle(const Point3& a, const Point3& b, const Point3& c,
                    const Point3& p) {
  // Standard 3x3 incircle determinant, translated to p for stability.
  const double ax = a.x - p.x;
  const double ay = a.y - p.y;
  const double bx = b.x - p.x;
  const double by = b.y - p.y;
  const double cx = c.x - p.x;
  const double cy = c.y - p.y;
  const double det =
      (ax * ax + ay * ay) * (bx * cy - cx * by) -
      (bx * bx + by * by) * (ax * cy - cx * ay) +
      (cx * cx + cy * cy) * (ax * by - bx * ay);
  return det > 0.0;
}

Result<TriangleMesh> DelaunayTriangulate(std::vector<Point3> points) {
  const int64_t n = static_cast<int64_t>(points.size());
  if (n < 3) {
    return Status::InvalidArgument("need at least 3 points");
  }
  {
    // Terrain samples must have unique footprints.
    std::set<std::pair<double, double>> seen;
    for (const Point3& p : points) {
      if (!seen.emplace(p.x, p.y).second) {
        return Status::InvalidArgument("duplicate footprint in input");
      }
    }
  }

  // Super-triangle enclosing everything by a wide margin.
  Rect bounds;
  for (const Point3& p : points) bounds.ExpandToInclude(p.x, p.y);
  const double cx = (bounds.lo_x + bounds.hi_x) / 2;
  const double cy = (bounds.lo_y + bounds.hi_y) / 2;
  const double span =
      std::max({bounds.width(), bounds.height(), 1.0}) * 64.0;
  points.push_back(Point3{cx - span, cy - span, 0});      // id n
  points.push_back(Point3{cx + span, cy - span, 0});      // id n + 1
  points.push_back(Point3{cx, cy + span, 0});             // id n + 2

  struct Tri {
    VertexId a, b, c;  // CCW
    bool alive = true;
  };
  std::vector<Tri> tris;
  tris.push_back(Tri{n, n + 1, n + 2});

  // Insert points one at a time: collect the cavity (triangles whose
  // circumcircle contains the point), remove it, and re-triangulate
  // against its boundary edges.
  std::vector<size_t> cavity;
  std::map<std::pair<VertexId, VertexId>, int> edge_use;
  for (VertexId pid = 0; pid < n; ++pid) {
    const Point3& p = points[static_cast<size_t>(pid)];
    cavity.clear();
    for (size_t t = 0; t < tris.size(); ++t) {
      if (!tris[t].alive) continue;
      const Tri& tri = tris[t];
      if (InCircumcircle(points[static_cast<size_t>(tri.a)],
                         points[static_cast<size_t>(tri.b)],
                         points[static_cast<size_t>(tri.c)], p)) {
        cavity.push_back(t);
      }
    }
    if (cavity.empty()) {
      // Degenerate numeric corner (collinear inputs): reject rather
      // than build a broken mesh.
      return Status::Internal("point fell outside every circumcircle");
    }
    // Boundary of the cavity: edges used by exactly one cavity
    // triangle.
    edge_use.clear();
    for (size_t t : cavity) {
      const Tri& tri = tris[t];
      const std::pair<VertexId, VertexId> edges[3] = {
          {tri.a, tri.b}, {tri.b, tri.c}, {tri.c, tri.a}};
      for (auto [u, v] : edges) {
        auto key = u < v ? std::make_pair(u, v) : std::make_pair(v, u);
        ++edge_use[key];
      }
      tris[t].alive = false;
    }
    for (size_t t : cavity) {
      const Tri tri = tris[t];
      const std::pair<VertexId, VertexId> edges[3] = {
          {tri.a, tri.b}, {tri.b, tri.c}, {tri.c, tri.a}};
      for (auto [u, v] : edges) {
        auto key = u < v ? std::make_pair(u, v) : std::make_pair(v, u);
        if (edge_use[key] != 1) continue;  // interior to the cavity
        // New triangle (u, v, p), oriented CCW.
        Tri fresh{u, v, pid};
        if (Orient2d(points[static_cast<size_t>(u)],
                     points[static_cast<size_t>(v)], p) < 0) {
          std::swap(fresh.a, fresh.b);
        }
        tris.push_back(fresh);
      }
    }
    // Periodic compaction keeps the scan roughly proportional to the
    // live triangle count.
    if (tris.size() > 64 && tris.size() > 4 * (static_cast<size_t>(pid) + 4) * 2) {
      std::vector<Tri> live;
      live.reserve(tris.size());
      for (const Tri& t : tris) {
        if (t.alive) live.push_back(t);
      }
      tris = std::move(live);
    }
  }

  // Drop triangles touching the super-triangle.
  std::vector<Triangle> out;
  for (const Tri& t : tris) {
    if (!t.alive) continue;
    if (t.a >= n || t.b >= n || t.c >= n) continue;
    out.push_back(Triangle{{t.a, t.b, t.c}});
  }
  points.resize(static_cast<size_t>(n));
  return TriangleMesh(std::move(points), std::move(out));
}

}  // namespace dm
