#ifndef DIRECTMESH_MESH_ADJACENCY_H_
#define DIRECTMESH_MESH_ADJACENCY_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "mesh/triangle_mesh.h"

namespace dm {

/// Result of collapsing an edge (u, v) into a new parent vertex.
struct CollapseRecord {
  VertexId parent = kInvalidVertex;
  VertexId child1 = kInvalidVertex;
  VertexId child2 = kInvalidVertex;
  /// Vertices adjacent to both children at collapse time (the PM
  /// "wing" vertices); kInvalidVertex when absent (boundary edges have
  /// one wing, the final edge of the mesh has none).
  VertexId wing1 = kInvalidVertex;
  VertexId wing2 = kInvalidVertex;
};

/// Editable terrain mesh keyed by vertex adjacency.
///
/// Terrain meshes are planar triangulations of a height field, so the
/// full mesh is recoverable from the adjacency graph alone (faces are
/// the empty 3-cycles); this lets edge collapses run without
/// maintaining face lists. New vertices created by collapses get fresh
/// ids above the original vertex range, matching the paper's PM
/// construction where "the parent node is a newly generated data
/// point".
class AdjacencyMesh {
 public:
  /// Builds the adjacency graph of an indexed mesh. All vertices start
  /// alive.
  explicit AdjacencyMesh(const TriangleMesh& mesh);

  /// Builds an empty mesh with `n` isolated alive vertices at the given
  /// positions (used by tests).
  explicit AdjacencyMesh(std::vector<Point3> positions);

  int64_t num_vertices_total() const {
    return static_cast<int64_t>(positions_.size());
  }
  int64_t num_alive() const { return num_alive_; }
  int64_t num_edges() const { return num_edges_; }

  bool IsAlive(VertexId v) const { return alive_[static_cast<size_t>(v)]; }
  const Point3& position(VertexId v) const {
    return positions_[static_cast<size_t>(v)];
  }
  const std::vector<VertexId>& neighbors(VertexId v) const {
    return adj_[static_cast<size_t>(v)];
  }

  bool HasEdge(VertexId u, VertexId v) const;

  /// Vertices adjacent to both u and v, in increasing id order.
  std::vector<VertexId> CommonNeighbors(VertexId u, VertexId v) const;

  /// True if collapsing edge (u, v) keeps the triangulation manifold:
  /// the edge exists and u, v share at most two neighbours (the link
  /// condition for planar triangulations).
  bool CanCollapse(VertexId u, VertexId v) const;

  /// Adds an explicit edge (used by tests and the reconstructor).
  void AddEdge(VertexId u, VertexId v);

  /// Collapses edge (u, v) into a new vertex at `parent_pos`.
  /// Requires CanCollapse(u, v). The new vertex inherits the union of
  /// the children's neighbourhoods.
  CollapseRecord Collapse(VertexId u, VertexId v, const Point3& parent_pos);

  /// Contracts u and v into a new vertex without requiring the edge or
  /// the link condition (graph contraction). Used when replaying a
  /// recorded collapse sequence in a different order, where the link
  /// condition that held during recording need not hold locally.
  CollapseRecord ContractUnchecked(VertexId u, VertexId v,
                                   const Point3& parent_pos);

  /// All alive vertex ids, increasing.
  std::vector<VertexId> AliveVertices() const;

 private:
  CollapseRecord CollapseImpl(VertexId u, VertexId v,
                              const Point3& parent_pos);
  VertexId AddVertex(const Point3& pos);
  void RemoveEdgeInternal(VertexId u, VertexId v);
  void AddEdgeInternal(VertexId u, VertexId v);

  std::vector<Point3> positions_;
  std::vector<std::vector<VertexId>> adj_;  // sorted neighbour lists
  std::vector<bool> alive_;
  int64_t num_alive_ = 0;
  int64_t num_edges_ = 0;
};

}  // namespace dm

#endif  // DIRECTMESH_MESH_ADJACENCY_H_
