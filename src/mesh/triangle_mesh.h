#ifndef DIRECTMESH_MESH_TRIANGLE_MESH_H_
#define DIRECTMESH_MESH_TRIANGLE_MESH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "dem/dem_grid.h"

namespace dm {

/// A triangle: three vertex indices, counter-clockwise in the (x, y)
/// projection (terrain meshes are height fields, so the projection is
/// injective and orientation is well defined).
struct Triangle {
  std::array<VertexId, 3> v;

  VertexId operator[](int i) const { return v[i]; }
};

/// An indexed triangle mesh over terrain points. Immutable container;
/// the editable structure used during simplification is AdjacencyMesh.
class TriangleMesh {
 public:
  TriangleMesh() = default;
  TriangleMesh(std::vector<Point3> vertices, std::vector<Triangle> triangles)
      : vertices_(std::move(vertices)), triangles_(std::move(triangles)) {}

  int64_t num_vertices() const {
    return static_cast<int64_t>(vertices_.size());
  }
  int64_t num_triangles() const {
    return static_cast<int64_t>(triangles_.size());
  }

  const Point3& vertex(VertexId id) const {
    return vertices_[static_cast<size_t>(id)];
  }
  const std::vector<Point3>& vertices() const { return vertices_; }
  const std::vector<Triangle>& triangles() const { return triangles_; }

  /// Footprint bounding rectangle.
  Rect Bounds() const;

 private:
  std::vector<Point3> vertices_;
  std::vector<Triangle> triangles_;
};

/// Triangulates a regular DEM grid: each cell is split along the
/// diagonal whose endpoints are closer in elevation (reduces slivers on
/// ridge lines). Vertex k corresponds to grid sample
/// (k % width, k / width).
TriangleMesh TriangulateDem(const DemGrid& grid);

}  // namespace dm

#endif  // DIRECTMESH_MESH_TRIANGLE_MESH_H_
