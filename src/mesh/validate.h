#ifndef DIRECTMESH_MESH_VALIDATE_H_
#define DIRECTMESH_MESH_VALIDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/triangle_mesh.h"

namespace dm {

/// Structural statistics of a triangle soup, used by tests to check
/// that reconstructed approximations are valid terrain triangulations.
struct MeshStats {
  int64_t num_vertices = 0;
  int64_t num_triangles = 0;
  int64_t num_edges = 0;
  /// Edges incident to exactly one triangle (boundary edges).
  int64_t boundary_edges = 0;
  /// Edges incident to more than two triangles (non-manifold; must be 0
  /// for a valid terrain mesh).
  int64_t nonmanifold_edges = 0;
  /// Triangles listed more than once (must be 0).
  int64_t duplicate_triangles = 0;
  /// Triangles with zero footprint area or repeated vertices (must be 0).
  int64_t degenerate_triangles = 0;
  /// V - E + F counting triangles only; equals 1 for a triangulated
  /// topological disk.
  int64_t euler_characteristic = 0;

  bool IsManifold() const {
    return nonmanifold_edges == 0 && duplicate_triangles == 0 &&
           degenerate_triangles == 0;
  }
  std::string ToString() const;
};

/// Computes MeshStats over explicit triangles; positions are looked up
/// through the parallel `vertex_ids`/`positions` arrays.
MeshStats ComputeMeshStats(const std::vector<VertexId>& vertex_ids,
                           const std::vector<Point3>& positions,
                           const std::vector<Triangle>& triangles);

}  // namespace dm

#endif  // DIRECTMESH_MESH_VALIDATE_H_
