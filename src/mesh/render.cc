#include "mesh/render.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>

namespace dm {

Status RenderHillshade(const std::vector<VertexId>& vertex_ids,
                       const std::vector<Point3>& positions,
                       const std::vector<Triangle>& triangles,
                       const std::string& path,
                       const RenderOptions& options) {
  if (vertex_ids.size() != positions.size()) {
    return Status::InvalidArgument("vertex_ids/positions size mismatch");
  }
  if (options.width <= 0 || options.height <= 0) {
    return Status::InvalidArgument("non-positive image size");
  }
  std::unordered_map<VertexId, const Point3*> pos;
  pos.reserve(vertex_ids.size());
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    pos[vertex_ids[i]] = &positions[i];
  }

  Rect bounds;
  double z_lo = std::numeric_limits<double>::infinity();
  double z_hi = -z_lo;
  for (const Point3& p : positions) {
    bounds.ExpandToInclude(p.x, p.y);
    z_lo = std::min(z_lo, p.z);
    z_hi = std::max(z_hi, p.z);
  }
  if (bounds.empty()) return Status::InvalidArgument("empty mesh");
  const double wx = std::max(bounds.width(), 1e-12);
  const double wy = std::max(bounds.height(), 1e-12);
  const double zspan = std::max(z_hi - z_lo, 1e-12);

  const int W = options.width;
  const int H = options.height;
  std::vector<double> zbuf(static_cast<size_t>(W) * H,
                           -std::numeric_limits<double>::infinity());
  std::vector<uint8_t> rgb(static_cast<size_t>(W) * H * 3, 0);

  Point3 light = options.light;
  const double ln = Norm(light);
  if (ln < 1e-12) return Status::InvalidArgument("degenerate light");
  light = light * (1.0 / ln);

  auto to_px = [&](const Point3& p, double* x, double* y) {
    *x = (p.x - bounds.lo_x) / wx * (W - 1);
    // Image rows run top-down; terrain y runs up.
    *y = (1.0 - (p.y - bounds.lo_y) / wy) * (H - 1);
  };

  for (const Triangle& t : triangles) {
    auto a_it = pos.find(t[0]);
    auto b_it = pos.find(t[1]);
    auto c_it = pos.find(t[2]);
    if (a_it == pos.end() || b_it == pos.end() || c_it == pos.end()) {
      return Status::InvalidArgument("triangle references unknown vertex");
    }
    Point3 a = *a_it->second;
    Point3 b = *b_it->second;
    Point3 c = *c_it->second;
    a.z *= options.z_scale;
    b.z *= options.z_scale;
    c.z *= options.z_scale;

    Point3 n = Cross(b - a, c - a);
    const double nn = Norm(n);
    if (nn < 1e-12) continue;
    n = n * (1.0 / nn);
    if (n.z < 0) n = n * -1.0;  // height field: normals point up
    // Lambert term over a small ambient floor, so shadowed slopes stay
    // readable instead of going black.
    const double shade =
        0.15 + 0.85 * std::clamp(Dot(n, light), 0.0, 1.0);
    // Elevation tint from the triangle centroid.
    const double tz = ((a.z + b.z + c.z) / 3.0 / options.z_scale - z_lo) /
                      zspan;

    double ax, ay, bx, by, cx, cy;
    to_px(a, &ax, &ay);
    to_px(b, &bx, &by);
    to_px(c, &cx, &cy);
    const int x0 = std::max(0, static_cast<int>(
                                   std::floor(std::min({ax, bx, cx}))));
    const int x1 = std::min(W - 1, static_cast<int>(
                                       std::ceil(std::max({ax, bx, cx}))));
    const int y0 = std::max(0, static_cast<int>(
                                   std::floor(std::min({ay, by, cy}))));
    const int y1 = std::min(H - 1, static_cast<int>(
                                       std::ceil(std::max({ay, by, cy}))));
    const double den = (by - ay) * (cx - ax) - (bx - ax) * (cy - ay);
    if (std::fabs(den) < 1e-12) continue;
    for (int py = y0; py <= y1; ++py) {
      for (int px = x0; px <= x1; ++px) {
        // Barycentric coordinates of the pixel center.
        const double l1 = ((py - ay) * (cx - ax) - (px - ax) * (cy - ay)) /
                          den;
        const double l2 = ((px - ax) * (by - ay) - (py - ay) * (bx - ax)) /
                          den;
        const double l0 = 1.0 - l1 - l2;
        if (l0 < -1e-9 || l1 < -1e-9 || l2 < -1e-9) continue;
        const double z = l0 * a.z + l1 * b.z + l2 * c.z;
        const size_t idx = static_cast<size_t>(py) * W + px;
        if (z <= zbuf[idx]) continue;
        zbuf[idx] = z;
        // Hypsometric-ish tint: green lowlands to white peaks,
        // modulated by the hillshade.
        const double r = 0.45 + 0.55 * tz;
        const double g = 0.65 + 0.25 * tz;
        const double bch = 0.40 + 0.60 * tz;
        rgb[idx * 3 + 0] =
            static_cast<uint8_t>(std::clamp(r * shade, 0.0, 1.0) * 255);
        rgb[idx * 3 + 1] =
            static_cast<uint8_t>(std::clamp(g * shade, 0.0, 1.0) * 255);
        rgb[idx * 3 + 2] =
            static_cast<uint8_t>(std::clamp(bch * shade, 0.0, 1.0) * 255);
      }
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fprintf(f, "P6\n%d %d\n255\n", W, H);
  const bool ok = std::fwrite(rgb.data(), 1, rgb.size(), f) == rgb.size();
  std::fclose(f);
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace dm
