#ifndef DIRECTMESH_MESH_OBJ_IO_H_
#define DIRECTMESH_MESH_OBJ_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mesh/triangle_mesh.h"

namespace dm {

/// Writes a Wavefront OBJ file for a mesh given by explicit vertex
/// positions and triangles indexing into `vertex_ids` (arbitrary,
/// possibly sparse ids). Positions are looked up via the parallel
/// arrays: `vertex_ids[i]` is at `positions[i]`.
Status WriteObj(const std::vector<VertexId>& vertex_ids,
                const std::vector<Point3>& positions,
                const std::vector<Triangle>& triangles,
                const std::string& path);

/// Convenience overload for a TriangleMesh (dense ids).
Status WriteObj(const TriangleMesh& mesh, const std::string& path);

}  // namespace dm

#endif  // DIRECTMESH_MESH_OBJ_IO_H_
