#include "mesh/validate.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace dm {

std::string MeshStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "V=%lld T=%lld E=%lld boundary=%lld nonmanifold=%lld "
                "dup=%lld degen=%lld chi=%lld",
                static_cast<long long>(num_vertices),
                static_cast<long long>(num_triangles),
                static_cast<long long>(num_edges),
                static_cast<long long>(boundary_edges),
                static_cast<long long>(nonmanifold_edges),
                static_cast<long long>(duplicate_triangles),
                static_cast<long long>(degenerate_triangles),
                static_cast<long long>(euler_characteristic));
  return buf;
}

MeshStats ComputeMeshStats(const std::vector<VertexId>& vertex_ids,
                           const std::vector<Point3>& positions,
                           const std::vector<Triangle>& triangles) {
  MeshStats stats;
  stats.num_vertices = static_cast<int64_t>(vertex_ids.size());
  stats.num_triangles = static_cast<int64_t>(triangles.size());

  std::unordered_map<VertexId, const Point3*> pos;
  pos.reserve(vertex_ids.size());
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    pos[vertex_ids[i]] = &positions[i];
  }

  std::map<std::pair<VertexId, VertexId>, int> edge_count;
  std::map<std::array<VertexId, 3>, int> tri_count;
  for (const Triangle& t : triangles) {
    std::array<VertexId, 3> key = t.v;
    std::sort(key.begin(), key.end());
    if (key[0] == key[1] || key[1] == key[2]) {
      ++stats.degenerate_triangles;
      continue;
    }
    if (++tri_count[key] > 1) ++stats.duplicate_triangles;
    for (int i = 0; i < 3; ++i) {
      VertexId a = t[i];
      VertexId b = t[(i + 1) % 3];
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
    }
    // Footprint area check.
    auto pa = pos.find(t[0]);
    auto pb = pos.find(t[1]);
    auto pc = pos.find(t[2]);
    if (pa != pos.end() && pb != pos.end() && pc != pos.end()) {
      const double cross =
          (pb->second->x - pa->second->x) * (pc->second->y - pa->second->y) -
          (pb->second->y - pa->second->y) * (pc->second->x - pa->second->x);
      if (cross == 0.0) ++stats.degenerate_triangles;
    }
  }
  stats.num_edges = static_cast<int64_t>(edge_count.size());
  for (const auto& [edge, count] : edge_count) {
    if (count == 1) ++stats.boundary_edges;
    if (count > 2) ++stats.nonmanifold_edges;
  }
  stats.euler_characteristic =
      stats.num_vertices - stats.num_edges + stats.num_triangles;
  return stats;
}

}  // namespace dm
