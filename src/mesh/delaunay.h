#ifndef DIRECTMESH_MESH_DELAUNAY_H_
#define DIRECTMESH_MESH_DELAUNAY_H_

#include <vector>

#include "common/status.h"
#include "mesh/triangle_mesh.h"

namespace dm {

/// Delaunay triangulation of scattered terrain points (Bowyer-Watson
/// with a super-triangle). The paper's surfaces are "a regular or
/// irregular mesh of millions of 3D points"; this is the irregular
/// (TIN) entry point of the pipeline — the output feeds SimplifyMesh /
/// PmTree::Build / DmStore::Build exactly like a gridded DEM.
///
/// Points are triangulated by their (x, y) footprint; z is carried
/// through. Duplicated footprints are rejected (a terrain sample set
/// has one elevation per location). Runtime is O(n^2) worst case and
/// ~O(n^1.5) on shuffled realistic inputs — intended for datasets up
/// to a few hundred thousand points.
Result<TriangleMesh> DelaunayTriangulate(std::vector<Point3> points);

/// True if `p` lies strictly inside the circumcircle of (a, b, c)
/// (counter-clockwise). Exposed for tests.
bool InCircumcircle(const Point3& a, const Point3& b, const Point3& c,
                    const Point3& p);

}  // namespace dm

#endif  // DIRECTMESH_MESH_DELAUNAY_H_
