#include "mesh/adjacency.h"

#include <algorithm>
#include "common/check.h"

namespace dm {

AdjacencyMesh::AdjacencyMesh(const TriangleMesh& mesh)
    : positions_(mesh.vertices()),
      adj_(mesh.vertices().size()),
      alive_(mesh.vertices().size(), true),
      num_alive_(static_cast<int64_t>(mesh.vertices().size())) {
  for (const Triangle& t : mesh.triangles()) {
    AddEdge(t[0], t[1]);
    AddEdge(t[1], t[2]);
    AddEdge(t[2], t[0]);
  }
}

AdjacencyMesh::AdjacencyMesh(std::vector<Point3> positions)
    : positions_(std::move(positions)),
      adj_(positions_.size()),
      alive_(positions_.size(), true),
      num_alive_(static_cast<int64_t>(positions_.size())) {}

bool AdjacencyMesh::HasEdge(VertexId u, VertexId v) const {
  const auto& n = adj_[static_cast<size_t>(u)];
  return std::binary_search(n.begin(), n.end(), v);
}

std::vector<VertexId> AdjacencyMesh::CommonNeighbors(VertexId u,
                                                     VertexId v) const {
  const auto& a = adj_[static_cast<size_t>(u)];
  const auto& b = adj_[static_cast<size_t>(v)];
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

bool AdjacencyMesh::CanCollapse(VertexId u, VertexId v) const {
  if (!IsAlive(u) || !IsAlive(v) || u == v) return false;
  if (!HasEdge(u, v)) return false;
  return CommonNeighbors(u, v).size() <= 2;
}

void AdjacencyMesh::AddEdge(VertexId u, VertexId v) {
  if (u == v || HasEdge(u, v)) return;
  AddEdgeInternal(u, v);
}

void AdjacencyMesh::AddEdgeInternal(VertexId u, VertexId v) {
  auto& a = adj_[static_cast<size_t>(u)];
  a.insert(std::upper_bound(a.begin(), a.end(), v), v);
  auto& b = adj_[static_cast<size_t>(v)];
  b.insert(std::upper_bound(b.begin(), b.end(), u), u);
  ++num_edges_;
}

void AdjacencyMesh::RemoveEdgeInternal(VertexId u, VertexId v) {
  auto& a = adj_[static_cast<size_t>(u)];
  auto it = std::lower_bound(a.begin(), a.end(), v);
  DM_CHECK(it != a.end() && *it == v)
      << "RemoveEdge of absent edge (" << u << ", " << v << ")";
  a.erase(it);
  auto& b = adj_[static_cast<size_t>(v)];
  auto jt = std::lower_bound(b.begin(), b.end(), u);
  DM_CHECK(jt != b.end() && *jt == u)
      << "asymmetric adjacency between " << u << " and " << v;
  b.erase(jt);
  --num_edges_;
}

VertexId AdjacencyMesh::AddVertex(const Point3& pos) {
  positions_.push_back(pos);
  adj_.emplace_back();
  alive_.push_back(true);
  ++num_alive_;
  return static_cast<VertexId>(positions_.size() - 1);
}

CollapseRecord AdjacencyMesh::ContractUnchecked(VertexId u, VertexId v,
                                                const Point3& parent_pos) {
  DM_CHECK(IsAlive(u) && IsAlive(v) && u != v)
      << "contract of dead or identical vertices " << u << ", " << v;
  return CollapseImpl(u, v, parent_pos);
}

CollapseRecord AdjacencyMesh::Collapse(VertexId u, VertexId v,
                                       const Point3& parent_pos) {
  DM_CHECK(CanCollapse(u, v)) << "illegal collapse (" << u << ", " << v << ")";
  return CollapseImpl(u, v, parent_pos);
}

CollapseRecord AdjacencyMesh::CollapseImpl(VertexId u, VertexId v,
                                           const Point3& parent_pos) {
  CollapseRecord rec;
  rec.child1 = u;
  rec.child2 = v;
  const std::vector<VertexId> wings = CommonNeighbors(u, v);
  if (!wings.empty()) rec.wing1 = wings[0];
  if (wings.size() > 1) rec.wing2 = wings[1];

  // Gather the union neighbourhood before mutating.
  std::vector<VertexId> nbrs;
  {
    const auto& a = adj_[static_cast<size_t>(u)];
    const auto& b = adj_[static_cast<size_t>(v)];
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(nbrs));
    nbrs.erase(std::remove_if(nbrs.begin(), nbrs.end(),
                              [&](VertexId n) { return n == u || n == v; }),
               nbrs.end());
  }

  // Detach the children.
  for (VertexId n : std::vector<VertexId>(adj_[static_cast<size_t>(u)])) {
    RemoveEdgeInternal(u, n);
  }
  for (VertexId n : std::vector<VertexId>(adj_[static_cast<size_t>(v)])) {
    RemoveEdgeInternal(v, n);
  }
  alive_[static_cast<size_t>(u)] = false;
  alive_[static_cast<size_t>(v)] = false;
  num_alive_ -= 2;

  // Attach the parent.
  const VertexId p = AddVertex(parent_pos);
  for (VertexId n : nbrs) AddEdgeInternal(p, n);
  rec.parent = p;
  return rec;
}

std::vector<VertexId> AdjacencyMesh::AliveVertices() const {
  std::vector<VertexId> out;
  out.reserve(static_cast<size_t>(num_alive_));
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) out.push_back(static_cast<VertexId>(i));
  }
  return out;
}

}  // namespace dm
