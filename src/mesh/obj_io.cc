#include "mesh/obj_io.h"

#include <cstdio>
#include <unordered_map>

namespace dm {

Status WriteObj(const std::vector<VertexId>& vertex_ids,
                const std::vector<Point3>& positions,
                const std::vector<Triangle>& triangles,
                const std::string& path) {
  if (vertex_ids.size() != positions.size()) {
    return Status::InvalidArgument("vertex_ids/positions size mismatch");
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  std::unordered_map<VertexId, int64_t> index;  // id -> 1-based OBJ index
  index.reserve(vertex_ids.size());
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    index[vertex_ids[i]] = static_cast<int64_t>(i) + 1;
    const Point3& p = positions[i];
    std::fprintf(f, "v %.6f %.6f %.6f\n", p.x, p.y, p.z);
  }
  for (const Triangle& t : triangles) {
    auto a = index.find(t[0]);
    auto b = index.find(t[1]);
    auto c = index.find(t[2]);
    if (a == index.end() || b == index.end() || c == index.end()) {
      std::fclose(f);
      return Status::InvalidArgument("triangle references unknown vertex");
    }
    std::fprintf(f, "f %lld %lld %lld\n",
                 static_cast<long long>(a->second),
                 static_cast<long long>(b->second),
                 static_cast<long long>(c->second));
  }
  std::fclose(f);
  return Status::OK();
}

Status WriteObj(const TriangleMesh& mesh, const std::string& path) {
  std::vector<VertexId> ids(static_cast<size_t>(mesh.num_vertices()));
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<VertexId>(i);
  return WriteObj(ids, mesh.vertices(), mesh.triangles(), path);
}

}  // namespace dm
