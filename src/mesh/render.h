#ifndef DIRECTMESH_MESH_RENDER_H_
#define DIRECTMESH_MESH_RENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mesh/triangle_mesh.h"

namespace dm {

/// Options of the software hillshade renderer.
struct RenderOptions {
  int width = 512;
  int height = 512;
  /// Light direction (will be normalized); default NW, 45 degrees up.
  Point3 light{-1.0, 1.0, 1.4};
  /// Vertical exaggeration applied before shading.
  double z_scale = 1.0;
};

/// Rasterizes a terrain triangulation to a shaded-relief image and
/// writes it as a binary PPM (P6). The mesh is given by parallel
/// `vertex_ids`/`positions` plus triangles indexing `vertex_ids` — the
/// same calling convention as WriteObj, so query results plug straight
/// in. Triangles are scan-converted with a z-buffer (top view), flat
/// shaded by their facet normal against `light`, and tinted by
/// elevation so LOD differences are visible in the output.
Status RenderHillshade(const std::vector<VertexId>& vertex_ids,
                       const std::vector<Point3>& positions,
                       const std::vector<Triangle>& triangles,
                       const std::string& path,
                       const RenderOptions& options = {});

}  // namespace dm

#endif  // DIRECTMESH_MESH_RENDER_H_
