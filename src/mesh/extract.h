#ifndef DIRECTMESH_MESH_EXTRACT_H_
#define DIRECTMESH_MESH_EXTRACT_H_

#include <functional>
#include <span>
#include <vector>

#include "common/geometry.h"
#include "mesh/triangle_mesh.h"

namespace dm {

/// Callbacks describing an adjacency graph over terrain points. The
/// reconstructor and tests use this to extract triangles from graphs
/// held in different containers without copying. Neighbour lists are
/// viewed as spans so the source may be a std::vector, an
/// arena-backed vector, or any contiguous buffer.
struct GraphView {
  std::function<Point3(VertexId)> position;
  std::function<std::span<const VertexId>(VertexId)> neighbors;
};

/// Extracts the triangles of a planar terrain adjacency graph.
///
/// A triangle is emitted for each empty 3-cycle: for every vertex u and
/// every pair of angularly consecutive neighbours (a, b) around u that
/// are themselves adjacent. Each face is reported once (from its
/// minimum-id vertex), oriented CCW in the (x, y) projection.
/// `vertices` must list every vertex of the graph; neighbour lists must
/// be sorted by id and symmetric.
std::vector<Triangle> ExtractTriangles(const std::vector<VertexId>& vertices,
                                       const GraphView& graph);

}  // namespace dm

#endif  // DIRECTMESH_MESH_EXTRACT_H_
