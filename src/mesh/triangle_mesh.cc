#include "mesh/triangle_mesh.h"

#include <cmath>

namespace dm {

Rect TriangleMesh::Bounds() const {
  Rect r;
  for (const auto& p : vertices_) r.ExpandToInclude(p.x, p.y);
  return r;
}

TriangleMesh TriangulateDem(const DemGrid& grid) {
  const int w = grid.width();
  const int h = grid.height();
  std::vector<Point3> vertices;
  vertices.reserve(static_cast<size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      vertices.push_back(grid.PointAt(x, y));
    }
  }

  std::vector<Triangle> tris;
  tris.reserve(static_cast<size_t>(w - 1) * (h - 1) * 2);
  auto id = [w](int x, int y) {
    return static_cast<VertexId>(y) * w + x;
  };
  for (int y = 0; y + 1 < h; ++y) {
    for (int x = 0; x + 1 < w; ++x) {
      const VertexId a = id(x, y);
      const VertexId b = id(x + 1, y);
      const VertexId c = id(x + 1, y + 1);
      const VertexId d = id(x, y + 1);
      const double diag_ac =
          std::fabs(grid.at(x, y) - grid.at(x + 1, y + 1));
      const double diag_bd =
          std::fabs(grid.at(x + 1, y) - grid.at(x, y + 1));
      if (diag_ac <= diag_bd) {
        // Split along a-c. CCW in (x, y): a,b,c and a,c,d.
        tris.push_back(Triangle{{a, b, c}});
        tris.push_back(Triangle{{a, c, d}});
      } else {
        // Split along b-d.
        tris.push_back(Triangle{{a, b, d}});
        tris.push_back(Triangle{{b, c, d}});
      }
    }
  }
  return TriangleMesh(std::move(vertices), std::move(tris));
}

}  // namespace dm
