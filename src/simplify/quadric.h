#ifndef DIRECTMESH_SIMPLIFY_QUADRIC_H_
#define DIRECTMESH_SIMPLIFY_QUADRIC_H_

#include "common/geometry.h"

namespace dm {

/// Garland-Heckbert error quadric: the symmetric 4x4 matrix
/// Q = sum_planes (p p^T) such that v^T Q v is the sum of squared
/// distances from v to the accumulated planes. Stored as the 10
/// distinct coefficients.
///
/// Both paper datasets "are pre-processed using the Quadric Error
/// Metrics [7]"; this is that metric.
class Quadric {
 public:
  Quadric() = default;

  /// Adds the plane through triangle (a, b, c), weighted by the
  /// triangle's area (the standard area-weighted formulation).
  void AddTrianglePlane(const Point3& a, const Point3& b, const Point3& c);

  /// Adds plane ax + by + cz + d = 0 with (a, b, c) unit, weight w.
  void AddPlane(double a, double b, double c, double d, double w = 1.0);

  /// Quadric form v^T Q v at the point; clamped at 0 (tiny negative
  /// values arise from rounding).
  double Evaluate(const Point3& v) const;

  /// Point minimizing the quadric. Falls back to the best of
  /// (`a`, `b`, midpoint) when the 3x3 system is singular (flat
  /// regions).
  Point3 OptimalPoint(const Point3& a, const Point3& b) const;

  Quadric& operator+=(const Quadric& o);
  friend Quadric operator+(Quadric a, const Quadric& b) {
    a += b;
    return a;
  }

 private:
  // Upper triangle of the symmetric matrix:
  // [ q11 q12 q13 q14 ]
  // [     q22 q23 q24 ]
  // [         q33 q34 ]
  // [             q44 ]
  double q11_ = 0, q12_ = 0, q13_ = 0, q14_ = 0;
  double q22_ = 0, q23_ = 0, q24_ = 0;
  double q33_ = 0, q34_ = 0;
  double q44_ = 0;
};

}  // namespace dm

#endif  // DIRECTMESH_SIMPLIFY_QUADRIC_H_
