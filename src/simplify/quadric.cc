#include "simplify/quadric.h"

#include <algorithm>
#include <cmath>

namespace dm {

void Quadric::AddTrianglePlane(const Point3& a, const Point3& b,
                               const Point3& c) {
  const Point3 n = Cross(b - a, c - a);
  const double len = Norm(n);
  if (len < 1e-12) return;  // degenerate triangle contributes nothing
  const double area = 0.5 * len;
  const double nx = n.x / len;
  const double ny = n.y / len;
  const double nz = n.z / len;
  const double d = -(nx * a.x + ny * a.y + nz * a.z);
  AddPlane(nx, ny, nz, d, area);
}

void Quadric::AddPlane(double a, double b, double c, double d, double w) {
  q11_ += w * a * a;
  q12_ += w * a * b;
  q13_ += w * a * c;
  q14_ += w * a * d;
  q22_ += w * b * b;
  q23_ += w * b * c;
  q24_ += w * b * d;
  q33_ += w * c * c;
  q34_ += w * c * d;
  q44_ += w * d * d;
}

double Quadric::Evaluate(const Point3& v) const {
  const double x = v.x;
  const double y = v.y;
  const double z = v.z;
  const double e = q11_ * x * x + 2 * q12_ * x * y + 2 * q13_ * x * z +
                   2 * q14_ * x + q22_ * y * y + 2 * q23_ * y * z +
                   2 * q24_ * y + q33_ * z * z + 2 * q34_ * z + q44_;
  return std::max(e, 0.0);
}

Quadric& Quadric::operator+=(const Quadric& o) {
  q11_ += o.q11_;
  q12_ += o.q12_;
  q13_ += o.q13_;
  q14_ += o.q14_;
  q22_ += o.q22_;
  q23_ += o.q23_;
  q24_ += o.q24_;
  q33_ += o.q33_;
  q34_ += o.q34_;
  q44_ += o.q44_;
  return *this;
}

Point3 Quadric::OptimalPoint(const Point3& a, const Point3& b) const {
  // Solve [q11 q12 q13; q12 q22 q23; q13 q23 q33] v = -[q14; q24; q34]
  // by Cramer's rule.
  const double det = q11_ * (q22_ * q33_ - q23_ * q23_) -
                     q12_ * (q12_ * q33_ - q23_ * q13_) +
                     q13_ * (q12_ * q23_ - q22_ * q13_);
  if (std::fabs(det) > 1e-9) {
    const double rx = -q14_;
    const double ry = -q24_;
    const double rz = -q34_;
    const double dx = rx * (q22_ * q33_ - q23_ * q23_) -
                      q12_ * (ry * q33_ - q23_ * rz) +
                      q13_ * (ry * q23_ - q22_ * rz);
    const double dy = q11_ * (ry * q33_ - rz * q23_) -
                      rx * (q12_ * q33_ - q23_ * q13_) +
                      q13_ * (q12_ * rz - ry * q13_);
    const double dz = q11_ * (q22_ * rz - ry * q23_) -
                      q12_ * (q12_ * rz - ry * q13_) +
                      rx * (q12_ * q23_ - q22_ * q13_);
    Point3 v{dx / det, dy / det, dz / det};
    // Guard against wildly extrapolated solutions in near-singular
    // systems: keep the solution only if it stays near the segment.
    const double span = Norm(b - a) + 1.0;
    const Point3 mid = (a + b) * 0.5;
    if (Norm(v - mid) <= 4.0 * span) return v;
  }
  // Fallback: best of endpoints and midpoint.
  const Point3 mid = (a + b) * 0.5;
  const double ea = Evaluate(a);
  const double eb = Evaluate(b);
  const double em = Evaluate(mid);
  if (em <= ea && em <= eb) return mid;
  return ea <= eb ? a : b;
}

}  // namespace dm
