#include "simplify/simplifier.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "simplify/quadric.h"

namespace dm {

namespace {

struct Candidate {
  double cost;
  VertexId u;
  VertexId v;
  // Min-heap by cost; ties broken by ids for determinism.
  bool operator>(const Candidate& o) const {
    if (cost != o.cost) return cost > o.cost;
    if (u != o.u) return u > o.u;
    return v > o.v;
  }
};

using MinHeap =
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>;

}  // namespace

SimplifyResult SimplifyMesh(const TriangleMesh& mesh,
                            const SimplifyOptions& options) {
  AdjacencyMesh adj(mesh);
  SimplifyResult result;

  // Per-vertex quadrics from the initial faces. Parents get the sum of
  // their children's quadrics (the standard additive rule), so the
  // vector grows as collapses run.
  std::vector<Quadric> quadrics(static_cast<size_t>(adj.num_vertices_total()));
  for (const Triangle& t : mesh.triangles()) {
    Quadric q;
    q.AddTrianglePlane(mesh.vertex(t[0]), mesh.vertex(t[1]),
                       mesh.vertex(t[2]));
    for (int i = 0; i < 3; ++i) quadrics[static_cast<size_t>(t[i])] += q;
  }

  MinHeap heap;
  auto push_edge = [&](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    const Quadric q =
        quadrics[static_cast<size_t>(u)] + quadrics[static_cast<size_t>(v)];
    const Point3 opt = q.OptimalPoint(adj.position(u), adj.position(v));
    heap.push(Candidate{q.Evaluate(opt), u, v});
  };

  for (VertexId u = 0; u < adj.num_vertices_total(); ++u) {
    for (VertexId v : adj.neighbors(u)) {
      if (v > u) push_edge(u, v);
    }
  }

  // Edge costs never change while both endpoints are alive (quadrics
  // are fixed at vertex creation), so heap entries need no versioning:
  // an entry is valid iff both endpoints are alive and the edge still
  // exists. Entries blocked by the link condition are re-pushed with a
  // small cost inflation so topology changes can unblock them; if the
  // whole frontier is blocked we relax the condition rather than stop
  // early (counted in forced_collapses).
  int64_t consecutive_blocked = 0;
  while (adj.num_alive() > options.target_vertices) {
    if (heap.empty()) {
      // Refill from scratch (can only happen if every remaining entry
      // was consumed as stale); rebuild candidates from live edges.
      bool any = false;
      for (VertexId u : adj.AliveVertices()) {
        for (VertexId v : adj.neighbors(u)) {
          if (v > u) {
            push_edge(u, v);
            any = true;
          }
        }
      }
      if (!any) break;  // disconnected leftovers; nothing to collapse
      continue;
    }
    Candidate cand = heap.top();
    heap.pop();
    if (!adj.IsAlive(cand.u) || !adj.IsAlive(cand.v) ||
        !adj.HasEdge(cand.u, cand.v)) {
      continue;  // stale
    }
    const bool can = adj.CanCollapse(cand.u, cand.v);
    bool forced = false;
    if (!can) {
      ++consecutive_blocked;
      if (consecutive_blocked <= static_cast<int64_t>(heap.size()) + 1) {
        cand.cost = cand.cost * 1.05 + 1e-12;
        heap.push(cand);
        continue;
      }
      // Entire frontier blocked: relax the link condition.
      forced = true;
    }
    consecutive_blocked = 0;

    CollapseRecord rec;
    if (forced) {
      // The whole frontier is blocked by the link condition (possible
      // only in pathological topologies). Scan for the cheapest legal
      // edge anywhere in the mesh to guarantee progress.
      bool done = false;
      double best_cost = 0.0;
      VertexId best_u = kInvalidVertex;
      VertexId best_v = kInvalidVertex;
      for (VertexId u2 : adj.AliveVertices()) {
        for (VertexId v2 : adj.neighbors(u2)) {
          if (v2 <= u2 || !adj.CanCollapse(u2, v2)) continue;
          const Quadric q2 = quadrics[static_cast<size_t>(u2)] +
                             quadrics[static_cast<size_t>(v2)];
          const Point3 p2 =
              q2.OptimalPoint(adj.position(u2), adj.position(v2));
          const double c2 = q2.Evaluate(p2);
          if (!done || c2 < best_cost) {
            done = true;
            best_cost = c2;
            best_u = u2;
            best_v = v2;
          }
        }
      }
      if (!done) break;  // truly stuck; return partial result
      ++result.forced_collapses;
      cand.u = best_u;
      cand.v = best_v;
    }

    const Quadric qc = quadrics[static_cast<size_t>(cand.u)] +
                       quadrics[static_cast<size_t>(cand.v)];
    const Point3 cu = adj.position(cand.u);
    const Point3 cv = adj.position(cand.v);
    const Point3 ppos = qc.OptimalPoint(cu, cv);
    rec = adj.Collapse(cand.u, cand.v, ppos);
    quadrics.push_back(qc);  // parent's quadric, id == rec.parent
    DM_DCHECK(rec.parent + 1 == static_cast<VertexId>(quadrics.size()))
        << "collapse parent id " << rec.parent
        << " out of step with the quadric vector";

    CollapseStep step;
    step.record = rec;
    step.parent_pos = ppos;
    if (options.metric == ErrorMetric::kQuadric) {
      // The quadric form is a *squared* distance sum; report the
      // square root so e is in elevation units, comparable to the
      // vertical-distance measure the paper describes.
      step.error = std::sqrt(qc.Evaluate(ppos));
    } else {
      step.error = std::max(std::fabs(cu.z - ppos.z),
                            std::fabs(cv.z - ppos.z));
    }
    result.steps.push_back(step);

    for (VertexId n : adj.neighbors(rec.parent)) push_edge(rec.parent, n);
  }

  result.roots = adj.AliveVertices();
  result.positions.reserve(static_cast<size_t>(adj.num_vertices_total()));
  for (VertexId i = 0; i < adj.num_vertices_total(); ++i) {
    result.positions.push_back(adj.position(i));
  }
  return result;
}

}  // namespace dm
