#include "simplify/simplifier.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "simplify/quadric.h"

namespace dm {

namespace {

// A candidate contraction. Costs are fixed at evaluation time (vertex
// quadrics never change while the vertex is alive), so an entry is
// valid exactly while both endpoints are alive; edges between two
// alive vertices are never removed by a collapse.
struct Candidate {
  double cost = 0.0;
  VertexId u = kInvalidVertex;  // u < v always
  VertexId v = kInvalidVertex;
  Point3 opt;  // optimal parent placement, computed with the cost
};

// Total order on candidates; the wave commit order.
inline bool KeyLess(const Candidate& a, const Candidate& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

constexpr int32_t kNone = -1;

}  // namespace

SimplifyResult SimplifyMesh(const TriangleMesh& mesh,
                            const SimplifyOptions& options) {
  AdjacencyMesh adj(mesh);
  SimplifyResult result;
  WorkerPool pool(EffectiveThreads(options.threads));

  const int64_t n0 = adj.num_vertices_total();
  const int64_t num_tris = mesh.num_triangles();

  // --- Per-vertex quadrics -------------------------------------------
  // Per-triangle planes are independent (parallel); the per-vertex
  // gather sums them in ascending triangle order, which performs the
  // exact floating-point addition sequence of the sequential loop, so
  // the result is bit-identical at any thread count.
  std::vector<Quadric> tri_q(static_cast<size_t>(num_tris));
  ParallelFor(pool, num_tris, 1024, [&](int64_t begin, int64_t end) {
    for (int64_t t = begin; t < end; ++t) {
      const Triangle& tri = mesh.triangles()[static_cast<size_t>(t)];
      tri_q[static_cast<size_t>(t)].AddTrianglePlane(
          mesh.vertex(tri[0]), mesh.vertex(tri[1]), mesh.vertex(tri[2]));
    }
  });
  std::vector<int32_t> vt_off(static_cast<size_t>(n0) + 1, 0);
  for (const Triangle& t : mesh.triangles()) {
    for (int i = 0; i < 3; ++i) ++vt_off[static_cast<size_t>(t[i]) + 1];
  }
  for (int64_t v = 0; v < n0; ++v) {
    vt_off[static_cast<size_t>(v) + 1] += vt_off[static_cast<size_t>(v)];
  }
  std::vector<int32_t> vt(static_cast<size_t>(vt_off[static_cast<size_t>(n0)]));
  {
    std::vector<int32_t> cursor(vt_off.begin(), vt_off.end() - 1);
    for (int64_t t = 0; t < num_tris; ++t) {
      const Triangle& tri = mesh.triangles()[static_cast<size_t>(t)];
      for (int i = 0; i < 3; ++i) {
        vt[static_cast<size_t>(cursor[static_cast<size_t>(tri[i])]++)] =
            static_cast<int32_t>(t);
      }
    }
  }
  std::vector<Quadric> quadrics(static_cast<size_t>(n0));
  quadrics.reserve(static_cast<size_t>(2 * n0));
  ParallelFor(pool, n0, 512, [&](int64_t begin, int64_t end) {
    for (int64_t v = begin; v < end; ++v) {
      Quadric q;
      for (int32_t i = vt_off[static_cast<size_t>(v)];
           i < vt_off[static_cast<size_t>(v) + 1]; ++i) {
        q += tri_q[static_cast<size_t>(vt[static_cast<size_t>(i)])];
      }
      quadrics[static_cast<size_t>(v)] = q;
    }
  });
  tri_q.clear();
  tri_q.shrink_to_fit();

  // --- Candidate pool ------------------------------------------------
  // `cands` grows append-only (ids are stable); `vcand[v]` holds the
  // ids of candidates incident to v and is purged of dead entries as
  // it is scanned. `fresh` lists ids awaiting cost evaluation.
  std::vector<Candidate> cands;
  std::vector<std::vector<int32_t>> vcand(static_cast<size_t>(n0));
  std::vector<int32_t> best(static_cast<size_t>(n0), kNone);
  std::vector<int32_t> fresh;
  vcand.reserve(static_cast<size_t>(2 * n0));
  best.reserve(static_cast<size_t>(2 * n0));

  auto add_candidate = [&](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    const int32_t id = static_cast<int32_t>(cands.size());
    Candidate c;
    c.u = u;
    c.v = v;
    cands.push_back(c);
    vcand[static_cast<size_t>(u)].push_back(id);
    vcand[static_cast<size_t>(v)].push_back(id);
    fresh.push_back(id);
  };

  for (VertexId u = 0; u < n0; ++u) {
    for (VertexId v : adj.neighbors(u)) {
      if (v > u) add_candidate(u, v);
    }
  }

  std::vector<VertexId> alive;
  alive.reserve(static_cast<size_t>(n0));
  for (VertexId v = 0; v < n0; ++v) {
    if (adj.IsAlive(v)) alive.push_back(v);
  }

  auto evaluate = [&](Candidate& c) {
    const Quadric q = quadrics[static_cast<size_t>(c.u)] +
                      quadrics[static_cast<size_t>(c.v)];
    c.opt = q.OptimalPoint(adj.position(c.u), adj.position(c.v));
    c.cost = q.Evaluate(c.opt);
  };

  auto commit = [&](const Candidate& c) {
    const Quadric qc = quadrics[static_cast<size_t>(c.u)] +
                       quadrics[static_cast<size_t>(c.v)];
    const Point3 cu = adj.position(c.u);
    const Point3 cv = adj.position(c.v);
    const Point3 ppos = c.opt;
    const CollapseRecord rec = adj.Collapse(c.u, c.v, ppos);
    quadrics.push_back(qc);
    vcand.emplace_back();
    best.push_back(kNone);
    DM_DCHECK(rec.parent + 1 == static_cast<VertexId>(quadrics.size()))
        << "collapse parent id " << rec.parent
        << " out of step with the quadric vector";

    CollapseStep step;
    step.record = rec;
    step.parent_pos = ppos;
    if (options.metric == ErrorMetric::kQuadric) {
      // The quadric form is a *squared* distance sum; report the
      // square root so e is in elevation units, comparable to the
      // vertical-distance measure the paper describes.
      step.error = std::sqrt(qc.Evaluate(ppos));
    } else {
      step.error = std::max(std::fabs(cu.z - ppos.z),
                            std::fabs(cv.z - ppos.z));
    }
    result.steps.push_back(step);
    for (VertexId nb : adj.neighbors(rec.parent)) {
      add_candidate(nb, rec.parent);
    }
  };

  // --- Wave loop ------------------------------------------------------
  // Every phase is either embarrassingly parallel over disjoint state
  // (evaluation, per-vertex minima) or serial over a deterministically
  // ordered set (selection scan, commits), so the collapse sequence —
  // including parent-id assignment — is identical at any thread count.
  std::vector<int32_t> selected;
  int64_t blocked_waves = 0;
  constexpr int64_t kMaxBlockedWaves = 32;
  while (adj.num_alive() > options.target_vertices) {
    const size_t steps_before = result.steps.size();
    // Phase 1: evaluate newly created candidates (disjoint writes).
    ParallelFor(pool, static_cast<int64_t>(fresh.size()), 256,
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    evaluate(cands[static_cast<size_t>(
                        fresh[static_cast<size_t>(i)])]);
                  }
                });
    fresh.clear();

    // Phase 2: per-vertex minimum candidate. Each vertex owns its
    // incident list (purged of dead entries in place); min over a set
    // under a total order is order-independent.
    ParallelFor(pool, static_cast<int64_t>(alive.size()), 256,
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    const VertexId v = alive[static_cast<size_t>(i)];
                    std::vector<int32_t>& list =
                        vcand[static_cast<size_t>(v)];
                    int32_t best_id = kNone;
                    size_t w = 0;
                    for (size_t r = 0; r < list.size(); ++r) {
                      const int32_t id = list[r];
                      const Candidate& c = cands[static_cast<size_t>(id)];
                      if (!adj.IsAlive(c.u) || !adj.IsAlive(c.v)) continue;
                      list[w++] = id;
                      if (best_id == kNone ||
                          KeyLess(c, cands[static_cast<size_t>(best_id)])) {
                        best_id = id;
                      }
                    }
                    list.resize(w);
                    best[static_cast<size_t>(v)] = best_id;
                  }
                });

    // Phase 3: a candidate is selected iff it is the minimum at *both*
    // endpoints; selected edges therefore never share a vertex.
    selected.clear();
    for (VertexId v : alive) {
      const int32_t id = best[static_cast<size_t>(v)];
      if (id == kNone) continue;
      const Candidate& c = cands[static_cast<size_t>(id)];
      if (c.u == v && best[static_cast<size_t>(c.v)] == id) {
        selected.push_back(id);
      }
    }
    if (selected.empty()) break;  // no live candidates: disconnected leftovers
    std::sort(selected.begin(), selected.end(), [&](int32_t a, int32_t b) {
      return KeyLess(cands[static_cast<size_t>(a)],
                     cands[static_cast<size_t>(b)]);
    });

    // Phase 4: commit in ascending key order. Blocked edges get their
    // cost inflated so topology changes can unblock them later.
    int64_t committed = 0;
    for (const int32_t id : selected) {
      if (adj.num_alive() <= options.target_vertices) break;
      Candidate& c = cands[static_cast<size_t>(id)];
      if (!adj.CanCollapse(c.u, c.v)) {
        c.cost = c.cost * 1.05 + 1e-12;
        continue;
      }
      commit(c);
      ++committed;
    }

    if (committed > 0) {
      blocked_waves = 0;
    } else if (++blocked_waves >= kMaxBlockedWaves) {
      // The frontier has been fully link-condition-blocked for many
      // waves (possible only in pathological topologies). Scan for the
      // cheapest legal edge anywhere to guarantee progress.
      blocked_waves = 0;
      bool found = false;
      Candidate forced;
      for (VertexId u : adj.AliveVertices()) {
        for (VertexId v : adj.neighbors(u)) {
          if (v <= u || !adj.CanCollapse(u, v)) continue;
          Candidate c;
          c.u = u;
          c.v = v;
          evaluate(c);
          if (!found || KeyLess(c, forced)) {
            found = true;
            forced = c;
          }
        }
      }
      if (!found) break;  // truly stuck; return partial result
      ++result.forced_collapses;
      commit(forced);
    }

    // Compact the alive list: survivors keep their relative order,
    // parents created this wave append in id (commit) order.
    size_t w = 0;
    for (size_t r = 0; r < alive.size(); ++r) {
      if (adj.IsAlive(alive[r])) alive[w++] = alive[r];
    }
    alive.resize(w);
    for (size_t p = steps_before; p < result.steps.size(); ++p) {
      const VertexId parent = result.steps[p].record.parent;
      if (adj.IsAlive(parent)) alive.push_back(parent);
    }
  }

  result.roots = adj.AliveVertices();
  result.positions.reserve(static_cast<size_t>(adj.num_vertices_total()));
  for (VertexId i = 0; i < adj.num_vertices_total(); ++i) {
    result.positions.push_back(adj.position(i));
  }
  return result;
}

}  // namespace dm
