#ifndef DIRECTMESH_SIMPLIFY_SIMPLIFIER_H_
#define DIRECTMESH_SIMPLIFY_SIMPLIFIER_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "mesh/adjacency.h"
#include "mesh/triangle_mesh.h"

namespace dm {

/// Error measure attached to each collapse. The paper builds its trees
/// with Quadric Error Metrics and mentions vertical distance as an
/// alternative; both are provided.
enum class ErrorMetric {
  kQuadric,   // Garland-Heckbert quadric cost of the contraction
  kVertical,  // max vertical (z) distance from the children to the parent
};

/// One step of the bottom-up PM construction: edge (child1, child2)
/// collapsed into the new vertex `parent` placed at `parent_pos` with
/// approximation error `error`.
struct CollapseStep {
  CollapseRecord record;
  Point3 parent_pos;
  double error = 0.0;
};

/// Output of a full simplification run.
struct SimplifyResult {
  /// Collapse steps in execution order (error is non-decreasing only
  /// after PM normalization; raw QEM costs can dip).
  std::vector<CollapseStep> steps;
  /// Ids of the vertices remaining alive at the end (size 1 when the
  /// mesh was fully collapsed into a single root).
  std::vector<VertexId> roots;
  /// Positions of every vertex ever created (original + parents),
  /// indexed by VertexId.
  std::vector<Point3> positions;
  /// Number of collapses that had to relax the manifold link condition
  /// (should be 0 or tiny; exposed for tests).
  int64_t forced_collapses = 0;
};

struct SimplifyOptions {
  ErrorMetric metric = ErrorMetric::kQuadric;
  /// Stop when this many vertices remain (1 = full PM tree).
  int64_t target_vertices = 1;
  /// Worker threads for quadric accumulation, candidate evaluation and
  /// wave selection (<= 0 means one per hardware core). The collapse
  /// sequence is bit-identical at any thread count.
  int threads = 1;
};

/// Runs greedy QEM edge-collapse simplification over the whole mesh,
/// recording the PM collapse sequence. This is the paper's
/// "constructing an MTM (PM) tree is a bottom-up process": collapses
/// are committed in waves — every wave selects the edges that are the
/// unique (cost, u, v)-minimum among all candidates sharing either
/// endpoint, then commits them in ascending key order. Selected edges
/// never share a vertex, so a wave equals a prefix-batch of local
/// greedy choices; evaluation and selection parallelize while the
/// commit order (and thus every parent id) stays deterministic.
SimplifyResult SimplifyMesh(const TriangleMesh& mesh,
                            const SimplifyOptions& options = {});

}  // namespace dm

#endif  // DIRECTMESH_SIMPLIFY_SIMPLIFIER_H_
