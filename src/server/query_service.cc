#include "server/query_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/rng.h"

namespace dm {

QueryService::QueryService(DmStore* store, const QueryServiceOptions& options)
    : store_(store), options_(options) {
  DM_CHECK(store_ != nullptr) << "QueryService needs a store";
  options_.num_threads = std::max(1, options_.num_threads);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  counters_ = std::vector<WorkerCounters>(
      static_cast<size_t>(options_.num_threads));
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ServiceHealth QueryService::worker_health(int worker) const {
  DM_CHECK(worker >= 0 &&
           worker < static_cast<int>(counters_.size()))
      << "worker index out of range";
  const WorkerCounters& c = counters_[static_cast<size_t>(worker)];
  ServiceHealth h;
  h.errors = c.errors.load(std::memory_order_relaxed);
  h.sheddable = c.sheddable.load(std::memory_order_relaxed);
  h.shed = c.shed.load(std::memory_order_relaxed);
  h.degraded = c.degraded.load(std::memory_order_relaxed);
  return h;
}

ServiceHealth QueryService::health() const {
  ServiceHealth total;
  for (int i = 0; i < static_cast<int>(counters_.size()); ++i) {
    const ServiceHealth h = worker_health(i);
    total.errors += h.errors;
    total.sheddable += h.sheddable;
    total.shed += h.shed;
    total.degraded += h.degraded;
  }
  return total;
}

QueryService::~QueryService() { Shutdown(); }

bool QueryService::Submit(QueryRequest request, QueryCallback done) {
  MutexLock lock(mu_);
  while (!stopping_ && queue_.size() >= options_.queue_capacity) {
    not_full_.Wait(mu_);
  }
  if (stopping_) return false;
  queue_.push_back(Job{std::move(request), std::move(done),
                       std::chrono::steady_clock::now()});
  not_empty_.NotifyOne();
  return true;
}

void QueryService::Drain() {
  MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) {
    idle_.Wait(mu_);
  }
}

void QueryService::Shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    // Workers drain the remaining queue before exiting; producers
    // blocked in Submit give up.
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void QueryService::WorkerLoop(int worker) {
  // One processor per worker: the processor owns per-query scratch
  // (its arena), so giving each worker its own keeps every per-query
  // allocation thread-local.
  DmQueryProcessor proc(store_, options_.query);
  WorkerCounters& counters = counters_[static_cast<size_t>(worker)];
  for (;;) {
    Job job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) {
        not_empty_.Wait(mu_);
      }
      if (queue_.empty()) return;  // stopping, nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      not_full_.NotifyOne();
    }
    const auto dequeued = std::chrono::steady_clock::now();
    QueryTiming timing;
    timing.queue_millis = std::chrono::duration<double, std::milli>(
                              dequeued - job.submitted)
                              .count();
    Result<DmQueryResult> result = Status::Internal("unreached");
    if (options_.max_queue_wait_millis > 0 &&
        timing.queue_millis > options_.max_queue_wait_millis) {
      // Overload shed: by the time this job reached a worker it had
      // already blown its wait budget — executing it would only make
      // the queue behind it later still.
      counters.shed.fetch_add(1, std::memory_order_relaxed);
      result = Status::Unavailable(
          "shed: queued " + std::to_string(timing.queue_millis) +
          " ms exceeds the " +
          std::to_string(options_.max_queue_wait_millis) +
          " ms wait budget; retry after backoff");
    } else {
      result = Execute(&proc, job.request);
      if (!result.ok()) {
        const StatusCode code = result.status().code();
        const bool load_failure = code == StatusCode::kUnavailable ||
                                  code == StatusCode::kResourceExhausted;
        (load_failure ? counters.sheddable : counters.errors)
            .fetch_add(1, std::memory_order_relaxed);
      } else if (result.value().health.degraded) {
        counters.degraded.fetch_add(1, std::memory_order_relaxed);
      }
    }
    timing.exec_millis = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - dequeued)
                             .count();
    if (job.done) job.done(result, timing);
    completed_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

Result<DmQueryResult> QueryService::Execute(DmQueryProcessor* proc,
                                            const QueryRequest& request) const {
  switch (request.kind) {
    case QueryRequest::Kind::kUniform:
      return proc->ViewpointIndependent(request.roi, request.e);
    case QueryRequest::Kind::kView:
      return request.multi_base ? proc->MultiBase(request.view)
                                : proc->SingleBase(request.view);
    case QueryRequest::Kind::kPerspective:
      return proc->Perspective(request.perspective);
  }
  return Status::InvalidArgument("unknown query kind");
}

std::vector<QueryRequest> MakeMixedWorkload(const Rect& bounds, double max_lod,
                                            int count, uint64_t seed,
                                            double roi_fraction, int persp_pct,
                                            int mb_pct) {
  Rng rng(seed);
  const double side = std::sqrt(
      std::max(1e-12, roi_fraction) * std::max(1e-12, bounds.Area()));
  const double lod = std::max(max_lod, 1e-12);
  std::vector<QueryRequest> workload;
  workload.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double x =
        rng.Uniform(bounds.lo_x, std::max(bounds.lo_x, bounds.hi_x - side));
    const double y =
        rng.Uniform(bounds.lo_y, std::max(bounds.lo_y, bounds.hi_y - side));
    const Rect roi = Rect::Of(x, y, std::min(x + side, bounds.hi_x),
                              std::min(y + side, bounds.hi_y));
    QueryRequest req;
    if (static_cast<int>(rng.NextBelow(100)) < persp_pct) {
      req.kind = QueryRequest::Kind::kPerspective;
      req.perspective.roi = roi;
      // Viewer at the center of the near edge, the fig8 convention.
      req.perspective.viewer = Point2{(roi.lo_x + roi.hi_x) / 2, roi.lo_y};
      const double diag =
          std::sqrt(roi.width() * roi.width() + roi.height() * roi.height());
      req.perspective.tolerance =
          (0.2 + 0.5 * rng.NextDouble()) * lod / std::max(diag, 1e-12);
      req.perspective.e_floor = 0.01 * lod;
      req.perspective.e_cap = lod;
    } else {
      req.kind = QueryRequest::Kind::kView;
      req.view.roi = roi;
      req.view.e_min = 0.01 * lod;
      req.view.e_max = (0.1 + 0.4 * rng.NextDouble()) * lod;
      req.view.gradient_along_y = rng.NextBelow(2) == 0;
      req.multi_base = static_cast<int>(rng.NextBelow(100)) < mb_pct;
    }
    workload.push_back(req);
  }
  return workload;
}

std::string ThroughputReport::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "threads=%d queries=%lld wall=%.1fms qps=%.1f "
                "p50=%.2fms p99=%.2fms p999=%.2fms "
                "queue_p50=%.2fms queue_p99=%.2fms "
                "exec_p50=%.2fms exec_p99=%.2fms "
                "disk_reads=%lld failed=%lld shed=%lld degraded=%lld "
                "io_retries=%lld",
                threads, static_cast<long long>(queries), wall_millis, qps,
                p50_millis, p99_millis, p999_millis, queue_p50_millis,
                queue_p99_millis, exec_p50_millis, exec_p99_millis,
                static_cast<long long>(disk_reads),
                static_cast<long long>(failed), static_cast<long long>(shed),
                static_cast<long long>(degraded),
                static_cast<long long>(io_retries));
  return buf;
}

namespace {

double Percentile(std::vector<double> sorted_ascending, double p) {
  if (sorted_ascending.empty()) return 0.0;
  const double rank =
      p * static_cast<double>(sorted_ascending.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_ascending.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ascending[lo] * (1.0 - frac) + sorted_ascending[hi] * frac;
}

}  // namespace

Result<ThroughputReport> RunThroughput(
    DmStore* store, const std::vector<QueryRequest>& workload, int threads,
    const DmQueryOptions& query, double max_queue_wait_millis) {
  using Clock = std::chrono::steady_clock;
  // Warm-cache steady state: write back dirt, keep everything
  // resident (the cold-cache FlushAll stays with the paper benches).
  DM_RETURN_NOT_OK(store->env()->FlushDirty());
  const int64_t reads0 = store->env()->stats().disk_reads;
  const int64_t retries0 = store->env()->stats().io_retries;

  QueryServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity =
      std::max<size_t>(8, 2 * static_cast<size_t>(threads));
  options.query = query;
  options.max_queue_wait_millis = max_queue_wait_millis;
  QueryService service(store, options);

  std::vector<double> latencies(workload.size(), 0.0);
  std::vector<double> queue_waits(workload.size(), 0.0);
  std::vector<double> exec_times(workload.size(), 0.0);
  const auto run_start = Clock::now();
  for (size_t i = 0; i < workload.size(); ++i) {
    const auto submit_time = Clock::now();
    service.Submit(workload[i],
                   [&latencies, &queue_waits, &exec_times, i, submit_time](
                       const Result<DmQueryResult>& r, const QueryTiming& t) {
                     (void)r;  // outcomes come from the worker counters
                     latencies[i] = std::chrono::duration<double, std::milli>(
                                        Clock::now() - submit_time)
                                        .count();
                     queue_waits[i] = t.queue_millis;
                     exec_times[i] = t.exec_millis;
                   });
  }
  service.Drain();
  const auto run_end = Clock::now();
  const ServiceHealth health = service.health();
  service.Shutdown();

  ThroughputReport report;
  report.threads = threads;
  report.queries = static_cast<int64_t>(workload.size());
  report.wall_millis =
      std::chrono::duration<double, std::milli>(run_end - run_start).count();
  report.qps = report.wall_millis > 0
                   ? 1000.0 * static_cast<double>(report.queries) /
                         report.wall_millis
                   : 0.0;
  std::sort(latencies.begin(), latencies.end());
  std::sort(queue_waits.begin(), queue_waits.end());
  std::sort(exec_times.begin(), exec_times.end());
  report.p50_millis = Percentile(latencies, 0.50);
  report.p99_millis = Percentile(latencies, 0.99);
  report.p999_millis = Percentile(latencies, 0.999);
  report.queue_p50_millis = Percentile(queue_waits, 0.50);
  report.queue_p99_millis = Percentile(queue_waits, 0.99);
  report.exec_p50_millis = Percentile(exec_times, 0.50);
  report.exec_p99_millis = Percentile(exec_times, 0.99);
  report.disk_reads = store->env()->stats().disk_reads - reads0;
  report.failed = health.errors + health.sheddable;
  report.shed = health.shed;
  report.degraded = health.degraded;
  report.io_retries = store->env()->stats().io_retries - retries0;
  return report;
}

}  // namespace dm
