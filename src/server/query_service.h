#ifndef DIRECTMESH_SERVER_QUERY_SERVICE_H_
#define DIRECTMESH_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"

namespace dm {

/// One query job for the serving pool: exactly one of the paper's
/// query kinds, selected by `kind`.
struct QueryRequest {
  enum class Kind { kUniform, kView, kPerspective };
  Kind kind = Kind::kView;
  // kUniform: Q(M, roi, e).
  Rect roi;
  double e = 0.0;
  // kView: single- or multi-base viewpoint-dependent query.
  ViewQuery view;
  bool multi_base = false;
  // kPerspective: viewer-driven radial LOD field.
  PerspectiveQuery perspective;
};

/// Where one query's latency went: time spent waiting in the bounded
/// queue vs time executing on a worker. Queue wait dominating under
/// load means the pool is saturated (add workers); execution
/// dominating means per-query cost is the bottleneck (cache/arena).
struct QueryTiming {
  double queue_millis = 0.0;  // Submit -> dequeued by a worker
  double exec_millis = 0.0;   // dequeued -> result ready
};

/// Completion callback; runs on a worker thread.
using QueryCallback =
    std::function<void(const Result<DmQueryResult>&, const QueryTiming&)>;

struct QueryServiceOptions {
  /// Fixed worker count (each worker owns one DmQueryProcessor).
  int num_threads = 4;
  /// Bounded queue depth; Submit blocks when the queue is full
  /// (condition-variable backpressure instead of unbounded growth).
  size_t queue_capacity = 64;
  /// Overload shedding: a job that already waited in the queue longer
  /// than this budget is dropped at dequeue with Status::Unavailable
  /// instead of executing — under saturation the pool sheds the
  /// queries it can no longer serve in time rather than serving all
  /// of them late. 0 disables shedding.
  double max_queue_wait_millis = 0.0;
  /// Per-worker query-processor knobs (arena, degraded mode, deadline).
  DmQueryOptions query;
};

/// Failure-handling counters of a QueryService, either one worker's or
/// the pool-wide sum (DESIGN.md §11).
struct ServiceHealth {
  /// Queries that failed with a non-load status (I/O error after
  /// retries, corruption, bad arguments) — a bug or a bad disk, not
  /// pressure.
  int64_t errors = 0;
  /// Queries that failed under load: Status::Unavailable (transient
  /// not absorbed by retries) or Status::ResourceExhausted (all
  /// buffer-pool frames pinned). Retry-after-backoff territory.
  int64_t sheddable = 0;
  /// Queries dropped at dequeue because their queue wait exceeded
  /// `max_queue_wait_millis` (never executed).
  int64_t shed = 0;
  /// Queries that completed with health.degraded set: a legal mesh,
  /// coarser or sparser than a healthy run's.
  int64_t degraded = 0;
};

/// Fixed-size worker pool serving DM queries against one shared
/// DmStore (immutable after Open; all mutable state lives in the
/// thread-safe sharded buffer pool). Producers Submit jobs into a
/// bounded MPMC queue; each worker runs its own DmQueryProcessor, so
/// query CPU (refinement + triangulation) and shard-local page I/O
/// overlap across clients.
///
/// Note on per-query stats under concurrency: `disk_accesses` /
/// `index_io` are deltas of the pool's global counters, so with
/// overlapping queries they attribute other workers' reads to this
/// query. Geometry (vertices/positions/triangles) is exact and
/// byte-identical to a serial run; aggregate disk reads are exact at
/// the DbEnv level.
class QueryService {
 public:
  explicit QueryService(DmStore* store,
                        const QueryServiceOptions& options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues a query, blocking while the queue is at capacity.
  /// `done` runs on a worker thread once the query completes (it must
  /// be its own synchronization domain). Returns false after
  /// Shutdown().
  bool Submit(QueryRequest request, QueryCallback done);

  /// Blocks until every submitted job has completed.
  void Drain();

  /// Drains outstanding jobs, then stops and joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  int num_threads() const { return options_.num_threads; }
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// One worker's failure counters (worker in [0, num_threads)).
  ServiceHealth worker_health(int worker) const;
  /// Pool-wide sum over all workers.
  ServiceHealth health() const;

 private:
  struct Job {
    QueryRequest request;
    QueryCallback done;
    std::chrono::steady_clock::time_point submitted;
  };

  /// Per-worker counters; each slot is written only by its worker, and
  /// read (relaxed) by health() — totals are exact once the pool is
  /// drained.
  struct WorkerCounters {
    std::atomic<int64_t> errors{0};
    std::atomic<int64_t> sheddable{0};
    std::atomic<int64_t> shed{0};
    std::atomic<int64_t> degraded{0};
  };

  void WorkerLoop(int worker);
  Result<DmQueryResult> Execute(DmQueryProcessor* proc,
                                const QueryRequest& request) const;

  DmStore* store_;
  QueryServiceOptions options_;
  /// Sized once in the constructor, never resized (atomics pin it).
  std::vector<WorkerCounters> counters_;
  std::vector<std::thread> workers_;

  mutable Mutex mu_;
  CondVar not_empty_;  // workers wait for jobs
  CondVar not_full_;   // producers wait for space
  CondVar idle_;       // Drain waits for quiescence
  std::deque<Job> queue_ DM_GUARDED_BY(mu_);
  // Dequeued but not yet completed.
  size_t in_flight_ DM_GUARDED_BY(mu_) = 0;
  bool stopping_ DM_GUARDED_BY(mu_) = false;

  std::atomic<int64_t> completed_{0};
};

/// A deterministic mixed serving workload over a store's footprint:
/// `persp_pct`% perspective queries, `mb_pct`% of the remaining view
/// queries multi-base, ROIs of `roi_fraction` of the bounds area at
/// seeded random positions, LOD planes spanning up to half the LOD
/// range. Shared by bench_throughput and `dmctl bench-serve`.
std::vector<QueryRequest> MakeMixedWorkload(const Rect& bounds,
                                            double max_lod, int count,
                                            uint64_t seed,
                                            double roi_fraction = 0.02,
                                            int persp_pct = 40,
                                            int mb_pct = 25);

/// Result of one timed throughput run.
struct ThroughputReport {
  int threads = 0;
  int64_t queries = 0;
  double wall_millis = 0.0;
  double qps = 0.0;
  double p50_millis = 0.0;  // per-query latency, submit -> completion
  double p99_millis = 0.0;
  double p999_millis = 0.0;  // tail beyond p99 (queue bursts)
  // End-to-end latency split into queue wait vs execution (QueryTiming)
  // so saturation and per-query cost regress independently.
  double queue_p50_millis = 0.0;
  double queue_p99_millis = 0.0;
  double exec_p50_millis = 0.0;
  double exec_p99_millis = 0.0;
  int64_t disk_reads = 0;  // aggregate over the run (warm cache)
  /// Real failures (errors + sheddable); shed queries are counted
  /// separately — dropping late work under overload is policy, not
  /// failure.
  int64_t failed = 0;
  int64_t shed = 0;
  int64_t degraded = 0;  // completed with a coarser-than-asked mesh
  int64_t io_retries = 0;  // transient I/O absorbed during the run

  std::string ToString() const;
};

/// Replays `workload` through a QueryService with `threads` workers
/// and reports throughput and latency percentiles. The cache is
/// warmed (FlushDirty steady state), not flushed, so repeated runs
/// measure serving capacity rather than cold-start I/O. `query` and
/// `max_queue_wait_millis` pass through to QueryServiceOptions so
/// fault benches can run degraded-with-deadline and shedding modes.
Result<ThroughputReport> RunThroughput(DmStore* store,
                                       const std::vector<QueryRequest>& workload,
                                       int threads,
                                       const DmQueryOptions& query = {},
                                       double max_queue_wait_millis = 0.0);

}  // namespace dm

#endif  // DIRECTMESH_SERVER_QUERY_SERVICE_H_
