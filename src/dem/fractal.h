#ifndef DIRECTMESH_DEM_FRACTAL_H_
#define DIRECTMESH_DEM_FRACTAL_H_

#include <cstdint>

#include "dem/dem_grid.h"

namespace dm {

/// Parameters of the diamond-square fractal generator.
struct FractalParams {
  /// Grid side is the smallest 2^k+1 that is >= side; the result is then
  /// cropped to side x side.
  int side = 257;
  /// Initial random displacement amplitude (elevation units).
  double amplitude = 200.0;
  /// Per-octave amplitude decay in (0, 1); lower = smoother terrain.
  double roughness = 0.55;
  uint64_t seed = 42;
};

/// Generates fractal terrain with the diamond-square algorithm.
///
/// Stands in for the paper's 2M-point proprietary mining DEM: it has
/// uniform point density in (x, y) and a heavy-tailed distribution of
/// local curvature, which is what makes quadric-error LODs skewed —
/// the property the LOD-quadtree baseline and DM both have to cope
/// with.
DemGrid GenerateFractalDem(const FractalParams& params);

}  // namespace dm

#endif  // DIRECTMESH_DEM_FRACTAL_H_
