#include "dem/fractal.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace dm {

namespace {
int NextPow2Plus1(int n) {
  int p = 1;
  while (p + 1 < n) p <<= 1;
  return p + 1;
}
}  // namespace

DemGrid GenerateFractalDem(const FractalParams& params) {
  const int side = NextPow2Plus1(std::max(params.side, 3));
  DemGrid grid(side, side);
  Rng rng(params.seed);

  // Seed the four corners.
  grid.set(0, 0, rng.Uniform(-params.amplitude, params.amplitude));
  grid.set(side - 1, 0, rng.Uniform(-params.amplitude, params.amplitude));
  grid.set(0, side - 1, rng.Uniform(-params.amplitude, params.amplitude));
  grid.set(side - 1, side - 1,
           rng.Uniform(-params.amplitude, params.amplitude));

  double amp = params.amplitude;
  for (int step = side - 1; step > 1; step /= 2) {
    const int half = step / 2;
    // Diamond step: center of each square gets the corner average plus
    // a random displacement.
    for (int y = half; y < side; y += step) {
      for (int x = half; x < side; x += step) {
        const double avg =
            (grid.at(x - half, y - half) + grid.at(x + half, y - half) +
             grid.at(x - half, y + half) + grid.at(x + half, y + half)) /
            4.0;
        grid.set(x, y, avg + rng.Uniform(-amp, amp));
      }
    }
    // Square step: edge midpoints get the average of their (up to 4)
    // diamond neighbours.
    for (int y = 0; y < side; y += half) {
      const int x_start = ((y / half) % 2 == 0) ? half : 0;
      for (int x = x_start; x < side; x += step) {
        double sum = 0.0;
        int cnt = 0;
        if (x - half >= 0) {
          sum += grid.at(x - half, y);
          ++cnt;
        }
        if (x + half < side) {
          sum += grid.at(x + half, y);
          ++cnt;
        }
        if (y - half >= 0) {
          sum += grid.at(x, y - half);
          ++cnt;
        }
        if (y + half < side) {
          sum += grid.at(x, y + half);
          ++cnt;
        }
        grid.set(x, y, sum / cnt + rng.Uniform(-amp, amp));
      }
    }
    amp *= params.roughness;
  }

  if (side == params.side) return grid;
  // Crop to the requested size.
  DemGrid cropped(params.side, params.side);
  for (int y = 0; y < params.side; ++y) {
    for (int x = 0; x < params.side; ++x) {
      cropped.set(x, y, grid.at(x, y));
    }
  }
  return cropped;
}

}  // namespace dm
