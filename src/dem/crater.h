#ifndef DIRECTMESH_DEM_CRATER_H_
#define DIRECTMESH_DEM_CRATER_H_

#include <cstdint>

#include "dem/dem_grid.h"

namespace dm {

/// Parameters of the synthetic caldera generator.
struct CraterParams {
  int side = 257;
  /// Rim elevation above the surrounding plain.
  double rim_height = 600.0;
  /// Caldera floor depth below the rim.
  double bowl_depth = 500.0;
  /// Rim radius as a fraction of the half-side.
  double rim_radius_frac = 0.55;
  /// Amplitude of the superimposed fractal detail.
  double noise_amplitude = 80.0;
  double noise_roughness = 0.55;
  uint64_t seed = 4242;
};

/// Generates a caldera-shaped DEM (radial rim/bowl profile plus
/// diamond-square detail) standing in for the USGS "Crater Lake
/// National Park" dataset the paper uses: strong radial relief with a
/// deep interior bowl, so quadric errors span several orders of
/// magnitude — the LOD-skew regime of the 17M-point dataset.
DemGrid GenerateCraterDem(const CraterParams& params);

}  // namespace dm

#endif  // DIRECTMESH_DEM_CRATER_H_
