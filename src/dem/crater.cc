#include "dem/crater.h"

#include <cmath>

#include "dem/fractal.h"

namespace dm {

DemGrid GenerateCraterDem(const CraterParams& params) {
  FractalParams noise;
  noise.side = params.side;
  noise.amplitude = params.noise_amplitude;
  noise.roughness = params.noise_roughness;
  noise.seed = params.seed;
  DemGrid grid = GenerateFractalDem(noise);

  const double cx = (params.side - 1) / 2.0;
  const double cy = (params.side - 1) / 2.0;
  const double rim_r = params.rim_radius_frac * cx;

  for (int y = 0; y < params.side; ++y) {
    for (int x = 0; x < params.side; ++x) {
      const double dx = x - cx;
      const double dy = y - cy;
      const double r = std::sqrt(dx * dx + dy * dy) / rim_r;  // 1 at rim
      double base;
      if (r < 1.0) {
        // Inside the caldera: cosine bowl from the rim down to the
        // floor (rim_height - bowl_depth).
        base = params.rim_height -
               params.bowl_depth * 0.5 * (1.0 + std::cos(3.14159265358979 * r));
      } else {
        // Outside: exponential flank decaying to the plain.
        base = params.rim_height * std::exp(-3.0 * (r - 1.0));
      }
      grid.set(x, y, grid.at(x, y) + base);
    }
  }
  return grid;
}

}  // namespace dm
