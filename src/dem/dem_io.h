#ifndef DIRECTMESH_DEM_DEM_IO_H_
#define DIRECTMESH_DEM_DEM_IO_H_

#include <string>

#include "common/status.h"
#include "dem/dem_grid.h"

namespace dm {

/// Writes a DEM to disk in a simple binary format:
///   magic "DMDEM1\n", int32 width, int32 height, float64 samples
///   (row major).
Status WriteDem(const DemGrid& grid, const std::string& path);

/// Reads a DEM written by WriteDem.
Result<DemGrid> ReadDem(const std::string& path);

/// Parses the ASCII Esri grid format (the distribution format of USGS
/// DEMs such as Crater Lake): header lines `ncols`, `nrows`,
/// `xllcorner`, `yllcorner`, `cellsize`, `NODATA_value` followed by
/// rows of elevations, north to south. NODATA cells are filled with
/// the minimum valid elevation.
Result<DemGrid> ReadEsriAsciiGrid(const std::string& path);

}  // namespace dm

#endif  // DIRECTMESH_DEM_DEM_IO_H_
