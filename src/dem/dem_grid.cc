#include "dem/dem_grid.h"

#include <algorithm>
#include <cmath>

namespace dm {

void DemGrid::ElevationRange(double* min_z, double* max_z) const {
  double lo = z_.empty() ? 0.0 : z_[0];
  double hi = lo;
  for (double v : z_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  *min_z = lo;
  *max_z = hi;
}

double DemGrid::Sample(double x, double y) const {
  x = std::clamp(x, 0.0, width_ - 1.0);
  y = std::clamp(y, 0.0, height_ - 1.0);
  const int x0 = std::min(static_cast<int>(x), width_ - 2);
  const int y0 = std::min(static_cast<int>(y), height_ - 2);
  const double fx = x - x0;
  const double fy = y - y0;
  const double z00 = at(x0, y0);
  const double z10 = at(x0 + 1, y0);
  const double z01 = at(x0, y0 + 1);
  const double z11 = at(x0 + 1, y0 + 1);
  return z00 * (1 - fx) * (1 - fy) + z10 * fx * (1 - fy) +
         z01 * (1 - fx) * fy + z11 * fx * fy;
}

}  // namespace dm
