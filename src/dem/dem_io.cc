#include "dem/dem_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace dm {

namespace {
constexpr char kMagic[] = "DMDEM1\n";
}  // namespace

Status WriteDem(const DemGrid& grid, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  bool ok = std::fwrite(kMagic, 1, 7, f) == 7;
  const int32_t w = grid.width();
  const int32_t h = grid.height();
  ok = ok && std::fwrite(&w, sizeof(w), 1, f) == 1;
  ok = ok && std::fwrite(&h, sizeof(h), 1, f) == 1;
  ok = ok && std::fwrite(grid.data().data(), sizeof(double),
                         grid.data().size(), f) == grid.data().size();
  std::fclose(f);
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<DemGrid> ReadDem(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[7];
  if (std::fread(magic, 1, 7, f) != 7 || std::memcmp(magic, kMagic, 7) != 0) {
    std::fclose(f);
    return Status::Corruption("bad DEM magic in " + path);
  }
  int32_t w = 0;
  int32_t h = 0;
  if (std::fread(&w, sizeof(w), 1, f) != 1 ||
      std::fread(&h, sizeof(h), 1, f) != 1 || w <= 0 || h <= 0) {
    std::fclose(f);
    return Status::Corruption("bad DEM header in " + path);
  }
  DemGrid grid(w, h);
  const size_t n = grid.data().size();
  if (std::fread(grid.mutable_data().data(), sizeof(double), n, f) != n) {
    std::fclose(f);
    return Status::Corruption("truncated DEM data in " + path);
  }
  std::fclose(f);
  return grid;
}

Result<DemGrid> ReadEsriAsciiGrid(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  int ncols = -1;
  int nrows = -1;
  double nodata = -9999.0;
  std::string key;
  // Header: key/value pairs until the first numeric row. xllcorner,
  // yllcorner and cellsize only rescale the footprint, which this
  // codebase normalizes anyway, so they are parsed and ignored.
  for (int i = 0; i < 6; ++i) {
    std::streampos pos = in.tellg();
    if (!(in >> key)) return Status::Corruption("truncated header");
    if (!key.empty() && (std::isdigit(key[0]) || key[0] == '-')) {
      in.seekg(pos);
      break;
    }
    double value = 0;
    if (!(in >> value)) return Status::Corruption("bad header value");
    for (auto& c : key) c = static_cast<char>(std::tolower(c));
    if (key == "ncols") ncols = static_cast<int>(value);
    if (key == "nrows") nrows = static_cast<int>(value);
    if (key == "nodata_value") nodata = value;
  }
  if (ncols <= 0 || nrows <= 0) {
    return Status::Corruption("missing ncols/nrows in " + path);
  }

  DemGrid grid(ncols, nrows);
  double min_valid = std::numeric_limits<double>::infinity();
  std::vector<std::pair<int, int>> holes;
  for (int row = 0; row < nrows; ++row) {
    for (int col = 0; col < ncols; ++col) {
      double z = 0;
      if (!(in >> z)) return Status::Corruption("truncated grid data");
      // Esri rows run north to south; flip to our y-up convention.
      const int y = nrows - 1 - row;
      if (z == nodata) {
        holes.emplace_back(col, y);
      } else {
        grid.set(col, y, z);
        min_valid = std::min(min_valid, z);
      }
    }
  }
  if (min_valid == std::numeric_limits<double>::infinity()) min_valid = 0.0;
  for (auto [x, y] : holes) grid.set(x, y, min_valid);
  return grid;
}

}  // namespace dm
