#ifndef DIRECTMESH_DEM_DEM_GRID_H_
#define DIRECTMESH_DEM_DEM_GRID_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace dm {

/// A regular-grid digital elevation model: `width x height` samples of
/// elevation over the rectangle [0, width-1] x [0, height-1] in ground
/// units (one unit per grid cell; callers may rescale).
///
/// This is the raw input format of both paper datasets (a mining DEM
/// and the USGS Crater Lake DEM); the synthetic generators in this
/// module produce statistically comparable grids.
class DemGrid {
 public:
  DemGrid() = default;
  DemGrid(int width, int height)
      : width_(width), height_(height),
        z_(static_cast<size_t>(width) * height, 0.0) {}

  int width() const { return width_; }
  int height() const { return height_; }
  int64_t num_points() const {
    return static_cast<int64_t>(width_) * height_;
  }

  double at(int x, int y) const {
    return z_[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, double z) {
    z_[static_cast<size_t>(y) * width_ + x] = z;
  }

  /// 3D position of sample (x, y).
  Point3 PointAt(int x, int y) const {
    return Point3{static_cast<double>(x), static_cast<double>(y), at(x, y)};
  }

  /// Footprint rectangle of the whole grid.
  Rect Bounds() const {
    return Rect::Of(0.0, 0.0, width_ - 1.0, height_ - 1.0);
  }

  /// Min and max elevation over the grid.
  void ElevationRange(double* min_z, double* max_z) const;

  /// Bilinearly interpolated elevation at an arbitrary in-bounds
  /// footprint position.
  double Sample(double x, double y) const;

  const std::vector<double>& data() const { return z_; }
  std::vector<double>& mutable_data() { return z_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<double> z_;
};

}  // namespace dm

#endif  // DIRECTMESH_DEM_DEM_GRID_H_
