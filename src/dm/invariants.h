#ifndef DIRECTMESH_DM_INVARIANTS_H_
#define DIRECTMESH_DM_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dm/dm_store.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"

namespace dm {

/// One detected violation of a named invariant. `invariant` is a
/// stable machine-readable identifier (see kInvariant* below); `detail`
/// is human-readable context naming the offending node/page.
struct InvariantViolation {
  std::string invariant;
  std::string detail;
};

/// Names of the invariants the checker audits. Stable strings: tests,
/// tools, and CI grep for them.
inline constexpr char kInvariantNodeCount[] = "node-count";
inline constexpr char kInvariantRecordDecode[] = "record-decode";
inline constexpr char kInvariantLodInterval[] = "lod-interval";
inline constexpr char kInvariantTreeLinks[] = "tree-links";
inline constexpr char kInvariantConnectionList[] = "connection-list";
inline constexpr char kInvariantConnectionExact[] = "connection-exactness";
inline constexpr char kInvariantRTreeMbb[] = "rtree-mbb";
inline constexpr char kInvariantRTreeEntry[] = "rtree-entry";
inline constexpr char kInvariantPinBalance[] = "pin-balance";

/// Outcome of an invariant audit. `ok()` iff nothing was violated; the
/// counters record how much evidence backs a clean report.
struct InvariantReport {
  std::vector<InvariantViolation> violations;
  int64_t nodes_checked = 0;
  int64_t connections_checked = 0;
  int64_t rtree_nodes_checked = 0;
  /// Violations observed beyond the per-invariant recording cap.
  int64_t suppressed = 0;

  bool ok() const { return violations.empty() && suppressed == 0; }
  /// Multi-line summary: counters plus one line per violation.
  std::string ToString() const;
};

/// Knobs for the audit.
struct InvariantOptions {
  /// Per-invariant cap on recorded violations, so a grossly corrupt
  /// store still produces a readable report (the total is still
  /// counted in `suppressed`).
  int64_t max_violations_per_invariant = 16;
};

/// Structural audit of a built DM store using only on-disk state (no
/// source mesh needed — this is what `dmctl verify` runs):
///
///  - node-count:       heap record count and R*-tree size match the
///                      catalog's num_nodes / num_leaves.
///  - record-decode:    every heap record decodes, ids are unique and
///                      dense in [0, num_nodes).
///  - lod-interval:     0 <= e_low <= e_high for every node; leaves sit
///                      at e_low == 0; the unique root tops out at
///                      +inf; child intervals abut their parent's
///                      (child.e_high == parent.e_low), which makes
///                      [e_low, e_high) nest monotonically leaf-to-root
///                      — the paper's LOD normalization.
///  - tree-links:       parent/child pointers are mutually consistent
///                      and in range.
///  - connection-list:  lists are sorted, duplicate-free, symmetric
///                      (u in conn[v] iff v in conn[u]), and every pair
///                      has overlapping LOD intervals (the co-alive
///                      requirement).
///  - rtree-mbb:        every entry box of an internal node exactly
///                      bounds its child node's entries; levels
///                      decrease by one per step; leaf entry boxes are
///                      the vertical (x, y, [e_low, e_high]) segment of
///                      the record they point to.
///  - pin-balance:      the buffer pool is quiescent (zero pinned
///                      frames) once the audit's own guards are
///                      released.
///
/// Loads all decoded nodes in memory (O(num_nodes)); intended for
/// offline verification, not the query path.
Result<InvariantReport> VerifyDmStore(const DmStore& store,
                                      const InvariantOptions& options = {});

/// Ground-truth audit for small meshes: everything VerifyDmStore
/// checks, plus connection-exactness — the similar-LOD connection
/// lists are recomputed by brute force from the base mesh (for every
/// base edge, every interval-overlapping ancestor pair of its
/// endpoints is a required connection; nothing else is allowed) and
/// compared entry-for-entry against the stored lists, and every stored
/// record is compared field-for-field against its PmTree node.
/// Quadratic-ish in mesh depth; use on test-sized terrains.
Result<InvariantReport> VerifyDmStoreAgainstSource(
    const DmStore& store, const TriangleMesh& base, const PmTree& tree,
    const InvariantOptions& options = {});

}  // namespace dm

#endif  // DIRECTMESH_DM_INVARIANTS_H_
