#ifndef DIRECTMESH_DM_DM_STORE_H_
#define DIRECTMESH_DM_DM_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "dm/cost_model.h"
#include "dm/dm_node.h"
#include "dm/node_cache.h"
#include "index/rtree/rstar_tree.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"
#include "storage/db_env.h"
#include "storage/heap_file.h"

namespace dm {

/// Persistent identifiers and dataset statistics of a built DM
/// database; enough to reopen it without rebuilding.
struct DmMeta {
  PageId heap_first = kInvalidPage;
  PageId rtree_root = kInvalidPage;
  int64_t rtree_size = 0;
  int64_t num_nodes = 0;
  int64_t num_leaves = 0;
  double max_lod = 0.0;
  double mean_lod = 0.0;
  Rect bounds;
  /// Records stored with the compressed codec (DmNode::EncodeCompressedTo).
  bool compressed = false;
};

/// Wall-clock breakdown of one DmStore::Build call, for build
/// progress reporting and the ingest bench.
struct DmBuildTimings {
  double conn_millis = 0.0;      // connection lists (skipped if precomputed)
  double str_millis = 0.0;       // STR packing order
  double encode_millis = 0.0;    // record encoding
  double append_millis = 0.0;    // heap writes
  double bulkload_millis = 0.0;  // R*-tree pack
  double catalog_millis = 0.0;   // catalog / cost-model snapshot
};

/// Build-time options of a DM database.
struct DmStoreOptions {
  /// Store records with the delta/varint codec (the compressed-MTM
  /// idea of the paper's reference [2]); cuts record size roughly in
  /// half, which the compression ablation translates into disk
  /// accesses.
  bool compress_records = false;
  /// Worker threads for connection lists, STR sorting, and record
  /// encoding (<= 0 means one per hardware core). The built files are
  /// byte-identical at any thread count: parallel stages either have
  /// one valid answer (sorts under total orders) or write disjoint
  /// slots, and everything that allocates pages stays sequential.
  int threads = 1;
  /// Connection lists computed by the caller (must match
  /// BuildConnectionLists for the same tree); skips the rebuild so
  /// callers that also need the lists for stats don't pay twice.
  const std::vector<std::vector<VertexId>>* connections = nullptr;
  /// When non-null, receives the per-stage wall-clock breakdown.
  DmBuildTimings* timings = nullptr;
};

/// A Direct Mesh database: DM node records in a heap file (appended in
/// Hilbert order of (x, y) to preserve spatial clustering on disk) and
/// a 3D R*-tree indexing each node as the vertical line segment
/// <(x, y, e_low), (x, y, e_high)> in (x, y, e) space — Section 4 of
/// the paper.
///
/// Concurrency: a DmStore is immutable after Build/Open — the heap,
/// R*-tree, meta, and catalog never change — so every const member
/// (FetchNode, FetchNodes, rtree() range queries, cost_inputs()) is
/// safe to call from many query workers sharing one store; the only
/// mutable state is inside the thread-safe buffer pool and the
/// (equally thread-safe) sharded decoded-node cache.
class DmStore {
 public:
  /// Builds the database from a PM construction run: computes the
  /// similar-LOD connection lists, writes all node records, and bulk
  /// inserts the segments into the R*-tree.
  static Result<DmStore> Build(DbEnv* env, const TriangleMesh& base,
                               const PmTree& tree, const SimplifyResult& sr,
                               const DmStoreOptions& options = {});

  /// Reopens a previously built database.
  static Result<DmStore> Open(DbEnv* env, const DmMeta& meta);

  const DmMeta& meta() const { return meta_; }
  DbEnv* env() const { return env_; }
  const RStarTree& rtree() const { return rtree_; }
  const HeapFile& heap() const { return heap_; }

  /// Fetches and decodes one node record. Always reads through the
  /// heap file (never the node cache) so invariant checks and tests
  /// exercise the raw decode path.
  Result<DmNode> FetchNode(RecordId rid) const;

  /// Batch fetch: hands the nodes named by `sorted_rids` (packed
  /// RecordIds in ascending order — the order a sorted RangeQuery
  /// result is already in) to `fn`, in that order. Records that hit
  /// the decoded-node cache skip the heap entirely; the miss
  /// subsequence (still sorted) goes through HeapFile::GetMany, so
  /// runs of adjacent heap pages coalesce into single scatter-gather
  /// disk reads and, with the cache off, `disk_reads` accounting
  /// matches per-record FetchNode calls exactly.
  ///
  /// `counts`, when non-null, receives this call's exact cache
  /// hit/miss split (both zero when the cache is disabled) — unlike
  /// deltas of the shared `node_cache_stats()`, it is not polluted by
  /// concurrent workers.
  struct FetchCounts {
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
  };

  /// Nodes a tolerant FetchNodes could not deliver: records on
  /// unreadable/corrupt pages (from the heap layer) plus records that
  /// were read but failed to decode. The query layer degrades these
  /// to coarser live nodes instead of failing the query.
  struct FetchFailures {
    std::vector<RecordFetchFailure> records;

    bool empty() const { return records.empty(); }
    /// Distinct heap pages implicated across `records`.
    int64_t FailedPages() const;
  };

  /// When `failures` is null, any I/O, corruption, or decode error
  /// fails the whole call (strict mode — builds and audits want this).
  /// When non-null, per-record losses are collected there and the call
  /// returns OK; `fn` simply never sees the lost nodes.
  Status FetchNodes(const std::vector<uint64_t>& sorted_rids,
                    const std::function<void(const NodeRef&)>& fn,
                    FetchCounts* counts = nullptr,
                    FetchFailures* failures = nullptr) const;

  /// Sizes (0 disables) or resizes the decoded-node cache. Existing
  /// entries are dropped. Requires quiescence: no concurrent
  /// FetchNodes callers (benches and dmctl call it between batches).
  void EnableNodeCache(size_t bytes,
                       uint32_t shards = NodeCache::kDefaultShards);

  /// The decoded-node cache, or nullptr when disabled.
  const NodeCache* node_cache() const { return node_cache_.get(); }
  /// Cache counters; all zeros when the cache is disabled.
  NodeCacheStats node_cache_stats() const {
    return node_cache_ != nullptr ? node_cache_->stats() : NodeCacheStats{};
  }

  /// Cached node extents of the R*-tree for the multi-base cost model
  /// (collected once at open/build; treated as catalog statistics, not
  /// charged to query I/O).
  const std::vector<RTreeNodeExtent>& node_extents() const {
    return node_extents_;
  }
  /// Data-space box used for cost-model normalization.
  const Box& data_space() const { return data_space_; }

  /// Quantile map of the LOD axis for the cost model (see EAxisMap).
  const EAxisMap& e_axis_map() const { return e_axis_map_; }

  /// Full catalog snapshot for the query optimizer. Returned by value
  /// with the node-extent pointer re-bound, so it stays valid even
  /// though DmStore objects are moved around freely.
  CostModelInputs cost_inputs() const {
    CostModelInputs ci = cost_inputs_;
    ci.nodes = &node_extents_;
    return ci;
  }

 private:
  DmStore(DbEnv* env, HeapFile heap, RStarTree rtree)
      : env_(env), heap_(std::move(heap)), rtree_(std::move(rtree)) {}

  Status LoadCatalog();

  DbEnv* env_;
  HeapFile heap_;
  RStarTree rtree_;
  /// Decoded-node cache (tied to this store generation: a rebuild
  /// constructs a new store and with it a fresh, empty cache, which is
  /// the invalidation rule — stale decodes cannot survive a rebuild).
  /// unique_ptr keeps DmStore movable; null means disabled.
  std::unique_ptr<NodeCache> node_cache_;
  DmMeta meta_;
  std::vector<RTreeNodeExtent> node_extents_;
  Box data_space_;
  EAxisMap e_axis_map_;
  CostModelInputs cost_inputs_;
};

}  // namespace dm

#endif  // DIRECTMESH_DM_DM_STORE_H_
