#ifndef DIRECTMESH_DM_DM_NODE_H_
#define DIRECTMESH_DM_DM_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace dm {

struct DmNode;

/// Shared handle to an immutable decoded node. The decoded-node cache
/// and every query worker alias the same decode through this, so a
/// cached node is decoded once and never copied per query.
using NodeRef = std::shared_ptr<const DmNode>;

/// A Direct Mesh node: the PM record plus the LOD interval and the
/// list of connection points with similar LOD ("a direct mesh is
/// constructed from a PM by adding a list of IDs for the connection
/// points of similar LOD to each node").
struct DmNode {
  VertexId id = kInvalidVertex;
  Point3 pos;
  double e_low = 0.0;
  double e_high = 0.0;  // +inf at the root
  VertexId parent = kInvalidVertex;
  VertexId child1 = kInvalidVertex;
  VertexId child2 = kInvalidVertex;
  VertexId wing1 = kInvalidVertex;
  VertexId wing2 = kInvalidVertex;
  /// Connection points with similar (interval-overlapping) LOD,
  /// sorted by id.
  std::vector<VertexId> connections;

  bool is_leaf() const { return child1 == kInvalidVertex; }
  bool AliveAt(double e) const { return e_low <= e && e < e_high; }
  bool IntervalOverlaps(double lo, double hi) const {
    // [e_low, e_high) vs [lo, hi]
    return e_low <= hi && e_high > lo;
  }

  /// Serialized size in bytes (flat encoding).
  uint32_t EncodedSize() const;
  /// Appends the flat binary encoding to `out`.
  void EncodeTo(std::vector<uint8_t>* out) const;
  /// Decodes a record produced by EncodeTo.
  static Result<DmNode> Decode(const uint8_t* data, uint32_t size);

  /// Compressed encoding in the spirit of the compressed-MTM work the
  /// paper cites (Danovaro et al., SSTD 2001): tree links and
  /// connection ids are stored as zigzag varint deltas against the
  /// node id (ids of related nodes are numerically close because
  /// parents are allocated in collapse order), positions and LODs stay
  /// full precision. Typically ~45% of the flat record size.
  void EncodeCompressedTo(std::vector<uint8_t>* out) const;
  /// Decodes a record produced by EncodeCompressedTo.
  static Result<DmNode> DecodeCompressed(const uint8_t* data, uint32_t size);
};

}  // namespace dm

#endif  // DIRECTMESH_DM_DM_NODE_H_
