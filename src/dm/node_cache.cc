#include "dm/node_cache.h"

#include <algorithm>

#include "common/check.h"

namespace dm {

NodeCache::NodeCache(size_t capacity_bytes, uint32_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  num_shards = std::max<uint32_t>(1, num_shards);
  shard_capacity_ = std::max<size_t>(1, capacity_bytes_ / num_shards);
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t NodeCache::EntryBytes(const DmNode& node) {
  // Decoded footprint plus map/LRU bookkeeping; an estimate is fine —
  // the budget bounds memory, it is not an accounting invariant.
  constexpr size_t kBookkeeping = 96;
  return sizeof(DmNode) + node.connections.capacity() * sizeof(VertexId) +
         kBookkeeping;
}

NodeRef NodeCache::Lookup(uint64_t key) {
  Shard& s = ShardFor(key);
  MutexLock lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) {
    s.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  s.hits.fetch_add(1, std::memory_order_relaxed);
  s.lru.splice(s.lru.end(), s.lru, it->second.lru_pos);
  return it->second.node;
}

void NodeCache::Insert(uint64_t key, const NodeRef& node) {
  DM_CHECK(node != nullptr) << "node cache insert of a null node";
  const size_t bytes = EntryBytes(*node);
  if (bytes > shard_capacity_) return;  // would evict the whole shard
  Shard& s = ShardFor(key);
  MutexLock lock(s.mu);
  if (s.map.count(key) != 0) return;  // racing install: first one wins
  while (s.bytes + bytes > shard_capacity_ && !s.lru.empty()) {
    const uint64_t victim = s.lru.front();
    s.lru.pop_front();
    auto vit = s.map.find(victim);
    DM_CHECK(vit != s.map.end()) << "node cache LRU/map desync";
    s.bytes -= vit->second.bytes;
    s.map.erase(vit);
    s.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  Entry e;
  e.node = node;
  e.bytes = bytes;
  s.lru.push_back(key);
  e.lru_pos = std::prev(s.lru.end());
  s.bytes += bytes;
  s.map.emplace(key, std::move(e));
}

void NodeCache::Clear() {
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    sp->map.clear();
    sp->lru.clear();
    sp->bytes = 0;
  }
}

NodeCacheStats NodeCache::stats() const {
  NodeCacheStats total;
  for (const auto& sp : shards_) {
    total.hits += sp->hits.load(std::memory_order_relaxed);
    total.misses += sp->misses.load(std::memory_order_relaxed);
    total.evictions += sp->evictions.load(std::memory_order_relaxed);
    MutexLock lock(sp->mu);
    total.entries += static_cast<int64_t>(sp->map.size());
    total.bytes += static_cast<int64_t>(sp->bytes);
  }
  return total;
}

void NodeCache::ResetStats() {
  for (const auto& sp : shards_) {
    sp->hits.store(0, std::memory_order_relaxed);
    sp->misses.store(0, std::memory_order_relaxed);
    sp->evictions.store(0, std::memory_order_relaxed);
  }
}

}  // namespace dm
