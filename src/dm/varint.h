#ifndef DIRECTMESH_DM_VARINT_H_
#define DIRECTMESH_DM_VARINT_H_

#include <cstdint>
#include <vector>

namespace dm {

/// LEB128 unsigned varint append.
inline void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// LEB128 decode; advances *pos. Returns false on truncation.
inline bool GetVarint(const uint8_t* data, uint32_t size, uint32_t* pos,
                      uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < size && shift <= 63) {
    const uint8_t byte = data[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// ZigZag transform for signed deltas.
inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace dm

#endif  // DIRECTMESH_DM_VARINT_H_
