#include "dm/dm_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "dm/connectivity.h"

namespace dm {

namespace {
double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

Result<DmStore> DmStore::Build(DbEnv* env, const TriangleMesh& base,
                               const PmTree& tree, const SimplifyResult& sr,
                               const DmStoreOptions& options) {
  WorkerPool pool(EffectiveThreads(options.threads));
  DmBuildTimings local_timings;
  DmBuildTimings* timings =
      options.timings != nullptr ? options.timings : &local_timings;
  auto clock = std::chrono::steady_clock::now();
  auto take_stage = [&](double* slot) {
    *slot = MillisSince(clock);
    clock = std::chrono::steady_clock::now();
  };

  std::vector<std::vector<VertexId>> own_connections;
  if (options.connections == nullptr) {
    own_connections = BuildConnectionLists(base, tree, sr, pool.threads());
  }
  const std::vector<std::vector<VertexId>>& connections =
      options.connections != nullptr ? *options.connections : own_connections;
  take_stage(&timings->conn_millis);

  const int64_t total = tree.num_nodes();
  const Rect bounds = tree.bounds();
  const double max_lod = tree.max_lod();

  // Vertical segments in (x, y, e); the root's +inf top is capped at
  // the dataset maximum (no query ever exceeds it).
  std::vector<Box> segments(static_cast<size_t>(total));
  ParallelFor(pool, total, 1024, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const PmNode& n = tree.node(i);
      const double top = std::isinf(n.e_high) ? max_lod : n.e_high;
      segments[static_cast<size_t>(i)] =
          Box::Of(n.pos.x, n.pos.y, n.e_low, n.pos.x, n.pos.y,
                  std::max(top, n.e_low));
    }
  });

  // Records are laid out in the STR packing order of their index
  // entries (clustered storage): records co-retrieved by a range query
  // land on the same heap pages, and the packed R*-tree over the same
  // order has near-disjoint leaves — this preserves "(x, y)
  // clustering ... as much as possible" while also clustering the LOD
  // dimension the paper's queries slice on.
  const std::vector<size_t> order = RStarTree::StrOrder(
      segments, RStarTree::LeafCapacityFor(env->page_size()), pool);
  take_stage(&timings->str_millis);

  // Encode every record into its own buffer (disjoint slots, so the
  // loop parallelizes over index ranges) ...
  std::vector<std::vector<uint8_t>> encoded(order.size());
  ParallelFor(pool, static_cast<int64_t>(order.size()), 256,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  const size_t idx = order[static_cast<size_t>(i)];
                  const PmNode& n = tree.node(static_cast<VertexId>(idx));
                  DmNode rec;
                  rec.id = n.id;
                  rec.pos = n.pos;
                  rec.e_low = n.e_low;
                  rec.e_high = n.e_high;
                  rec.parent = n.parent;
                  rec.child1 = n.child1;
                  rec.child2 = n.child2;
                  rec.wing1 = n.wing1;
                  rec.wing2 = n.wing2;
                  rec.connections = connections[idx];
                  if (options.compress_records) {
                    rec.EncodeCompressedTo(&encoded[static_cast<size_t>(i)]);
                  } else {
                    rec.EncodeTo(&encoded[static_cast<size_t>(i)]);
                  }
                }
              });
  take_stage(&timings->encode_millis);

  // ... then append sequentially in STR order, so page allocation and
  // record ids are independent of the thread count.
  DM_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(env));
  std::vector<RecordId> rids;
  rids.reserve(order.size());
  DM_RETURN_NOT_OK(heap.AppendMany(encoded, &rids));
  std::vector<std::pair<Box, uint64_t>> entries;
  entries.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    entries.emplace_back(segments[order[i]], rids[i].Pack());
  }
  take_stage(&timings->append_millis);

  DM_ASSIGN_OR_RETURN(RStarTree rtree, RStarTree::BulkLoad(env, entries));
  take_stage(&timings->bulkload_millis);
  DmStore store(env, std::move(heap), std::move(rtree));

  store.meta_.heap_first = store.heap_.first_page();
  store.meta_.rtree_root = store.rtree_.root();
  store.meta_.rtree_size = store.rtree_.size();
  store.meta_.num_nodes = total;
  store.meta_.num_leaves = tree.num_leaves();
  store.meta_.max_lod = max_lod;
  store.meta_.mean_lod = tree.mean_lod();
  store.meta_.bounds = bounds;
  store.meta_.compressed = options.compress_records;
  DM_RETURN_NOT_OK(store.LoadCatalog());
  take_stage(&timings->catalog_millis);
  // A rebuild yields a new store and thus a brand-new cache; any cache
  // of a previous generation dies with its store, so no decoded node
  // can outlive the heap records it came from.
  const DbOptions& opts = env->options();
  if (opts.node_cache_bytes > 0) {
    store.EnableNodeCache(opts.node_cache_bytes, opts.node_cache_shards);
  }
  return store;
}

Result<DmStore> DmStore::Open(DbEnv* env, const DmMeta& meta) {
  HeapFile heap = HeapFile::Open(env, meta.heap_first);
  RStarTree rtree = RStarTree::Open(env, meta.rtree_root, meta.rtree_size);
  DmStore store(env, std::move(heap), std::move(rtree));
  store.meta_ = meta;
  // Open() recomputed heap paging; meta_.rtree_root may have rotated
  // since the caller's snapshot only if they persisted a stale meta —
  // trust the caller.
  DM_RETURN_NOT_OK(store.LoadCatalog());
  const DbOptions& opts = env->options();
  if (opts.node_cache_bytes > 0) {
    store.EnableNodeCache(opts.node_cache_bytes, opts.node_cache_shards);
  }
  return store;
}

void DmStore::EnableNodeCache(size_t bytes, uint32_t shards) {
  if (bytes == 0) {
    node_cache_.reset();
    return;
  }
  node_cache_ = std::make_unique<NodeCache>(bytes, shards);
}

Status DmStore::LoadCatalog() {
  node_extents_.clear();
  DM_RETURN_NOT_OK(rtree_.CollectNodeExtents(&node_extents_));
  e_axis_map_ = EAxisMap::FromNodeExtents(node_extents_);
  data_space_ = Box::FromRect(meta_.bounds.empty()
                                  ? Rect::Of(0, 0, 1, 1)
                                  : meta_.bounds,
                              0.0, std::max(meta_.max_lod, 1e-12));
  if (meta_.bounds.empty() && !node_extents_.empty()) {
    // Build path: meta_ not yet filled when called from Build; the
    // caller sets bounds before LoadCatalog, so this is only a guard.
    data_space_ = node_extents_.front().box;
  }

  // Segment-interval sample for the record-level cost term: one pass
  // over the index entries, thinning deterministically to stay small.
  std::vector<std::pair<double, double>> sample;
  {
    constexpr size_t kMaxSample = 8192;
    size_t stride = 1;
    size_t counter = 0;
    DM_RETURN_NOT_OK(rtree_.RangeQueryEntries(
        data_space_, [&](const Box& b, uint64_t) {
          if (counter++ % stride == 0) {
            sample.emplace_back(b.lo[2], b.hi[2]);
            if (sample.size() >= kMaxSample) {
              // Thin: keep every other element, double the stride.
              std::vector<std::pair<double, double>> thinned;
              thinned.reserve(kMaxSample / 2);
              for (size_t i = 0; i < sample.size(); i += 2) {
                thinned.push_back(sample[i]);
              }
              sample = std::move(thinned);
              stride *= 2;
            }
          }
          return true;
        }));
  }
  cost_inputs_.nodes = nullptr;  // re-bound by the accessor
  cost_inputs_.data_space = data_space_;
  cost_inputs_.e_map = e_axis_map_;
  cost_inputs_.segment_sample = std::move(sample);
  cost_inputs_.total_records = heap_.num_records();
  cost_inputs_.records_per_page =
      heap_.num_pages() > 0
          ? static_cast<double>(heap_.num_records()) /
                static_cast<double>(heap_.num_pages())
          : 16.0;
  return Status::OK();
}

Result<DmNode> DmStore::FetchNode(RecordId rid) const {
  std::vector<uint8_t> buf;
  DM_RETURN_NOT_OK(heap_.Get(rid, &buf));
  if (meta_.compressed) {
    return DmNode::DecodeCompressed(buf.data(),
                                    static_cast<uint32_t>(buf.size()));
  }
  return DmNode::Decode(buf.data(), static_cast<uint32_t>(buf.size()));
}

int64_t DmStore::FetchFailures::FailedPages() const {
  std::vector<PageId> pages;
  pages.reserve(records.size());
  for (const RecordFetchFailure& f : records) pages.push_back(f.rid.page);
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  return static_cast<int64_t>(pages.size());
}

Status DmStore::FetchNodes(const std::vector<uint64_t>& sorted_rids,
                           const std::function<void(const NodeRef&)>& fn,
                           FetchCounts* counts,
                           FetchFailures* failures) const {
  std::vector<RecordFetchFailure>* rec_failures =
      failures != nullptr ? &failures->records : nullptr;
  if (node_cache_ == nullptr) {
    // Uncached path: exactly the seed behavior — every record is read
    // through the heap and decoded, so paper benches keep bit-identical
    // disk-read counts.
    std::vector<RecordId> rids;
    rids.reserve(sorted_rids.size());
    for (uint64_t packed : sorted_rids) {
      rids.push_back(RecordId::Unpack(packed));
    }
    return heap_.GetMany(
        rids,
        [&](RecordId rid, const uint8_t* data, uint32_t len) -> Status {
          auto node_or = meta_.compressed ? DmNode::DecodeCompressed(data, len)
                                          : DmNode::Decode(data, len);
          if (!node_or.ok()) {
            if (rec_failures == nullptr) return node_or.status();
            rec_failures->push_back({rid, node_or.status()});
            return Status::OK();
          }
          // dm-lint: allow(hot-path-alloc) decode miss allocates by design
          fn(std::make_shared<const DmNode>(std::move(node_or).value()));
          return Status::OK();
        },
        rec_failures);
  }

  // Cached path: probe per rid, then fetch only the misses. The miss
  // subsequence of a sorted rid list is itself sorted, so GetMany's
  // run coalescing still applies to it, and delivery below preserves
  // the caller's order (hit or miss). Scratch is thread-local so the
  // warm all-hit path never touches the heap (FetchNodes is not
  // reentrant within a thread; query workers each have their own).
  thread_local std::vector<NodeRef> out;
  thread_local std::vector<RecordId> miss_rids;
  thread_local std::vector<size_t> miss_idx;
  out.clear();
  out.resize(sorted_rids.size());
  miss_rids.clear();
  miss_idx.clear();
  for (size_t i = 0; i < sorted_rids.size(); ++i) {
    out[i] = node_cache_->Lookup(sorted_rids[i]);
    if (out[i] == nullptr) {
      miss_rids.push_back(RecordId::Unpack(sorted_rids[i]));
      miss_idx.push_back(i);
    }
  }
  if (counts != nullptr) {
    counts->cache_hits +=
        static_cast<int64_t>(sorted_rids.size() - miss_rids.size());
    counts->cache_misses += static_cast<int64_t>(miss_rids.size());
  }
  if (!miss_rids.empty()) {
    size_t k = 0;
    DM_RETURN_NOT_OK(heap_.GetMany(
        miss_rids,
        [&](RecordId rid, const uint8_t* data, uint32_t len) -> Status {
          // Tolerant GetMany skips lost records, so re-align on the
          // delivered rid (misses arrive in miss_rids order).
          while (k < miss_rids.size() && miss_rids[k].Pack() < rid.Pack()) {
            ++k;
          }
          DM_CHECK(k < miss_rids.size() && miss_rids[k] == rid)
              << "GetMany delivered a record that was never requested";
          auto node_or = meta_.compressed ? DmNode::DecodeCompressed(data, len)
                                          : DmNode::Decode(data, len);
          if (!node_or.ok()) {
            if (rec_failures == nullptr) return node_or.status();
            rec_failures->push_back({rid, node_or.status()});
            ++k;
            return Status::OK();
          }
          // dm-lint: allow(hot-path-alloc) decode miss allocates by design
          auto ref =
              std::make_shared<const DmNode>(std::move(node_or).value());
          node_cache_->Insert(rid.Pack(), ref);
          out[miss_idx[k++]] = std::move(ref);
          return Status::OK();
        },
        rec_failures));
    DM_CHECK(failures != nullptr || k == miss_idx.size())
        << "GetMany delivered " << k << " of " << miss_idx.size()
        << " missed records";
  }
  for (const NodeRef& ref : out) {
    if (ref != nullptr) fn(ref);  // null = lost record in tolerant mode
  }
  out.clear();  // drop the refs; evicted nodes should not outlive this
  return Status::OK();
}

}  // namespace dm
