#include "dm/invariants.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "common/check.h"
#include "storage/buffer_pool.h"

namespace dm {

namespace {

/// Appends violations to a report, enforcing the per-invariant cap.
class Reporter {
 public:
  Reporter(InvariantReport* report, const InvariantOptions& options)
      : report_(report), options_(options) {
    // A non-positive cap would suppress every violation and yield a
    // failing report with no recorded evidence; always keep at least
    // the first finding per invariant.
    options_.max_violations_per_invariant =
        std::max<int64_t>(1, options_.max_violations_per_invariant);
  }

  void Add(const char* invariant, std::string detail) {
    int64_t& n = per_invariant_[invariant];
    ++n;
    if (n > options_.max_violations_per_invariant) {
      ++report_->suppressed;
      return;
    }
    report_->violations.push_back(
        InvariantViolation{invariant, std::move(detail)});
  }

 private:
  InvariantReport* report_;
  InvariantOptions options_;
  std::unordered_map<std::string, int64_t> per_invariant_;
};

struct LoadedNodes {
  /// Decoded records indexed by node id; `present[id]` marks slots
  /// actually seen on disk.
  std::vector<DmNode> nodes;
  std::vector<bool> present;
  /// Packed RecordId -> node id, for cross-checking index payloads.
  std::unordered_map<uint64_t, VertexId> rid_to_id;
  int64_t records = 0;
};

Status LoadNodes(const DmStore& store, Reporter& rep, LoadedNodes* out) {
  const int64_t total = store.meta().num_nodes;
  out->nodes.resize(static_cast<size_t>(total));
  out->present.assign(static_cast<size_t>(total), false);
  out->rid_to_id.reserve(static_cast<size_t>(total));
  const bool compressed = store.meta().compressed;
  DM_RETURN_NOT_OK(store.heap().Scan([&](RecordId rid, const uint8_t* data,
                                         uint32_t size) {
    ++out->records;
    Result<DmNode> node_or =
        compressed ? DmNode::DecodeCompressed(data, size)
                   : DmNode::Decode(data, size);
    if (!node_or.ok()) {
      rep.Add(kInvariantRecordDecode,
              "record (" + std::to_string(rid.page) + ", " +
                  std::to_string(rid.slot) +
                  ") does not decode: " + node_or.status().ToString());
      return true;
    }
    DmNode node = std::move(node_or).value();
    if (node.id < 0 || node.id >= total) {
      rep.Add(kInvariantRecordDecode,
              "record (" + std::to_string(rid.page) + ", " +
                  std::to_string(rid.slot) + ") carries id " +
                  std::to_string(node.id) + " outside [0, " +
                  std::to_string(total) + ")");
      return true;
    }
    if (out->present[static_cast<size_t>(node.id)]) {
      rep.Add(kInvariantRecordDecode,
              "node " + std::to_string(node.id) + " stored twice");
      return true;
    }
    out->present[static_cast<size_t>(node.id)] = true;
    out->rid_to_id.emplace(rid.Pack(), node.id);
    out->nodes[static_cast<size_t>(node.id)] = std::move(node);
    return true;
  }));
  return Status::OK();
}

bool IntervalsOverlap(const DmNode& a, const DmNode& b) {
  return std::max(a.e_low, b.e_low) < std::min(a.e_high, b.e_high);
}

std::string NodeTag(VertexId id) { return "node " + std::to_string(id); }

void CheckLodIntervals(const LoadedNodes& ln, const DmMeta& meta,
                       Reporter& rep) {
  const int64_t total = meta.num_nodes;
  int64_t roots = 0;
  int64_t leaves = 0;
  for (VertexId id = 0; id < total; ++id) {
    if (!ln.present[static_cast<size_t>(id)]) {
      rep.Add(kInvariantNodeCount, NodeTag(id) + " missing from the heap");
      continue;
    }
    const DmNode& n = ln.nodes[static_cast<size_t>(id)];
    if (!(n.e_low >= 0.0)) {
      rep.Add(kInvariantLodInterval,
              NodeTag(id) + " has negative e_low " + std::to_string(n.e_low));
    }
    if (!(n.e_low <= n.e_high)) {
      rep.Add(kInvariantLodInterval,
              NodeTag(id) + " has inverted interval [" +
                  std::to_string(n.e_low) + ", " + std::to_string(n.e_high) +
                  ")");
    }
    if (n.is_leaf()) {
      ++leaves;
      if (n.e_low != 0.0) {
        rep.Add(kInvariantLodInterval,
                NodeTag(id) + " is a leaf but e_low = " +
                    std::to_string(n.e_low) + " (normalization puts leaves "
                    "at 0)");
      }
    }
    if (n.parent == kInvalidVertex) {
      ++roots;
      if (!std::isinf(n.e_high)) {
        rep.Add(kInvariantLodInterval,
                NodeTag(id) + " is the root but e_high = " +
                    std::to_string(n.e_high) + " (expected +inf)");
      }
    } else if (n.parent >= 0 && n.parent < total &&
               ln.present[static_cast<size_t>(n.parent)]) {
      // Nesting along the ancestor chain: a child's interval must end
      // exactly where its parent's begins, which chains into monotone
      // leaf-to-root nesting.
      const DmNode& p = ln.nodes[static_cast<size_t>(n.parent)];
      if (n.e_high != p.e_low) {
        rep.Add(kInvariantLodInterval,
                NodeTag(id) + " interval tops out at " +
                    std::to_string(n.e_high) + " but parent " +
                    std::to_string(n.parent) + " starts at " +
                    std::to_string(p.e_low));
      }
    }
  }
  if (roots != 1) {
    rep.Add(kInvariantTreeLinks,
            "expected exactly one root, found " + std::to_string(roots));
  }
  if (leaves != meta.num_leaves) {
    rep.Add(kInvariantNodeCount,
            "catalog claims " + std::to_string(meta.num_leaves) +
                " leaves, store has " + std::to_string(leaves));
  }
}

void CheckTreeLinks(const LoadedNodes& ln, Reporter& rep) {
  const int64_t total = static_cast<int64_t>(ln.nodes.size());
  auto in_range = [&](VertexId v) { return v >= 0 && v < total; };
  for (VertexId id = 0; id < total; ++id) {
    if (!ln.present[static_cast<size_t>(id)]) continue;
    const DmNode& n = ln.nodes[static_cast<size_t>(id)];
    for (const VertexId link : {n.parent, n.child1, n.child2}) {
      if (link != kInvalidVertex && !in_range(link)) {
        rep.Add(kInvariantTreeLinks,
                NodeTag(id) + " links to out-of-range node " +
                    std::to_string(link));
      }
    }
    if ((n.child1 == kInvalidVertex) != (n.child2 == kInvalidVertex)) {
      rep.Add(kInvariantTreeLinks,
              NodeTag(id) + " has exactly one child (PM collapses always "
              "produce two)");
    }
    for (const VertexId child : {n.child1, n.child2}) {
      if (child == kInvalidVertex || !in_range(child) ||
          !ln.present[static_cast<size_t>(child)]) {
        continue;
      }
      if (ln.nodes[static_cast<size_t>(child)].parent != id) {
        rep.Add(kInvariantTreeLinks,
                NodeTag(child) + " does not point back to its parent " +
                    std::to_string(id));
      }
    }
  }
}

int64_t CheckConnectionLists(const LoadedNodes& ln, Reporter& rep) {
  const int64_t total = static_cast<int64_t>(ln.nodes.size());
  int64_t checked = 0;
  for (VertexId id = 0; id < total; ++id) {
    if (!ln.present[static_cast<size_t>(id)]) continue;
    const DmNode& n = ln.nodes[static_cast<size_t>(id)];
    if (!std::is_sorted(n.connections.begin(), n.connections.end())) {
      rep.Add(kInvariantConnectionList,
              NodeTag(id) + " connection list is not sorted");
    }
    if (std::adjacent_find(n.connections.begin(), n.connections.end()) !=
        n.connections.end()) {
      rep.Add(kInvariantConnectionList,
              NodeTag(id) + " connection list has duplicates");
    }
    for (const VertexId c : n.connections) {
      ++checked;
      if (c < 0 || c >= total || !ln.present[static_cast<size_t>(c)]) {
        rep.Add(kInvariantConnectionList,
                NodeTag(id) + " lists connection " + std::to_string(c) +
                    " which is not a stored node");
        continue;
      }
      if (c == id) {
        rep.Add(kInvariantConnectionList,
                NodeTag(id) + " lists itself as a connection");
        continue;
      }
      const DmNode& other = ln.nodes[static_cast<size_t>(c)];
      if (!IntervalsOverlap(n, other)) {
        rep.Add(kInvariantConnectionList,
                NodeTag(id) + " lists " + std::to_string(c) +
                    " but their LOD intervals do not overlap (never "
                    "co-alive)");
      }
      if (!std::binary_search(other.connections.begin(),
                              other.connections.end(), id)) {
        rep.Add(kInvariantConnectionList,
                "connection " + std::to_string(id) + " -> " +
                    std::to_string(c) + " is not symmetric");
      }
    }
  }
  return checked;
}

int64_t CheckRTree(const DmStore& store, const LoadedNodes& ln,
                   Reporter& rep) {
  struct NodeInfo {
    uint16_t level = 0;
    Box box;  // exact union of the node's entry boxes
    bool seen = false;
  };
  std::unordered_map<PageId, NodeInfo> infos;
  // Parent-side expectations, resolved after the walk (children are
  // visited after the parent records the entry box).
  struct ChildRef {
    PageId parent = kInvalidPage;
    PageId child = kInvalidPage;
    Box entry_box;
    uint16_t parent_level = 0;
  };
  std::vector<ChildRef> refs;
  int64_t visited = 0;
  int64_t leaf_entries = 0;
  const double max_lod = store.meta().max_lod;

  const Status walk = store.rtree().VisitNodes(
      [&](PageId id, uint16_t level,
          const std::vector<std::pair<Box, uint64_t>>& entries) {
        ++visited;
        NodeInfo info;
        info.level = level;
        info.seen = true;
        for (const auto& [box, payload] : entries) {
          info.box.ExpandToInclude(box);
          if (level > 0) {
            refs.push_back(
                ChildRef{id, static_cast<PageId>(payload), box, level});
            continue;
          }
          ++leaf_entries;
          // Leaf entries must be the vertical LOD segment of the
          // record they reference, exactly as Build wrote it.
          const auto it = ln.rid_to_id.find(payload);
          if (it == ln.rid_to_id.end()) {
            rep.Add(kInvariantRTreeEntry,
                    "leaf entry on page " + std::to_string(id) +
                        " references record " + std::to_string(payload) +
                        " which is not in the heap");
            continue;
          }
          const DmNode& n = ln.nodes[static_cast<size_t>(it->second)];
          const double top = std::isinf(n.e_high) ? max_lod : n.e_high;
          const Box expect =
              Box::Of(n.pos.x, n.pos.y, n.e_low, n.pos.x, n.pos.y,
                      std::max(top, n.e_low));
          if (box.lo != expect.lo || box.hi != expect.hi) {
            rep.Add(kInvariantRTreeEntry,
                    "leaf entry for " + NodeTag(n.id) + " on page " +
                        std::to_string(id) + " is " + box.ToString() +
                        ", expected the LOD segment " + expect.ToString());
          }
        }
        infos[id] = info;
        return true;
      });
  if (!walk.ok()) {
    rep.Add(kInvariantRTreeMbb, "index walk failed: " + walk.ToString());
    return visited;
  }

  for (const ChildRef& ref : refs) {
    const auto it = infos.find(ref.child);
    if (it == infos.end() || !it->second.seen) {
      rep.Add(kInvariantRTreeMbb,
              "page " + std::to_string(ref.parent) +
                  " references child page " + std::to_string(ref.child) +
                  " that the walk never reached");
      continue;
    }
    const NodeInfo& child = it->second;
    if (child.level + 1 != ref.parent_level) {
      rep.Add(kInvariantRTreeMbb,
              "page " + std::to_string(ref.child) + " is at level " +
                  std::to_string(child.level) + " under a level-" +
                  std::to_string(ref.parent_level) + " parent");
    }
    if (!ref.entry_box.Contains(child.box)) {
      rep.Add(kInvariantRTreeMbb,
              "MBB of page " + std::to_string(ref.child) + " " +
                  child.box.ToString() + " is not contained in its parent "
                  "entry " + ref.entry_box.ToString());
    }
  }

  if (leaf_entries != store.meta().rtree_size) {
    rep.Add(kInvariantNodeCount,
            "index holds " + std::to_string(leaf_entries) +
                " leaf entries, catalog claims " +
                std::to_string(store.meta().rtree_size));
  }
  return visited;
}

}  // namespace

std::string InvariantReport::ToString() const {
  std::ostringstream out;
  out << "invariant audit: " << nodes_checked << " nodes, "
      << connections_checked << " connection entries, " << rtree_nodes_checked
      << " index nodes checked";
  if (ok()) {
    out << "; all invariants hold";
    return out.str();
  }
  out << "; " << violations.size() << " violation(s)";
  if (suppressed > 0) out << " (+" << suppressed << " suppressed)";
  for (const InvariantViolation& v : violations) {
    out << "\n  [" << v.invariant << "] " << v.detail;
  }
  return out.str();
}

Result<InvariantReport> VerifyDmStore(const DmStore& store,
                                      const InvariantOptions& options) {
  InvariantReport report;
  Reporter rep(&report, options);

  LoadedNodes ln;
  DM_RETURN_NOT_OK(LoadNodes(store, rep, &ln));
  report.nodes_checked = ln.records;
  if (ln.records != store.meta().num_nodes) {
    rep.Add(kInvariantNodeCount,
            "heap holds " + std::to_string(ln.records) +
                " records, catalog claims " +
                std::to_string(store.meta().num_nodes));
  }

  CheckLodIntervals(ln, store.meta(), rep);
  CheckTreeLinks(ln, rep);
  report.connections_checked = CheckConnectionLists(ln, rep);
  report.rtree_nodes_checked = CheckRTree(store, ln, rep);

  // Every guard the audit took is released by now; a non-quiescent
  // pool means someone leaked a pin.
  const int64_t pinned = store.env()->pool().pinned_frames();
  if (pinned != 0) {
    rep.Add(kInvariantPinBalance,
            std::to_string(pinned) +
                " buffer frame(s) still pinned after the audit (leaked "
                "PageGuard or pin/unpin imbalance)");
  }
  return report;
}

Result<InvariantReport> VerifyDmStoreAgainstSource(
    const DmStore& store, const TriangleMesh& base, const PmTree& tree,
    const InvariantOptions& options) {
  DM_ASSIGN_OR_RETURN(InvariantReport report, VerifyDmStore(store, options));
  Reporter rep(&report, options);

  LoadedNodes ln;
  DM_RETURN_NOT_OK(LoadNodes(store, rep, &ln));

  const int64_t total = tree.num_nodes();
  if (static_cast<int64_t>(ln.nodes.size()) != total) {
    rep.Add(kInvariantNodeCount,
            "store has " + std::to_string(ln.nodes.size()) +
                " node slots, source tree has " + std::to_string(total));
    return report;
  }

  // Field-for-field comparison against the in-memory ground truth.
  for (VertexId id = 0; id < total; ++id) {
    if (!ln.present[static_cast<size_t>(id)]) continue;
    const DmNode& n = ln.nodes[static_cast<size_t>(id)];
    const PmNode& p = tree.node(id);
    if (!(n.pos == p.pos) || n.e_low != p.e_low || n.e_high != p.e_high ||
        n.parent != p.parent || n.child1 != p.child1 ||
        n.child2 != p.child2 || n.wing1 != p.wing1 || n.wing2 != p.wing2) {
      rep.Add(kInvariantRecordDecode,
              NodeTag(id) + " differs from its source PM node");
    }
  }

  // Brute-force recomputation of the similar-LOD connection lists,
  // independent of the graph-contraction pass used at build time: for
  // every base-mesh edge (a, b), every pair (u, v) with u on a's
  // ancestor-or-self chain and v on b's whose LOD intervals overlap is
  // a required connection — u's leaf set touches a, v's touches b, so
  // they are adjacent in every cut both belong to. Nothing else may
  // appear (connection-list exactness, paper Section 4).
  std::vector<std::vector<VertexId>> expected(static_cast<size_t>(total));
  {
    auto overlap = [&](VertexId u, VertexId v) {
      const PmNode& a = tree.node(u);
      const PmNode& b = tree.node(v);
      return std::max(a.e_low, b.e_low) < std::min(a.e_high, b.e_high);
    };
    auto chain = [&](VertexId leaf) {
      std::vector<VertexId> c;
      for (VertexId v = leaf; v != kInvalidVertex; v = tree.node(v).parent) {
        c.push_back(v);
      }
      return c;
    };
    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(static_cast<size_t>(base.num_triangles()) * 3u);
    for (const Triangle& t : base.triangles()) {
      for (int i = 0; i < 3; ++i) {
        VertexId a = t[i];
        VertexId b = t[(i + 1) % 3];
        if (a > b) std::swap(a, b);
        edges.emplace_back(a, b);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (const auto& [a, b] : edges) {
      const std::vector<VertexId> ca = chain(a);
      const std::vector<VertexId> cb = chain(b);
      for (const VertexId u : ca) {
        for (const VertexId v : cb) {
          if (u == v || !overlap(u, v)) continue;
          expected[static_cast<size_t>(u)].push_back(v);
          expected[static_cast<size_t>(v)].push_back(u);
        }
      }
    }
    for (auto& list : expected) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
  }

  for (VertexId id = 0; id < total; ++id) {
    if (!ln.present[static_cast<size_t>(id)]) continue;
    const std::vector<VertexId>& got = ln.nodes[static_cast<size_t>(id)].connections;
    const std::vector<VertexId>& want = expected[static_cast<size_t>(id)];
    if (got == want) continue;
    std::vector<VertexId> missing;
    std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                        std::back_inserter(missing));
    std::vector<VertexId> extra;
    std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                        std::back_inserter(extra));
    std::ostringstream detail;
    detail << NodeTag(id) << " connection list is inexact:";
    if (!missing.empty()) {
      detail << " missing " << missing.size() << " (first: " << missing[0]
             << ")";
    }
    if (!extra.empty()) {
      detail << " stale " << extra.size() << " (first: " << extra[0] << ")";
    }
    rep.Add(kInvariantConnectionExact, detail.str());
  }
  return report;
}

}  // namespace dm
