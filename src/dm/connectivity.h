#ifndef DIRECTMESH_DM_CONNECTIVITY_H_
#define DIRECTMESH_DM_CONNECTIVITY_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"

namespace dm {

/// Statistics the paper reports in Section 4: the average number of
/// similar-LOD connection points per node (paper: ~12 on both
/// datasets) versus the average number of *all possible* connection
/// points (paper: 180 and 840) — the blow-up that makes storing the
/// full closure infeasible and motivates the similar-LOD restriction.
struct ConnectivityStats {
  double avg_similar_lod = 0.0;
  int64_t max_similar_lod = 0;
  /// Average over a sample of nodes of the full connection closure
  /// (every node, at any LOD, that shares a base-mesh edge with this
  /// node's leaf set and is not an ancestor/descendant of it).
  double avg_total_connections = 0.0;
  int64_t sampled_nodes = 0;
};

/// Connection lists for every PM node (indexed by VertexId). A pair
/// (u, v) is connected iff their LOD intervals overlap and the base
/// mesh has an edge between u's and v's leaf descendants — exactly the
/// pairs that are adjacent in every uniform-LOD cut both belong to.
///
/// Built by merge-walking, for every base-mesh edge (a, b), the
/// ancestor chains of a and b up to their lowest common ancestor and
/// emitting the interval-overlapping pairs; base edges are independent
/// of each other, so the walk parallelizes over `threads` workers and
/// the output is identical at any thread count (per-node lists are
/// sorted and deduplicated globally).
std::vector<std::vector<VertexId>> BuildConnectionLists(
    const TriangleMesh& base, const PmTree& tree,
    const SimplifyResult& sr, int threads = 1);

/// Reference builder: one sequential graph-contraction pass over the
/// collapse sequence in ascending normalized-LOD order, recording each
/// edge at the moment its younger endpoint is born. Produces exactly
/// the lists of BuildConnectionLists; kept for equivalence testing.
std::vector<std::vector<VertexId>> BuildConnectionListsContraction(
    const TriangleMesh& base, const PmTree& tree,
    const SimplifyResult& sr);

/// Computes the similar-LOD statistics, and the total-closure average
/// over `sample` nodes (deterministically spread over the id range).
/// All reductions are integer sums/maxima, so the result is identical
/// at any thread count.
ConnectivityStats ComputeConnectivityStats(
    const TriangleMesh& base, const PmTree& tree,
    const std::vector<std::vector<VertexId>>& connections,
    int64_t sample = 512, int threads = 1);

}  // namespace dm

#endif  // DIRECTMESH_DM_CONNECTIVITY_H_
