#ifndef DIRECTMESH_DM_DM_QUERY_H_
#define DIRECTMESH_DM_DM_QUERY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash.h"
#include "common/geometry.h"
#include "common/status.h"
#include "dm/dm_store.h"
#include "mesh/triangle_mesh.h"

namespace dm {

/// A viewpoint-dependent query: a ROI plus a query plane whose LOD
/// rises linearly from e_min (near edge, closest to the viewer) to
/// e_max (far edge) along one footprint axis — the geometry of the
/// paper's Figures 4/5/7 ("for simplicity of presentation, we assume
/// the query plane is parallel to the x-axis").
struct ViewQuery {
  Rect roi;
  double e_min = 0.0;
  double e_max = 0.0;
  /// true: LOD varies along y (plane parallel to the x-axis);
  /// false: varies along x.
  bool gradient_along_y = true;

  /// The plane's LOD at fraction t in [0, 1] of the gradient axis.
  double EAt(double t) const { return e_min + (e_max - e_min) * t; }

  /// Required LOD at a footprint position (clamped to the ROI).
  double RequiredE(double x, double y) const;

  /// The paper's angle parametrization: tan(angle) = (e_max - e_min) /
  /// roi extent; theta_max corresponds to e spanning [e_min,
  /// dataset max] — see Section 6.2.
  static ViewQuery FromAngle(const Rect& roi, double e_min,
                             double angle_fraction, double dataset_max_lod,
                             bool gradient_along_y = true);
};

/// A viewer-driven query using the paper's Section 2 rule: "the
/// required LOD for a point in a viewpoint-dependent query can be
/// estimated ... using the formula f(m.e, d) <= E for node m whose
/// distance to the viewer is d". With the standard screen-space-error
/// f(e, d) = e / d, a node may keep error e while e <= E * d: the
/// required LOD grows linearly with the distance to the viewer.
struct PerspectiveQuery {
  Rect roi;
  /// Viewer's footprint position.
  Point2 viewer;
  /// Tolerated error per unit of viewing distance (the constant E).
  double tolerance = 0.05;
  /// LOD clamp range: e_floor at the viewer, e_cap at the horizon
  /// (usually the dataset maximum).
  double e_floor = 0.0;
  double e_cap = 0.0;

  double RequiredE(double x, double y) const;
  /// The LOD range the ROI can demand (min/max of RequiredE over it).
  void Range(double* lo, double* hi) const;
};

/// Per-query measurements. `disk_accesses` is read from the shared
/// buffer pool's miss counter (cold cache at query start), so it
/// covers index pages and heap pages together.
struct QueryStats {
  int64_t disk_accesses = 0;
  int64_t index_io = 0;         // portion of disk_accesses spent in indexes
  int64_t nodes_fetched = 0;    // records delivered (incl. duplicates)
  int64_t cache_hits = 0;       // decoded-node cache hits (0 when disabled)
  int64_t cache_misses = 0;     // fetches that had to decode from the heap
  int64_t range_queries = 0;    // index probes issued
  int64_t refinement_splits = 0;
  int64_t refinement_misses = 0;  // splits lacking a fetched child
  double cpu_millis = 0.0;        // mesh construction time
};

/// Failure-handling report of one query (DESIGN.md §11). A query that
/// lost pages or tripped its deadline still returns a valid — but
/// coarser — mesh; this says how much was given up and why.
struct QueryHealth {
  /// True when any record was lost or the deadline tripped; the mesh
  /// is legal but coarser (or sparser) than a healthy run's.
  bool degraded = false;
  /// Distinct heap pages that could not be read (I/O error after
  /// retries, or checksum failure).
  int64_t pages_failed = 0;
  /// Node records lost on those pages (plus undecodable records).
  int64_t records_failed = 0;
  /// Cut nodes kept coarser than the required LOD because a child was
  /// lost or the deadline stopped refinement. When records were lost,
  /// this also counts ROI-boundary misses the same query would keep
  /// coarse anyway (the two are indistinguishable once a fetch is
  /// incomplete) — treat it as an upper bound.
  int64_t nodes_degraded = 0;
  /// Transient I/O failures absorbed by the retry loop during this
  /// query (pool-wide delta, so concurrent workers' retries may leak
  /// into each other's counts).
  int64_t io_retries = 0;
  /// The per-query deadline expired during refinement.
  bool deadline_hit = false;
};

/// Result of a DM query: the final approximation (vertices with
/// positions, plus triangles) and the fetched node set.
struct DmQueryResult {
  /// Final mesh vertices, sorted by id.
  std::vector<VertexId> vertices;
  std::vector<Point3> positions;  // parallel to `vertices`
  std::vector<Triangle> triangles;
  QueryStats stats;
  QueryHealth health;
};

/// Tuning knobs of a query processor.
struct DmQueryOptions {
  /// Route per-query scratch (the node map, adjacency lists, cut
  /// membership, work stacks) through a per-processor bump arena that
  /// is rewound between queries; a warm worker then runs a query with
  /// near-zero heap traffic. Off = the same container types backed by
  /// the global heap, which bench_hotpath uses for the A/B.
  bool use_arena = true;
  /// Degraded result mode: an unreadable/corrupt node page fails only
  /// the nodes on it — affected regions fall back to coarser live
  /// ancestors (legal by the LOD-interval tiling) and the loss is
  /// reported in DmQueryResult::health. Off (the default) keeps
  /// strict semantics: any lost page fails the query, which paper
  /// benches and invariant audits rely on. Index-page failures are
  /// always fatal (without the index there is no node set to degrade).
  bool allow_degraded = false;
  /// Per-query refinement deadline in milliseconds; 0 disables. When
  /// it expires, remaining work stays at its current (coarser) LOD —
  /// the query returns a legal cut early instead of running long.
  double deadline_millis = 0.0;
};

/// Query processing over a DmStore (paper Section 5).
///
/// Not thread-safe: each processor owns per-query scratch (the arena);
/// concurrent workers each construct their own processor over the
/// shared store, as QueryService does.
class DmQueryProcessor {
 public:
  explicit DmQueryProcessor(DmStore* store,
                            const DmQueryOptions& options = {})
      : store_(store), options_(options) {}

  /// Viewpoint-independent query Q(M, r, e): one 3D range query with
  /// the plane r x {e}; the retrieved nodes are exactly the cut, and
  /// their connection lists triangulate it (Section 5.1).
  Result<DmQueryResult> ViewpointIndependent(const Rect& r, double e);

  /// Single-base viewpoint-dependent query (Algorithm 1): fetch the
  /// cube r x [e_min, e_max], build the top-plane mesh, refine down to
  /// the query plane.
  Result<DmQueryResult> SingleBase(const ViewQuery& q);

  /// Multi-base viewpoint-dependent query (Section 5.3): the
  /// cost-model optimizer splits the cube into up to `max_cubes`
  /// staircase cubes, each fetched with its own range query.
  Result<DmQueryResult> MultiBase(const ViewQuery& q, int max_cubes = 64);

  /// Viewer-driven query with a radial required-LOD field (single
  /// fetch cube; the multi-base staircase assumes a planar gradient
  /// and does not apply).
  Result<DmQueryResult> Perspective(const PerspectiveQuery& q);

  /// The arena backing this processor's scratch, or nullptr when
  /// `use_arena` is off (containers fall back to the global heap).
  Arena* scratch_arena() { return options_.use_arena ? &arena_ : nullptr; }

 private:
  /// Fetched nodes by id: open-addressing map of shared decode handles
  /// (kInvalidVertex is the reserved empty key).
  using NodeMap = FlatHashMap<VertexId, NodeRef>;
  /// Scratch id list; arena-backed when the arena is on.
  using IdVec = std::vector<VertexId, ArenaAllocator<VertexId>>;

  ArenaAllocator<VertexId> id_alloc() {
    return ArenaAllocator<VertexId>(scratch_arena());
  }

  /// Resets per-query health/deadline state; every public entry point
  /// calls this first.
  void BeginQuery();

  /// Runs one 3D range query and loads the named nodes into `nodes`
  /// (through the decoded-node cache when enabled). In degraded mode,
  /// lost node records are tallied in `health_` instead of failing.
  Status FetchBox(const Box& box, NodeMap* nodes, QueryStats* stats);

  /// Shared tail of the viewpoint-dependent paths: refine `start` (the
  /// top-plane cut) down to the required-LOD field, then triangulate.
  DmQueryResult RefineAndTriangulate(
      const std::function<double(const Point3&)>& required_e,
      const NodeMap& nodes, IdVec start, QueryStats stats);

  /// Builds the triangle mesh of a cut from connection lists.
  void Triangulate(const NodeMap& nodes, std::span<const VertexId> cut,
                   DmQueryResult* result);

  DmStore* store_;
  DmQueryOptions options_;
  /// Per-query scratch, rewound at the start of every public entry
  /// point; converges to one warm slab after a few queries.
  Arena arena_;
  /// RangeQuery result buffer, reused across queries (capacity sticks).
  std::vector<uint64_t> rid_scratch_;
  /// Health of the in-flight query (reset by BeginQuery, copied into
  /// the result). Member state, not a parameter, because the processor
  /// is single-threaded by contract.
  QueryHealth health_;
  /// Deadline of the in-flight query; meaningful only when
  /// `deadline_armed_`.
  std::chrono::steady_clock::time_point deadline_;
  bool deadline_armed_ = false;
};

}  // namespace dm

#endif  // DIRECTMESH_DM_DM_QUERY_H_
