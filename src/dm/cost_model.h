#ifndef DIRECTMESH_DM_COST_MODEL_H_
#define DIRECTMESH_DM_COST_MODEL_H_

#include <functional>
#include <vector>

#include "common/geometry.h"
#include "index/rtree/rstar_tree.h"

namespace dm {

/// Monotone piecewise-linear map of the LOD axis onto [0, 1] by data
/// measure (the empirical distribution of the indexed segments).
///
/// The Kamel-Faloutsos model normalizes lengths "according to the data
/// space", which presumes roughly uniform data. LOD values are
/// severely skewed (the paper's own LOD-quadtree discussion makes the
/// same observation), so a linear normalization makes every query's
/// e-extent look negligible and blinds the multi-base optimizer.
/// Measuring the e-axis in quantile units restores the model's
/// uniformity assumption without touching the index itself.
class EAxisMap {
 public:
  /// Identity map (linear normalization by `data_space`).
  EAxisMap() = default;

  /// Builds the map from the e-distribution of the tree's leaf-level
  /// node extents, weighted by entry count.
  static EAxisMap FromNodeExtents(const std::vector<RTreeNodeExtent>& nodes);

  /// Maps an LOD value to [0, 1] measure space.
  double Map(double e) const;

  /// Transforms a box's e-interval (x and y are untouched).
  Box MapBox(const Box& box) const;

  bool identity() const { return samples_.empty(); }

 private:
  std::vector<double> samples_;  // sorted e sample points
};

/// Expected number of disk accesses for a range query `q` on an R-tree
/// with the given node extents, after Kamel-Faloutsos / Pagel et al.
/// (the paper's formula (1)):
///
///   DA(R, q) = sum_i (qx + w_i) * (qy + h_i) * (qz + d_i)
///
/// with every length normalized by the data-space extent, and the
/// e-axis additionally measured through `e_map` (pass a default
/// EAxisMap for the plain linear model).
double EstimateDiskAccesses(const std::vector<RTreeNodeExtent>& nodes,
                            const Box& data_space, const Box& query,
                            const EAxisMap& e_map = {});

/// Everything the query optimizer knows about the dataset — catalog
/// statistics collected once when the store is opened.
///
/// The paper's formula (1) counts *node* (page) accesses. With packed
/// pages whose e-extents overlap heavily (every page holds segments of
/// mixed length), that term alone cannot see that a staircase of cubes
/// retrieves far fewer *records*; the optimizer would never split. The
/// record term below — selectivity of the cube against a sample of the
/// indexed segments, divided by the records-per-page density — restores
/// the paper's observed behaviour ("the more range queries used, the
/// less the total amount of data retrieved").
struct CostModelInputs {
  const std::vector<RTreeNodeExtent>* nodes = nullptr;
  Box data_space;
  EAxisMap e_map;
  /// Sampled (e_low, e_high) pairs of indexed segments.
  std::vector<std::pair<double, double>> segment_sample;
  int64_t total_records = 0;
  double records_per_page = 16.0;
};

/// Expected total disk accesses of a range query: index pages (formula
/// (1) over the node extents) plus heap pages (expected records
/// fetched over the clustering density).
double EstimateQueryCost(const CostModelInputs& inputs, const Box& query);

/// One sub-cube chosen by the multi-base optimizer: the fraction
/// [t0, t1] of the ROI along the LOD gradient axis, and the cube's
/// e-range.
struct BaseCube {
  double t0 = 0.0;
  double t1 = 1.0;
  double e_lo = 0.0;
  double e_hi = 0.0;
};

/// Multi-base optimization (paper Section 5.3): starting from the
/// single query cube, recursively halve the top plane in the middle
/// of the gradient axis — the split point that maximizes the
/// area reduction qy*qz - (qy1*qz1 + qy2*qz2), formula (8)/(9) — as
/// long as the estimated DA of the parts (formula (2)) undercuts the
/// whole (condition (7)), up to `max_cubes` leaves.
///
/// `e_at(t)` gives the query plane's LOD at fraction t of the gradient
/// axis (monotone non-decreasing).
std::vector<BaseCube> OptimizeMultiBase(
    const std::vector<RTreeNodeExtent>& nodes, const Box& data_space,
    const Rect& roi, bool gradient_along_y,
    const std::function<double(double)>& e_at, int max_cubes,
    const EAxisMap& e_map = {});

/// Catalog-driven variant used by DmQueryProcessor::MultiBase: the
/// split condition compares EstimateQueryCost of the whole against the
/// sum over the halves (the paper's condition (7) with the record term
/// included).
std::vector<BaseCube> OptimizeMultiBase(
    const CostModelInputs& inputs, const Rect& roi, bool gradient_along_y,
    const std::function<double(double)>& e_at, int max_cubes);

/// Builds the query cube of a BaseCube slice over `roi`.
Box SliceBox(const Rect& roi, bool gradient_along_y, const BaseCube& cube);

}  // namespace dm

#endif  // DIRECTMESH_DM_COST_MODEL_H_
