#include "dm/cost_model.h"

#include <algorithm>
#include <functional>

namespace dm {

EAxisMap EAxisMap::FromNodeExtents(
    const std::vector<RTreeNodeExtent>& nodes) {
  EAxisMap map;
  for (const RTreeNodeExtent& n : nodes) {
    if (n.level != 0) continue;
    // One sample per leaf midpoint, repeated by a coarse weight so
    // heavier leaves pull more measure; entry-exact sampling is not
    // needed for a normalization map.
    const double mid = (n.box.lo[2] + n.box.hi[2]) / 2;
    map.samples_.push_back(n.box.lo[2]);
    map.samples_.push_back(mid);
    map.samples_.push_back(n.box.hi[2]);
  }
  std::sort(map.samples_.begin(), map.samples_.end());
  return map;
}

double EAxisMap::Map(double e) const {
  if (samples_.empty()) return e;
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), e);
  const auto rank = static_cast<double>(it - samples_.begin());
  double frac = rank / static_cast<double>(samples_.size());
  // Linear interpolation within the bracketing samples keeps the map
  // strictly monotone in dense regions.
  if (it != samples_.begin() && it != samples_.end() && *it > *(it - 1)) {
    const double lo = *(it - 1);
    const double hi = *it;
    frac += ((e - lo) / (hi - lo) - 1.0) / static_cast<double>(samples_.size());
  }
  return std::clamp(frac, 0.0, 1.0);
}

Box EAxisMap::MapBox(const Box& box) const {
  if (samples_.empty()) return box;
  Box out = box;
  out.lo[2] = Map(box.lo[2]);
  out.hi[2] = Map(box.hi[2]);
  return out;
}

double EstimateDiskAccesses(const std::vector<RTreeNodeExtent>& nodes,
                            const Box& data_space, const Box& query,
                            const EAxisMap& e_map) {
  double total = 0.0;
  const double ex = std::max(data_space.Extent(0), 1e-300);
  const double ey = std::max(data_space.Extent(1), 1e-300);
  const double ez = e_map.identity()
                        ? std::max(data_space.Extent(2), 1e-300)
                        : 1.0;
  const Box q = e_map.MapBox(query);
  const double qx = q.Extent(0) / ex;
  const double qy = q.Extent(1) / ey;
  const double qz = q.Extent(2) / ez;
  for (const RTreeNodeExtent& n : nodes) {
    const Box b = e_map.MapBox(n.box);
    const double wi = b.Extent(0) / ex;
    const double hi = b.Extent(1) / ey;
    const double di = b.Extent(2) / ez;
    total += (qx + wi) * (qy + hi) * (qz + di);
  }
  return total;
}

double EstimateQueryCost(const CostModelInputs& inputs, const Box& query) {
  double index_pages = 0.0;
  if (inputs.nodes != nullptr) {
    index_pages = EstimateDiskAccesses(*inputs.nodes, inputs.data_space,
                                       query, inputs.e_map);
  }
  // Heap pages: expected records hit by the cube over the clustering
  // density. xy selectivity is geometric; e selectivity comes from the
  // sampled segment intervals ([l, h] intersects [a, b] iff l <= b and
  // h >= a).
  double heap_pages = 0.0;
  if (!inputs.segment_sample.empty() && inputs.total_records > 0) {
    const double ex = std::max(inputs.data_space.Extent(0), 1e-300);
    const double ey = std::max(inputs.data_space.Extent(1), 1e-300);
    const double sel_xy = std::min(1.0, query.Extent(0) / ex) *
                          std::min(1.0, query.Extent(1) / ey);
    int64_t hit = 0;
    for (const auto& [l, h] : inputs.segment_sample) {
      if (l <= query.hi[2] && h >= query.lo[2]) ++hit;
    }
    const double sel_e = static_cast<double>(hit) /
                         static_cast<double>(inputs.segment_sample.size());
    const double records =
        static_cast<double>(inputs.total_records) * sel_xy * sel_e;
    heap_pages = records / std::max(1.0, inputs.records_per_page);
  }
  return index_pages + heap_pages;
}

std::vector<BaseCube> OptimizeMultiBase(
    const CostModelInputs& inputs, const Rect& roi, bool gradient_along_y,
    const std::function<double(double)>& e_at, int max_cubes) {
  std::vector<BaseCube> out;
  out.reserve(static_cast<size_t>(std::max(1, max_cubes)));
  // Plain recursive helper: a recursive std::function would
  // heap-allocate its closure on every multi-base query.
  struct Splitter {
    const CostModelInputs& inputs;
    const Rect& roi;
    bool gradient_along_y;
    const std::function<double(double)>& e_at;
    std::vector<BaseCube>& out;

    void Split(double t0, double t1, int budget) const {
      BaseCube whole{t0, t1, e_at(t0), e_at(t1)};
      if (budget > 1) {
        const double tm = (t0 + t1) / 2;
        const BaseCube left{t0, tm, e_at(t0), e_at(tm)};
        const BaseCube right{tm, t1, e_at(tm), e_at(t1)};
        const double da_whole = EstimateQueryCost(
            inputs, SliceBox(roi, gradient_along_y, whole));
        const double da_parts =
            EstimateQueryCost(inputs,
                              SliceBox(roi, gradient_along_y, left)) +
            EstimateQueryCost(inputs,
                              SliceBox(roi, gradient_along_y, right));
        if (da_parts < da_whole) {  // condition (7)
          Split(t0, tm, budget / 2);
          Split(tm, t1, budget - budget / 2);
          return;
        }
      }
      out.push_back(whole);
    }
  };
  Splitter{inputs, roi, gradient_along_y, e_at, out}.Split(
      0.0, 1.0, std::max(1, max_cubes));
  std::sort(out.begin(), out.end(),
            [](const BaseCube& a, const BaseCube& b) { return a.t0 < b.t0; });
  return out;
}

Box SliceBox(const Rect& roi, bool gradient_along_y, const BaseCube& cube) {
  Rect slice = roi;
  if (gradient_along_y) {
    slice.lo_y = roi.lo_y + cube.t0 * roi.height();
    slice.hi_y = roi.lo_y + cube.t1 * roi.height();
  } else {
    slice.lo_x = roi.lo_x + cube.t0 * roi.width();
    slice.hi_x = roi.lo_x + cube.t1 * roi.width();
  }
  return Box::FromRect(slice, cube.e_lo, cube.e_hi);
}

std::vector<BaseCube> OptimizeMultiBase(
    const std::vector<RTreeNodeExtent>& nodes, const Box& data_space,
    const Rect& roi, bool gradient_along_y,
    const std::function<double(double)>& e_at, int max_cubes,
    const EAxisMap& e_map) {
  std::vector<BaseCube> out;
  // Recursive middle split (the paper shows halving minimizes
  // qy1*qz1 + qy2*qz2 for a linear plane, maximizing formula (8)).
  const std::function<void(double, double, int)> split =
      [&](double t0, double t1, int budget) {
        BaseCube whole{t0, t1, e_at(t0), e_at(t1)};
        if (budget > 1) {
          const double tm = (t0 + t1) / 2;
          const BaseCube left{t0, tm, e_at(t0), e_at(tm)};
          const BaseCube right{tm, t1, e_at(tm), e_at(t1)};
          const double da_whole = EstimateDiskAccesses(
              nodes, data_space, SliceBox(roi, gradient_along_y, whole),
              e_map);
          const double da_parts =
              EstimateDiskAccesses(
                  nodes, data_space, SliceBox(roi, gradient_along_y, left),
                  e_map) +
              EstimateDiskAccesses(
                  nodes, data_space,
                  SliceBox(roi, gradient_along_y, right), e_map);
          if (da_parts < da_whole) {  // condition (7)
            split(t0, tm, budget / 2);
            split(tm, t1, budget - budget / 2);
            return;
          }
        }
        out.push_back(whole);
      };
  split(0.0, 1.0, std::max(1, max_cubes));
  std::sort(out.begin(), out.end(),
            [](const BaseCube& a, const BaseCube& b) { return a.t0 < b.t0; });
  return out;
}

}  // namespace dm
