#include "dm/dm_node.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "dm/varint.h"

namespace dm {

namespace {
// Fixed part: id, parent, child1, child2, wing1, wing2 (6 x i64),
// x, y, z, e_low, e_high (5 x f64), conn_count (u32).
constexpr uint32_t kFixedSize = 6 * 8 + 5 * 8 + 4;

// e_high = +inf (root) is stored as the largest finite double so the
// record is bit-stable; Decode restores the infinity.
constexpr double kInfSentinel = std::numeric_limits<double>::max();

template <typename T>
void Append(std::vector<uint8_t>* out, T v) {
  const size_t n = out->size();
  out->resize(n + sizeof(T));
  std::memcpy(out->data() + n, &v, sizeof(T));
}

template <typename T>
T Read(const uint8_t*& p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}
}  // namespace

uint32_t DmNode::EncodedSize() const {
  return kFixedSize + static_cast<uint32_t>(connections.size()) * 8;
}

void DmNode::EncodeTo(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + EncodedSize());
  Append<int64_t>(out, id);
  Append<int64_t>(out, parent);
  Append<int64_t>(out, child1);
  Append<int64_t>(out, child2);
  Append<int64_t>(out, wing1);
  Append<int64_t>(out, wing2);
  Append<double>(out, pos.x);
  Append<double>(out, pos.y);
  Append<double>(out, pos.z);
  Append<double>(out, e_low);
  Append<double>(out,
                 std::isinf(e_high) ? kInfSentinel : e_high);
  Append<uint32_t>(out, static_cast<uint32_t>(connections.size()));
  for (VertexId c : connections) Append<int64_t>(out, c);
}

Result<DmNode> DmNode::Decode(const uint8_t* data, uint32_t size) {
  if (size < kFixedSize) {
    return Status::Corruption("DM node record too small");
  }
  const uint8_t* p = data;
  DmNode n;
  n.id = Read<int64_t>(p);
  n.parent = Read<int64_t>(p);
  n.child1 = Read<int64_t>(p);
  n.child2 = Read<int64_t>(p);
  n.wing1 = Read<int64_t>(p);
  n.wing2 = Read<int64_t>(p);
  n.pos.x = Read<double>(p);
  n.pos.y = Read<double>(p);
  n.pos.z = Read<double>(p);
  n.e_low = Read<double>(p);
  n.e_high = Read<double>(p);
  if (n.e_high == kInfSentinel) {
    n.e_high = std::numeric_limits<double>::infinity();
  }
  const uint32_t count = Read<uint32_t>(p);
  if (size != kFixedSize + count * 8) {
    return Status::Corruption("DM node record size mismatch");
  }
  n.connections.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    n.connections[i] = Read<int64_t>(p);
  }
  return n;
}

void DmNode::EncodeCompressedTo(std::vector<uint8_t>* out) const {
  // Header: id (varint), then 5 doubles raw (x, y, z, e_low, e_high),
  // then parent/children/wings as zigzag deltas vs id (kInvalidVertex
  // encoded as delta 0 against a sentinel: store raw zigzag of
  // (link == kInvalidVertex ? 0 : link - id + 1), so 0 means null).
  PutVarint(out, static_cast<uint64_t>(id));
  const size_t pos = out->size();
  out->resize(pos + 5 * 8);
  uint8_t* p = out->data() + pos;
  std::memcpy(p, &this->pos.x, 8);
  std::memcpy(p + 8, &this->pos.y, 8);
  std::memcpy(p + 16, &this->pos.z, 8);
  std::memcpy(p + 24, &e_low, 8);
  const double eh = std::isinf(e_high) ? kInfSentinel : e_high;
  std::memcpy(p + 32, &eh, 8);
  auto put_link = [&](VertexId link) {
    PutVarint(out, link == kInvalidVertex ? 0 : ZigZag(link - id) + 1);
  };
  put_link(parent);
  put_link(child1);
  put_link(child2);
  put_link(wing1);
  put_link(wing2);
  // Connections: count, then zigzag deltas between consecutive sorted
  // ids (first against the node id).
  PutVarint(out, connections.size());
  VertexId prev = id;
  for (VertexId c : connections) {
    PutVarint(out, ZigZag(c - prev));
    prev = c;
  }
}

Result<DmNode> DmNode::DecodeCompressed(const uint8_t* data, uint32_t size) {
  uint32_t pos = 0;
  uint64_t v = 0;
  DmNode n;
  if (!GetVarint(data, size, &pos, &v)) {
    return Status::Corruption("compressed DM node: truncated id");
  }
  n.id = static_cast<VertexId>(v);
  if (pos + 5 * 8 > size) {
    return Status::Corruption("compressed DM node: truncated doubles");
  }
  std::memcpy(&n.pos.x, data + pos, 8);
  std::memcpy(&n.pos.y, data + pos + 8, 8);
  std::memcpy(&n.pos.z, data + pos + 16, 8);
  std::memcpy(&n.e_low, data + pos + 24, 8);
  std::memcpy(&n.e_high, data + pos + 32, 8);
  if (n.e_high == kInfSentinel) {
    n.e_high = std::numeric_limits<double>::infinity();
  }
  pos += 5 * 8;
  auto get_link = [&](VertexId* link) {
    uint64_t raw;
    if (!GetVarint(data, size, &pos, &raw)) return false;
    *link = raw == 0 ? kInvalidVertex : n.id + UnZigZag(raw - 1);
    return true;
  };
  if (!get_link(&n.parent) || !get_link(&n.child1) ||
      !get_link(&n.child2) || !get_link(&n.wing1) ||
      !get_link(&n.wing2)) {
    return Status::Corruption("compressed DM node: truncated links");
  }
  uint64_t count = 0;
  if (!GetVarint(data, size, &pos, &count) || count > (1u << 24)) {
    return Status::Corruption("compressed DM node: bad connection count");
  }
  n.connections.resize(count);
  VertexId prev = n.id;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t d;
    if (!GetVarint(data, size, &pos, &d)) {
      return Status::Corruption("compressed DM node: truncated list");
    }
    prev += UnZigZag(d);
    n.connections[i] = prev;
  }
  if (pos != size) {
    return Status::Corruption("compressed DM node: trailing bytes");
  }
  return n;
}

}  // namespace dm
