#include "dm/dm_query.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "dm/cost_model.h"
#include "mesh/extract.h"

namespace dm {

double ViewQuery::RequiredE(double x, double y) const {
  double t;
  if (gradient_along_y) {
    t = roi.height() > 0 ? (y - roi.lo_y) / roi.height() : 0.0;
  } else {
    t = roi.width() > 0 ? (x - roi.lo_x) / roi.width() : 0.0;
  }
  t = std::clamp(t, 0.0, 1.0);
  return EAt(t);
}

double PerspectiveQuery::RequiredE(double x, double y) const {
  const double dx = x - viewer.x;
  const double dy = y - viewer.y;
  const double d = std::sqrt(dx * dx + dy * dy);
  return std::clamp(e_floor + tolerance * d, e_floor, e_cap);
}

void PerspectiveQuery::Range(double* lo, double* hi) const {
  // RequiredE is radial and monotone in the distance, so extremes are
  // at the ROI's nearest and farthest points from the viewer.
  const double nx = std::clamp(viewer.x, roi.lo_x, roi.hi_x);
  const double ny = std::clamp(viewer.y, roi.lo_y, roi.hi_y);
  *lo = RequiredE(nx, ny);
  double far = *lo;
  for (double cx : {roi.lo_x, roi.hi_x}) {
    for (double cy : {roi.lo_y, roi.hi_y}) {
      far = std::max(far, RequiredE(cx, cy));
    }
  }
  *hi = far;
}

ViewQuery ViewQuery::FromAngle(const Rect& roi, double e_min,
                               double angle_fraction, double dataset_max_lod,
                               bool gradient_along_y) {
  // theta_max = arctan(LODdataset_max / ROI); the query plane at
  // angle = f * theta_max spans e from e_min to
  // e_min + extent * tan(f * theta_max).
  ViewQuery q;
  q.roi = roi;
  q.e_min = e_min;
  q.gradient_along_y = gradient_along_y;
  const double extent = gradient_along_y ? roi.height() : roi.width();
  const double theta_max = std::atan2(dataset_max_lod, extent);
  const double rise = extent * std::tan(angle_fraction * theta_max);
  q.e_max = std::min(e_min + rise, dataset_max_lod);
  return q;
}

void DmQueryProcessor::BeginQuery() {
  health_ = QueryHealth{};
  deadline_armed_ = options_.deadline_millis > 0.0;
  if (deadline_armed_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        options_.deadline_millis));
  }
}

Status DmQueryProcessor::FetchBox(const Box& box, NodeMap* nodes,
                                  QueryStats* stats) {
  DM_CHECK(nodes != nullptr && stats != nullptr)
      << "FetchBox output parameters must be non-null";
  ++stats->range_queries;
  std::vector<uint64_t>& rids = rid_scratch_;
  rids.clear();
  const int64_t reads_before = store_->env()->stats().disk_reads;
  DM_RETURN_NOT_OK(store_->rtree().RangeQuery(box, &rids));
  stats->index_io += store_->env()->stats().disk_reads - reads_before;
  // Fetch in page order: the R*-tree returns leaf entries in traversal
  // order, while records are Hilbert-clustered; sorting by record id
  // visits each heap page once and lets the store coalesce runs of
  // adjacent pages into scatter-gather disk reads.
  std::sort(rids.begin(), rids.end());
  // The R*-tree result count sizes the node map up front, so the hot
  // path never rehashes mid-fetch.
  nodes->reserve(nodes->size() + rids.size());
  DmStore::FetchCounts counts;
  DmStore::FetchFailures failures;
  // One-pointer capture keeps the std::function in its inline buffer
  // (no per-FetchBox heap allocation).
  struct Sink {
    QueryStats* stats;
    NodeMap* nodes;
  } sink{stats, nodes};
  DM_RETURN_NOT_OK(store_->FetchNodes(
      rids,
      [&sink](const NodeRef& node) {
        ++sink.stats->nodes_fetched;
        sink.nodes->FindOrEmplace(node->id, node);
      },
      &counts, options_.allow_degraded ? &failures : nullptr));
  stats->cache_hits += counts.cache_hits;
  stats->cache_misses += counts.cache_misses;
  if (!failures.empty()) {
    health_.degraded = true;
    health_.records_failed += static_cast<int64_t>(failures.records.size());
    health_.pages_failed += failures.FailedPages();
  }
  return Status::OK();
}

void DmQueryProcessor::Triangulate(const NodeMap& nodes,
                                   std::span<const VertexId> cut,
                                   DmQueryResult* result) {
  // Edges of the approximation: connection-list pairs present in the
  // cut. Lists are exact (see dm/connectivity.h), so no geometric
  // checks are needed.
  Arena* arena = scratch_arena();
  FlatHashMap<VertexId, IdVec> adj(kInvalidVertex, arena);
  adj.reserve(cut.size());
  FlatHashSet<VertexId> in_cut(kInvalidVertex, arena);
  in_cut.reserve(cut.size());
  for (VertexId v : cut) in_cut.insert(v);
  for (VertexId v : cut) {
    const NodeRef* np = nodes.find(v);
    DM_DCHECK(np != nullptr)
        << "cut vertex " << v << " missing from the fetched node map";
    const DmNode& n = **np;
    IdVec& list = adj.FindOrEmplace(v, id_alloc());
    list.reserve(n.connections.size());
    for (VertexId c : n.connections) {
      if (in_cut.contains(c)) list.push_back(c);
    }
    // Connection lists are stored sorted by id, so the filtered
    // sublist is already sorted — no per-list sort needed.
    DM_DCHECK(std::is_sorted(list.begin(), list.end()))
        << "connection list of vertex " << v << " is not sorted";
  }

  GraphView view;
  view.position = [&](VertexId v) { return (*nodes.find(v))->pos; };
  view.neighbors = [&](VertexId v) -> std::span<const VertexId> {
    const IdVec* list = adj.find(v);
    DM_DCHECK(list != nullptr) << "no adjacency list for vertex " << v;
    return {list->data(), list->size()};
  };
  result->vertices.assign(cut.begin(), cut.end());
  std::sort(result->vertices.begin(), result->vertices.end());
  result->positions.reserve(result->vertices.size());
  for (VertexId v : result->vertices) {
    result->positions.push_back((*nodes.find(v))->pos);
  }
  result->triangles = ExtractTriangles(result->vertices, view);
}

Result<DmQueryResult> DmQueryProcessor::ViewpointIndependent(const Rect& r,
                                                             double e) {
  QueryStats stats;
  BeginQuery();
  const int64_t reads0 = store_->env()->stats().disk_reads;
  const int64_t retries0 = store_->env()->stats().io_retries;

  arena_.Reset();
  NodeMap nodes(kInvalidVertex, scratch_arena());
  DM_RETURN_NOT_OK(FetchBox(Box::FromRect(r, e, e), &nodes, &stats));

  const auto t0 = std::chrono::steady_clock::now();
  IdVec cut(id_alloc());
  cut.reserve(nodes.size());
  for (const auto& [id, n] : nodes) {
    // The index is inclusive on segment endpoints; enforce the
    // half-open interval semantics [e_low, e_high).
    if (n->AliveAt(e)) cut.push_back(id);
  }
  DmQueryResult result;
  Triangulate(nodes, {cut.data(), cut.size()}, &result);
  const auto t1 = std::chrono::steady_clock::now();

  stats.cpu_millis =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  stats.disk_accesses = store_->env()->stats().disk_reads - reads0;
  result.stats = stats;
  result.health = health_;
  result.health.io_retries = store_->env()->stats().io_retries - retries0;
  return result;
}

DmQueryResult DmQueryProcessor::RefineAndTriangulate(
    const std::function<double(const Point3&)>& required_e,
    const NodeMap& nodes, IdVec start, QueryStats stats) {
  const auto t0 = std::chrono::steady_clock::now();
  // Selective refinement from the top plane(s) down to the query
  // plane: replace any node whose interval floor exceeds the local
  // required LOD by its fetched children. Equivalent to the paper's
  // step 4 of Algorithm 1 (a sequence of vertex splits); connectivity
  // is recovered afterwards from the connection lists, which encode
  // exactly the edges every split would have produced.
  IdVec cut(id_alloc());
  cut.reserve(start.size());
  IdVec work = std::move(start);
  // A lossy fetch changes the missing-child rule below: a child absent
  // from the map may be a lost record rather than an ROI-boundary
  // node, so the parent must stay in the cut to keep the region
  // covered (the ancestor-fallback rule, DESIGN.md §11).
  const bool lossy = health_.records_failed > 0;
  uint32_t deadline_check = 0;
  while (!work.empty()) {
    if (deadline_armed_ && (++deadline_check & 63u) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      // Out of time: everything still queued keeps its current
      // (coarser) LOD. The cut stays a legal tiling — stopping a
      // refinement sequence early never breaks it.
      health_.deadline_hit = true;
      health_.degraded = true;
      health_.nodes_degraded += static_cast<int64_t>(work.size());
      for (VertexId v : work) cut.push_back(v);
      work.clear();
      break;
    }
    const VertexId id = work.back();
    work.pop_back();
    const NodeRef* np = nodes.find(id);
    DM_DCHECK(np != nullptr)
        << "work vertex " << id << " missing from the fetched node map";
    const DmNode& n = **np;
    const double req = required_e(n.pos);
    if (n.e_low > req && !n.is_leaf()) {
      ++stats.refinement_splits;
      const NodeRef* c1 = nodes.find(n.child1);
      const NodeRef* c2 = nodes.find(n.child2);
      if (c1 == nullptr && c2 == nullptr) {
        // Both children outside the fetched region (ROI boundary):
        // the node cannot refine further here.
        ++stats.refinement_misses;
        if (lossy) ++health_.nodes_degraded;
        cut.push_back(id);
        continue;
      }
      if (lossy && (c1 == nullptr || c2 == nullptr)) {
        // One child missing after a lossy fetch: it may sit on a lost
        // page, so refining the other side would leave a hole. Keep
        // the parent — the coarser live ancestor covers both.
        ++stats.refinement_misses;
        ++health_.nodes_degraded;
        cut.push_back(id);
        continue;
      }
      if (c1 != nullptr) work.push_back(n.child1);
      if (c2 != nullptr) work.push_back(n.child2);
      if (c1 == nullptr || c2 == nullptr) {
        ++stats.refinement_misses;
      }
      continue;
    }
    cut.push_back(id);
  }
  // Multi-base seeds can start refinement from an ancestor and one of
  // its descendants near a slice boundary; when both stop at the same
  // nodes the duplicates are exact, and when a slice's lower top plane
  // makes its seeds finer than another slice's satisfied ancestor the
  // cut briefly holds both generations. Dedupe, then let the coarser
  // representation win (single-base semantics), walking parent chains
  // through the fetched records.
  std::sort(cut.begin(), cut.end());
  cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
  {
    FlatHashSet<VertexId> in_cut(kInvalidVertex, scratch_arena());
    in_cut.reserve(cut.size());
    for (VertexId v : cut) in_cut.insert(v);
    IdVec filtered(id_alloc());
    filtered.reserve(cut.size());
    for (VertexId v : cut) {
      bool covered = false;
      for (VertexId p = (*nodes.find(v))->parent; p != kInvalidVertex;) {
        if (in_cut.contains(p)) {
          covered = true;
          break;
        }
        const NodeRef* it = nodes.find(p);
        if (it == nullptr) break;
        p = (*it)->parent;
      }
      if (!covered) filtered.push_back(v);
    }
    cut = std::move(filtered);
  }

  DmQueryResult result;
  Triangulate(nodes, {cut.data(), cut.size()}, &result);
  const auto t1 = std::chrono::steady_clock::now();
  stats.cpu_millis +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.stats = stats;
  result.health = health_;
  return result;
}

Result<DmQueryResult> DmQueryProcessor::SingleBase(const ViewQuery& q) {
  QueryStats stats;
  BeginQuery();
  const int64_t reads0 = store_->env()->stats().disk_reads;
  const int64_t retries0 = store_->env()->stats().io_retries;

  arena_.Reset();
  NodeMap nodes(kInvalidVertex, scratch_arena());
  DM_RETURN_NOT_OK(
      FetchBox(Box::FromRect(q.roi, q.e_min, q.e_max), &nodes, &stats));

  // Top-plane mesh: the cut at e_max (Algorithm 1, step 3).
  IdVec start(id_alloc());
  for (const auto& [id, n] : nodes) {
    if (n->AliveAt(q.e_max)) start.push_back(id);
  }
  DmQueryResult result = RefineAndTriangulate(
      [&q](const Point3& p) {
        return std::max(q.RequiredE(p.x, p.y), q.e_min);
      },
      nodes, std::move(start), std::move(stats));
  result.stats.disk_accesses = store_->env()->stats().disk_reads - reads0;
  result.health.io_retries = store_->env()->stats().io_retries - retries0;
  return result;
}

Result<DmQueryResult> DmQueryProcessor::Perspective(
    const PerspectiveQuery& q) {
  QueryStats stats;
  BeginQuery();
  const int64_t reads0 = store_->env()->stats().disk_reads;
  const int64_t retries0 = store_->env()->stats().io_retries;

  double e_lo = 0.0;
  double e_hi = 0.0;
  q.Range(&e_lo, &e_hi);
  arena_.Reset();
  NodeMap nodes(kInvalidVertex, scratch_arena());
  DM_RETURN_NOT_OK(FetchBox(Box::FromRect(q.roi, e_lo, e_hi), &nodes,
                            &stats));

  IdVec start(id_alloc());
  for (const auto& [id, n] : nodes) {
    if (n->AliveAt(e_hi)) start.push_back(id);
  }
  DmQueryResult result = RefineAndTriangulate(
      [&q](const Point3& p) { return q.RequiredE(p.x, p.y); }, nodes,
      std::move(start), std::move(stats));
  result.stats.disk_accesses = store_->env()->stats().disk_reads - reads0;
  result.health.io_retries = store_->env()->stats().io_retries - retries0;
  return result;
}

Result<DmQueryResult> DmQueryProcessor::MultiBase(const ViewQuery& q,
                                                  int max_cubes) {
  QueryStats stats;
  BeginQuery();
  const int64_t reads0 = store_->env()->stats().disk_reads;
  const int64_t retries0 = store_->env()->stats().io_retries;

  const CostModelInputs inputs = store_->cost_inputs();
  const std::vector<BaseCube> cubes =
      OptimizeMultiBase(inputs, q.roi, q.gradient_along_y,
                        [&](double t) { return q.EAt(t); }, max_cubes);

  arena_.Reset();
  NodeMap nodes(kInvalidVertex, scratch_arena());
  IdVec start(id_alloc());
  for (const BaseCube& cube : cubes) {
    const Box box = SliceBox(q.roi, q.gradient_along_y, cube);
    NodeMap slice_nodes(kInvalidVertex, scratch_arena());
    DM_RETURN_NOT_OK(FetchBox(box, &slice_nodes, &stats));
    // This slice's top plane: its cut at the slice's e_hi, restricted
    // to the slice (each point belongs to exactly one slice; the last
    // slice owns its far edge). Sharing the NodeRef (not moving the
    // node) keeps the slice map valid and costs one refcount.
    for (const auto& [id, n] : slice_nodes) {
      if (n->AliveAt(cube.e_hi) &&
          box.rect_xy().Contains(n->pos.x, n->pos.y)) {
        start.push_back(id);
      }
      nodes.FindOrEmplace(id, n);
    }
  }
  // A node straddling a slice boundary can enter `start` from both
  // slices (fetched twice); dedupe.
  std::sort(start.begin(), start.end());
  start.erase(std::unique(start.begin(), start.end()), start.end());

  DmQueryResult result = RefineAndTriangulate(
      [&q](const Point3& p) {
        return std::max(q.RequiredE(p.x, p.y), q.e_min);
      },
      nodes, std::move(start), std::move(stats));
  result.stats.disk_accesses = store_->env()->stats().disk_reads - reads0;
  result.health.io_retries = store_->env()->stats().io_retries - retries0;
  return result;
}

}  // namespace dm
