#include "dm/connectivity.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/arena.h"
#include "common/flat_hash.h"
#include "common/parallel.h"

namespace dm {

namespace {
bool IntervalsOverlap(const PmNode& a, const PmNode& b) {
  return std::max(a.e_low, b.e_low) < std::min(a.e_high, b.e_high);
}

/// Sorted-unique undirected base-mesh edges as (min, max) pairs.
std::vector<std::pair<VertexId, VertexId>> BaseEdges(const TriangleMesh& base,
                                                     WorkerPool& pool) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(base.num_triangles() * 3u);
  for (const Triangle& t : base.triangles()) {
    for (int i = 0; i < 3; ++i) {
      VertexId a = t[i];
      VertexId b = t[(i + 1) % 3];
      if (a > b) std::swap(a, b);
      edges.emplace_back(a, b);
    }
  }
  ParallelStableSort(pool, edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}
}  // namespace

std::vector<std::vector<VertexId>> BuildConnectionLists(
    const TriangleMesh& base, const PmTree& tree, const SimplifyResult& sr,
    int threads) {
  (void)sr;  // the chain walk only needs the finished tree
  WorkerPool pool(EffectiveThreads(threads));
  const int64_t total = tree.num_nodes();

  const auto edges = BaseEdges(base, pool);

  // For every base edge (a, b): the connected pairs it witnesses are
  // exactly the interval-overlapping pairs (u, v) with u on a's
  // ancestor chain and v on b's, both strictly below the LCA. (At or
  // above the LCA the chains coincide or the pair is ancestor-related,
  // and chain intervals tile — child e_high == parent e_low — so such
  // pairs never overlap anyway; the walk stops when the chains meet.)
  // Intervals ascend along each chain, so a two-pointer sweep that
  // advances the smaller e_high enumerates every overlapping pair
  // once. Base edges are independent: each chunk appends to its own
  // buffer, and the global sort below makes the result order-free.
  const int64_t n_edges = static_cast<int64_t>(edges.size());
  constexpr int64_t kGrain = 2048;
  std::vector<std::vector<std::pair<VertexId, VertexId>>> chunk_pairs(
      static_cast<size_t>((n_edges + kGrain - 1) / kGrain));
  ParallelFor(pool, n_edges, kGrain, [&](int64_t begin, int64_t end) {
    auto& out = chunk_pairs[static_cast<size_t>(begin / kGrain)];
    for (int64_t i = begin; i < end; ++i) {
      VertexId u = edges[static_cast<size_t>(i)].first;
      VertexId v = edges[static_cast<size_t>(i)].second;
      while (u != v && u != kInvalidVertex && v != kInvalidVertex) {
        const PmNode& nu = tree.node(u);
        const PmNode& nv = tree.node(v);
        if (IntervalsOverlap(nu, nv)) {
          out.emplace_back(std::min(u, v), std::max(u, v));
        }
        if (nu.e_high <= nv.e_high) {
          u = nu.parent;
        } else {
          v = nv.parent;
        }
      }
    }
  });

  // Both directions of every pair, globally sorted and deduplicated,
  // then split per node; each slice is already sorted-unique.
  size_t num_pairs = 0;
  for (const auto& c : chunk_pairs) num_pairs += c.size();
  std::vector<std::pair<VertexId, VertexId>> directed;
  directed.reserve(2 * num_pairs);
  for (const auto& c : chunk_pairs) {
    for (const auto& [u, v] : c) {
      directed.emplace_back(u, v);
      directed.emplace_back(v, u);
    }
  }
  ParallelStableSort(pool, directed);
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  std::vector<int64_t> off(static_cast<size_t>(total) + 1, 0);
  for (const auto& [u, v] : directed) ++off[static_cast<size_t>(u) + 1];
  for (int64_t v = 0; v < total; ++v) {
    off[static_cast<size_t>(v) + 1] += off[static_cast<size_t>(v)];
  }
  std::vector<std::vector<VertexId>> conn(static_cast<size_t>(total));
  ParallelFor(pool, total, 512, [&](int64_t begin, int64_t end) {
    for (int64_t v = begin; v < end; ++v) {
      auto& list = conn[static_cast<size_t>(v)];
      list.reserve(static_cast<size_t>(off[static_cast<size_t>(v) + 1] -
                                       off[static_cast<size_t>(v)]));
      for (int64_t i = off[static_cast<size_t>(v)];
           i < off[static_cast<size_t>(v) + 1]; ++i) {
        list.push_back(directed[static_cast<size_t>(i)].second);
      }
    }
  });
  return conn;
}

std::vector<std::vector<VertexId>> BuildConnectionListsContraction(
    const TriangleMesh& base, const PmTree& tree,
    const SimplifyResult& sr) {
  const int64_t total = tree.num_nodes();
  std::vector<std::vector<VertexId>> conn(static_cast<size_t>(total));

  // Live adjacency during the contraction pass. Neighbour lists are
  // kept sorted-unique lazily via sort+unique at use time; for terrain
  // meshes degrees are small so simple vectors win.
  std::vector<std::vector<VertexId>> adj(static_cast<size_t>(total));
  auto add_edge = [&](VertexId a, VertexId b) {
    adj[static_cast<size_t>(a)].push_back(b);
    adj[static_cast<size_t>(b)].push_back(a);
  };
  auto record_if_similar = [&](VertexId a, VertexId b) {
    const PmNode& na = tree.node(a);
    const PmNode& nb = tree.node(b);
    if (IntervalsOverlap(na, nb)) {
      conn[static_cast<size_t>(a)].push_back(b);
      conn[static_cast<size_t>(b)].push_back(a);
    }
  };

  // Base mesh edges are the birth edges of the leaves.
  {
    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(base.num_triangles() * 3u);
    for (const Triangle& t : base.triangles()) {
      for (int i = 0; i < 3; ++i) {
        VertexId a = t[i];
        VertexId b = t[(i + 1) % 3];
        if (a > b) std::swap(a, b);
        edges.emplace_back(a, b);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (const auto& [a, b] : edges) {
      add_edge(a, b);
      record_if_similar(a, b);
    }
  }

  // Contract in ascending (normalized e, execution index) order. The
  // execution index tiebreak keeps children before parents among
  // equal-e steps, so every step's children are alive when it runs.
  std::vector<uint32_t> order(sr.steps.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const double ea = tree.node(sr.steps[a].record.parent).e_low;
    const double eb = tree.node(sr.steps[b].record.parent).e_low;
    if (ea != eb) return ea < eb;
    return a < b;
  });

  std::vector<VertexId> nbrs;
  for (uint32_t idx : order) {
    const CollapseRecord& rec = sr.steps[idx].record;
    const VertexId c1 = rec.child1;
    const VertexId c2 = rec.child2;
    const VertexId p = rec.parent;

    nbrs.clear();
    auto& a1 = adj[static_cast<size_t>(c1)];
    auto& a2 = adj[static_cast<size_t>(c2)];
    nbrs.insert(nbrs.end(), a1.begin(), a1.end());
    nbrs.insert(nbrs.end(), a2.begin(), a2.end());
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    nbrs.erase(std::remove_if(nbrs.begin(), nbrs.end(),
                              [&](VertexId n) { return n == c1 || n == c2; }),
               nbrs.end());

    // Detach the children from their neighbours; attach the parent.
    for (VertexId n : nbrs) {
      auto& an = adj[static_cast<size_t>(n)];
      an.erase(std::remove_if(an.begin(), an.end(),
                              [&](VertexId x) { return x == c1 || x == c2; }),
               an.end());
      an.push_back(p);
    }
    a1.clear();
    a1.shrink_to_fit();
    a2.clear();
    a2.shrink_to_fit();
    adj[static_cast<size_t>(p)] = nbrs;

    // Birth edges of p.
    for (VertexId n : nbrs) record_if_similar(p, n);
  }

  for (auto& list : conn) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return conn;
}

ConnectivityStats ComputeConnectivityStats(
    const TriangleMesh& base, const PmTree& tree,
    const std::vector<std::vector<VertexId>>& connections, int64_t sample,
    int threads) {
  WorkerPool pool(EffectiveThreads(threads));
  ConnectivityStats stats;
  int64_t total_similar = 0;
  for (const auto& list : connections) {
    total_similar += static_cast<int64_t>(list.size());
    stats.max_similar_lod =
        std::max(stats.max_similar_lod, static_cast<int64_t>(list.size()));
  }
  const int64_t n = static_cast<int64_t>(connections.size());
  stats.avg_similar_lod = n > 0 ? static_cast<double>(total_similar) / n : 0;

  // Total connection closure for a deterministic sample of nodes.
  //
  // A node m can, in some viewpoint-dependent approximation, connect
  // to any node n whose leaf set touches m's leaf set through a base
  // edge, provided neither contains the other (ancestor pairs can
  // never coexist). Counted per sampled m by walking its subtree's
  // boundary leaves and their ancestor chains.
  //
  // Leaf adjacency of the base mesh:
  std::vector<std::vector<VertexId>> leaf_adj(
      static_cast<size_t>(base.num_vertices()));
  for (const Triangle& t : base.triangles()) {
    for (int i = 0; i < 3; ++i) {
      leaf_adj[static_cast<size_t>(t[i])].push_back(t[(i + 1) % 3]);
      leaf_adj[static_cast<size_t>(t[(i + 1) % 3])].push_back(t[i]);
    }
  }
  for (auto& l : leaf_adj) {
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
  }

  const int64_t step = std::max<int64_t>(1, n / std::max<int64_t>(1, sample));
  std::vector<VertexId> sample_ids;
  for (VertexId m = 0; m < n; m += step) sample_ids.push_back(m);
  const int64_t sampled = static_cast<int64_t>(sample_ids.size());
  // Samples are independent and each contributes an integer closure
  // size; the atomic sum is order-free, so the total is identical at
  // any thread count. Scratch (arena-backed sets) is per chunk.
  std::atomic<int64_t> closure_atomic{0};
  ParallelFor(pool, sampled, 8, [&](int64_t begin, int64_t end) {
    Arena scratch;
    std::vector<VertexId> leaves;
    std::vector<VertexId> stack;
    int64_t closure_local = 0;
    for (int64_t s = begin; s < end; ++s) {
      const VertexId m = sample_ids[static_cast<size_t>(s)];
      scratch.Reset();
      // Leaves of m's subtree.
      FlatHashSet<VertexId> in_subtree(kInvalidVertex, &scratch);
      leaves.clear();
      stack.assign(1, m);
      while (!stack.empty()) {
        const VertexId v = stack.back();
        stack.pop_back();
        in_subtree.insert(v);
        const PmNode& node = tree.node(v);
        if (node.is_leaf()) {
          leaves.push_back(v);
        } else {
          stack.push_back(node.child1);
          stack.push_back(node.child2);
        }
      }
      // Ancestors of m (these contain m and are excluded).
      FlatHashSet<VertexId> ancestors(kInvalidVertex, &scratch);
      for (VertexId a = tree.node(m).parent; a != kInvalidVertex;
           a = tree.node(a).parent) {
        ancestors.insert(a);
      }
      // Every node on the ancestor-or-self chain of an outside leaf
      // adjacent to the subtree, excluding m's ancestors, can meet m.
      FlatHashSet<VertexId> closure(kInvalidVertex, &scratch);
      for (VertexId leaf : leaves) {
        for (VertexId nb : leaf_adj[static_cast<size_t>(leaf)]) {
          if (in_subtree.contains(nb)) continue;
          for (VertexId a = nb; a != kInvalidVertex; a = tree.node(a).parent) {
            if (ancestors.contains(a)) break;  // contains m; stop the chain
            closure.insert(a);
          }
        }
      }
      closure_local += static_cast<int64_t>(closure.size());
    }
    closure_atomic.fetch_add(closure_local, std::memory_order_relaxed);
  });
  const int64_t closure_total = closure_atomic.load();
  stats.sampled_nodes = sampled;
  stats.avg_total_connections =
      sampled > 0 ? static_cast<double>(closure_total) / sampled : 0;
  return stats;
}

}  // namespace dm
