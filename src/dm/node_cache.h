#ifndef DIRECTMESH_DM_NODE_CACHE_H_
#define DIRECTMESH_DM_NODE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "dm/dm_node.h"

namespace dm {

/// Aggregated decoded-node cache counters (sum over shards).
struct NodeCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t entries = 0;  // currently cached nodes
  int64_t bytes = 0;    // currently charged bytes
};

/// Sharded LRU cache of fully decoded DmNodes, keyed by packed record
/// id. It sits between DmStore and the buffer pool: a hit skips the
/// page pin, the slot lookup, and the varint decode entirely — the
/// point of Dillabaugh-style traversal-ready blocks layered over
/// compact on-disk records. Capacity is a byte budget split evenly
/// across shards; each entry is charged its decoded footprint
/// (struct + connection-list capacity + bookkeeping).
///
/// Concurrency mirrors the sharded buffer pool (DESIGN.md §8/§9):
/// record ids Fibonacci-hash to independent shards, each with its own
/// mutex, map, and LRU list; hit/miss/eviction counters are relaxed
/// atomics summed on read. Values are shared_ptr<const DmNode>, so a
/// query may keep using a node after another worker evicts it, and
/// cached nodes are immutable by construction.
///
/// Invalidation: the cache belongs to one DmStore generation; a store
/// rebuild must drop every entry (`Clear()`), which DmStore::Build
/// does before serving from the new heap.
class NodeCache {
 public:
  static constexpr uint32_t kDefaultShards = 16;

  /// `capacity_bytes` is the total budget; shards get an even split.
  /// `num_shards` is clamped to at least 1.
  explicit NodeCache(size_t capacity_bytes,
                     uint32_t num_shards = kDefaultShards);

  NodeCache(const NodeCache&) = delete;
  NodeCache& operator=(const NodeCache&) = delete;

  size_t capacity_bytes() const { return capacity_bytes_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// Returns the cached node for `key` (moving it to MRU) or nullptr.
  /// Counts one hit or one miss.
  NodeRef Lookup(uint64_t key);

  /// Inserts a decoded node, evicting LRU entries past the shard's
  /// byte budget. An already-present key keeps the existing entry (two
  /// workers racing on the same miss both decode; first install wins).
  /// Entries larger than a whole shard's budget are not cached.
  void Insert(uint64_t key, const NodeRef& node);

  /// Drops every entry (store rebuild invalidation). Counters are
  /// kept; in-flight NodeRefs stay valid through their shared_ptr.
  void Clear();

  NodeCacheStats stats() const;
  void ResetStats();

 private:
  struct Entry {
    NodeRef node;
    size_t bytes = 0;
    std::list<uint64_t>::iterator lru_pos;
  };
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, Entry> map DM_GUARDED_BY(mu);
    // Front = least recently used.
    std::list<uint64_t> lru DM_GUARDED_BY(mu);
    size_t bytes DM_GUARDED_BY(mu) = 0;
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> evictions{0};
  };

  Shard& ShardFor(uint64_t key) {
    if (shards_.size() == 1) return *shards_[0];
    return *shards_[(FibonacciHash(key) >> 16) % shards_.size()];
  }
  static uint32_t FibonacciHash(uint64_t key) {
    return static_cast<uint32_t>(key * 2654435769u);
  }
  static size_t EntryBytes(const DmNode& node);

  size_t capacity_bytes_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dm

#endif  // DIRECTMESH_DM_NODE_CACHE_H_
