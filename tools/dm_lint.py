#!/usr/bin/env python3
"""DM-specific lint pass, driven by compile_commands.json.

Four checks that encode project invariants no generic tool enforces:

  dropped-status   A call to a Status/Result-returning function used as
                   a bare statement outside test code. [[nodiscard]]
                   catches most of these at compile time; the lint also
                   covers files a given configuration does not compile
                   (platform-gated code, tools) and survives a future
                   accidental removal of the attribute.
  hot-path-alloc   Heap allocation (new / make_unique / make_shared /
                   std::unordered_map / std::unordered_set) in the
                   query hot path: dm_query.cc, buffer_pool.cc, and the
                   fetch path of dm_store.cc (FetchNode/FetchNodes).
                   The warm path is required to be allocation-free (see
                   DESIGN.md §9); cold-path sites carry an inline
                   suppression with a justification.
  raw-mutex        std synchronization primitives (std::mutex,
                   std::lock_guard, std::unique_lock, std::scoped_lock,
                   std::condition_variable[_any]) anywhere except
                   src/common/thread_annotations.h. All locking goes
                   through the annotated dm::Mutex vocabulary so Clang
                   -Wthread-safety sees every acquisition.
  pin-balance      Frame pin accounting must stay confined to
                   buffer_pool.{h,cc}: the `.pins` member may not be
                   touched elsewhere, and within buffer_pool.cc every
                   decrement must live in Unpin() so a new early-return
                   path cannot leak a pin.

Suppressing a finding
---------------------
Append (or put on the preceding line) a justified allow comment:

    // dm-lint: allow(hot-path-alloc) cold path: runs once per open
    node_cache_ = std::make_unique<NodeCache>(bytes, shards);

An allow() without a justification is itself reported
(bad-suppression): the comment exists to tell the next reader *why*
the invariant does not apply, not to silence the tool.

Exit status: 0 when clean, 1 when any finding survives, 2 on usage or
environment errors (e.g. no compile_commands.json found).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from dataclasses import dataclass

CHECKS = ("dropped-status", "hot-path-alloc", "raw-mutex", "pin-balance")

ALLOW_RE = re.compile(r"//\s*dm-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

# Files whose whole purpose is to violate the invariants.
EXEMPT_PATH_PARTS = ("tests/compile_fail", "tests/lint_fixtures")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    check: str
    message: str

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.check}] {self.message}"


# --------------------------------------------------------------------------
# Source model: lines with comments and string literals blanked out, plus
# the raw lines (needed to find suppression comments, which live in the
# part the stripper removes).
# --------------------------------------------------------------------------


class SourceFile:
    def __init__(self, path: str, text: str):
        self.path = path
        self.raw_lines = text.splitlines()
        self.code_lines = _strip_comments_and_strings(self.raw_lines)

    def allow_at(self, lineno: int) -> "tuple[str, str] | None":
        """Return (check, justification) for a dm-lint allow comment on
        line `lineno` (1-based) or immediately above its statement.

        When a statement wraps, the finding may anchor to a continuation
        line while the comment sits above the statement's first line; we
        walk upward through continuation and comment-only lines (a few
        at most) without crossing a completed statement."""
        if 1 <= lineno <= len(self.raw_lines):
            m = ALLOW_RE.search(self.raw_lines[lineno - 1])
            if m:
                return m.group(1), m.group(2).strip()
        i = lineno - 1  # line above the finding
        for _ in range(3):
            if i < 1:
                break
            m = ALLOW_RE.search(self.raw_lines[i - 1])
            if m:
                return m.group(1), m.group(2).strip()
            code = self.code_lines[i - 1].strip()
            if code and code.endswith((";", "{", "}")):
                break  # previous statement — out of range
            i -= 1
        return None


def _strip_comments_and_strings(lines: "list[str]") -> "list[str]":
    """Blank out // and /* */ comments and the contents of string/char
    literals so pattern checks never fire on documentation or messages.
    Replaced characters become spaces, preserving column positions."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            if in_block:
                if c == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif c == "/" and i + 1 < n and line[i + 1] == "/":
                buf.append(" " * (n - i))
                break
            elif c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif c in ('"', "'"):
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                    elif line[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


# --------------------------------------------------------------------------
# File discovery
# --------------------------------------------------------------------------


def find_compile_commands(repo_root: str, build_dir: "str | None") -> str:
    if build_dir:
        cc = os.path.join(build_dir, "compile_commands.json")
        if os.path.isfile(cc):
            return cc
        raise FileNotFoundError(f"no compile_commands.json in {build_dir}")
    candidates = sorted(
        glob.glob(os.path.join(repo_root, "build*", "compile_commands.json"))
    )
    if not candidates:
        raise FileNotFoundError(
            f"no build*/compile_commands.json under {repo_root}; "
            "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first"
        )
    return candidates[0]


def collect_sources(repo_root: str, compile_commands: str) -> "list[str]":
    """Translation units from compile_commands.json (in-repo only) plus
    all in-repo headers, so header-only violations are caught too."""
    with open(compile_commands, encoding="utf-8") as f:
        entries = json.load(f)
    files = set()
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        if path.startswith(repo_root + os.sep) and os.path.isfile(path):
            files.add(path)
    for sub in ("src", "tools", "tests"):
        for dirpath, _dirnames, filenames in os.walk(
            os.path.join(repo_root, sub)
        ):
            for name in filenames:
                if name.endswith((".h", ".cc")):
                    files.add(os.path.join(dirpath, name))
    return sorted(
        p
        for p in files
        if not any(part in _posix(p) for part in EXEMPT_PATH_PARTS)
    )


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _is_test_path(path: str) -> bool:
    return "/tests/" in _posix(path)


# --------------------------------------------------------------------------
# dropped-status
# --------------------------------------------------------------------------

# Declarations / definitions of functions returning Status or Result<...>.
STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)*"
    r"(?:Status|Result<[^;{]*>)\s+(?:[A-Za-z_]\w*::)?([A-Za-z_]\w*)\s*\("
)

# Names are matched without type information, so a name declared BOTH
# with a Status/Result return and with some other return type anywhere
# in the tree is ambiguous and skipped (e.g. BTree::Insert returns
# Status while NodeCache::Insert returns void).
OTHER_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)*"
    r"(?:void|bool|int|size_t|uint32_t|uint64_t|int64_t|auto)\s+"
    r"(?:[A-Za-z_]\w*::)?([A-Za-z_]\w*)\s*\("
)

# A bare call statement: optional object expression, then the call, then
# `);` ending the line. Multi-line calls are joined before matching.
BARE_CALL_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(.*\)\s*;\s*$"
)

# Control-flow / macro contexts in which a Status value IS consumed.
CONSUMED_RE = re.compile(
    r"\breturn\b|\bDM_RETURN_NOT_OK\b|\bDM_ASSIGN_OR_RETURN\b|=|"
    r"\bif\b|\bwhile\b|\bfor\b|\bswitch\b|\(void\)|\bEXPECT_|\bASSERT_"
)


def harvest_status_functions(sources: "list[SourceFile]") -> "set[str]":
    status_names = set()
    other_names = set()
    for sf in sources:
        for line in sf.code_lines:
            m = STATUS_DECL_RE.match(line)
            if m:
                status_names.add(m.group(1))
                continue
            m = OTHER_DECL_RE.match(line)
            if m:
                other_names.add(m.group(1))
    return status_names - other_names


def check_dropped_status(
    sf: SourceFile, status_fns: "set[str]"
) -> "list[Finding]":
    if _is_test_path(sf.path) or not sf.path.endswith(".cc"):
        return []
    findings = []
    lines = sf.code_lines
    i = 0
    while i < len(lines):
        # Join statements split across lines (up to a small window) so a
        # wrapped call like `Foo(\n  arg);` is still one statement.
        stmt = lines[i]
        end = i
        while (
            end - i < 4
            and not stmt.rstrip().endswith((";", "{", "}"))
            and end + 1 < len(lines)
        ):
            end += 1
            stmt = stmt.rstrip() + " " + lines[end].strip()
        m = BARE_CALL_RE.match(stmt)
        if m and m.group(1) in status_fns and not CONSUMED_RE.search(stmt):
            findings.append(
                Finding(
                    sf.path,
                    i + 1,
                    "dropped-status",
                    f"result of '{m.group(1)}' (returns Status/Result) is "
                    "discarded; handle it, DM_RETURN_NOT_OK it, or cast "
                    "to (void) with a comment",
                )
            )
        i = end + 1
    return findings


# --------------------------------------------------------------------------
# hot-path-alloc
# --------------------------------------------------------------------------

HOT_PATH_FILES = ("src/dm/dm_query.cc", "src/storage/buffer_pool.cc")
# In dm_store.cc only the fetch path is hot; Build/Open/LoadCatalog run
# once per store.
HOT_STORE_FILE = "src/dm/dm_store.cc"
HOT_STORE_FUNCTIONS = ("FetchNode", "FetchNodes")

ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()|std::make_unique\s*<|std::make_shared\s*<|"
    r"\bmake_unique\s*<|\bmake_shared\s*<|"
    r"std::unordered_map\s*<|std::unordered_set\s*<"
)

# Start of a top-level member-function definition in a .cc file.
FUNC_DEF_RE = re.compile(r"^[A-Za-z_][\w:<>&*\s]*\b[A-Za-z_]\w*::([A-Za-z_]\w*)\s*\(")


def _hot_line_mask(sf: SourceFile, repo_root: str) -> "list[bool]":
    """Which lines of `sf` belong to the hot path."""
    rel = _posix(os.path.relpath(sf.path, repo_root))
    n = len(sf.code_lines)
    if rel in HOT_PATH_FILES:
        return [True] * n
    if rel != HOT_STORE_FILE:
        return [False] * n
    mask = [False] * n
    current_hot = False
    for idx, line in enumerate(sf.code_lines):
        m = FUNC_DEF_RE.match(line)
        if m:
            current_hot = m.group(1) in HOT_STORE_FUNCTIONS
        mask[idx] = current_hot
        if line.startswith("}"):  # end of a top-level definition
            current_hot = False
    return mask


def check_hot_path_alloc(sf: SourceFile, repo_root: str) -> "list[Finding]":
    mask = _hot_line_mask(sf, repo_root)
    if not any(mask):
        return []
    findings = []
    for idx, line in enumerate(sf.code_lines):
        if mask[idx] and ALLOC_RE.search(line):
            findings.append(
                Finding(
                    sf.path,
                    idx + 1,
                    "hot-path-alloc",
                    "heap allocation on the query hot path; use the "
                    "per-query arena or move this to setup",
                )
            )
    return findings


# --------------------------------------------------------------------------
# raw-mutex
# --------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_)?mutex\b|std::lock_guard\b|"
    r"std::unique_lock\b|std::scoped_lock\b|std::condition_variable(?:_any)?\b"
)

MUTEX_HOME = "src/common/thread_annotations.h"


def check_raw_mutex(sf: SourceFile, repo_root: str) -> "list[Finding]":
    rel = _posix(os.path.relpath(sf.path, repo_root))
    if rel == MUTEX_HOME:
        return []
    findings = []
    for idx, line in enumerate(sf.code_lines):
        if RAW_MUTEX_RE.search(line):
            findings.append(
                Finding(
                    sf.path,
                    idx + 1,
                    "raw-mutex",
                    "raw std synchronization primitive; use dm::Mutex / "
                    "dm::MutexLock / dm::CondVar from "
                    "common/thread_annotations.h so the thread-safety "
                    "analysis sees the acquisition",
                )
            )
    return findings


# --------------------------------------------------------------------------
# pin-balance
# --------------------------------------------------------------------------

PIN_HOME = ("src/storage/buffer_pool.h", "src/storage/buffer_pool.cc")
PIN_MEMBER_RE = re.compile(r"(?:\.|->)pins\b")
PIN_DEC_RE = re.compile(r"--\s*[A-Za-z_][\w.>-]*(?:\.|->)pins\b|"
                        r"(?:\.|->)pins\s*--|(?:\.|->)pins\s*-=")


def check_pin_balance(
    sf: SourceFile, repo_root: str
) -> "list[Finding]":
    rel = _posix(os.path.relpath(sf.path, repo_root))
    findings = []
    if rel not in PIN_HOME:
        for idx, line in enumerate(sf.code_lines):
            if PIN_MEMBER_RE.search(line):
                findings.append(
                    Finding(
                        sf.path,
                        idx + 1,
                        "pin-balance",
                        "frame pin count touched outside "
                        "buffer_pool.{h,cc}; go through Fetch/Unpin so "
                        "accounting stays balanced",
                    )
                )
        return findings
    if rel != "src/storage/buffer_pool.cc":
        return []
    # Inside buffer_pool.cc: every decrement must live in Unpin().
    current_fn = None
    for idx, line in enumerate(sf.code_lines):
        m = FUNC_DEF_RE.match(line)
        if m:
            current_fn = m.group(1)
        if PIN_DEC_RE.search(line) and current_fn != "Unpin":
            findings.append(
                Finding(
                    sf.path,
                    idx + 1,
                    "pin-balance",
                    f"pin count decremented in '{current_fn}'; all "
                    "unpinning must go through Unpin() so a new "
                    "early-return path cannot leak a pin",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def apply_suppressions(
    sf: SourceFile, findings: "list[Finding]"
) -> "list[Finding]":
    kept = []
    for f in findings:
        allow = sf.allow_at(f.line)
        if allow is None:
            kept.append(f)
            continue
        check, justification = allow
        if check != f.check:
            kept.append(f)
            kept.append(
                Finding(
                    sf.path,
                    f.line,
                    "bad-suppression",
                    f"allow({check}) does not match the finding here "
                    f"({f.check})",
                )
            )
        elif not justification:
            kept.append(
                Finding(
                    sf.path,
                    f.line,
                    "bad-suppression",
                    f"allow({check}) needs a justification after the "
                    "closing parenthesis",
                )
            )
        # matching check + non-empty justification: suppressed.
    return kept


def lint_files(paths: "list[str]", repo_root: str) -> "list[Finding]":
    sources = []
    for path in paths:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                sources.append(SourceFile(path, f.read()))
        except OSError as e:
            print(f"dm_lint: cannot read {path}: {e}", file=sys.stderr)
    status_fns = harvest_status_functions(sources)
    all_findings = []
    for sf in sources:
        findings = []
        findings += check_dropped_status(sf, status_fns)
        findings += check_hot_path_alloc(sf, repo_root)
        findings += check_raw_mutex(sf, repo_root)
        findings += check_pin_balance(sf, repo_root)
        all_findings += apply_suppressions(sf, findings)
    all_findings.sort(key=lambda f: (f.path, f.line))
    return all_findings


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="DM-specific lint (see module docstring)"
    )
    parser.add_argument(
        "--build-dir",
        help="build directory containing compile_commands.json "
        "(default: first match of <repo>/build*/)",
    )
    parser.add_argument(
        "--repo-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="specific files to lint (default: all sources from "
        "compile_commands.json plus in-repo headers)",
    )
    args = parser.parse_args(argv)
    repo_root = os.path.abspath(args.repo_root)

    if args.paths:
        paths = [os.path.abspath(p) for p in args.paths]
    else:
        try:
            cc = find_compile_commands(repo_root, args.build_dir)
        except FileNotFoundError as e:
            print(f"dm_lint: {e}", file=sys.stderr)
            return 2
        paths = collect_sources(repo_root, cc)

    findings = lint_files(paths, repo_root)
    for f in findings:
        print(f.render(repo_root))
    if findings:
        print(
            f"dm_lint: {len(findings)} finding(s); suppress with "
            "'// dm-lint: allow(<check>) <why>' where the invariant "
            "genuinely does not apply",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
