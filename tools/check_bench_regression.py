#!/usr/bin/env python3
"""Compare a fresh bench_throughput run against a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_throughput_tiny.json \
      --current BENCH_smoke.json [--max-qps-drop-pct 30]

Fails (exit 1) if:
  * any `threads_N/qps` metric dropped more than --max-qps-drop-pct
    relative to the baseline, or
  * any `threads_N/failed` metric in the current run is non-zero.

qps *improvements* never fail, and thread counts present in only one
of the two files are reported but ignored — the gate is meant to catch
"someone made the hot path 2x slower", not to pin exact numbers on
noisy shared CI runners. Keep --max-qps-drop-pct generous.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "bench_throughput":
        sys.exit(f"{path}: not a bench_throughput result ({doc.get('bench')!r})")
    return doc["metrics"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-qps-drop-pct", type=float, default=30.0)
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    failures = []
    compared = 0
    for key, base_qps in sorted(base.items()):
        if not key.endswith("/qps"):
            continue
        if key not in cur:
            print(f"note: {key} missing from current run, skipping")
            continue
        cur_qps = cur[key]
        drop_pct = 100.0 * (base_qps - cur_qps) / base_qps if base_qps > 0 else 0.0
        status = "ok"
        if drop_pct > args.max_qps_drop_pct:
            status = "REGRESSION"
            failures.append(
                f"{key}: {base_qps:.1f} -> {cur_qps:.1f} qps "
                f"({drop_pct:.1f}% drop > {args.max_qps_drop_pct:.0f}% allowed)"
            )
        print(f"{key}: baseline {base_qps:.1f} current {cur_qps:.1f} "
              f"({-drop_pct:+.1f}%) {status}")
        compared += 1

    for key, value in sorted(cur.items()):
        if key.endswith("/failed") and value != 0:
            failures.append(f"{key}: {int(value)} queries failed")

    if compared == 0:
        failures.append("no overlapping threads_N/qps metrics to compare")

    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench regression check passed ({compared} qps metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
