#!/usr/bin/env python3
"""Compare a fresh bench run against a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_throughput_tiny.json \
      --current BENCH_smoke.json [--max-qps-drop-pct 30]
  check_bench_regression.py --baseline bench/baselines/BENCH_build_tiny.json \
      --current BENCH_build_smoke.json [--max-slowdown-pct 75]
  check_bench_regression.py --baseline bench/baselines/BENCH_faults_tiny.json \
      --current BENCH_faults_smoke.json [--max-qps-drop-pct 40]

The baseline's `bench` field selects the rule set:

bench_throughput:
  * fails if any `threads_N/qps` dropped more than --max-qps-drop-pct
    relative to the baseline;
  * fails if any `threads_N/failed` metric in the current run is
    non-zero;
  * fails if `checksum_overhead_pct` (CRC-verification A/B) exceeds
    --max-checksum-overhead-pct.

bench_build:
  * fails if any `threads_N/total_millis` rose more than
    --max-slowdown-pct relative to the baseline;
  * fails if the current run's `determinism_ok` is not 1 (stores built
    at different thread counts must be byte-identical — this is a
    correctness gate, not a performance one).

bench_faults:
  * fails if the zero-fault configuration (`rate_0/...`) has failed or
    degraded queries — with no faults armed the fault path must be
    invisible;
  * fails if any `rate_X/qps` dropped more than --max-qps-drop-pct
    relative to the baseline (degradation getting drastically more
    expensive is a regression too).

Improvements never fail, and thread counts present in only one of the
two files are reported but ignored — the gate is meant to catch
"someone made the pipeline 2x slower", not to pin exact numbers on
noisy shared CI runners. Keep the thresholds generous.
"""

import argparse
import json
import sys


def load_doc(path, expect_bench=None):
    with open(path) as f:
        doc = json.load(f)
    bench = doc.get("bench")
    if bench not in ("bench_throughput", "bench_build", "bench_faults"):
        sys.exit(f"{path}: unsupported bench kind ({bench!r})")
    if expect_bench is not None and bench != expect_bench:
        sys.exit(f"{path}: bench kind {bench!r}, expected {expect_bench!r}")
    return bench, doc["metrics"]


def compare_series(base, cur, suffix, max_worse_pct, higher_is_better,
                   failures):
    """Compares every `<config>/<suffix>` metric; returns the count."""
    compared = 0
    for key, base_val in sorted(base.items()):
        if not key.endswith("/" + suffix):
            continue
        if key not in cur:
            print(f"note: {key} missing from current run, skipping")
            continue
        cur_val = cur[key]
        if base_val > 0:
            if higher_is_better:
                worse_pct = 100.0 * (base_val - cur_val) / base_val
            else:
                worse_pct = 100.0 * (cur_val - base_val) / base_val
        else:
            worse_pct = 0.0
        status = "ok"
        if worse_pct > max_worse_pct:
            status = "REGRESSION"
            failures.append(
                f"{key}: {base_val:.1f} -> {cur_val:.1f} "
                f"({worse_pct:.1f}% worse > {max_worse_pct:.0f}% allowed)"
            )
        print(f"{key}: baseline {base_val:.1f} current {cur_val:.1f} "
              f"({worse_pct:+.1f}% worse) {status}")
        compared += 1
    return compared


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-qps-drop-pct", type=float, default=30.0)
    ap.add_argument("--max-slowdown-pct", type=float, default=75.0)
    ap.add_argument("--max-checksum-overhead-pct", type=float, default=10.0)
    args = ap.parse_args()

    bench, base = load_doc(args.baseline)
    _, cur = load_doc(args.current, expect_bench=bench)

    failures = []
    if bench == "bench_throughput":
        compared = compare_series(base, cur, "qps", args.max_qps_drop_pct,
                                  higher_is_better=True, failures=failures)
        for key, value in sorted(cur.items()):
            if key.endswith("/failed") and value != 0:
                failures.append(f"{key}: {int(value)} queries failed")
        overhead = cur.get("checksum_overhead_pct")
        if overhead is not None:
            status = "ok"
            if overhead > args.max_checksum_overhead_pct:
                status = "REGRESSION"
                failures.append(
                    f"checksum_overhead_pct: {overhead:.2f}% > "
                    f"{args.max_checksum_overhead_pct:.0f}% allowed")
            print(f"checksum_overhead_pct: {overhead:.2f}% "
                  f"(limit {args.max_checksum_overhead_pct:.0f}%) {status}")
            compared += 1
        else:
            print("note: checksum_overhead_pct missing from current run")
        if compared == 0:
            failures.append("no overlapping threads_N/qps metrics to compare")
    elif bench == "bench_faults":
        compared = compare_series(base, cur, "qps", args.max_qps_drop_pct,
                                  higher_is_better=True, failures=failures)
        for key in ("rate_0/failed", "rate_0/degraded"):
            value = cur.get(key, 0)
            if value != 0:
                failures.append(
                    f"{key}: {int(value)} (zero-fault run must be clean)")
        if compared == 0:
            failures.append("no overlapping rate_X/qps metrics to compare")
    else:  # bench_build
        compared = compare_series(base, cur, "total_millis",
                                  args.max_slowdown_pct,
                                  higher_is_better=False, failures=failures)
        if cur.get("determinism_ok") != 1:
            failures.append(
                f"determinism_ok = {cur.get('determinism_ok')!r} "
                "(stores differ across thread counts)")
        if compared == 0:
            failures.append(
                "no overlapping threads_N/total_millis metrics to compare")

    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench regression check passed ({compared} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
