// dmctl — command-line front end for Direct Mesh terrain databases.
//
//   dmctl build --out <base> [--dem file.asc | --synthetic fractal|crater]
//               [--side N] [--seed S] [--compress] [--threads T]
//   dmctl info  --db <base>
//   dmctl verify --db <base> [--max-violations N]
//   dmctl query --db <base> --roi x0,y0,x1,y1 (--lod E | --keep FRAC)
//               [--obj out.obj] [--ppm out.ppm]
//   dmctl view  --db <base> --roi x0,y0,x1,y1 --emin E --emax E
//               [--single] [--obj out.obj] [--ppm out.ppm]
//
// `<base>` names two files: `<base>.db` (pages) and `<base>.meta`
// (catalog). ROI coordinates are in DEM grid units; `--keep` picks the
// LOD whose uniform cut retains that fraction of the points.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "dem/crater.h"
#include "dem/dem_io.h"
#include "dem/fractal.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "dm/invariants.h"
#include "mesh/obj_io.h"
#include "mesh/render.h"
#include "pm/pm_tree.h"
#include "server/query_service.h"
#include "simplify/simplifier.h"
#include "storage/buffer_pool.h"
#include "storage/db_env.h"
#include "storage/page_crc.h"

namespace dm {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    return Has(key) ? std::strtod(flags.at(key).c_str(), nullptr)
                    : fallback;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    return Has(key) ? std::strtoll(flags.at(key).c_str(), nullptr, 10)
                    : fallback;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      args.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[arg] = argv[++i];
    } else {
      args.flags[arg] = "1";
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dmctl build --out BASE [--dem FILE.asc | --synthetic "
      "fractal|crater] [--side N] [--seed S] [--compress] [--threads T]\n"
      "  dmctl info  --db BASE\n"
      "  dmctl verify --db BASE [--max-violations N]\n"
      "  dmctl scrub --db BASE\n"
      "  dmctl query --db BASE --roi x0,y0,x1,y1 (--lod E | --keep F) "
      "[--obj OUT] [--ppm OUT]\n"
      "  dmctl view  --db BASE --roi x0,y0,x1,y1 --emin E --emax E "
      "[--single] [--obj OUT] [--ppm OUT]\n"
      "  dmctl bench-serve --db BASE [--threads 1,2,4] [--queries N] "
      "[--duration-ms MS] [--persp-pct P] [--mb-pct P] [--roi-pct P]\n"
      "              [--shards N] [--read-latency-us N] [--seed S] "
      "[--json OUT] [--degraded] [--deadline-ms MS] "
      "[--max-queue-wait-ms MS]\n"
      "  dmctl cache-stats --db BASE [--cache-mb MB] [--queries N] "
      "[--roi-pct P] [--seed S] [--read-latency-us N]\n");
  return 2;
}

// ---- tiny meta file ------------------------------------------------

Status SaveMeta(const std::string& path, const DmMeta& meta,
                const std::vector<std::pair<double, double>>& quantiles,
                const std::vector<std::pair<std::string, double>>& stages) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot write " + path);
  out.precision(17);
  out << "heap_first=" << meta.heap_first << "\n"
      << "rtree_root=" << meta.rtree_root << "\n"
      << "rtree_size=" << meta.rtree_size << "\n"
      << "num_nodes=" << meta.num_nodes << "\n"
      << "num_leaves=" << meta.num_leaves << "\n"
      << "max_lod=" << meta.max_lod << "\n"
      << "mean_lod=" << meta.mean_lod << "\n"
      << "compressed=" << (meta.compressed ? 1 : 0) << "\n"
      << "bounds=" << meta.bounds.lo_x << "," << meta.bounds.lo_y << ","
      << meta.bounds.hi_x << "," << meta.bounds.hi_y << "\n";
  for (const auto& [f, e] : quantiles) {
    out << "quantile=" << f << "," << e << "\n";
  }
  for (const auto& [name, millis] : stages) {
    out << "stage=" << name << "," << millis << "\n";
  }
  return Status::OK();
}

struct LoadedMeta {
  DmMeta meta;
  std::vector<std::pair<double, double>> quantiles;
  /// Per-stage build timings (name, wall millis) as recorded by the
  /// `dmctl build` that wrote the meta file; empty for older files.
  std::vector<std::pair<std::string, double>> stages;
};

Result<LoadedMeta> LoadMeta(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("no meta file at " + path);
  LoadedMeta lm;
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    std::stringstream ss(value);
    if (key == "heap_first") ss >> lm.meta.heap_first;
    if (key == "rtree_root") ss >> lm.meta.rtree_root;
    if (key == "rtree_size") ss >> lm.meta.rtree_size;
    if (key == "num_nodes") ss >> lm.meta.num_nodes;
    if (key == "num_leaves") ss >> lm.meta.num_leaves;
    if (key == "max_lod") ss >> lm.meta.max_lod;
    if (key == "mean_lod") ss >> lm.meta.mean_lod;
    if (key == "compressed") {
      int v = 0;
      ss >> v;
      lm.meta.compressed = v != 0;
    }
    if (key == "bounds") {
      char c;
      ss >> lm.meta.bounds.lo_x >> c >> lm.meta.bounds.lo_y >> c >>
          lm.meta.bounds.hi_x >> c >> lm.meta.bounds.hi_y;
    }
    if (key == "quantile") {
      double f;
      double e;
      char c;
      ss >> f >> c >> e;
      lm.quantiles.emplace_back(f, e);
    }
    if (key == "stage") {
      const auto comma = value.find(',');
      if (comma != std::string::npos) {
        lm.stages.emplace_back(
            value.substr(0, comma),
            std::strtod(value.c_str() + comma + 1, nullptr));
      }
    }
  }
  return lm;
}

Result<Rect> ParseRoi(const std::string& spec) {
  Rect roi;
  char c;
  std::stringstream ss(spec);
  if (!(ss >> roi.lo_x >> c >> roi.lo_y >> c >> roi.hi_x >> c >>
        roi.hi_y) ||
      roi.empty()) {
    return Status::InvalidArgument("bad --roi, expected x0,y0,x1,y1");
  }
  return roi;
}

Status ExportResult(const Args& args, const DmQueryResult& r) {
  if (args.Has("obj")) {
    DM_RETURN_NOT_OK(
        WriteObj(r.vertices, r.positions, r.triangles, args.Get("obj")));
    std::printf("wrote %s\n", args.Get("obj").c_str());
  }
  if (args.Has("ppm")) {
    DM_RETURN_NOT_OK(RenderHillshade(r.vertices, r.positions, r.triangles,
                                     args.Get("ppm")));
    std::printf("wrote %s\n", args.Get("ppm").c_str());
  }
  return Status::OK();
}

// ---- commands ------------------------------------------------------

Status RunBuild(const Args& args) {
  const std::string base = args.Get("out");
  if (base.empty()) return Status::InvalidArgument("--out required");
  const int threads =
      EffectiveThreads(static_cast<int>(args.GetInt("threads", 1)));

  // Per-stage wall-clock bookkeeping: every finished stage prints one
  // progress line immediately (long builds aren't silent) and lands in
  // the meta file so `dmctl info` can show the breakdown later.
  std::vector<std::pair<std::string, double>> stages;
  auto clock = std::chrono::steady_clock::now();
  auto stage_done = [&](const char* name) {
    const double millis = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - clock)
                              .count();
    stages.emplace_back(name, millis);
    std::printf("[build] %-17s %9.1f ms\n", name, millis);
    std::fflush(stdout);
    clock = std::chrono::steady_clock::now();
  };

  DemGrid dem;
  if (args.Has("dem")) {
    DM_ASSIGN_OR_RETURN(dem, ReadEsriAsciiGrid(args.Get("dem")));
  } else if (args.Get("synthetic", "fractal") == "crater") {
    CraterParams p;
    p.side = static_cast<int>(args.GetInt("side", 257));
    p.seed = static_cast<uint64_t>(args.GetInt("seed", 4242));
    dem = GenerateCraterDem(p);
  } else {
    FractalParams p;
    p.side = static_cast<int>(args.GetInt("side", 257));
    p.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
    dem = GenerateFractalDem(p);
  }
  std::printf("terrain: %d x %d samples, %d thread%s\n", dem.width(),
              dem.height(), threads, threads == 1 ? "" : "s");
  stage_done("dem");

  const TriangleMesh mesh = TriangulateDem(dem);
  stage_done("triangulate");

  SimplifyOptions simplify_options;
  simplify_options.threads = threads;
  const SimplifyResult sr = SimplifyMesh(mesh, simplify_options);
  stage_done("simplify");
  DM_ASSIGN_OR_RETURN(const PmTree tree, PmTree::Build(mesh, sr));
  stage_done("pm-tree");

  DM_ASSIGN_OR_RETURN(auto env, DbEnv::Open(base + ".db", {}));
  DmStoreOptions options;
  options.compress_records = args.Has("compress");
  options.threads = threads;
  DmBuildTimings timings;
  options.timings = &timings;
  DM_ASSIGN_OR_RETURN(const DmStore store,
                      DmStore::Build(env.get(), mesh, tree, sr, options));
  clock = std::chrono::steady_clock::now();  // Build timed internally
  stages.emplace_back("connection-lists", timings.conn_millis);
  stages.emplace_back("str-order", timings.str_millis);
  stages.emplace_back("encode", timings.encode_millis);
  stages.emplace_back("heap-append", timings.append_millis);
  stages.emplace_back("rtree-pack", timings.bulkload_millis);
  stages.emplace_back("catalog", timings.catalog_millis);
  for (size_t i = stages.size() - 6; i < stages.size(); ++i) {
    std::printf("[build] %-17s %9.1f ms\n", stages[i].first.c_str(),
                stages[i].second);
  }
  std::fflush(stdout);

  // LOD quantiles for --keep.
  std::vector<double> lods;
  for (const PmNode& n : tree.nodes()) {
    if (!n.is_leaf()) lods.push_back(n.e_low);
  }
  std::sort(lods.begin(), lods.end());
  std::vector<std::pair<double, double>> quantiles;
  for (double f : {1.0, 0.75, 0.5, 0.25, 0.1, 0.05, 0.02, 0.01, 0.005}) {
    const int64_t target = std::max<int64_t>(
        1, static_cast<int64_t>(f * static_cast<double>(tree.num_leaves())));
    const int64_t k = tree.num_leaves() - target;
    const double e =
        k <= 0 ? 0.0
               : lods[std::min<size_t>(static_cast<size_t>(k),
                                       lods.size()) - 1];
    quantiles.emplace_back(f, e);
  }
  DM_RETURN_NOT_OK(SaveMeta(base + ".meta", store.meta(), quantiles, stages));
  double total = 0.0;
  for (const auto& [name, millis] : stages) total += millis;
  std::printf("built %s.db (%lld nodes, max LOD %.4g%s) in %.1f ms\n",
              base.c_str(), static_cast<long long>(store.meta().num_nodes),
              store.meta().max_lod,
              options.compress_records ? ", compressed" : "", total);
  return Status::OK();
}

struct OpenDb {
  std::unique_ptr<DbEnv> env;
  std::unique_ptr<DmStore> store;
  LoadedMeta lm;
};

Result<OpenDb> Open(const Args& args, uint32_t default_pool_shards = 1) {
  const std::string base = args.Get("db");
  if (base.empty()) return Status::InvalidArgument("--db required");
  OpenDb db;
  DM_ASSIGN_OR_RETURN(db.lm, LoadMeta(base + ".meta"));
  DbOptions options;
  options.truncate = false;
  // Paper-exact single shard unless the caller serves concurrently
  // (bench-serve) or --shards overrides.
  options.pool_shards =
      static_cast<uint32_t>(args.GetInt("shards", default_pool_shards));
  // Decoded-node cache, off by default (paper-exact disk accounting);
  // any command accepts --cache-mb to turn it on.
  options.node_cache_bytes =
      static_cast<size_t>(args.GetInt("cache-mb", 0)) * (1u << 20);
  DM_ASSIGN_OR_RETURN(db.env, DbEnv::Open(base + ".db", options));
  DM_ASSIGN_OR_RETURN(DmStore store, DmStore::Open(db.env.get(), db.lm.meta));
  db.store = std::make_unique<DmStore>(std::move(store));
  return db;
}

Status RunInfo(const Args& args) {
  DM_ASSIGN_OR_RETURN(OpenDb db, Open(args));
  const DmMeta& m = db.lm.meta;
  std::printf("nodes:       %lld (%lld terrain points)\n",
              static_cast<long long>(m.num_nodes),
              static_cast<long long>(m.num_leaves));
  std::printf("bounds:      %s\n", m.bounds.ToString().c_str());
  std::printf("max LOD:     %.6g\n", m.max_lod);
  std::printf("records:     %s\n", m.compressed ? "compressed" : "flat");
  std::printf("heap pages:  %lld\n",
              static_cast<long long>(db.store->heap().num_pages()));
  std::printf("index nodes: %zu\n", db.store->node_extents().size());
  std::printf("LOD ladder (fraction of points kept -> e):\n");
  for (const auto& [f, e] : db.lm.quantiles) {
    std::printf("  %6.1f%% -> %.6g\n", f * 100, e);
  }
  if (!db.lm.stages.empty()) {
    double total = 0.0;
    for (const auto& [name, millis] : db.lm.stages) total += millis;
    std::printf("build stages (total %.1f ms):\n", total);
    for (const auto& [name, millis] : db.lm.stages) {
      std::printf("  %-17s %9.1f ms\n", name.c_str(), millis);
    }
  }
  return Status::OK();
}

Status RunVerify(const Args& args) {
  DM_ASSIGN_OR_RETURN(OpenDb db, Open(args));
  InvariantOptions options;
  options.max_violations_per_invariant = args.GetInt("max-violations", 16);
  DM_ASSIGN_OR_RETURN(const InvariantReport report,
                      VerifyDmStore(*db.store, options));
  std::printf("%s\n", report.ToString().c_str());
  if (!report.ok()) {
    if (report.violations.empty()) {
      return Status::Corruption("invariant violations (all suppressed)");
    }
    return Status::Corruption("invariant violation: [" +
                              report.violations.front().invariant + "] " +
                              report.violations.front().detail);
  }
  return Status::OK();
}

// Offline integrity audit (DESIGN.md §11): verifies the CRC32C trailer
// of every physical page, decodes every heap record, then cross-checks
// the structural invariants. Exits non-zero naming the first bad page,
// so a cron'd `dmctl scrub` turns latent disk corruption into a page
// number before any query trips over it.
Status RunScrub(const Args& args) {
  DM_ASSIGN_OR_RETURN(OpenDb db, Open(args));

  // Phase 1: raw page sweep, straight through the disk manager so the
  // buffer pool cannot hide a bad page behind a cached copy.
  DiskManager& disk = db.env->disk();
  const uint32_t physical = disk.page_size();
  const PageId pages = disk.num_pages();
  std::vector<uint8_t> buf(physical);
  for (PageId id = 0; id < pages; ++id) {
    DM_RETURN_NOT_OK(disk.ReadPage(id, buf.data()));
    DM_RETURN_NOT_OK(VerifyPageTrailer(buf.data(), physical, id));
  }
  std::printf("scrub: %lld pages checksum-clean\n",
              static_cast<long long>(pages));

  // Phase 2: decode every node record (a page can be checksum-clean
  // yet hold a record a buggy writer truncated).
  const bool compressed = db.lm.meta.compressed;
  int64_t records = 0;
  Status decode_st = Status::OK();
  DM_RETURN_NOT_OK(db.store->heap().Scan(
      [&](RecordId rid, const uint8_t* data, uint32_t len) {
        const Result<DmNode> node =
            compressed ? DmNode::DecodeCompressed(data, len)
                       : DmNode::Decode(data, len);
        if (!node.ok()) {
          decode_st = Status::Corruption(
              "record " + std::to_string(rid.slot) + " on page " +
              std::to_string(rid.page) +
              " does not decode: " + node.status().ToString());
          return false;
        }
        ++records;
        return true;
      }));
  DM_RETURN_NOT_OK(decode_st);
  if (records != db.lm.meta.num_nodes) {
    return Status::Corruption(
        "heap holds " + std::to_string(records) + " records but the "
        "catalog says " + std::to_string(db.lm.meta.num_nodes));
  }
  std::printf("scrub: %lld records decode cleanly\n",
              static_cast<long long>(records));

  // Phase 3: structural invariants across heap + index + tree shape.
  InvariantOptions options;
  options.max_violations_per_invariant = args.GetInt("max-violations", 16);
  DM_ASSIGN_OR_RETURN(const InvariantReport report,
                      VerifyDmStore(*db.store, options));
  if (!report.ok()) {
    if (report.violations.empty()) {
      return Status::Corruption("invariant violations (all suppressed)");
    }
    return Status::Corruption("invariant violation: [" +
                              report.violations.front().invariant + "] " +
                              report.violations.front().detail);
  }
  std::printf("scrub: invariants hold (%s)\n", report.ToString().c_str());
  std::printf("scrub: clean\n");
  return Status::OK();
}

double LodFromArgs(const Args& args, const LoadedMeta& lm) {
  if (args.Has("lod")) return args.GetDouble("lod", 0.0);
  const double keep = args.GetDouble("keep", 0.1);
  // Nearest quantile at or below the requested fraction.
  double e = 0.0;
  for (const auto& [f, q] : lm.quantiles) {
    e = q;
    if (f <= keep) break;
  }
  return e;
}

Status RunQuery(const Args& args) {
  DM_ASSIGN_OR_RETURN(OpenDb db, Open(args));
  DM_ASSIGN_OR_RETURN(const Rect roi, ParseRoi(args.Get("roi")));
  const double e = LodFromArgs(args, db.lm);

  DM_RETURN_NOT_OK(db.env->FlushAll());
  DmQueryProcessor proc(db.store.get());
  DM_ASSIGN_OR_RETURN(const DmQueryResult r,
                      proc.ViewpointIndependent(roi, e));
  std::printf(
      "e=%.6g vertices=%zu triangles=%zu disk_accesses=%lld "
      "(index %lld) cpu=%.2fms\n",
      e, r.vertices.size(), r.triangles.size(),
      static_cast<long long>(r.stats.disk_accesses),
      static_cast<long long>(r.stats.index_io), r.stats.cpu_millis);
  return ExportResult(args, r);
}

Status RunView(const Args& args) {
  DM_ASSIGN_OR_RETURN(OpenDb db, Open(args));
  DM_ASSIGN_OR_RETURN(const Rect roi, ParseRoi(args.Get("roi")));
  ViewQuery q;
  q.roi = roi;
  q.e_min = args.GetDouble("emin", 0.0);
  // Default far-plane LOD: the quantile keeping ~5% of the points
  // (raw e values are skewed, so a fraction of max would be useless).
  double far_default = db.lm.meta.max_lod * 0.2;
  for (const auto& [f, e] : db.lm.quantiles) {
    if (f <= 0.05) {
      far_default = e;
      break;
    }
  }
  q.e_max = args.GetDouble("emax", far_default);

  DM_RETURN_NOT_OK(db.env->FlushAll());
  DmQueryProcessor proc(db.store.get());
  DmQueryResult r;
  if (args.Has("single")) {
    DM_ASSIGN_OR_RETURN(r, proc.SingleBase(q));
  } else {
    DM_ASSIGN_OR_RETURN(r, proc.MultiBase(q));
  }
  std::printf(
      "%s e=[%.4g, %.4g] vertices=%zu triangles=%zu cubes=%lld "
      "disk_accesses=%lld cpu=%.2fms\n",
      args.Has("single") ? "single-base" : "multi-base", q.e_min, q.e_max,
      r.vertices.size(), r.triangles.size(),
      static_cast<long long>(r.stats.range_queries),
      static_cast<long long>(r.stats.disk_accesses), r.stats.cpu_millis);
  return ExportResult(args, r);
}

// Replays a deterministic mixed workload through the QueryService at
// each requested worker count; the CLI analogue of bench_throughput
// for an already-built database.
Status RunBenchServe(const Args& args) {
  DM_ASSIGN_OR_RETURN(OpenDb db, Open(args, BufferPool::kDefaultShards));
  db.env->disk().set_simulated_read_latency_micros(
      static_cast<uint32_t>(args.GetInt("read-latency-us", 0)));

  std::vector<int> thread_counts;
  {
    std::stringstream ss(args.Get("threads", "1,2,4"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const int t = std::atoi(tok.c_str());
      if (t <= 0 || t > 256) {
        return Status::InvalidArgument("bad --threads entry: " + tok);
      }
      thread_counts.push_back(t);
    }
    if (thread_counts.empty()) {
      return Status::InvalidArgument("--threads list is empty");
    }
  }

  int count = static_cast<int>(args.GetInt("queries", 256));
  if (count <= 0) return Status::InvalidArgument("--queries must be > 0");
  const DmMeta& meta = db.lm.meta;
  const auto make_workload = [&](int n) {
    return MakeMixedWorkload(
        meta.bounds, meta.max_lod, n,
        static_cast<uint64_t>(args.GetInt("seed", 12345)),
        args.GetDouble("roi-pct", 2.0) / 100.0,
        static_cast<int>(args.GetInt("persp-pct", 40)),
        static_cast<int>(args.GetInt("mb-pct", 25)));
  };
  std::vector<QueryRequest> workload = make_workload(count);

  // Failure-handling knobs: --degraded turns lost pages into coarser
  // meshes instead of failed queries, --deadline-ms bounds refinement,
  // --max-queue-wait-ms sheds jobs that waited too long.
  DmQueryOptions query;
  query.allow_degraded = args.Has("degraded");
  query.deadline_millis = args.GetDouble("deadline-ms", 0.0);
  const double max_wait = args.GetDouble("max-queue-wait-ms", 0.0);

  // Untimed pass: warms the pool and, with --duration-ms, calibrates
  // how many queries fill the requested wall time per configuration.
  DM_ASSIGN_OR_RETURN(const ThroughputReport warm,
                      RunThroughput(db.store.get(), workload, 1, query));
  std::printf("warm-up: %s\n", warm.ToString().c_str());
  const double duration_ms = args.GetDouble("duration-ms", 0.0);
  if (duration_ms > 0 && warm.qps > 0) {
    const int scaled = static_cast<int>(warm.qps * duration_ms / 1000.0) + 1;
    if (scaled > count) workload = make_workload(scaled);
  }

  std::vector<ThroughputReport> reports;
  for (int threads : thread_counts) {
    DM_ASSIGN_OR_RETURN(
        const ThroughputReport r,
        RunThroughput(db.store.get(), workload, threads, query, max_wait));
    std::printf("%s\n", r.ToString().c_str());
    reports.push_back(r);
  }

  const std::string json_path = args.Get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) return Status::IOError("cannot write " + json_path);
    out << "{\"bench\": \"bench_serve\", \"metrics\": {";
    out << "\"queries\": " << reports.front().queries;
    for (const ThroughputReport& r : reports) {
      const std::string p = "\"threads_" + std::to_string(r.threads) + "/";
      out << ", " << p << "qps\": " << r.qps;
      out << ", " << p << "p50_millis\": " << r.p50_millis;
      out << ", " << p << "p99_millis\": " << r.p99_millis;
      out << ", " << p << "disk_reads\": " << r.disk_reads;
      out << ", " << p << "failed\": " << r.failed;
      out << ", " << p << "shed\": " << r.shed;
      out << ", " << p << "degraded\": " << r.degraded;
      out << ", " << p << "io_retries\": " << r.io_retries;
    }
    out << "}}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return Status::OK();
}

// Replays a deterministic query batch twice over a node-cache-enabled
// store and reports decoded-node-cache and buffer-pool counters for
// the cold and warm passes. The warm pass shows the steady-state hit
// rate and how many disk reads the cache absorbs.
Status RunCacheStats(const Args& args) {
  Args open_args = args;
  if (!open_args.Has("cache-mb")) open_args.flags["cache-mb"] = "64";
  DM_ASSIGN_OR_RETURN(OpenDb db, Open(open_args));
  if (db.store->node_cache() == nullptr) {
    return Status::InvalidArgument("--cache-mb must be > 0");
  }
  db.env->disk().set_simulated_read_latency_micros(
      static_cast<uint32_t>(args.GetInt("read-latency-us", 0)));

  const int count = static_cast<int>(args.GetInt("queries", 64));
  if (count <= 0) return Status::InvalidArgument("--queries must be > 0");
  const DmMeta& meta = db.lm.meta;
  const std::vector<QueryRequest> workload = MakeMixedWorkload(
      meta.bounds, meta.max_lod, count,
      static_cast<uint64_t>(args.GetInt("seed", 12345)),
      args.GetDouble("roi-pct", 10.0) / 100.0,
      static_cast<int>(args.GetInt("persp-pct", 40)),
      static_cast<int>(args.GetInt("mb-pct", 25)));

  NodeCacheStats prev_cache;
  IoStats prev_io;
  for (const char* pass : {"cold", "warm"}) {
    DM_ASSIGN_OR_RETURN(const ThroughputReport r,
                        RunThroughput(db.store.get(), workload, 1));
    const NodeCacheStats c = db.store->node_cache_stats();
    const IoStats io = db.env->stats();
    const int64_t hits = c.hits - prev_cache.hits;
    const int64_t misses = c.misses - prev_cache.misses;
    const double hit_rate =
        hits + misses > 0
            ? 100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses)
            : 0.0;
    std::printf("%s pass: %lld queries, %.1f q/s\n", pass,
                static_cast<long long>(r.queries), r.qps);
    std::printf(
        "  node cache:  hits=%lld misses=%lld (%.1f%% hit) "
        "evictions=%lld resident=%lld entries / %.1f MiB\n",
        static_cast<long long>(hits), static_cast<long long>(misses),
        hit_rate, static_cast<long long>(c.evictions - prev_cache.evictions),
        static_cast<long long>(c.entries),
        static_cast<double>(c.bytes) / (1u << 20));
    std::printf(
        "  buffer pool: fetches=%lld disk_reads=%lld evictions=%lld\n",
        static_cast<long long>(io.logical_fetches - prev_io.logical_fetches),
        static_cast<long long>(io.disk_reads - prev_io.disk_reads),
        static_cast<long long>(io.evictions - prev_io.evictions));
    prev_cache = c;
    prev_io = io;
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  Status st;
  if (args.command == "build") {
    st = RunBuild(args);
  } else if (args.command == "info") {
    st = RunInfo(args);
  } else if (args.command == "verify") {
    st = RunVerify(args);
  } else if (args.command == "scrub") {
    st = RunScrub(args);
  } else if (args.command == "query") {
    st = RunQuery(args);
  } else if (args.command == "view") {
    st = RunView(args);
  } else if (args.command == "bench-serve") {
    st = RunBenchServe(args);
  } else if (args.command == "cache-stats") {
    st = RunCacheStats(args);
  } else {
    return Usage();
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dm

int main(int argc, char** argv) { return dm::Main(argc, argv); }
