#!/usr/bin/env bash
# Correctness-tooling driver: clang-tidy over every target, the Clang
# thread-safety build, the DM-specific lint, then the full ctest suite
# under each sanitizer configuration.
#
#   tools/run_static_analysis.sh [--tidy-only] [--sanitize-only]
#                                [--annotate-only] [--lint-only]
#                                [--skip-tsan] [-j N]
#
#   --annotate-only   run just the thread-safety stage (Clang build
#                     with -Werror=thread-safety + compile_fail ctests)
#   --lint-only       run just the dm-lint stage (tools/dm_lint.py)
#
# One run reports ALL failing stages: a stage failure is recorded and
# the remaining stages still execute; the summary lists every failed
# stage by name and the exit status is non-zero if any failed. Stages
# whose toolchain is not installed (e.g. clang on a gcc-only box) are
# skipped with a warning so the script stays useful on minimal
# containers; CI images are expected to have the full toolchain.

set -u -o pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

JOBS=$(nproc 2>/dev/null || echo 4)
RUN_TIDY=1
RUN_ANNOTATE=1
RUN_LINT=1
RUN_SAN=1
SKIP_TSAN=0

only() { RUN_TIDY=0; RUN_ANNOTATE=0; RUN_LINT=0; RUN_SAN=0; }

while [ $# -gt 0 ]; do
  case "$1" in
    --tidy-only) only; RUN_TIDY=1 ;;
    --annotate-only) only; RUN_ANNOTATE=1 ;;
    --lint-only) only; RUN_LINT=1 ;;
    --sanitize-only) only; RUN_SAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    -j) shift; JOBS=$1 ;;
    -j*) JOBS=${1#-j} ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

FAILED_STAGES=""

note() { printf '\n== %s ==\n' "$*"; }
fail() { echo "FAIL: $*" >&2; FAILED_STAGES="$FAILED_STAGES $1"; }

# ---- clang-tidy over all targets -----------------------------------

run_tidy() {
  note "clang-tidy"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping the tidy stage" >&2
    return 0
  fi

  local build_dir="$REPO_ROOT/build-tidy"
  cmake -B "$build_dir" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || {
    fail "clang-tidy" "cmake configure"; return 1; }

  # Every first-party translation unit; third-party and generated code
  # never enters the compile database from our source dirs.
  local sources
  sources=$(find src tools tests bench examples \
                 -name '*.cc' -o -name '*.cpp' | sort)

  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -p "$build_dir" -j "$JOBS" -quiet $sources || {
      fail "clang-tidy" "findings"; return 1; }
  else
    local rc=0
    for f in $sources; do
      clang-tidy -p "$build_dir" --quiet "$f" || rc=1
    done
    [ "$rc" -eq 0 ] || { fail "clang-tidy" "findings"; return 1; }
  fi
  echo "clang-tidy: clean"
}

# ---- Clang thread-safety analysis ----------------------------------

find_clangxx() {
  local c
  for c in clang++ clang++-19 clang++-18 clang++-17 clang++-16; do
    if command -v "$c" >/dev/null 2>&1; then echo "$c"; return 0; fi
  done
  return 1
}

run_thread_safety() {
  note "thread-safety (-Werror=thread-safety)"
  local clangxx
  if ! clangxx=$(find_clangxx); then
    echo "clang++ not installed; skipping the thread-safety stage" >&2
    return 0
  fi

  local build_dir="$REPO_ROOT/build-threadsafety"
  cmake -B "$build_dir" -S "$REPO_ROOT" \
        -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_COMPILER="$clangxx" \
        -DDM_THREAD_SAFETY=ON >/dev/null || {
    fail "thread-safety" "configure"; return 1; }
  cmake --build "$build_dir" -j "$JOBS" >/dev/null || {
    fail "thread-safety" "build (annotation violation?)"; return 1; }
  # The negative-compile fixtures prove the gate rejects bad code.
  (cd "$build_dir" && ctest -L compile_fail --output-on-failure) || {
    fail "thread-safety" "compile_fail fixtures"; return 1; }
  echo "thread-safety: clean"
}

# ---- DM-specific lint ----------------------------------------------

run_dm_lint() {
  note "dm-lint"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "python3 not installed; skipping the dm-lint stage" >&2
    return 0
  fi

  # The lint walks compile_commands.json; make sure one exists.
  local build_dir
  build_dir=$(ls -d "$REPO_ROOT"/build*/compile_commands.json 2>/dev/null |
              head -n1 | xargs -r dirname)
  if [ -z "$build_dir" ]; then
    build_dir="$REPO_ROOT/build-tidy"
    cmake -B "$build_dir" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || {
      fail "dm-lint" "cmake configure"; return 1; }
  fi

  python3 "$REPO_ROOT/tools/dm_lint.py" --build-dir "$build_dir" || {
    fail "dm-lint" "findings"; return 1; }
  python3 "$REPO_ROOT/tests/test_dm_lint.py" >/dev/null 2>&1 || {
    fail "dm-lint" "unit tests"; return 1; }
  echo "dm-lint: clean"
}

# ---- build + ctest under each sanitizer ----------------------------

run_sanitizer() {
  local name=$1 sanitize=$2
  note "ctest under $name"
  local build_dir="$REPO_ROOT/build-$name"
  cmake -B "$build_dir" -S "$REPO_ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DDM_SANITIZE="$sanitize" >/dev/null || {
    fail "$name" "configure"; return 1; }
  cmake --build "$build_dir" -j "$JOBS" >/dev/null || {
    fail "$name" "build"; return 1; }
  (cd "$build_dir" && ctest --output-on-failure -j "$JOBS") || {
    fail "$name" "tests"; return 1; }
}

sanitizer_available() {
  # Probe whether the toolchain can actually link the sanitizer
  # runtime (containers often ship the compiler without libtsan).
  local flag=$1 tmp
  tmp=$(mktemp -d)
  echo 'int main(){return 0;}' > "$tmp/t.cc"
  if c++ "-fsanitize=$flag" "$tmp/t.cc" -o "$tmp/t" >/dev/null 2>&1; then
    rm -rf "$tmp"; return 0
  fi
  rm -rf "$tmp"; return 1
}

[ "$RUN_TIDY" -eq 1 ] && run_tidy
[ "$RUN_ANNOTATE" -eq 1 ] && run_thread_safety
[ "$RUN_LINT" -eq 1 ] && run_dm_lint

if [ "$RUN_SAN" -eq 1 ]; then
  if sanitizer_available address; then
    run_sanitizer asan-ubsan "address,undefined"
  else
    echo "address sanitizer runtime not installed; skipping" >&2
  fi
  if [ "$SKIP_TSAN" -eq 0 ]; then
    if sanitizer_available thread; then
      run_sanitizer tsan thread
    else
      echo "thread sanitizer runtime not installed; skipping" >&2
    fi
  fi
fi

note "summary"
if [ -n "$FAILED_STAGES" ]; then
  echo "failed stages:$FAILED_STAGES"
  exit 1
fi
echo "all stages passed (or were skipped for missing toolchain)"
