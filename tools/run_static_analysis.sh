#!/usr/bin/env bash
# Correctness-tooling driver: clang-tidy over every target, then the
# full ctest suite under each sanitizer configuration.
#
#   tools/run_static_analysis.sh [--tidy-only] [--sanitize-only]
#                                [--skip-tsan] [-j N]
#
# Exits non-zero on the first stage that fails. Stages whose toolchain
# is not installed (e.g. clang-tidy on a gcc-only box) are skipped with
# a warning so the script stays useful on minimal containers; CI images
# are expected to have the full toolchain.

set -u -o pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

JOBS=$(nproc 2>/dev/null || echo 4)
RUN_TIDY=1
RUN_SAN=1
SKIP_TSAN=0

while [ $# -gt 0 ]; do
  case "$1" in
    --tidy-only) RUN_SAN=0 ;;
    --sanitize-only) RUN_TIDY=0 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    -j) shift; JOBS=$1 ;;
    -j*) JOBS=${1#-j} ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

FAILURES=0

note()  { printf '\n== %s ==\n' "$*"; }
fail()  { echo "FAIL: $*" >&2; FAILURES=$((FAILURES + 1)); }

# ---- clang-tidy over all targets -----------------------------------

run_tidy() {
  note "clang-tidy"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping the lint stage" >&2
    return 0
  fi

  local build_dir="$REPO_ROOT/build-tidy"
  cmake -B "$build_dir" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || {
    fail "cmake configure for clang-tidy"; return 1; }

  # Every first-party translation unit; third-party and generated code
  # never enters the compile database from our source dirs.
  local sources
  sources=$(find src tools tests bench examples \
                 -name '*.cc' -o -name '*.cpp' | sort)

  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -p "$build_dir" -j "$JOBS" -quiet $sources || {
      fail "clang-tidy findings"; return 1; }
  else
    local rc=0
    for f in $sources; do
      clang-tidy -p "$build_dir" --quiet "$f" || rc=1
    done
    [ "$rc" -eq 0 ] || { fail "clang-tidy findings"; return 1; }
  fi
  echo "clang-tidy: clean"
}

# ---- build + ctest under each sanitizer ----------------------------

run_sanitizer() {
  local name=$1 sanitize=$2
  note "ctest under $name"
  local build_dir="$REPO_ROOT/build-$name"
  cmake -B "$build_dir" -S "$REPO_ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DDM_SANITIZE="$sanitize" >/dev/null || {
    fail "$name configure"; return 1; }
  cmake --build "$build_dir" -j "$JOBS" >/dev/null || {
    fail "$name build"; return 1; }
  (cd "$build_dir" && ctest --output-on-failure -j "$JOBS") || {
    fail "$name tests"; return 1; }
}

sanitizer_available() {
  # Probe whether the toolchain can actually link the sanitizer
  # runtime (containers often ship the compiler without libtsan).
  local flag=$1 tmp
  tmp=$(mktemp -d)
  echo 'int main(){return 0;}' > "$tmp/t.cc"
  if c++ "-fsanitize=$flag" "$tmp/t.cc" -o "$tmp/t" >/dev/null 2>&1; then
    rm -rf "$tmp"; return 0
  fi
  rm -rf "$tmp"; return 1
}

[ "$RUN_TIDY" -eq 1 ] && run_tidy

if [ "$RUN_SAN" -eq 1 ]; then
  if sanitizer_available address; then
    run_sanitizer asan-ubsan "address,undefined"
  else
    echo "address sanitizer runtime not installed; skipping" >&2
  fi
  if [ "$SKIP_TSAN" -eq 0 ]; then
    if sanitizer_available thread; then
      run_sanitizer tsan thread
    else
      echo "thread sanitizer runtime not installed; skipping" >&2
    fi
  fi
fi

note "summary"
if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES stage(s) failed"
  exit 1
fi
echo "all stages passed (or were skipped for missing toolchain)"
