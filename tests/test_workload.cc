#include "workload/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>

#include "test_util.h"
#include "workload/bench_context.h"

namespace dm {
namespace {

std::string TempDir() {
  std::string dir = "/tmp/dm_workload_test_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

DatasetSpec TinySpec() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.side = 33;
  spec.seed = 5;
  spec.crater = false;
  return spec;
}

TEST(DatasetTest, BuildThenReloadGivesIdenticalQueries) {
  const std::string dir = TempDir();
  const DatasetSpec spec = TinySpec();
  DropDatasetCache(dir, spec);

  int64_t da_built;
  Rect roi;
  double e;
  {
    auto ctx_or = BenchContext::Create(dir, spec);
    ASSERT_TRUE(ctx_or.ok()) << ctx_or.status().ToString();
    auto& ctx = ctx_or.value();
    roi = ctx.SampleRois(0.1, 1)[0];
    e = 0.1 * ctx.dataset().max_lod;
    auto stats = ctx.RunUniform(Method::kDmSingleBase, roi, e);
    ASSERT_TRUE(stats.ok());
    da_built = stats.value().disk_accesses;
    EXPECT_GT(da_built, 0);
  }
  {
    // Second open must hit the cache (no rebuild) and reproduce the
    // exact same disk-access count.
    auto ctx_or = BenchContext::Create(dir, spec);
    ASSERT_TRUE(ctx_or.ok());
    auto& ctx = ctx_or.value();
    auto stats = ctx.RunUniform(Method::kDmSingleBase, roi, e);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().disk_accesses, da_built);
  }
}

TEST(DatasetTest, AllMethodsAnswerUniformQueries) {
  const std::string dir = TempDir();
  auto ctx_or = BenchContext::Create(dir, TinySpec());
  ASSERT_TRUE(ctx_or.ok());
  auto& ctx = ctx_or.value();
  const Rect roi = ctx.SampleRois(0.15, 1)[0];
  const double e = ctx.dataset().mean_lod;
  for (Method m : {Method::kDmSingleBase, Method::kPm, Method::kHdov}) {
    auto stats = ctx.RunUniform(m, roi, e);
    ASSERT_TRUE(stats.ok()) << MethodName(m);
    EXPECT_GT(stats.value().disk_accesses, 0) << MethodName(m);
  }
}

TEST(DatasetTest, AllMethodsAnswerViewQueries) {
  const std::string dir = TempDir();
  auto ctx_or = BenchContext::Create(dir, TinySpec());
  ASSERT_TRUE(ctx_or.ok());
  auto& ctx = ctx_or.value();
  const Rect roi = ctx.SampleRois(0.2, 1)[0];
  const ViewQuery q = ViewQuery::FromAngle(roi, 0.01 * ctx.dataset().max_lod,
                                           0.5, ctx.dataset().max_lod);
  for (Method m : {Method::kDmSingleBase, Method::kDmMultiBase, Method::kPm,
                   Method::kHdov}) {
    auto stats = ctx.RunView(m, q);
    ASSERT_TRUE(stats.ok()) << MethodName(m);
    EXPECT_GT(stats.value().disk_accesses, 0) << MethodName(m);
  }
}

TEST(DatasetTest, RoisAreDeterministicAndInsideBounds) {
  const std::string dir = TempDir();
  auto ctx_or = BenchContext::Create(dir, TinySpec());
  ASSERT_TRUE(ctx_or.ok());
  auto& ctx = ctx_or.value();
  const auto a = ctx.SampleRois(0.1, 20);
  const auto b = ctx.SampleRois(0.1, 20);
  ASSERT_EQ(a.size(), 20u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo_x, b[i].lo_x);
    EXPECT_TRUE(ctx.dataset().bounds.Contains(a[i]));
    // Approximately the requested area (clipped at the border).
    EXPECT_LE(a[i].Area(), 0.1 * ctx.dataset().bounds.Area() * 1.01);
  }
}

TEST(DatasetTest, ConnectivityStatsPersistAcrossReload) {
  const std::string dir = TempDir();
  const DatasetSpec spec = TinySpec();
  auto first_or = BuildOrLoadDataset(dir, spec);
  ASSERT_TRUE(first_or.ok());
  const double avg = first_or.value().conn_stats.avg_similar_lod;
  EXPECT_GT(avg, 0.0);
  auto second_or = BuildOrLoadDataset(dir, spec);
  ASSERT_TRUE(second_or.ok());
  EXPECT_DOUBLE_EQ(second_or.value().conn_stats.avg_similar_lod, avg);
}

}  // namespace
}  // namespace dm
