#include "dm/invariants.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "dm/dm_store.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::Scene;
using testing::TempDbPath;

/// Returns true when `report` contains at least one violation of the
/// named invariant.
bool Violates(const InvariantReport& report, const std::string& invariant) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const InvariantViolation& v) {
                       return v.invariant == invariant;
                     });
}

/// Fresh scene + store per test: corruption injected into the buffer
/// pool must never leak into another test's store.
struct TestStore {
  Scene scene;
  std::unique_ptr<DbEnv> env;
  std::unique_ptr<DmStore> store;
  std::string path;
};

TestStore MakeStore(const std::string& tag, bool compressed = false) {
  TestStore ts;
  ts.scene = MakeScene(33);
  ts.path = TempDbPath(tag);
  auto env_or = DbEnv::Open(ts.path, {});
  EXPECT_TRUE(env_or.ok());
  ts.env = std::move(env_or).value();
  DmStoreOptions options;
  options.compress_records = compressed;
  auto store_or = DmStore::Build(ts.env.get(), ts.scene.base, ts.scene.tree,
                                 ts.scene.sr, options);
  EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
  ts.store = std::make_unique<DmStore>(std::move(store_or).value());
  return ts;
}

// ---- byte-level corruption helpers ---------------------------------
//
// These mirror the documented on-disk layouts (heap_file.h slotted
// pages, DmNode flat encoding, R*-tree node pages) so tests can flip
// specific fields the way real disk corruption would.

constexpr uint32_t kHeapSlotSize = 4;  // u16 offset + u16 length

/// Start offset of record `slot` inside its heap page.
uint32_t HeapRecordOffset(const uint8_t* page, uint32_t page_size,
                          uint16_t slot) {
  const uint8_t* dir = page + page_size - (slot + 1u) * kHeapSlotSize;
  uint16_t off;
  std::memcpy(&off, dir, 2);
  return off;
}

// DmNode flat encoding: 6 i64 links, then x, y, z, e_low, e_high
// doubles, then u32 connection count, then i64 connection ids.
constexpr uint32_t kNodeELowOff = 6 * 8 + 3 * 8;
constexpr uint32_t kNodeEHighOff = kNodeELowOff + 8;
constexpr uint32_t kNodeConnCountOff = 6 * 8 + 5 * 8;
constexpr uint32_t kNodeConnOff = kNodeConnCountOff + 4;

/// Finds a record to corrupt: an internal (non-root) node with a
/// non-empty interval and at least one connection. Returns its rid.
RecordId FindVictim(const DmStore& store, DmNode* out) {
  std::vector<uint64_t> rids;
  EXPECT_TRUE(store.rtree()
                  .RangeQuery(Box::Of(-1e30, -1e30, -1e30, 1e30, 1e30, 1e30),
                              &rids)
                  .ok());
  for (uint64_t packed : rids) {
    const RecordId rid = RecordId::Unpack(packed);
    auto node_or = store.FetchNode(rid);
    EXPECT_TRUE(node_or.ok());
    const DmNode& n = node_or.value();
    if (!n.is_leaf() && n.parent != kInvalidVertex && n.e_low < n.e_high &&
        !n.connections.empty()) {
      *out = n;
      return rid;
    }
  }
  ADD_FAILURE() << "no suitable victim record";
  return RecordId{};
}

/// Overwrites `len` bytes at `offset` inside the record at `rid`,
/// through the buffer pool so the next audit reads the change.
void PatchRecord(DbEnv* env, RecordId rid, uint32_t offset,
                 const void* bytes, size_t len) {
  auto page_or = env->pool().Fetch(rid.page);
  ASSERT_TRUE(page_or.ok());
  PageGuard page = std::move(page_or).value();
  const uint32_t rec_off =
      HeapRecordOffset(page.data(), env->page_size(), rid.slot);
  std::memcpy(page.data() + rec_off + offset, bytes, len);
  page.MarkDirty();
}

// ---- known-good stores ---------------------------------------------

TEST(InvariantsTest, FreshStorePassesStructuralAudit) {
  TestStore ts = MakeStore("inv_good");
  auto report_or = VerifyDmStore(*ts.store);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  const InvariantReport& report = report_or.value();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.nodes_checked, ts.scene.tree.num_nodes());
  EXPECT_GT(report.connections_checked, 0);
  EXPECT_GT(report.rtree_nodes_checked, 1);
}

TEST(InvariantsTest, FreshCompressedStorePassesStructuralAudit) {
  TestStore ts = MakeStore("inv_good_comp", /*compressed=*/true);
  auto report_or = VerifyDmStore(*ts.store);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  EXPECT_TRUE(report_or.value().ok()) << report_or.value().ToString();
}

TEST(InvariantsTest, ConnectionListsAreExactAgainstBruteForce) {
  // The paper's exactness claim, machine-checked: the contraction-pass
  // connection lists must equal an independent brute-force
  // recomputation from base-mesh edges and ancestor chains.
  TestStore ts = MakeStore("inv_exact");
  auto report_or =
      VerifyDmStoreAgainstSource(*ts.store, ts.scene.base, ts.scene.tree);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  EXPECT_TRUE(report_or.value().ok()) << report_or.value().ToString();
}

TEST(InvariantsTest, ReportToStringMentionsEvidence) {
  TestStore ts = MakeStore("inv_tostring");
  auto report_or = VerifyDmStore(*ts.store);
  ASSERT_TRUE(report_or.ok());
  const std::string text = report_or.value().ToString();
  EXPECT_NE(text.find("all invariants hold"), std::string::npos) << text;
  EXPECT_NE(text.find("nodes"), std::string::npos) << text;
}

// ---- corruption injection ------------------------------------------

TEST(InvariantsTest, DetectsSwappedLodInterval) {
  TestStore ts = MakeStore("inv_swap_lod");
  DmNode victim;
  const RecordId rid = FindVictim(*ts.store, &victim);
  ASSERT_TRUE(rid.valid());

  // Swap e_low and e_high in place: the interval inverts, and the
  // parent-abutment equality breaks.
  double e_low;
  double e_high;
  {
    auto page_or = ts.env->pool().Fetch(rid.page);
    ASSERT_TRUE(page_or.ok());
    PageGuard page = std::move(page_or).value();
    const uint32_t rec_off =
        HeapRecordOffset(page.data(), ts.env->page_size(), rid.slot);
    std::memcpy(&e_low, page.data() + rec_off + kNodeELowOff, 8);
    std::memcpy(&e_high, page.data() + rec_off + kNodeEHighOff, 8);
  }
  ASSERT_LT(e_low, e_high);
  PatchRecord(ts.env.get(), rid, kNodeELowOff, &e_high, 8);
  PatchRecord(ts.env.get(), rid, kNodeEHighOff, &e_low, 8);

  auto report_or = VerifyDmStore(*ts.store);
  ASSERT_TRUE(report_or.ok());
  const InvariantReport& report = report_or.value();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(Violates(report, kInvariantLodInterval)) << report.ToString();
}

TEST(InvariantsTest, DetectsStaleConnectionListEntry) {
  TestStore ts = MakeStore("inv_stale_conn");
  DmNode victim;
  const RecordId rid = FindVictim(*ts.store, &victim);
  ASSERT_TRUE(rid.valid());

  // Redirect the first connection entry to the node itself — a stale
  // id that can never be a legal similar-LOD connection.
  const int64_t stale = victim.id;
  PatchRecord(ts.env.get(), rid, kNodeConnOff, &stale, 8);

  auto report_or = VerifyDmStore(*ts.store);
  ASSERT_TRUE(report_or.ok());
  const InvariantReport& report = report_or.value();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(Violates(report, kInvariantConnectionList))
      << report.ToString();

  // The ground-truth audit flags it as an exactness failure too.
  auto deep_or =
      VerifyDmStoreAgainstSource(*ts.store, ts.scene.base, ts.scene.tree);
  ASSERT_TRUE(deep_or.ok());
  EXPECT_TRUE(Violates(deep_or.value(), kInvariantConnectionExact))
      << deep_or.value().ToString();
}

TEST(InvariantsTest, DetectsBadRTreeMbb) {
  TestStore ts = MakeStore("inv_bad_mbb");
  // Root page layout: [level u16][count u16][pad u32], then 56-byte
  // entries (box lo 3 x f64, box hi 3 x f64, payload u64). Shrink the
  // first entry's hi_x: the child MBB (tight by construction) no
  // longer fits inside the parent entry.
  const PageId root = ts.store->meta().rtree_root;
  auto page_or = ts.env->pool().Fetch(root);
  ASSERT_TRUE(page_or.ok());
  PageGuard page = std::move(page_or).value();
  uint16_t level;
  std::memcpy(&level, page.data(), 2);
  ASSERT_GT(level, 0) << "test store too small for an internal root";
  double lo_x;
  double hi_x;
  std::memcpy(&lo_x, page.data() + 8, 8);
  std::memcpy(&hi_x, page.data() + 8 + 24, 8);
  ASSERT_LT(lo_x, hi_x);
  const double shrunk = lo_x + (hi_x - lo_x) * 0.5;
  std::memcpy(page.data() + 8 + 24, &shrunk, 8);
  page.MarkDirty();
  page.Release();

  auto report_or = VerifyDmStore(*ts.store);
  ASSERT_TRUE(report_or.ok());
  const InvariantReport& report = report_or.value();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(Violates(report, kInvariantRTreeMbb)) << report.ToString();
}

TEST(InvariantsTest, DetectsLeakedPin) {
  TestStore ts = MakeStore("inv_pin_leak");
  // Hold a guard across the audit: the quiescence check must see the
  // pinned frame.
  auto page_or = ts.env->pool().Fetch(ts.store->meta().heap_first);
  ASSERT_TRUE(page_or.ok());
  PageGuard leaked = std::move(page_or).value();

  auto report_or = VerifyDmStore(*ts.store);
  ASSERT_TRUE(report_or.ok());
  EXPECT_TRUE(Violates(report_or.value(), kInvariantPinBalance))
      << report_or.value().ToString();
  leaked.Release();

  // Once released, the same store audits clean again.
  auto clean_or = VerifyDmStore(*ts.store);
  ASSERT_TRUE(clean_or.ok());
  EXPECT_TRUE(clean_or.value().ok()) << clean_or.value().ToString();
}

TEST(InvariantsTest, ViolationCapKeepsReportsBounded) {
  TestStore ts = MakeStore("inv_cap");
  DmNode victim;
  const RecordId rid = FindVictim(*ts.store, &victim);
  ASSERT_TRUE(rid.valid());
  const int64_t stale = victim.id;
  PatchRecord(ts.env.get(), rid, kNodeConnOff, &stale, 8);

  InvariantOptions options;
  options.max_violations_per_invariant = 1;
  auto report_or = VerifyDmStore(*ts.store, options);
  ASSERT_TRUE(report_or.ok());
  const InvariantReport& report = report_or.value();
  EXPECT_FALSE(report.ok());
  int64_t conn_violations = 0;
  for (const InvariantViolation& v : report.violations) {
    if (v.invariant == kInvariantConnectionList) ++conn_violations;
  }
  EXPECT_LE(conn_violations, 1);

  // A non-positive cap (e.g. from unparseable CLI input) must not
  // suppress all evidence: a failing report always records at least
  // one violation per invariant.
  options.max_violations_per_invariant = 0;
  auto zero_or = VerifyDmStore(*ts.store, options);
  ASSERT_TRUE(zero_or.ok());
  EXPECT_FALSE(zero_or.value().ok());
  EXPECT_FALSE(zero_or.value().violations.empty());
}

}  // namespace
}  // namespace dm
