#include <gtest/gtest.h>

#include <set>

#include "common/geometry.h"
#include "common/hilbert.h"
#include "common/rng.h"
#include "common/status.h"

namespace dm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("missing page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing page 7");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::IOError("disk gone"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kIOError);
}

TEST(ResultTest, MacrosPropagate) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("nope");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    DM_ASSIGN_OR_RETURN(const int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(outer(false).value(), 14);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(RectTest, EmptyAndArea) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Area(), 0.0);
  r.ExpandToInclude(1, 2);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.Area(), 0.0);  // degenerate point
  r.ExpandToInclude(3, 6);
  EXPECT_EQ(r.Area(), 8.0);
  EXPECT_EQ(r.Margin(), 6.0);
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect a = Rect::Of(0, 0, 10, 10);
  const Rect b = Rect::Of(2, 2, 5, 5);
  const Rect c = Rect::Of(9, 9, 15, 15);
  const Rect d = Rect::Of(11, 11, 12, 12);
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(d));
  EXPECT_TRUE(a.Contains(10.0, 10.0));  // inclusive edges
  const Rect i = a.Intersection(c);
  EXPECT_EQ(i.lo_x, 9.0);
  EXPECT_EQ(i.hi_x, 10.0);
  EXPECT_TRUE(a.Intersection(d).empty());
}

TEST(BoxTest, VolumeAndIntersection) {
  const Box a = Box::Of(0, 0, 0, 4, 5, 2);
  EXPECT_EQ(a.Volume(), 40.0);
  EXPECT_EQ(a.Margin(), 11.0);
  const Box b = Box::Of(2, 2, 1, 9, 9, 9);
  const Box i = a.Intersection(b);
  EXPECT_EQ(i.Volume(), 2.0 * 3.0 * 1.0);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(Box::Of(5, 0, 0, 6, 1, 1)));
  EXPECT_TRUE(a.Intersects(Box::Of(4, 0, 0, 6, 1, 1)));  // touching
}

TEST(BoxTest, FromRectAndContains) {
  const Box b = Box::FromRect(Rect::Of(0, 0, 10, 10), 1.0, 2.0);
  EXPECT_TRUE(b.Contains(5, 5, 1.5));
  EXPECT_FALSE(b.Contains(5, 5, 2.5));
  EXPECT_TRUE(b.Contains(Box::FromPoint(0, 0, 1)));
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    const int64_t k = rng.UniformInt(-5, 5);
    EXPECT_GE(k, -5);
    EXPECT_LE(k, 5);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  double sum = 0;
  double sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(HilbertTest, IsABijectionOnSmallGrids) {
  const uint32_t order = 4;  // 16x16
  std::set<uint64_t> seen;
  for (uint32_t y = 0; y < 16; ++y) {
    for (uint32_t x = 0; x < 16; ++x) {
      const uint64_t d = HilbertIndex(order, x, y);
      EXPECT_LT(d, 256u);
      EXPECT_TRUE(seen.insert(d).second) << "duplicate at " << x << "," << y;
      uint32_t rx;
      uint32_t ry;
      HilbertPoint(order, d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreAdjacentCells) {
  const uint32_t order = 5;
  uint32_t px;
  uint32_t py;
  HilbertPoint(order, 0, &px, &py);
  for (uint64_t d = 1; d < 1024; ++d) {
    uint32_t x;
    uint32_t y;
    HilbertPoint(order, d, &x, &y);
    const uint32_t dist = (x > px ? x - px : px - x) +
                          (y > py ? y - py : py - y);
    EXPECT_EQ(dist, 1u) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, UnitKeyClamps) {
  EXPECT_EQ(HilbertKeyUnit(-1.0, -5.0), HilbertKeyUnit(0.0, 0.0));
  EXPECT_EQ(HilbertKeyUnit(2.0, 7.0), HilbertKeyUnit(0.999999999, 0.999999999));
}

TEST(GeometryTest, VectorOps) {
  const Point3 a{1, 0, 0};
  const Point3 b{0, 1, 0};
  EXPECT_EQ(Dot(a, b), 0.0);
  const Point3 c = Cross(a, b);
  EXPECT_EQ(c.z, 1.0);
  EXPECT_EQ(Norm(Point3{3, 4, 0}), 5.0);
  EXPECT_EQ(DistanceXY(Point3{0, 0, 99}, Point3{3, 4, -1}), 5.0);
}

}  // namespace
}  // namespace dm
