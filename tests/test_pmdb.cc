#include "baseline/pmdb/pmdb_query.h"

#include <gtest/gtest.h>

#include <set>

#include "mesh/validate.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::OpenTempEnv;
using testing::Scene;

class PmDbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scene_ = new Scene(MakeScene(33));
    env_ = OpenTempEnv("pmdb").release();
    auto store_or = PmDbStore::Build(env_, scene_->tree);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    store_ = new PmDbStore(std::move(store_or).value());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete env_;
    delete scene_;
  }
  static Rect Roi(double f0x, double f0y, double f1x, double f1y) {
    const Rect b = scene_->tree.bounds();
    return Rect::Of(b.lo_x + f0x * b.width(), b.lo_y + f0y * b.height(),
                    b.lo_x + f1x * b.width(), b.lo_y + f1y * b.height());
  }
  static Scene* scene_;
  static DbEnv* env_;
  static PmDbStore* store_;
};
Scene* PmDbTest::scene_ = nullptr;
DbEnv* PmDbTest::env_ = nullptr;
PmDbStore* PmDbTest::store_ = nullptr;

TEST_F(PmDbTest, NodeCodecRoundTrip) {
  PmDbNode n;
  n.id = 99;
  n.pos = Point3{1, 2, 3};
  n.e_low = 0.25;
  n.e_high = 1.5;
  n.parent = 7;
  n.child1 = 1;
  n.child2 = 2;
  n.wing1 = 3;
  n.wing2 = kInvalidVertex;
  n.footprint = Rect::Of(-1, -2, 3, 4);
  std::vector<uint8_t> buf;
  n.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), PmDbNode::kEncodedSize);
  auto d_or = PmDbNode::Decode(buf.data(), static_cast<uint32_t>(buf.size()));
  ASSERT_TRUE(d_or.ok());
  const PmDbNode& d = d_or.value();
  EXPECT_EQ(d.id, n.id);
  EXPECT_EQ(d.wing2, kInvalidVertex);
  EXPECT_EQ(d.footprint.hi_y, 4.0);
}

TEST_F(PmDbTest, FetchNodeByIdFindsEveryNode) {
  for (VertexId id = 0; id < scene_->tree.num_nodes(); id += 101) {
    auto n_or = store_->FetchNodeById(id);
    ASSERT_TRUE(n_or.ok()) << id;
    EXPECT_EQ(n_or.value().id, id);
    EXPECT_EQ(n_or.value().pos, scene_->tree.node(id).pos);
  }
  EXPECT_FALSE(store_->FetchNodeById(scene_->tree.num_nodes() + 5).ok());
}

TEST_F(PmDbTest, UniformQueryMatchesSelectiveRefinement) {
  PmQueryProcessor proc(store_);
  const Rect roi = Roi(0.15, 0.2, 0.85, 0.75);
  for (double frac : {0.02, 0.1, 0.4}) {
    const double e = frac * scene_->tree.max_lod();
    auto r_or = proc.Uniform(roi, e);
    ASSERT_TRUE(r_or.ok()) << r_or.status().ToString();
    const auto expected = scene_->tree.SelectiveRefine(roi, e);
    EXPECT_EQ(r_or.value().vertices, expected) << "e = " << e;
  }
}

TEST_F(PmDbTest, ViewDependentMatchesSelectiveRefinement) {
  PmQueryProcessor proc(store_);
  const Rect roi = Roi(0.1, 0.1, 0.9, 0.9);
  ViewQuery q;
  q.roi = roi;
  q.e_min = 0.01 * scene_->tree.max_lod();
  q.e_max = 0.5 * scene_->tree.max_lod();
  auto r_or = proc.ViewDependent(q);
  ASSERT_TRUE(r_or.ok());
  const auto expected = scene_->tree.SelectiveRefineView(
      roi, [&](const Point3& p) { return q.RequiredE(p.x, p.y); });
  EXPECT_EQ(r_or.value().vertices, expected);
}

TEST_F(PmDbTest, QueryCountsIndividualFetches) {
  PmQueryProcessor proc(store_);
  ASSERT_TRUE(env_->FlushAll().ok());
  auto r_or = proc.Uniform(Roi(0.2, 0.2, 0.8, 0.8),
                           0.05 * scene_->tree.max_lod());
  ASSERT_TRUE(r_or.ok());
  const QueryStats& s = r_or.value().stats;
  EXPECT_GT(s.disk_accesses, 0);
  EXPECT_GT(s.refinement_splits, 0);
  // The baseline must be fetching the above-cut subtree plus the cut:
  // strictly more records than the final mesh has vertices.
  EXPECT_GT(s.nodes_fetched,
            static_cast<int64_t>(r_or.value().vertices.size()));
}

TEST_F(PmDbTest, MeshIsReasonableTriangulation) {
  PmQueryProcessor proc(store_);
  auto r_or = proc.Uniform(Roi(0.0, 0.0, 1.0, 1.0),
                           0.1 * scene_->tree.max_lod());
  ASSERT_TRUE(r_or.ok());
  const PmQueryResult& r = r_or.value();
  EXPECT_GT(r.triangles.size(), r.vertices.size() / 2);
  const MeshStats stats = ComputeMeshStats(r.vertices, r.positions,
                                           r.triangles);
  EXPECT_EQ(stats.duplicate_triangles, 0);
}

}  // namespace
}  // namespace dm
