// End-to-end checks of the paper's headline comparisons on a small
// dataset: DM must beat the PM baseline on disk accesses, the
// multi-base optimization must not lose to single-base on steep query
// planes, and all methods must agree on what terrain they return.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <set>

#include "workload/bench_context.h"

namespace dm {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string("/tmp/dm_integration_" +
                           std::to_string(::getpid()));
    ::mkdir(dir_->c_str(), 0755);
    DatasetSpec spec;
    spec.name = "integ";
    spec.side = 65;
    spec.seed = 77;
    spec.crater = true;
    auto ctx_or = BenchContext::Create(*dir_, spec);
    ASSERT_TRUE(ctx_or.ok()) << ctx_or.status().ToString();
    ctx_ = new BenchContext(std::move(ctx_or).value());
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete dir_;
  }
  static std::string* dir_;
  static BenchContext* ctx_;
};
std::string* IntegrationTest::dir_ = nullptr;
BenchContext* IntegrationTest::ctx_ = nullptr;

TEST_F(IntegrationTest, DmBeatsPmOnUniformQueriesOnAverage) {
  const auto rois = ctx_->SampleRois(0.1, 8);
  const double e = ctx_->dataset().mean_lod;
  double dm = 0;
  double pm = 0;
  for (const Rect& roi : rois) {
    dm += static_cast<double>(
        std::move(ctx_->RunUniform(Method::kDmSingleBase, roi, e))
            .ValueOrDie()
            .disk_accesses);
    pm += static_cast<double>(
        std::move(ctx_->RunUniform(Method::kPm, roi, e))
            .ValueOrDie()
            .disk_accesses);
  }
  EXPECT_LT(dm, pm) << "DM should beat the PM baseline (paper Fig. 6)";
}

TEST_F(IntegrationTest, DmBeatsPmOnViewDependentQueries) {
  const auto rois = ctx_->SampleRois(0.15, 6);
  double dm_sb = 0;
  double dm_mb = 0;
  double pm = 0;
  for (const Rect& roi : rois) {
    const ViewQuery q = ViewQuery::FromAngle(
        roi, 0.01 * ctx_->dataset().max_lod, 0.5, ctx_->dataset().max_lod);
    dm_sb += static_cast<double>(
        std::move(ctx_->RunView(Method::kDmSingleBase, q))
            .ValueOrDie()
            .disk_accesses);
    dm_mb += static_cast<double>(
        std::move(ctx_->RunView(Method::kDmMultiBase, q))
            .ValueOrDie()
            .disk_accesses);
    pm += static_cast<double>(std::move(ctx_->RunView(Method::kPm, q))
                                  .ValueOrDie()
                                  .disk_accesses);
  }
  EXPECT_LT(dm_sb, pm) << "single-base must beat PM (paper Fig. 8)";
  EXPECT_LE(dm_mb, dm_sb * 1.05)
      << "multi-base must not lose to single-base";
}

TEST_F(IntegrationTest, DiskAccessesGrowWithRoiForAllMethods) {
  const double e = ctx_->dataset().mean_lod;
  for (Method m : {Method::kDmSingleBase, Method::kPm, Method::kHdov}) {
    double prev = 0;
    for (double frac : {0.02, 0.1, 0.3}) {
      const auto rois = ctx_->SampleRois(frac, 5);
      double total = 0;
      for (const Rect& roi : rois) {
        total += static_cast<double>(std::move(ctx_->RunUniform(m, roi, e))
                                         .ValueOrDie()
                                         .disk_accesses);
      }
      EXPECT_GE(total, prev * 0.8) << MethodName(m) << " at " << frac;
      prev = total;
    }
  }
}

TEST_F(IntegrationTest, DiskAccessesShrinkWithCoarserLod) {
  const auto rois = ctx_->SampleRois(0.15, 5);
  for (Method m : {Method::kDmSingleBase, Method::kPm}) {
    double fine = 0;
    double coarse = 0;
    for (const Rect& roi : rois) {
      fine += static_cast<double>(
          std::move(ctx_->RunUniform(m, roi, 0.02 * ctx_->dataset().max_lod))
              .ValueOrDie()
              .disk_accesses);
      coarse += static_cast<double>(
          std::move(ctx_->RunUniform(m, roi, 0.6 * ctx_->dataset().max_lod))
              .ValueOrDie()
              .disk_accesses);
    }
    EXPECT_LT(coarse, fine) << MethodName(m);
  }
}

TEST_F(IntegrationTest, SimilarLodListsAreSmall) {
  // Section 4's design premise at our scale: similar-LOD connection
  // lists stay around a dozen entries while the full closure blows up.
  const ConnectivityStats& s = ctx_->dataset().conn_stats;
  EXPECT_GT(s.avg_similar_lod, 4.0);
  EXPECT_LT(s.avg_similar_lod, 30.0);
  EXPECT_GT(s.avg_total_connections, s.avg_similar_lod * 2);
}

TEST_F(IntegrationTest, ThetaMaxAngleSweepIsMonotoneForSingleBase) {
  const Rect roi = ctx_->SampleRois(0.15, 1)[0];
  const double e_min = 0.01 * ctx_->dataset().max_lod;
  double prev = -1;
  for (double frac : {0.2, 0.5, 0.8}) {
    const ViewQuery q =
        ViewQuery::FromAngle(roi, e_min, frac, ctx_->dataset().max_lod);
    const auto stats =
        std::move(ctx_->RunView(Method::kDmSingleBase, q)).ValueOrDie();
    // Larger angle => taller cube => at least as much data (paper
    // Fig. 8(c)/(f): "performance of the DM decreases as the angle
    // increases").
    EXPECT_GE(static_cast<double>(stats.disk_accesses), prev);
    prev = static_cast<double>(stats.disk_accesses);
  }
}

}  // namespace
}  // namespace dm
