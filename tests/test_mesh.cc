#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "mesh/adjacency.h"
#include "mesh/delaunay.h"
#include "mesh/extract.h"
#include "mesh/obj_io.h"
#include "mesh/render.h"
#include "mesh/triangle_mesh.h"
#include "mesh/validate.h"
#include "test_util.h"

namespace dm {
namespace {

TEST(TriangulateDemTest, CountsMatchGrid) {
  DemGrid g(5, 4);
  const TriangleMesh mesh = TriangulateDem(g);
  EXPECT_EQ(mesh.num_vertices(), 20);
  EXPECT_EQ(mesh.num_triangles(), 2 * 4 * 3);
}

TEST(TriangulateDemTest, TrianglesAreCcwAndValid) {
  const DemGrid g = GenerateFractalDem({.side = 17, .seed = 2});
  const TriangleMesh mesh = TriangulateDem(g);
  for (const Triangle& t : mesh.triangles()) {
    const Point3& a = mesh.vertex(t[0]);
    const Point3& b = mesh.vertex(t[1]);
    const Point3& c = mesh.vertex(t[2]);
    const double cross =
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    EXPECT_GT(cross, 0.0);
  }
}

TEST(TriangulateDemTest, IsATriangulatedDisk) {
  const DemGrid g = GenerateFractalDem({.side = 9, .seed = 2});
  const TriangleMesh mesh = TriangulateDem(g);
  std::vector<VertexId> ids(static_cast<size_t>(mesh.num_vertices()));
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<VertexId>(i);
  const MeshStats stats =
      ComputeMeshStats(ids, mesh.vertices(), mesh.triangles());
  EXPECT_TRUE(stats.IsManifold()) << stats.ToString();
  // Euler characteristic of a disk (triangles only): V - E + F = 1.
  EXPECT_EQ(stats.euler_characteristic, 1);
}

TEST(AdjacencyMeshTest, BuildsSymmetricAdjacency) {
  DemGrid g(3, 3);
  const TriangleMesh mesh = TriangulateDem(g);
  AdjacencyMesh adj(mesh);
  EXPECT_EQ(adj.num_alive(), 9);
  for (VertexId u = 0; u < 9; ++u) {
    for (VertexId v : adj.neighbors(u)) {
      EXPECT_TRUE(adj.HasEdge(v, u));
    }
  }
  // Grid corner has 2 or 3 neighbours depending on the diagonal.
  EXPECT_GE(adj.neighbors(0).size(), 2u);
}

TEST(AdjacencyMeshTest, CollapseRewiresNeighbourhood) {
  DemGrid g(3, 3);
  const TriangleMesh mesh = TriangulateDem(g);
  AdjacencyMesh adj(mesh);
  const VertexId u = 4;  // center
  const VertexId v = adj.neighbors(u)[0];
  ASSERT_TRUE(adj.CanCollapse(u, v));
  const auto commons = adj.CommonNeighbors(u, v);
  const CollapseRecord rec = adj.Collapse(u, v, Point3{1, 1, 0});
  EXPECT_EQ(rec.child1, u);
  EXPECT_EQ(rec.child2, v);
  EXPECT_FALSE(adj.IsAlive(u));
  EXPECT_FALSE(adj.IsAlive(v));
  EXPECT_TRUE(adj.IsAlive(rec.parent));
  EXPECT_EQ(adj.num_alive(), 8);
  // Wings recorded from the common neighbours.
  if (!commons.empty()) {
    EXPECT_EQ(rec.wing1, commons[0]);
  }
  // Parent adopted the union neighbourhood.
  for (VertexId n : adj.neighbors(rec.parent)) {
    EXPECT_TRUE(adj.IsAlive(n));
    EXPECT_TRUE(adj.HasEdge(n, rec.parent));
  }
}

TEST(AdjacencyMeshTest, CanCollapseRespectsLinkCondition) {
  // Build K4: every pair shares the other two vertices, commons == 2,
  // still collapsible; then a configuration with 3 commons is not.
  std::vector<Point3> pts{{0, 0, 0}, {2, 0, 0}, {1, 2, 0}, {1, 0.7, 0},
                          {1, -1, 0}};
  AdjacencyMesh adj(std::move(pts));
  // Triangle 0-1-2 with 3 inside connected to all, plus 4 below edge
  // 0-1 connected to 0 and 1.
  adj.AddEdge(0, 1);
  adj.AddEdge(1, 2);
  adj.AddEdge(2, 0);
  adj.AddEdge(3, 0);
  adj.AddEdge(3, 1);
  adj.AddEdge(3, 2);
  adj.AddEdge(4, 0);
  adj.AddEdge(4, 1);
  // Edge (0,1) now has commons {2, 3, 4}: blocked.
  EXPECT_EQ(adj.CommonNeighbors(0, 1).size(), 3u);
  EXPECT_FALSE(adj.CanCollapse(0, 1));
  // Edge (0,2) has commons {1, 3}: allowed.
  EXPECT_TRUE(adj.CanCollapse(0, 2));
  // ContractUnchecked works regardless.
  const CollapseRecord rec = adj.ContractUnchecked(0, 1, Point3{1, 0, 0});
  EXPECT_TRUE(adj.IsAlive(rec.parent));
  EXPECT_EQ(adj.CommonNeighbors(rec.parent, 2).size(), 1u);
}

TEST(ExtractTrianglesTest, RecoversGridFaces) {
  const DemGrid g = GenerateFractalDem({.side = 7, .seed = 9});
  const TriangleMesh mesh = TriangulateDem(g);
  AdjacencyMesh adj(mesh);

  GraphView view;
  view.position = [&](VertexId v) { return adj.position(v); };
  view.neighbors = [&](VertexId v) -> const std::vector<VertexId>& {
    return adj.neighbors(v);
  };
  const auto tris = ExtractTriangles(adj.AliveVertices(), view);
  EXPECT_EQ(static_cast<int64_t>(tris.size()), mesh.num_triangles());

  std::set<std::array<VertexId, 3>> expected;
  for (Triangle t : mesh.triangles()) {
    std::sort(t.v.begin(), t.v.end());
    expected.insert(t.v);
  }
  for (Triangle t : tris) {
    std::sort(t.v.begin(), t.v.end());
    EXPECT_TRUE(expected.count(t.v));
  }
}

TEST(ExtractTrianglesTest, InteriorPointSuppressesOuterTriangle) {
  // u=0 smallest id; w=1 sits inside triangle (0, 2, 3) and connects
  // to all corners: the big triangle must NOT be reported.
  std::vector<Point3> pts{{0, 0, 0}, {1, 0.5, 0}, {3, 0, 0}, {1.5, 3, 0}};
  AdjacencyMesh adj(std::move(pts));
  adj.AddEdge(0, 2);
  adj.AddEdge(2, 3);
  adj.AddEdge(3, 0);
  adj.AddEdge(1, 0);
  adj.AddEdge(1, 2);
  adj.AddEdge(1, 3);
  GraphView view;
  view.position = [&](VertexId v) { return adj.position(v); };
  view.neighbors = [&](VertexId v) -> const std::vector<VertexId>& {
    return adj.neighbors(v);
  };
  const auto tris = ExtractTriangles(adj.AliveVertices(), view);
  EXPECT_EQ(tris.size(), 3u);
  for (Triangle t : tris) {
    std::sort(t.v.begin(), t.v.end());
    EXPECT_EQ(t.v[0] == 0 && t.v[1] == 2 && t.v[2] == 3, false)
        << "outer triangle wrongly reported";
  }
}

TEST(MeshStatsTest, FlagsNonManifoldAndDuplicates) {
  std::vector<VertexId> ids{0, 1, 2, 3};
  std::vector<Point3> pos{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 5}};
  std::vector<Triangle> tris{Triangle{{0, 1, 2}}, Triangle{{0, 1, 2}},
                             Triangle{{0, 1, 3}}, Triangle{{2, 1, 3}}};
  const MeshStats stats = ComputeMeshStats(ids, pos, tris);
  EXPECT_EQ(stats.duplicate_triangles, 1);
  EXPECT_GT(stats.nonmanifold_edges, 0);
  EXPECT_FALSE(stats.IsManifold());
}

TEST(ObjIoTest, WritesValidObj) {
  const DemGrid g = GenerateFractalDem({.side = 5, .seed = 1});
  const TriangleMesh mesh = TriangulateDem(g);
  const std::string path = dm::testing::TempDbPath("obj");
  ASSERT_TRUE(WriteObj(mesh, path).ok());
  // Count v/f lines.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  int64_t vs = 0;
  int64_t fs = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == 'v') ++vs;
    if (line[0] == 'f') ++fs;
  }
  std::fclose(f);
  EXPECT_EQ(vs, mesh.num_vertices());
  EXPECT_EQ(fs, mesh.num_triangles());
  std::remove(path.c_str());
}

TEST(ObjIoTest, RejectsUnknownVertexReference) {
  std::vector<VertexId> ids{10, 20};
  std::vector<Point3> pos{{0, 0, 0}, {1, 0, 0}};
  std::vector<Triangle> tris{Triangle{{10, 20, 99}}};
  const std::string path = dm::testing::TempDbPath("obj_bad");
  EXPECT_FALSE(WriteObj(ids, pos, tris, path).ok());
  std::remove(path.c_str());
}


TEST(DelaunayTest, TriangulatesASquare) {
  std::vector<Point3> pts{{0, 0, 1}, {1, 0, 2}, {1, 1, 3}, {0, 1, 4}};
  auto mesh_or = DelaunayTriangulate(pts);
  ASSERT_TRUE(mesh_or.ok()) << mesh_or.status().ToString();
  const TriangleMesh& mesh = mesh_or.value();
  EXPECT_EQ(mesh.num_vertices(), 4);
  EXPECT_EQ(mesh.num_triangles(), 2);
  // z carried through untouched.
  EXPECT_EQ(mesh.vertex(2).z, 3.0);
}

TEST(DelaunayTest, RejectsDegenerateInput) {
  EXPECT_FALSE(DelaunayTriangulate({{0, 0, 0}, {1, 1, 0}}).ok());
  EXPECT_FALSE(
      DelaunayTriangulate({{0, 0, 0}, {1, 1, 0}, {0, 0, 5}, {2, 2, 0}})
          .ok());  // duplicate footprint
}

TEST(DelaunayTest, OutputIsDelaunayAndManifold) {
  Rng rng(77);
  std::vector<Point3> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(Point3{rng.Uniform(0, 100), rng.Uniform(0, 100),
                         rng.Uniform(0, 50)});
  }
  auto mesh_or = DelaunayTriangulate(pts);
  ASSERT_TRUE(mesh_or.ok());
  const TriangleMesh& mesh = mesh_or.value();
  EXPECT_EQ(mesh.num_vertices(), 300);

  // Structural validity: manifold triangulated disk over the hull.
  std::vector<VertexId> ids(300);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<VertexId>(i);
  const MeshStats stats =
      ComputeMeshStats(ids, mesh.vertices(), mesh.triangles());
  EXPECT_TRUE(stats.IsManifold()) << stats.ToString();
  EXPECT_EQ(stats.euler_characteristic, 1);

  // Empty circumcircle property against a sample of points.
  int checked = 0;
  for (size_t t = 0; t < mesh.triangles().size(); t += 17) {
    const Triangle& tri = mesh.triangles()[t];
    for (size_t p = 0; p < pts.size(); p += 11) {
      const VertexId pid = static_cast<VertexId>(p);
      if (pid == tri[0] || pid == tri[1] || pid == tri[2]) continue;
      EXPECT_FALSE(InCircumcircle(mesh.vertex(tri[0]), mesh.vertex(tri[1]),
                                  mesh.vertex(tri[2]), mesh.vertex(pid)))
          << "triangle " << t << " violates Delaunay vs point " << p;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(DelaunayTest, CcwOrientationThroughout) {
  Rng rng(78);
  std::vector<Point3> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back(Point3{rng.Uniform(0, 10), rng.Uniform(0, 10), 0});
  }
  auto mesh_or = DelaunayTriangulate(pts);
  ASSERT_TRUE(mesh_or.ok());
  for (const Triangle& t : mesh_or.value().triangles()) {
    const Point3& a = mesh_or.value().vertex(t[0]);
    const Point3& b = mesh_or.value().vertex(t[1]);
    const Point3& c = mesh_or.value().vertex(t[2]);
    EXPECT_GT((b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x), 0.0);
  }
}

TEST(DelaunayTest, IncircleOrientationSane) {
  const Point3 a{0, 0, 0};
  const Point3 b{2, 0, 0};
  const Point3 c{1, 2, 0};
  EXPECT_TRUE(InCircumcircle(a, b, c, Point3{1, 0.5, 0}));
  EXPECT_FALSE(InCircumcircle(a, b, c, Point3{10, 10, 0}));
}


TEST(RenderTest, WritesAValidPpm) {
  const DemGrid g = GenerateFractalDem({.side = 17, .seed = 3});
  const TriangleMesh mesh = TriangulateDem(g);
  std::vector<VertexId> ids(static_cast<size_t>(mesh.num_vertices()));
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<VertexId>(i);
  const std::string path = dm::testing::TempDbPath("ppm");
  RenderOptions opt;
  opt.width = 64;
  opt.height = 48;
  ASSERT_TRUE(RenderHillshade(ids, mesh.vertices(), mesh.triangles(), path,
                              opt)
                  .ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {0};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(std::string(magic), "P6");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  char header[64];
  const int header_len =
      std::snprintf(header, sizeof(header), "P6\n%d %d\n255\n", 64, 48);
  EXPECT_EQ(size, header_len + 64 * 48 * 3);
  std::remove(path.c_str());
}

TEST(RenderTest, CoversMostPixelsAndShadesSlopes) {
  const DemGrid g = GenerateFractalDem({.side = 33, .seed = 8});
  const TriangleMesh mesh = TriangulateDem(g);
  std::vector<VertexId> ids(static_cast<size_t>(mesh.num_vertices()));
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<VertexId>(i);
  const std::string path = dm::testing::TempDbPath("ppm2");
  ASSERT_TRUE(
      RenderHillshade(ids, mesh.vertices(), mesh.triangles(), path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  // Skip header (3 lines).
  char line[64];
  for (int i = 0; i < 3; ++i) ASSERT_NE(std::fgets(line, sizeof(line), f),
                                        nullptr);
  std::vector<uint8_t> px(512 * 512 * 3);
  ASSERT_EQ(std::fread(px.data(), 1, px.size(), f), px.size());
  std::fclose(f);
  int64_t lit = 0;
  std::set<uint8_t> reds;
  for (size_t i = 0; i < px.size(); i += 3) {
    if (px[i] + px[i + 1] + px[i + 2] > 0) ++lit;
    reds.insert(px[i]);
  }
  EXPECT_GT(lit, 512 * 512 * 9 / 10);  // terrain fills the frame
  EXPECT_GT(reds.size(), 16u);         // real shading variation
  std::remove(path.c_str());
}

TEST(RenderTest, RejectsBadInputs) {
  std::vector<VertexId> ids{0};
  std::vector<Point3> pos{{0, 0, 0}};
  EXPECT_FALSE(
      RenderHillshade(ids, pos, {Triangle{{0, 1, 2}}}, "/tmp/x.ppm").ok());
  RenderOptions opt;
  opt.width = 0;
  EXPECT_FALSE(RenderHillshade(ids, pos, {}, "/tmp/x.ppm", opt).ok());
}

}  // namespace
}  // namespace dm
