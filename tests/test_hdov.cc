#include "baseline/hdov/hdov_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::OpenTempEnv;
using testing::Scene;

class HdovTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scene_ = new Scene(MakeScene(65, /*seed=*/21, /*crater=*/true));
    // Small pages so that disk-access differences are measurable at
    // this dataset size.
    env_ = OpenTempEnv("hdov", DbOptions{.page_size = 512,
                                         .pool_pages = 4096})
               .release();
    HdovOptions opt;
    opt.grid_side = 16;
    opt.fanout = 16;
    auto t_or = HdovTree::Build(env_, scene_->base, scene_->tree, opt);
    ASSERT_TRUE(t_or.ok()) << t_or.status().ToString();
    tree_ = new HdovTree(std::move(t_or).value());
  }
  static void TearDownTestSuite() {
    delete tree_;
    delete env_;
    delete scene_;
  }
  static Scene* scene_;
  static DbEnv* env_;
  static HdovTree* tree_;
};
Scene* HdovTest::scene_ = nullptr;
DbEnv* HdovTest::env_ = nullptr;
HdovTree* HdovTest::tree_ = nullptr;

TEST_F(HdovTest, BuildProducesDirectory) {
  // 16x16 tile grid with fanout 16: 1 + 16 + 256 = 273 nodes.
  EXPECT_EQ(tree_->meta().num_nodes, 273);
}

TEST_F(HdovTest, CoarseQueryFetchesFewPointsFineFetchesMany) {
  const Rect roi = scene_->tree.bounds();
  auto coarse_or = tree_->Uniform(roi, scene_->tree.max_lod());
  auto fine_or = tree_->Uniform(roi, 0.0);
  ASSERT_TRUE(coarse_or.ok());
  ASSERT_TRUE(fine_or.ok());
  EXPECT_LT(coarse_or.value().vertices.size(),
            fine_or.value().vertices.size());
  // Full-resolution query returns (nearly) every original point —
  // leaves whose collapse had exactly zero error are represented by
  // their parent even at e = 0.
  EXPECT_GE(static_cast<int64_t>(fine_or.value().vertices.size()),
            scene_->tree.num_leaves() * 9 / 10);
  EXPECT_LE(static_cast<int64_t>(fine_or.value().vertices.size()),
            scene_->tree.num_leaves());
}

TEST_F(HdovTest, ResultsRespectTheRoi) {
  const Rect b = scene_->tree.bounds();
  const Rect roi = Rect::Of(b.lo_x + b.width() * 0.3,
                            b.lo_y + b.height() * 0.3,
                            b.lo_x + b.width() * 0.6,
                            b.lo_y + b.height() * 0.6);
  auto r_or = tree_->Uniform(roi, scene_->tree.mean_lod());
  ASSERT_TRUE(r_or.ok());
  ASSERT_FALSE(r_or.value().vertices.empty());
  for (const Point3& p : r_or.value().positions) {
    EXPECT_TRUE(roi.Contains(p.x, p.y));
  }
}

TEST_F(HdovTest, DiskAccessesGrowWithRoi) {
  const Rect b = scene_->tree.bounds();
  // Full resolution: QEM error scales are so skewed that even a small
  // percentage of the max LOD is already coarser than the root
  // approximation; e = 0 forces tile-level fetches, whose count must
  // scale with the ROI.
  const double e = 0.0;
  ASSERT_TRUE(env_->FlushAll().ok());
  auto small_or = tree_->Uniform(
      Rect::Of(b.lo_x, b.lo_y, b.lo_x + b.width() * 0.2,
               b.lo_y + b.height() * 0.2),
      e);
  ASSERT_TRUE(env_->FlushAll().ok());
  auto large_or = tree_->Uniform(b, e);
  ASSERT_TRUE(small_or.ok());
  ASSERT_TRUE(large_or.ok());
  EXPECT_LT(small_or.value().stats.disk_accesses,
            large_or.value().stats.disk_accesses);
}

TEST_F(HdovTest, ViewDependentFetchesLessThanUniformFine) {
  const Rect roi = scene_->tree.bounds();
  ViewQuery q;
  q.roi = roi;
  q.e_min = 0.0;  // full resolution at the viewer
  q.e_max = 0.8 * scene_->tree.max_lod();
  ASSERT_TRUE(env_->FlushAll().ok());
  auto vd_or = tree_->ViewDependent(
      q, Point2{(roi.lo_x + roi.hi_x) / 2, roi.lo_y});
  ASSERT_TRUE(vd_or.ok());
  ASSERT_TRUE(env_->FlushAll().ok());
  auto fine_or = tree_->Uniform(roi, q.e_min);
  ASSERT_TRUE(fine_or.ok());
  EXPECT_LT(vd_or.value().stats.disk_accesses,
            fine_or.value().stats.disk_accesses);
}

TEST_F(HdovTest, ReopensFromMeta) {
  auto reopened_or = HdovTree::Open(env_, tree_->meta());
  ASSERT_TRUE(reopened_or.ok());
  auto& reopened = reopened_or.value();
  const Rect roi = scene_->tree.bounds();
  auto a_or = tree_->Uniform(roi, scene_->tree.mean_lod());
  auto b_or = reopened.Uniform(roi, scene_->tree.mean_lod());
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  EXPECT_EQ(a_or.value().vertices.size(), b_or.value().vertices.size());
}

}  // namespace
}  // namespace dm
