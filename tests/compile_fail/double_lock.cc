// Negative-compile fixture: acquiring the same shard mutex twice in
// one scope must fail under -Werror=thread-safety (dm::Mutex is not
// recursive; a double acquire is a self-deadlock).
#include "common/thread_annotations.h"

namespace {

struct ShardLike {
  dm::Mutex mu;
  long hits DM_GUARDED_BY(mu) = 0;
};

long DoubleAcquire(ShardLike& s) {
  dm::MutexLock outer(s.mu);
  dm::MutexLock inner(s.mu);  // BAD: s.mu is already held
  return s.hits;
}

}  // namespace

int main() {
  ShardLike s;
  return static_cast<int>(DoubleAcquire(s));
}
