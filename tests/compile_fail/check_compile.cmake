# Test-time compile driver for the thread-safety fixtures. Invoked by
# ctest as
#
#   cmake -DCOMPILER=<c++> -DSRC=<file> -DINCLUDE_DIR=<repo>/src
#         -DEXTRA_FLAGS="-Wthread-safety;-Werror=thread-safety"
#         -DEXPECT=fail|ok -P check_compile.cmake
#
# EXPECT=fail additionally demands that the diagnostic actually comes
# from the thread-safety analysis — a fixture failing for any other
# reason (syntax error, missing header) is a broken fixture, not a
# passing test. Invoking the compiler directly (-fsyntax-only, no
# output) keeps the test hermetic and safe under `ctest -j`: nothing
# touches the shared build tree.

foreach(var COMPILER SRC INCLUDE_DIR EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_compile.cmake needs -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED EXTRA_FLAGS)
  set(EXTRA_FLAGS "")
endif()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only ${EXTRA_FLAGS}
          "-I${INCLUDE_DIR}" "${SRC}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "ok")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "expected ${SRC} to compile, but it failed (rc=${rc}):\n${err}")
  endif()
elseif(EXPECT STREQUAL "fail")
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "expected ${SRC} to be rejected by the thread-safety "
            "analysis, but it compiled — the annotations have no teeth")
  endif()
  if(NOT err MATCHES "thread-safety")
    message(FATAL_ERROR
            "${SRC} failed to compile, but not because of the "
            "thread-safety analysis — broken fixture?\n${err}")
  endif()
else()
  message(FATAL_ERROR "EXPECT must be 'ok' or 'fail', got '${EXPECT}'")
endif()
