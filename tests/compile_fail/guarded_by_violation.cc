// Negative-compile fixture: reading a DM_GUARDED_BY member without
// holding its mutex must fail under -Werror=thread-safety. If this
// file ever compiles with the thread-safety gate on, the annotation
// macros have lost their teeth (most likely DM_THREAD_ANNOTATION_
// expanding to nothing under Clang).
#include "common/thread_annotations.h"

namespace {

struct ShardLike {
  dm::Mutex mu;
  long lru_clock DM_GUARDED_BY(mu) = 0;
};

long ReadWithoutLock(ShardLike& s) {
  return s.lru_clock;  // BAD: no lock held; the analysis must reject this
}

}  // namespace

int main() {
  ShardLike s;
  return static_cast<int>(ReadWithoutLock(s));
}
