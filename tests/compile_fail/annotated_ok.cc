// Positive control for the negative-compile fixture: correct use of
// the annotated lock vocabulary must compile cleanly, with the
// thread-safety gate on (Clang) and off (GCC, macros are no-ops).
// Exercises every construct the production code relies on: guarded
// members, DM_REQUIRES helpers, scoped lock with early Unlock/Lock,
// and the condition-variable wait loop.
#include "common/thread_annotations.h"

namespace {

class BoundedCounter {
 public:
  void Add(long delta) {
    dm::MutexLock lock(mu_);
    while (value_ + delta > kLimit) {
      not_full_.Wait(mu_);
    }
    AddLocked(delta);
    // Unlock around the "callback", then reacquire — the worker-loop
    // pattern QueryService uses around user completions.
    lock.Unlock();
    lock.Lock();
    not_full_.NotifyAll();
  }

  long value() {
    dm::MutexLock lock(mu_);
    return value_;
  }

 private:
  static constexpr long kLimit = 1000;

  void AddLocked(long delta) DM_REQUIRES(mu_) { value_ += delta; }

  dm::Mutex mu_;
  dm::CondVar not_full_;
  long value_ DM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  BoundedCounter c;
  c.Add(7);
  return c.value() == 7 ? 0 : 1;
}
