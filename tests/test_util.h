#ifndef DIRECTMESH_TESTS_TEST_UTIL_H_
#define DIRECTMESH_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "dem/crater.h"
#include "dem/fractal.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"
#include "simplify/simplifier.h"
#include "storage/db_env.h"

namespace dm::testing {

/// A small terrain scene shared by many tests: DEM -> base mesh ->
/// full QEM collapse -> PM tree.
struct Scene {
  DemGrid dem;
  TriangleMesh base;
  SimplifyResult sr;
  PmTree tree;
};

inline Scene MakeScene(int side = 33, uint64_t seed = 7,
                       bool crater = false) {
  Scene s;
  if (crater) {
    CraterParams cp;
    cp.side = side;
    cp.seed = seed;
    s.dem = GenerateCraterDem(cp);
  } else {
    FractalParams fp;
    fp.side = side;
    fp.seed = seed;
    s.dem = GenerateFractalDem(fp);
  }
  s.base = TriangulateDem(s.dem);
  s.sr = SimplifyMesh(s.base);
  auto tree_or = PmTree::Build(s.base, s.sr);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "scene build failed: %s\n",
                 tree_or.status().ToString().c_str());
    std::abort();
  }
  s.tree = std::move(tree_or).value();
  return s;
}

/// Temp database path unique to the test binary instance.
inline std::string TempDbPath(const std::string& tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp != nullptr ? tmp : "/tmp";
  return dir + "/dm_test_" + tag + "_" + std::to_string(::getpid()) + ".db";
}

inline std::unique_ptr<DbEnv> OpenTempEnv(const std::string& tag,
                                          DbOptions options = {}) {
  auto env_or = DbEnv::Open(TempDbPath(tag), options);
  if (!env_or.ok()) {
    std::fprintf(stderr, "env open failed: %s\n",
                 env_or.status().ToString().c_str());
    std::abort();
  }
  return std::move(env_or).value();
}

}  // namespace dm::testing

#endif  // DIRECTMESH_TESTS_TEST_UTIL_H_
