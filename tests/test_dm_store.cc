#include "dm/dm_store.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::OpenTempEnv;
using testing::Scene;

class DmStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scene_ = new Scene(MakeScene(33));
    path_ = new std::string(testing::TempDbPath("dm_store"));
    auto env_or = DbEnv::Open(*path_, {});
    ASSERT_TRUE(env_or.ok());
    env_ = env_or.value().release();
    auto store_or =
        DmStore::Build(env_, scene_->base, scene_->tree, scene_->sr);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    store_ = new DmStore(std::move(store_or).value());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete env_;
    std::remove(path_->c_str());
    delete path_;
    delete scene_;
  }
  static Scene* scene_;
  static std::string* path_;
  static DbEnv* env_;
  static DmStore* store_;
};
Scene* DmStoreTest::scene_ = nullptr;
std::string* DmStoreTest::path_ = nullptr;
DbEnv* DmStoreTest::env_ = nullptr;
DmStore* DmStoreTest::store_ = nullptr;

TEST_F(DmStoreTest, MetaReflectsTheTree) {
  const DmMeta& meta = store_->meta();
  EXPECT_EQ(meta.num_nodes, scene_->tree.num_nodes());
  EXPECT_EQ(meta.num_leaves, scene_->tree.num_leaves());
  EXPECT_EQ(meta.rtree_size, scene_->tree.num_nodes());
  EXPECT_DOUBLE_EQ(meta.max_lod, scene_->tree.max_lod());
  EXPECT_FALSE(meta.bounds.empty());
}

TEST_F(DmStoreTest, EveryNodeIsRetrievableThroughTheIndex) {
  // Fetch everything via one huge range query; every PM node must come
  // back exactly once with matching fields.
  std::vector<uint64_t> rids;
  ASSERT_TRUE(store_->rtree()
                  .RangeQuery(Box::Of(-1e30, -1e30, -1e30, 1e30, 1e30, 1e30),
                              &rids)
                  .ok());
  ASSERT_EQ(static_cast<int64_t>(rids.size()), scene_->tree.num_nodes());
  std::set<VertexId> seen;
  for (uint64_t packed : rids) {
    auto node_or = store_->FetchNode(RecordId::Unpack(packed));
    ASSERT_TRUE(node_or.ok());
    const DmNode& n = node_or.value();
    EXPECT_TRUE(seen.insert(n.id).second) << "duplicate " << n.id;
    const PmNode& expect = scene_->tree.node(n.id);
    EXPECT_EQ(n.pos, expect.pos);
    EXPECT_EQ(n.e_low, expect.e_low);
    EXPECT_EQ(n.parent, expect.parent);
    EXPECT_EQ(n.child1, expect.child1);
    EXPECT_EQ(n.wing1, expect.wing1);
  }
}

TEST_F(DmStoreTest, ReopensFromMeta) {
  auto reopened_or = DmStore::Open(env_, store_->meta());
  ASSERT_TRUE(reopened_or.ok());
  DmStore& reopened = reopened_or.value();
  EXPECT_EQ(reopened.meta().num_nodes, store_->meta().num_nodes);
  std::vector<uint64_t> rids;
  ASSERT_TRUE(reopened.rtree()
                  .RangeQuery(Box::FromRect(scene_->tree.bounds(), 0.0, 0.0),
                              &rids)
                  .ok());
  EXPECT_FALSE(rids.empty());
}

TEST_F(DmStoreTest, CatalogIsLoaded) {
  EXPECT_FALSE(store_->node_extents().empty());
  EXPECT_FALSE(store_->data_space().empty());
  const CostModelInputs inputs = store_->cost_inputs();
  EXPECT_EQ(inputs.nodes, &store_->node_extents());
  EXPECT_EQ(inputs.total_records, scene_->tree.num_nodes());
  EXPECT_GT(inputs.records_per_page, 1.0);
  EXPECT_FALSE(inputs.segment_sample.empty());
  for (const auto& [lo, hi] : inputs.segment_sample) {
    EXPECT_LE(lo, hi);
  }
}

TEST_F(DmStoreTest, EAxisMapIsMonotone) {
  const EAxisMap& map = store_->e_axis_map();
  EXPECT_FALSE(map.identity());
  double prev = -1.0;
  for (double e = 0.0; e <= store_->meta().max_lod;
       e += store_->meta().max_lod / 64.0) {
    const double m = map.Map(e);
    EXPECT_GE(m, prev);
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
    prev = m;
  }
}

TEST_F(DmStoreTest, ClusteredLayoutKeepsCoRetrievedRecordsTogether) {
  // A plane query's records must hit far fewer heap pages than their
  // count (the clustering property the store exists for).
  ASSERT_TRUE(env_->FlushAll().ok());
  const double e = 0.0;  // full-resolution cut: plenty of records
  std::vector<uint64_t> rids;
  ASSERT_TRUE(store_->rtree()
                  .RangeQuery(Box::FromRect(scene_->tree.bounds(), e, e),
                              &rids)
                  .ok());
  ASSERT_GT(rids.size(), 50u);
  std::set<PageId> pages;
  for (uint64_t packed : rids) {
    pages.insert(RecordId::Unpack(packed).page);
  }
  EXPECT_LT(pages.size(), rids.size() / 3);
}


TEST_F(DmStoreTest, CompressedStoreAnswersIdentically) {
  // Build a second store with compressed records in its own file; every
  // query must return byte-identical results, with fewer heap pages.
  auto env2_or = DbEnv::Open(testing::TempDbPath("dm_store_comp"), {});
  ASSERT_TRUE(env2_or.ok());
  auto env2 = std::move(env2_or).value();
  DmStoreOptions options;
  options.compress_records = true;
  auto comp_or =
      DmStore::Build(env2.get(), scene_->base, scene_->tree, scene_->sr,
                     options);
  ASSERT_TRUE(comp_or.ok()) << comp_or.status().ToString();
  DmStore& comp = comp_or.value();
  EXPECT_TRUE(comp.meta().compressed);
  EXPECT_LT(comp.heap().num_pages(), store_->heap().num_pages());

  const double e = scene_->tree.max_lod() * 0.02;
  const Box plane = Box::FromRect(scene_->tree.bounds(), e, e);
  std::vector<uint64_t> flat_rids;
  std::vector<uint64_t> comp_rids;
  ASSERT_TRUE(store_->rtree().RangeQuery(plane, &flat_rids).ok());
  ASSERT_TRUE(comp.rtree().RangeQuery(plane, &comp_rids).ok());
  ASSERT_EQ(flat_rids.size(), comp_rids.size());

  std::set<VertexId> flat_ids;
  std::set<VertexId> comp_ids;
  for (uint64_t rid : flat_rids) {
    flat_ids.insert(
        std::move(store_->FetchNode(RecordId::Unpack(rid))).ValueOrDie().id);
  }
  for (uint64_t rid : comp_rids) {
    const DmNode n =
        std::move(comp.FetchNode(RecordId::Unpack(rid))).ValueOrDie();
    comp_ids.insert(n.id);
    // Cross-check full record content against the flat store's tree.
    const PmNode& expect = scene_->tree.node(n.id);
    EXPECT_EQ(n.pos, expect.pos);
    EXPECT_EQ(n.parent, expect.parent);
  }
  EXPECT_EQ(flat_ids, comp_ids);
}

}  // namespace
}  // namespace dm
