#include "simplify/simplifier.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "simplify/quadric.h"
#include "test_util.h"

namespace dm {
namespace {

TEST(QuadricTest, DistanceToSinglePlane) {
  Quadric q;
  q.AddPlane(0, 0, 1, -5.0);  // plane z = 5
  EXPECT_NEAR(q.Evaluate(Point3{0, 0, 5}), 0.0, 1e-12);
  EXPECT_NEAR(q.Evaluate(Point3{10, -3, 7}), 4.0, 1e-9);  // dist^2
  EXPECT_NEAR(q.Evaluate(Point3{0, 0, 0}), 25.0, 1e-9);
}

TEST(QuadricTest, TrianglePlaneIsAreaWeighted) {
  Quadric small;
  small.AddTrianglePlane(Point3{0, 0, 0}, Point3{1, 0, 0}, Point3{0, 1, 0});
  Quadric big;
  big.AddTrianglePlane(Point3{0, 0, 0}, Point3{10, 0, 0}, Point3{0, 10, 0});
  const Point3 off{0, 0, 2};
  EXPECT_NEAR(big.Evaluate(off) / small.Evaluate(off), 100.0, 1e-6);
}

TEST(QuadricTest, OptimalPointMinimizesIntersectingPlanes) {
  Quadric q;
  q.AddPlane(1, 0, 0, -1.0);  // x = 1
  q.AddPlane(0, 1, 0, -2.0);  // y = 2
  q.AddPlane(0, 0, 1, -3.0);  // z = 3
  const Point3 opt = q.OptimalPoint(Point3{0, 0, 0}, Point3{5, 5, 5});
  EXPECT_NEAR(opt.x, 1.0, 1e-9);
  EXPECT_NEAR(opt.y, 2.0, 1e-9);
  EXPECT_NEAR(opt.z, 3.0, 1e-9);
  EXPECT_NEAR(q.Evaluate(opt), 0.0, 1e-12);
}

TEST(QuadricTest, SingularFallsBackToEndpointsOrMidpoint) {
  Quadric q;  // only one plane: singular system
  q.AddPlane(0, 0, 1, 0.0);  // z = 0
  const Point3 a{0, 0, 1};
  const Point3 b{2, 0, -1};
  const Point3 opt = q.OptimalPoint(a, b);
  // Midpoint has z = 0: exactly optimal among the candidates.
  EXPECT_NEAR(q.Evaluate(opt), 0.0, 1e-12);
}

TEST(QuadricTest, AdditionAccumulates) {
  Quadric a;
  a.AddPlane(0, 0, 1, 0.0);
  Quadric b;
  b.AddPlane(0, 0, 1, -2.0);
  const Quadric sum = a + b;
  // Point on neither plane: errors add.
  EXPECT_NEAR(sum.Evaluate(Point3{0, 0, 1}),
              a.Evaluate(Point3{0, 0, 1}) + b.Evaluate(Point3{0, 0, 1}),
              1e-12);
}

class SimplifierTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplifierTest, FullyCollapsesGridsOfVariousSizes) {
  const int side = GetParam();
  const DemGrid g = GenerateFractalDem(
      {.side = side, .seed = static_cast<uint64_t>(side)});
  const TriangleMesh mesh = TriangulateDem(g);
  const SimplifyResult sr = SimplifyMesh(mesh);
  ASSERT_EQ(sr.roots.size(), 1u);
  EXPECT_EQ(static_cast<int64_t>(sr.steps.size()), mesh.num_vertices() - 1);
  EXPECT_EQ(sr.forced_collapses, 0);
  EXPECT_EQ(static_cast<int64_t>(sr.positions.size()),
            2 * mesh.num_vertices() - 1);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, SimplifierTest,
                         ::testing::Values(5, 9, 17, 33, 49));

TEST(SimplifierMoreTest, EveryVertexCollapsedExactlyOnce) {
  const DemGrid g = GenerateFractalDem({.side = 17, .seed = 4});
  const TriangleMesh mesh = TriangulateDem(g);
  const SimplifyResult sr = SimplifyMesh(mesh);
  std::set<VertexId> collapsed;
  for (const CollapseStep& s : sr.steps) {
    EXPECT_TRUE(collapsed.insert(s.record.child1).second);
    EXPECT_TRUE(collapsed.insert(s.record.child2).second);
    EXPECT_EQ(collapsed.count(s.record.parent), 0u);
  }
  EXPECT_EQ(collapsed.count(sr.roots[0]), 0u);
}

TEST(SimplifierMoreTest, ErrorsAreNonNegativeAndGrowOnAverage) {
  const DemGrid g = GenerateFractalDem({.side = 33, .seed = 8});
  const TriangleMesh mesh = TriangulateDem(g);
  const SimplifyResult sr = SimplifyMesh(mesh);
  double first_half = 0;
  double second_half = 0;
  const size_t half = sr.steps.size() / 2;
  for (size_t i = 0; i < sr.steps.size(); ++i) {
    EXPECT_GE(sr.steps[i].error, 0.0);
    (i < half ? first_half : second_half) += sr.steps[i].error;
  }
  // Greedy QEM errors trend upward (not strictly monotone).
  EXPECT_GT(second_half, first_half);
}

TEST(SimplifierMoreTest, TargetVerticesStopsEarly) {
  const DemGrid g = GenerateFractalDem({.side = 17, .seed = 4});
  const TriangleMesh mesh = TriangulateDem(g);
  SimplifyOptions opt;
  opt.target_vertices = 40;
  const SimplifyResult sr = SimplifyMesh(mesh, opt);
  EXPECT_EQ(sr.roots.size(), 40u);
  EXPECT_EQ(static_cast<int64_t>(sr.steps.size()),
            mesh.num_vertices() - 40);
}

TEST(SimplifierMoreTest, VerticalMetricUsesZDistance) {
  const DemGrid g = GenerateFractalDem({.side = 17, .seed = 4});
  const TriangleMesh mesh = TriangulateDem(g);
  SimplifyOptions opt;
  opt.metric = ErrorMetric::kVertical;
  const SimplifyResult sr = SimplifyMesh(mesh, opt);
  EXPECT_EQ(sr.roots.size(), 1u);
  for (const CollapseStep& s : sr.steps) EXPECT_GE(s.error, 0.0);
}

TEST(SimplifierMoreTest, WingsAreAdjacentToBothChildrenAtCollapse) {
  // Replay the sequence and check wings against the live mesh.
  const DemGrid g = GenerateFractalDem({.side = 9, .seed = 13});
  const TriangleMesh mesh = TriangulateDem(g);
  const SimplifyResult sr = SimplifyMesh(mesh);
  AdjacencyMesh adj(mesh);
  for (const CollapseStep& s : sr.steps) {
    const auto commons = adj.CommonNeighbors(s.record.child1,
                                             s.record.child2);
    if (s.record.wing1 != kInvalidVertex) {
      EXPECT_TRUE(std::binary_search(commons.begin(), commons.end(),
                                     s.record.wing1));
    }
    if (s.record.wing2 != kInvalidVertex) {
      EXPECT_TRUE(std::binary_search(commons.begin(), commons.end(),
                                     s.record.wing2));
    }
    const CollapseRecord rec = adj.ContractUnchecked(
        s.record.child1, s.record.child2, s.parent_pos);
    EXPECT_EQ(rec.parent, s.record.parent);
  }
}

}  // namespace
}  // namespace dm
