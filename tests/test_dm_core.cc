#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "dm/connectivity.h"
#include "dm/dm_node.h"
#include "common/rng.h"
#include "pm/cut_replay.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::Scene;

class ConnectivityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scene_ = new Scene(MakeScene(33));
    conn_ = new std::vector<std::vector<VertexId>>(
        BuildConnectionLists(scene_->base, scene_->tree, scene_->sr));
  }
  static void TearDownTestSuite() {
    delete conn_;
    delete scene_;
  }
  static Scene* scene_;
  static std::vector<std::vector<VertexId>>* conn_;
};
Scene* ConnectivityTest::scene_ = nullptr;
std::vector<std::vector<VertexId>>* ConnectivityTest::conn_ = nullptr;

TEST_F(ConnectivityTest, ListsAreSymmetric) {
  for (VertexId u = 0; u < static_cast<VertexId>(conn_->size()); ++u) {
    for (VertexId v : (*conn_)[static_cast<size_t>(u)]) {
      const auto& back = (*conn_)[static_cast<size_t>(v)];
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), u))
          << u << " -> " << v;
    }
  }
}

TEST_F(ConnectivityTest, ConnectedPairsHaveSimilarLod) {
  // "for any m' in L, m and m' have a similar LOD" (overlapping
  // intervals), and parent-child pairs can never be connected.
  const PmTree& tree = scene_->tree;
  for (VertexId u = 0; u < static_cast<VertexId>(conn_->size()); ++u) {
    const PmNode& nu = tree.node(u);
    for (VertexId v : (*conn_)[static_cast<size_t>(u)]) {
      const PmNode& nv = tree.node(v);
      EXPECT_LT(std::max(nu.e_low, nv.e_low),
                std::min(nu.e_high, nv.e_high))
          << u << " ~ " << v;
      EXPECT_NE(nu.parent, v);
      EXPECT_NE(nv.parent, u);
    }
  }
}

TEST_F(ConnectivityTest, CutEdgesMatchQuotientCutExactly) {
  // THE core Direct Mesh property: at any uniform LOD, the pairs of
  // cut nodes that list each other are exactly the edges of the
  // terrain approximation.
  const PmTree& tree = scene_->tree;
  for (double frac : {0.0, 0.01, 0.05, 0.15, 0.4, 0.75}) {
    const double e = frac * tree.max_lod();
    const QuotientCut cut =
        ComputeUniformCut(scene_->base, tree, tree.bounds(), e);
    const auto edge_list = cut.Edges();
    std::set<std::pair<VertexId, VertexId>> expected(edge_list.begin(),
                                                     edge_list.end());

    std::set<VertexId> alive(cut.vertices.begin(), cut.vertices.end());
    std::set<std::pair<VertexId, VertexId>> got;
    for (VertexId u : cut.vertices) {
      for (VertexId v : (*conn_)[static_cast<size_t>(u)]) {
        if (u < v && alive.count(v)) got.emplace(u, v);
      }
    }
    EXPECT_EQ(got, expected) << "at e = " << e;
  }
}

TEST_F(ConnectivityTest, SimilarLodMuchSmallerThanClosure) {
  const ConnectivityStats stats =
      ComputeConnectivityStats(scene_->base, scene_->tree, *conn_, 256);
  EXPECT_GT(stats.avg_similar_lod, 2.0);
  EXPECT_LT(stats.avg_similar_lod, 40.0);
  // The paper's Section 4 blow-up: the full closure is far larger.
  EXPECT_GT(stats.avg_total_connections, 2 * stats.avg_similar_lod);
  EXPECT_GT(stats.sampled_nodes, 0);
}

TEST(DmNodeTest, CodecRoundTrip) {
  DmNode n;
  n.id = 123456789;
  n.pos = Point3{1.5, -2.25, 77.125};
  n.e_low = 0.5;
  n.e_high = 9.75;
  n.parent = 42;
  n.child1 = 7;
  n.child2 = 8;
  n.wing1 = kInvalidVertex;
  n.wing2 = 99;
  n.connections = {1, 5, 7, 20000000000LL};

  std::vector<uint8_t> buf;
  n.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), n.EncodedSize());
  auto decoded_or = DmNode::Decode(buf.data(), static_cast<uint32_t>(buf.size()));
  ASSERT_TRUE(decoded_or.ok());
  const DmNode& d = decoded_or.value();
  EXPECT_EQ(d.id, n.id);
  EXPECT_EQ(d.pos, n.pos);
  EXPECT_EQ(d.e_low, n.e_low);
  EXPECT_EQ(d.e_high, n.e_high);
  EXPECT_EQ(d.parent, n.parent);
  EXPECT_EQ(d.child1, n.child1);
  EXPECT_EQ(d.child2, n.child2);
  EXPECT_EQ(d.wing1, n.wing1);
  EXPECT_EQ(d.wing2, n.wing2);
  EXPECT_EQ(d.connections, n.connections);
}

TEST(DmNodeTest, CodecPreservesInfiniteTop) {
  DmNode n;
  n.id = 1;
  n.e_high = std::numeric_limits<double>::infinity();
  std::vector<uint8_t> buf;
  n.EncodeTo(&buf);
  auto d = DmNode::Decode(buf.data(), static_cast<uint32_t>(buf.size()));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(std::isinf(d.value().e_high));
}

TEST(DmNodeTest, DecodeRejectsTruncation) {
  DmNode n;
  n.id = 1;
  n.connections = {2, 3};
  std::vector<uint8_t> buf;
  n.EncodeTo(&buf);
  EXPECT_FALSE(DmNode::Decode(buf.data(), 10).ok());
  EXPECT_FALSE(
      DmNode::Decode(buf.data(), static_cast<uint32_t>(buf.size() - 8)).ok());
}

TEST(DmNodeTest, IntervalPredicates) {
  DmNode n;
  n.e_low = 2.0;
  n.e_high = 5.0;
  EXPECT_TRUE(n.AliveAt(2.0));
  EXPECT_TRUE(n.AliveAt(4.999));
  EXPECT_FALSE(n.AliveAt(5.0));
  EXPECT_FALSE(n.AliveAt(1.999));
  EXPECT_TRUE(n.IntervalOverlaps(4.0, 10.0));
  EXPECT_TRUE(n.IntervalOverlaps(0.0, 2.0));
  EXPECT_FALSE(n.IntervalOverlaps(5.0, 10.0));  // e_high exclusive
}


TEST(DmNodeTest, CompressedCodecRoundTrip) {
  DmNode n;
  n.id = 5000;
  n.pos = Point3{-3.5, 2.25, 817.0};
  n.e_low = 1.25;
  n.e_high = 77.0;
  n.parent = 5204;
  n.child1 = 4810;
  n.child2 = 4999;
  n.wing1 = kInvalidVertex;
  n.wing2 = 5001;
  n.connections = {4321, 4999, 5001, 5002, 6100};

  std::vector<uint8_t> buf;
  n.EncodeCompressedTo(&buf);
  // Compression must actually compress.
  EXPECT_LT(buf.size(), n.EncodedSize());
  auto d_or =
      DmNode::DecodeCompressed(buf.data(), static_cast<uint32_t>(buf.size()));
  ASSERT_TRUE(d_or.ok()) << d_or.status().ToString();
  const DmNode& d = d_or.value();
  EXPECT_EQ(d.id, n.id);
  EXPECT_EQ(d.pos, n.pos);
  EXPECT_EQ(d.e_low, n.e_low);
  EXPECT_EQ(d.e_high, n.e_high);
  EXPECT_EQ(d.parent, n.parent);
  EXPECT_EQ(d.child1, n.child1);
  EXPECT_EQ(d.child2, n.child2);
  EXPECT_EQ(d.wing1, n.wing1);
  EXPECT_EQ(d.wing2, n.wing2);
  EXPECT_EQ(d.connections, n.connections);
}

TEST(DmNodeTest, CompressedCodecPreservesInfinityAndEmptyLists) {
  DmNode n;
  n.id = 0;
  n.e_high = std::numeric_limits<double>::infinity();
  std::vector<uint8_t> buf;
  n.EncodeCompressedTo(&buf);
  auto d_or =
      DmNode::DecodeCompressed(buf.data(), static_cast<uint32_t>(buf.size()));
  ASSERT_TRUE(d_or.ok());
  EXPECT_TRUE(std::isinf(d_or.value().e_high));
  EXPECT_TRUE(d_or.value().connections.empty());
}

TEST(DmNodeTest, CompressedDecodeRejectsCorruption) {
  DmNode n;
  n.id = 99;
  n.connections = {1, 2, 3};
  std::vector<uint8_t> buf;
  n.EncodeCompressedTo(&buf);
  EXPECT_FALSE(DmNode::DecodeCompressed(buf.data(), 3).ok());
  EXPECT_FALSE(
      DmNode::DecodeCompressed(buf.data(),
                               static_cast<uint32_t>(buf.size() - 1))
          .ok());
  // Trailing garbage is rejected too.
  buf.push_back(0);
  EXPECT_FALSE(
      DmNode::DecodeCompressed(buf.data(), static_cast<uint32_t>(buf.size()))
          .ok());
}

TEST(DmNodeTest, CompressedCodecRandomizedProperty) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    DmNode n;
    n.id = rng.UniformInt(0, 1 << 20);
    n.pos = Point3{rng.Uniform(-1e4, 1e4), rng.Uniform(-1e4, 1e4),
                   rng.Uniform(-1e4, 1e4)};
    n.e_low = rng.Uniform(0, 1e6);
    n.e_high = n.e_low + rng.Uniform(0, 1e6);
    auto maybe_link = [&]() {
      return rng.NextBelow(4) == 0 ? kInvalidVertex
                                   : rng.UniformInt(0, 1 << 21);
    };
    n.parent = maybe_link();
    n.child1 = maybe_link();
    n.child2 = maybe_link();
    n.wing1 = maybe_link();
    n.wing2 = maybe_link();
    const int k = static_cast<int>(rng.NextBelow(30));
    for (int i = 0; i < k; ++i) {
      n.connections.push_back(rng.UniformInt(0, 1 << 21));
    }
    std::sort(n.connections.begin(), n.connections.end());
    n.connections.erase(
        std::unique(n.connections.begin(), n.connections.end()),
        n.connections.end());

    std::vector<uint8_t> buf;
    n.EncodeCompressedTo(&buf);
    auto d_or = DmNode::DecodeCompressed(buf.data(),
                                         static_cast<uint32_t>(buf.size()));
    ASSERT_TRUE(d_or.ok()) << "trial " << trial;
    EXPECT_EQ(d_or.value().connections, n.connections);
    EXPECT_EQ(d_or.value().parent, n.parent);
    EXPECT_EQ(d_or.value().wing1, n.wing1);
  }
}

}  // namespace
}  // namespace dm
