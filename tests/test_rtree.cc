#include "index/rtree/rstar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "test_util.h"

namespace dm {
namespace {

Box RandomBox(Rng* rng, double space, double max_side) {
  const double x = rng->Uniform(0, space);
  const double y = rng->Uniform(0, space);
  const double e = rng->Uniform(0, space);
  return Box::Of(x, y, e, x + rng->Uniform(0, max_side),
                 y + rng->Uniform(0, max_side),
                 e + rng->Uniform(0, max_side));
}

class RStarTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = dm::testing::OpenTempEnv("rtree", DbOptions{.page_size = 512,
                                                       .pool_pages = 256});
    tree_.emplace(std::move(RStarTree::Create(env_.get())).ValueOrDie());
  }
  std::unique_ptr<DbEnv> env_;
  std::optional<RStarTree> tree_;
};

TEST_F(RStarTreeTest, EmptyTreeAnswersEmpty) {
  std::vector<uint64_t> out;
  ASSERT_TRUE(tree_->RangeQuery(Box::Of(0, 0, 0, 1, 1, 1), &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(std::move(tree_->Height()).ValueOrDie(), 1);
}

TEST_F(RStarTreeTest, RejectsEmptyBox) {
  EXPECT_FALSE(tree_->Insert(Box{}, 1).ok());
}

TEST_F(RStarTreeTest, RangeQueryMatchesBruteForce) {
  Rng rng(42);
  std::vector<Box> boxes;
  for (uint64_t i = 0; i < 2000; ++i) {
    const Box b = RandomBox(&rng, 100.0, 5.0);
    ASSERT_TRUE(tree_->Insert(b, i).ok());
    boxes.push_back(b);
  }
  EXPECT_EQ(tree_->size(), 2000);
  EXPECT_GT(std::move(tree_->Height()).ValueOrDie(), 1);

  for (int q = 0; q < 25; ++q) {
    const Box query = RandomBox(&rng, 100.0, 25.0);
    std::vector<uint64_t> got;
    ASSERT_TRUE(tree_->RangeQuery(query, &got).ok());
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < boxes.size(); ++i) {
      if (boxes[static_cast<size_t>(i)].Intersects(query)) {
        expected.insert(i);
      }
    }
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected)
        << "query " << q;
    EXPECT_EQ(got.size(), expected.size()) << "duplicates returned";
  }
}

TEST_F(RStarTreeTest, DegenerateSegmentsActLike2dPlusInterval) {
  // Vertical segments as used by the DM store: degenerate in x, y.
  Rng rng(7);
  struct Seg {
    double x, y, lo, hi;
  };
  std::vector<Seg> segs;
  for (uint64_t i = 0; i < 800; ++i) {
    Seg s{rng.Uniform(0, 10), rng.Uniform(0, 10), 0, 0};
    s.lo = rng.Uniform(0, 5);
    s.hi = s.lo + rng.Uniform(0, 3);
    ASSERT_TRUE(
        tree_->Insert(Box::Of(s.x, s.y, s.lo, s.x, s.y, s.hi), i).ok());
    segs.push_back(s);
  }
  // Plane query at a fixed e.
  const double e = 2.0;
  const Box plane = Box::Of(2, 2, e, 8, 8, e);
  std::vector<uint64_t> got;
  ASSERT_TRUE(tree_->RangeQuery(plane, &got).ok());
  std::set<uint64_t> expected;
  for (uint64_t i = 0; i < segs.size(); ++i) {
    const Seg& s = segs[static_cast<size_t>(i)];
    if (s.x >= 2 && s.x <= 8 && s.y >= 2 && s.y <= 8 && s.lo <= e &&
        s.hi >= e) {
      expected.insert(i);
    }
  }
  EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected);
}

TEST_F(RStarTreeTest, NodeExtentsNestProperly) {
  Rng rng(11);
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE(tree_->Insert(RandomBox(&rng, 50.0, 2.0), i).ok());
  }
  std::vector<RTreeNodeExtent> extents;
  ASSERT_TRUE(tree_->CollectNodeExtents(&extents).ok());
  ASSERT_FALSE(extents.empty());
  // The root extent is first and contains every other node box.
  const Box root_box = extents.front().box;
  int64_t leaf_entries = 0;
  for (const auto& ext : extents) {
    EXPECT_TRUE(root_box.Contains(ext.box)) << "node escapes the root MBR";
    if (ext.level == 0) leaf_entries += ext.count;
  }
  EXPECT_EQ(leaf_entries, 1500);
  // Every non-root node respects the R* minimum fill. Capacity derives
  // from the logical page size (physical minus the integrity trailer),
  // matching RStarTree::MaxEntries().
  const uint32_t max_entries = (env_->page_size() - 8) / 56 - 1;
  const uint32_t min_entries =
      std::max(2u, static_cast<uint32_t>(max_entries * 0.4));
  int undersized = 0;
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].count < min_entries) ++undersized;
  }
  EXPECT_EQ(undersized, 0);
}

TEST_F(RStarTreeTest, ColdQueryIoIsLogarithmicForPointLookup) {
  Rng rng(3);
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree_->Insert(RandomBox(&rng, 100.0, 0.5), i).ok());
  }
  ASSERT_TRUE(env_->FlushAll().ok());
  env_->ResetStats();
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      tree_->RangeQuery(Box::Of(50, 50, 50, 50.1, 50.1, 50.1), &out).ok());
  // A tiny query touches a small fraction of the tree.
  EXPECT_LT(env_->stats().disk_reads, 40);
}

TEST_F(RStarTreeTest, StreamingQueryCanStopEarly) {
  Rng rng(5);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Insert(RandomBox(&rng, 10.0, 1.0), i).ok());
  }
  int seen = 0;
  ASSERT_TRUE(tree_->RangeQueryEntries(Box::Of(0, 0, 0, 10, 10, 10),
                                       [&](const Box&, uint64_t) {
                                         return ++seen < 7;
                                       })
                  .ok());
  EXPECT_EQ(seen, 7);
}

TEST_F(RStarTreeTest, DuplicateBoxesAllRetained) {
  const Box b = Box::Of(1, 1, 1, 2, 2, 2);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree_->Insert(b, i).ok());
  }
  std::vector<uint64_t> out;
  ASSERT_TRUE(tree_->RangeQuery(b, &out).ok());
  EXPECT_EQ(out.size(), 200u);
}


TEST_F(RStarTreeTest, StrOrderIsAPermutation) {
  Rng rng(23);
  std::vector<Box> boxes;
  for (int i = 0; i < 1234; ++i) boxes.push_back(RandomBox(&rng, 50, 1));
  const auto order = RStarTree::StrOrder(boxes, 8);
  ASSERT_EQ(order.size(), boxes.size());
  std::vector<bool> seen(boxes.size(), false);
  for (size_t i : order) {
    ASSERT_LT(i, boxes.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST_F(RStarTreeTest, StrOrderGroupsNearbyBoxes) {
  // Consecutive leaf runs must be spatially tighter than random runs.
  Rng rng(29);
  std::vector<Box> boxes;
  for (int i = 0; i < 4000; ++i) boxes.push_back(RandomBox(&rng, 100, 0.1));
  const uint32_t cap = 16;
  const auto order = RStarTree::StrOrder(boxes, cap);
  auto run_volume = [&](const std::vector<size_t>& ord) {
    double total = 0;
    for (size_t i = 0; i < ord.size(); i += cap) {
      Box mbr;
      for (size_t j = i; j < std::min(ord.size(), i + cap); ++j) {
        mbr.ExpandToInclude(boxes[ord[j]]);
      }
      total += mbr.Volume();
    }
    return total;
  };
  std::vector<size_t> identity(boxes.size());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  EXPECT_LT(run_volume(order), run_volume(identity) / 10.0);
}

TEST_F(RStarTreeTest, BulkLoadMatchesBruteForceQueries) {
  Rng rng(31);
  std::vector<Box> boxes;
  for (uint64_t i = 0; i < 3000; ++i) boxes.push_back(RandomBox(&rng, 80, 2));
  const auto order =
      RStarTree::StrOrder(boxes, RStarTree::LeafCapacityFor(512));
  std::vector<std::pair<Box, uint64_t>> ordered;
  for (size_t i : order) ordered.emplace_back(boxes[i], i);
  auto tree = std::move(RStarTree::BulkLoad(env_.get(), ordered)).ValueOrDie();
  EXPECT_EQ(tree.size(), 3000);

  for (int q = 0; q < 20; ++q) {
    const Box query = RandomBox(&rng, 80, 15);
    std::vector<uint64_t> got;
    ASSERT_TRUE(tree.RangeQuery(query, &got).ok());
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < boxes.size(); ++i) {
      if (boxes[static_cast<size_t>(i)].Intersects(query)) expected.insert(i);
    }
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected);
  }
}

TEST_F(RStarTreeTest, BulkLoadHandlesEdgeSizes) {
  // Empty, single entry, exactly one leaf, one entry over a leaf.
  auto empty = std::move(RStarTree::BulkLoad(env_.get(), {})).ValueOrDie();
  std::vector<uint64_t> out;
  ASSERT_TRUE(empty.RangeQuery(Box::Of(0, 0, 0, 1, 1, 1), &out).ok());
  EXPECT_TRUE(out.empty());

  const uint32_t cap = RStarTree::LeafCapacityFor(512);
  for (uint32_t n : {1u, cap, cap + 1}) {
    std::vector<std::pair<Box, uint64_t>> ordered;
    for (uint32_t i = 0; i < n; ++i) {
      const double v = i;
      ordered.emplace_back(Box::Of(v, v, v, v + 1, v + 1, v + 1), i);
    }
    auto tree = std::move(RStarTree::BulkLoad(env_.get(), ordered)).ValueOrDie();
    out.clear();
    ASSERT_TRUE(
        tree.RangeQuery(Box::Of(-1, -1, -1, 1e9, 1e9, 1e9), &out).ok());
    EXPECT_EQ(out.size(), n);
  }
}

TEST_F(RStarTreeTest, BulkLoadedTreeHasTightLeaves) {
  // The packed tree must answer a plane query with far fewer node
  // visits than an insert-built tree over identical data.
  Rng rng(37);
  std::vector<Box> segs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    const double lo = std::pow(rng.NextDouble(), 4.0) * 50;
    segs.push_back(Box::Of(x, y, lo, x, y, lo + rng.Uniform(0, 2)));
  }
  const auto order =
      RStarTree::StrOrder(segs, RStarTree::LeafCapacityFor(512));
  std::vector<std::pair<Box, uint64_t>> ordered;
  for (size_t i : order) ordered.emplace_back(segs[i], i);
  auto packed = std::move(RStarTree::BulkLoad(env_.get(), ordered)).ValueOrDie();
  auto dynamic = std::move(RStarTree::Create(env_.get())).ValueOrDie();
  for (uint64_t i = 0; i < segs.size(); ++i) {
    ASSERT_TRUE(dynamic.Insert(segs[static_cast<size_t>(i)], i).ok());
  }
  const Box plane = Box::Of(20, 20, 1.0, 80, 80, 1.0);
  ASSERT_TRUE(env_->FlushAll().ok());
  env_->ResetStats();
  std::vector<uint64_t> out;
  ASSERT_TRUE(packed.RangeQuery(plane, &out).ok());
  const int64_t packed_io = env_->stats().disk_reads;
  ASSERT_TRUE(env_->FlushAll().ok());
  env_->ResetStats();
  std::vector<uint64_t> out2;
  ASSERT_TRUE(dynamic.RangeQuery(plane, &out2).ok());
  const int64_t dynamic_io = env_->stats().disk_reads;
  EXPECT_EQ(out.size(), out2.size());
  EXPECT_LT(packed_io, dynamic_io);
}

}  // namespace
}  // namespace dm
