#include "dm/dm_query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dm/dm_store.h"
#include "mesh/validate.h"
#include "pm/cut_replay.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::OpenTempEnv;
using testing::Scene;

class DmQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scene_ = new Scene(MakeScene(33));
    env_ = OpenTempEnv("dm_query").release();
    auto store_or =
        DmStore::Build(env_, scene_->base, scene_->tree, scene_->sr);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    store_ = new DmStore(std::move(store_or).value());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete env_;
    delete scene_;
  }

  static Rect Roi(double f0x, double f0y, double f1x, double f1y) {
    const Rect b = scene_->tree.bounds();
    return Rect::Of(b.lo_x + f0x * b.width(), b.lo_y + f0y * b.height(),
                    b.lo_x + f1x * b.width(), b.lo_y + f1y * b.height());
  }

  static Scene* scene_;
  static DbEnv* env_;
  static DmStore* store_;
};
Scene* DmQueryTest::scene_ = nullptr;
DbEnv* DmQueryTest::env_ = nullptr;
DmStore* DmQueryTest::store_ = nullptr;

TEST_F(DmQueryTest, ViewpointIndependentMatchesSelectiveRefinement) {
  DmQueryProcessor proc(store_);
  const Rect roi = Roi(0.1, 0.2, 0.8, 0.7);
  for (double frac : {0.01, 0.05, 0.2, 0.5}) {
    const double e = frac * scene_->tree.max_lod();
    auto result_or = proc.ViewpointIndependent(roi, e);
    ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
    const DmQueryResult& r = result_or.value();
    const auto expected = scene_->tree.SelectiveRefine(roi, e);
    EXPECT_EQ(r.vertices, expected) << "e = " << e;
  }
}

TEST_F(DmQueryTest, ViewpointIndependentTrianglesMatchQuotientCut) {
  DmQueryProcessor proc(store_);
  const Rect roi = Roi(0.0, 0.0, 1.0, 1.0);
  for (double frac : {0.02, 0.1, 0.35}) {
    const double e = frac * scene_->tree.max_lod();
    auto result_or = proc.ViewpointIndependent(roi, e);
    ASSERT_TRUE(result_or.ok());
    const DmQueryResult& r = result_or.value();

    // Edges of the reconstructed triangles must be quotient-cut edges.
    const QuotientCut cut = ComputeUniformCut(scene_->base, scene_->tree,
                                              roi, e);
    const auto edge_list = cut.Edges();
    std::set<std::pair<VertexId, VertexId>> cut_edges(edge_list.begin(),
                                                      edge_list.end());
    for (const Triangle& t : r.triangles) {
      for (int i = 0; i < 3; ++i) {
        VertexId a = t[i];
        VertexId b = t[(i + 1) % 3];
        if (a > b) std::swap(a, b);
        EXPECT_TRUE(cut_edges.count({a, b}))
            << "triangle edge " << a << "-" << b << " not in the cut";
      }
    }
    // And the mesh must be a valid terrain triangulation.
    const MeshStats stats =
        ComputeMeshStats(r.vertices, r.positions, r.triangles);
    EXPECT_TRUE(stats.IsManifold()) << stats.ToString();
    EXPECT_GT(stats.num_triangles, 0);
  }
}

TEST_F(DmQueryTest, SingleBaseMatchesPositionRestrictedRefinement) {
  // Ground truth mirroring DM's semantics: the range query can only
  // retrieve points whose (x, y) lies inside the ROI, so refinement is
  // restricted by node *position* (a child outside the ROI clips the
  // mesh at the boundary, like the paper's Figure 3 retrieval).
  DmQueryProcessor proc(store_);
  const Rect roi = Roi(0.1, 0.1, 0.9, 0.9);
  ViewQuery q;
  q.roi = roi;
  q.e_min = 0.01 * scene_->tree.max_lod();
  q.e_max = 0.5 * scene_->tree.max_lod();
  auto result_or = proc.SingleBase(q);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  const DmQueryResult& r = result_or.value();

  std::vector<VertexId> expected;
  std::vector<VertexId> work;
  for (const PmNode& n : scene_->tree.nodes()) {
    if (n.AliveAt(q.e_max) && roi.Contains(n.pos.x, n.pos.y)) {
      work.push_back(n.id);
    }
  }
  while (!work.empty()) {
    const PmNode& n = scene_->tree.node(work.back());
    work.pop_back();
    const double req = std::max(q.RequiredE(n.pos.x, n.pos.y), q.e_min);
    if (n.e_low > req && !n.is_leaf()) {
      bool any = false;
      for (VertexId c : {n.child1, n.child2}) {
        const PmNode& cn = scene_->tree.node(c);
        if (roi.Contains(cn.pos.x, cn.pos.y)) {
          work.push_back(c);
          any = true;
        }
      }
      if (!any) expected.push_back(n.id);  // fully clipped: keep coarse
      continue;
    }
    expected.push_back(n.id);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(r.vertices, expected);
}

TEST_F(DmQueryTest, MultiBaseMeshIsEquivalentToSingleBase) {
  // The stitched multi-base mesh may differ from single-base near the
  // slice boundaries (a slice's lower top plane can seed refinement one
  // generation finer than the neighbouring slice's satisfied ancestor —
  // the paper's Section 5.3 stitching argument). The meshes must agree
  // up to that refinement relation, and the disagreement must be tiny.
  DmQueryProcessor proc(store_);
  const Rect roi = Roi(0.05, 0.05, 0.95, 0.95);
  ViewQuery q;
  q.roi = roi;
  q.e_min = 0.01 * scene_->tree.max_lod();
  q.e_max = 0.6 * scene_->tree.max_lod();

  auto sb_or = proc.SingleBase(q);
  auto mb_or = proc.MultiBase(q);
  ASSERT_TRUE(sb_or.ok());
  ASSERT_TRUE(mb_or.ok());
  const auto& sb = sb_or.value().vertices;
  const auto& mb = mb_or.value().vertices;

  const std::set<VertexId> sb_set(sb.begin(), sb.end());
  const std::set<VertexId> mb_set(mb.begin(), mb.end());
  auto is_ancestor = [&](VertexId anc, VertexId v) {
    for (VertexId p = scene_->tree.node(v).parent; p != kInvalidVertex;
         p = scene_->tree.node(p).parent) {
      if (p == anc) return true;
    }
    return false;
  };
  int64_t diff = 0;
  for (VertexId v : mb) {
    if (sb_set.count(v)) continue;
    ++diff;
    // Every extra MB vertex must refine some SB vertex.
    bool ok = false;
    for (VertexId p = scene_->tree.node(v).parent; p != kInvalidVertex;
         p = scene_->tree.node(p).parent) {
      if (sb_set.count(p)) {
        ok = true;
        break;
      }
    }
    EXPECT_TRUE(ok) << "MB vertex " << v << " unrelated to the SB cut";
  }
  for (VertexId v : sb) {
    if (mb_set.count(v)) continue;
    ++diff;
    // Every missing SB vertex must be represented by MB descendants.
    bool ok = false;
    for (VertexId m : mb) {
      if (is_ancestor(v, m)) {
        ok = true;
        break;
      }
    }
    EXPECT_TRUE(ok) << "SB vertex " << v << " uncovered by the MB cut";
  }
  EXPECT_LE(diff, static_cast<int64_t>(sb.size()) / 10 + 4)
      << "boundary disagreement too large";
}

TEST_F(DmQueryTest, MultiBaseNeverFetchesMoreDataThanSingleBase) {
  DmQueryProcessor proc(store_);
  const Rect roi = Roi(0.0, 0.0, 1.0, 1.0);
  ViewQuery q;
  q.roi = roi;
  q.e_min = 0.005 * scene_->tree.max_lod();
  q.e_max = 0.8 * scene_->tree.max_lod();

  ASSERT_TRUE(env_->FlushAll().ok());
  auto sb_or = proc.SingleBase(q);
  ASSERT_TRUE(sb_or.ok());
  ASSERT_TRUE(env_->FlushAll().ok());
  auto mb_or = proc.MultiBase(q);
  ASSERT_TRUE(mb_or.ok());
  // The optimizer only splits when the estimate improves; on a steep
  // plane the fetched record count must not exceed single-base by more
  // than the duplicated slice boundaries.
  EXPECT_LE(mb_or.value().stats.nodes_fetched,
            sb_or.value().stats.nodes_fetched * 11 / 10 + 8);
}

TEST_F(DmQueryTest, PlaneQueryFetchesLessThanCubeQuery) {
  // The headline claim of Section 5.1: the viewpoint-independent plane
  // retrieves far less than the PM-style cube up to the dataset max.
  DmQueryProcessor proc(store_);
  const Rect roi = Roi(0.2, 0.2, 0.8, 0.8);
  const double e = 0.05 * scene_->tree.max_lod();

  ASSERT_TRUE(env_->FlushAll().ok());
  auto plane_or = proc.ViewpointIndependent(roi, e);
  ASSERT_TRUE(plane_or.ok());

  // Cube fetch (what a PM-style index must retrieve): count entries.
  std::vector<uint64_t> cube_rids;
  ASSERT_TRUE(store_->rtree()
                  .RangeQuery(Box::FromRect(roi, e, scene_->tree.max_lod()),
                              &cube_rids)
                  .ok());
  EXPECT_LT(plane_or.value().stats.nodes_fetched,
            static_cast<int64_t>(cube_rids.size()));
}

TEST_F(DmQueryTest, EmptyRoiReturnsEmptyMesh) {
  DmQueryProcessor proc(store_);
  const Rect b = scene_->tree.bounds();
  const Rect outside =
      Rect::Of(b.hi_x + 10, b.hi_y + 10, b.hi_x + 20, b.hi_y + 20);
  auto result_or = proc.ViewpointIndependent(outside, 0.1);
  ASSERT_TRUE(result_or.ok());
  EXPECT_TRUE(result_or.value().vertices.empty());
  EXPECT_TRUE(result_or.value().triangles.empty());
}

TEST_F(DmQueryTest, StatsArepopulated) {
  DmQueryProcessor proc(store_);
  ASSERT_TRUE(env_->FlushAll().ok());
  auto result_or =
      proc.ViewpointIndependent(Roi(0.2, 0.2, 0.8, 0.8),
                                0.1 * scene_->tree.max_lod());
  ASSERT_TRUE(result_or.ok());
  const QueryStats& s = result_or.value().stats;
  EXPECT_GT(s.disk_accesses, 0);
  EXPECT_GT(s.nodes_fetched, 0);
  EXPECT_EQ(s.range_queries, 1);
}

TEST(ViewQueryTest, RequiredEInterpolatesAcrossRoi) {
  ViewQuery q;
  q.roi = Rect::Of(0, 0, 10, 20);
  q.e_min = 1.0;
  q.e_max = 5.0;
  q.gradient_along_y = true;
  EXPECT_DOUBLE_EQ(q.RequiredE(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(q.RequiredE(5, 20), 5.0);
  EXPECT_DOUBLE_EQ(q.RequiredE(5, 10), 3.0);
  EXPECT_DOUBLE_EQ(q.RequiredE(5, -100), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(q.RequiredE(5, 100), 5.0);
}

TEST(ViewQueryTest, FromAngleSpansUpToDatasetMax) {
  const Rect roi = Rect::Of(0, 0, 100, 100);
  const double max_lod = 50.0;
  const ViewQuery q0 = ViewQuery::FromAngle(roi, 1.0, 0.0, max_lod);
  EXPECT_DOUBLE_EQ(q0.e_max, 1.0);  // flat plane
  const ViewQuery q1 = ViewQuery::FromAngle(roi, 1.0, 1.0, max_lod);
  EXPECT_NEAR(q1.e_max, std::min(1.0 + max_lod, max_lod), 1e-9);
  const ViewQuery qh = ViewQuery::FromAngle(roi, 1.0, 0.5, max_lod);
  EXPECT_GT(qh.e_max, q0.e_max);
  EXPECT_LT(qh.e_max, q1.e_max);
}


TEST_F(DmQueryTest, PerspectiveMatchesPositionRestrictedRefinement) {
  // Viewer in the ROI corner, screen-space-error rule e <= E * d.
  DmQueryProcessor proc(store_);
  const Rect roi = Roi(0.1, 0.1, 0.9, 0.9);
  PerspectiveQuery q;
  q.roi = roi;
  q.viewer = Point2{roi.lo_x, roi.lo_y};
  q.tolerance = 0.3 * scene_->tree.max_lod() /
                std::max(roi.width(), roi.height());
  q.e_floor = 0.0;
  q.e_cap = scene_->tree.max_lod();

  auto result_or = proc.Perspective(q);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  const DmQueryResult& r = result_or.value();
  ASSERT_FALSE(r.vertices.empty());

  // Mirror of the position-restricted refinement, radial field.
  double e_lo = 0;
  double e_hi = 0;
  q.Range(&e_lo, &e_hi);
  std::vector<VertexId> expected;
  std::vector<VertexId> work;
  for (const PmNode& n : scene_->tree.nodes()) {
    if (n.AliveAt(e_hi) && roi.Contains(n.pos.x, n.pos.y)) {
      work.push_back(n.id);
    }
  }
  while (!work.empty()) {
    const PmNode& n = scene_->tree.node(work.back());
    work.pop_back();
    const double req = q.RequiredE(n.pos.x, n.pos.y);
    if (n.e_low > req && !n.is_leaf()) {
      bool any = false;
      for (VertexId c : {n.child1, n.child2}) {
        const PmNode& cn = scene_->tree.node(c);
        if (roi.Contains(cn.pos.x, cn.pos.y)) {
          work.push_back(c);
          any = true;
        }
      }
      if (!any) expected.push_back(n.id);
      continue;
    }
    expected.push_back(n.id);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(r.vertices, expected);

  // And the mesh must be finer near the viewer: compare the average
  // LOD interval floor of vertices in the near and far quarters.
  double near_sum = 0;
  double far_sum = 0;
  int near_n = 0;
  int far_n = 0;
  for (VertexId v : r.vertices) {
    const PmNode& n = scene_->tree.node(v);
    const double d = DistanceXY(n.pos,
                                Point3{q.viewer.x, q.viewer.y, 0});
    const double dmax = std::sqrt(roi.width() * roi.width() +
                                  roi.height() * roi.height());
    if (d < dmax * 0.25) {
      near_sum += n.e_low;
      ++near_n;
    } else if (d > dmax * 0.6) {
      far_sum += n.e_low;
      ++far_n;
    }
  }
  ASSERT_GT(near_n, 0);
  ASSERT_GT(far_n, 0);
  EXPECT_LT(near_sum / near_n, far_sum / far_n);
}

TEST_F(DmQueryTest, PerspectiveRangeBracketsRequiredE) {
  PerspectiveQuery q;
  q.roi = Rect::Of(0, 0, 10, 10);
  q.viewer = Point2{-5, 5};  // outside, west of the ROI
  q.tolerance = 2.0;
  q.e_floor = 1.0;
  q.e_cap = 100.0;
  double lo = 0;
  double hi = 0;
  q.Range(&lo, &hi);
  // Nearest ROI point is (0, 5) at distance 5; farthest corner at
  // sqrt(15^2 + 5^2).
  EXPECT_DOUBLE_EQ(lo, 1.0 + 2.0 * 5.0);
  EXPECT_DOUBLE_EQ(hi, 1.0 + 2.0 * std::sqrt(15.0 * 15.0 + 5.0 * 5.0));
  for (double x : {0.0, 3.0, 10.0}) {
    for (double y : {0.0, 5.0, 10.0}) {
      const double e = q.RequiredE(x, y);
      EXPECT_GE(e, lo);
      EXPECT_LE(e, hi);
    }
  }
}

TEST_F(DmQueryTest, GradientAlongXBehavesSymmetrically) {
  DmQueryProcessor proc(store_);
  const Rect roi = Roi(0.1, 0.1, 0.9, 0.9);
  ViewQuery q;
  q.roi = roi;
  q.e_min = 0.0;
  q.e_max = 0.3 * scene_->tree.max_lod();
  q.gradient_along_y = false;
  auto r_or = proc.SingleBase(q);
  ASSERT_TRUE(r_or.ok());
  const DmQueryResult& r = r_or.value();
  ASSERT_FALSE(r.vertices.empty());
  // Finer (lower interval) vertices concentrate at low x.
  double lo_x_sum = 0;
  double hi_x_sum = 0;
  int lo_n = 0;
  int hi_n = 0;
  for (VertexId v : r.vertices) {
    const PmNode& n = scene_->tree.node(v);
    if (n.pos.x < roi.lo_x + roi.width() * 0.3) {
      lo_x_sum += n.e_low;
      ++lo_n;
    } else if (n.pos.x > roi.lo_x + roi.width() * 0.7) {
      hi_x_sum += n.e_low;
      ++hi_n;
    }
  }
  ASSERT_GT(lo_n, 0);
  ASSERT_GT(hi_n, 0);
  EXPECT_LT(lo_x_sum / lo_n, hi_x_sum / hi_n);
  // Multi-base agrees with single-base on the x-gradient too (up to
  // the one-generation slice-boundary slack).
  auto mb_or = proc.MultiBase(q);
  ASSERT_TRUE(mb_or.ok());
  EXPECT_GE(mb_or.value().vertices.size() + 3, r.vertices.size() * 4 / 5);
}

}  // namespace
}  // namespace dm
