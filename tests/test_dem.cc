#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dem/crater.h"
#include "dem/dem_io.h"
#include "dem/fractal.h"
#include "test_util.h"

namespace dm {
namespace {

TEST(DemGridTest, IndexingAndBounds) {
  DemGrid g(4, 3);
  EXPECT_EQ(g.num_points(), 12);
  g.set(3, 2, 7.5);
  EXPECT_EQ(g.at(3, 2), 7.5);
  const Point3 p = g.PointAt(3, 2);
  EXPECT_EQ(p.x, 3.0);
  EXPECT_EQ(p.y, 2.0);
  EXPECT_EQ(p.z, 7.5);
  EXPECT_EQ(g.Bounds().hi_x, 3.0);
  EXPECT_EQ(g.Bounds().hi_y, 2.0);
}

TEST(DemGridTest, BilinearSample) {
  DemGrid g(2, 2);
  g.set(0, 0, 0);
  g.set(1, 0, 10);
  g.set(0, 1, 20);
  g.set(1, 1, 30);
  EXPECT_DOUBLE_EQ(g.Sample(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.Sample(1, 1), 30.0);
  EXPECT_DOUBLE_EQ(g.Sample(0.5, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(g.Sample(0.5, 0.0), 5.0);
  // Clamped outside.
  EXPECT_DOUBLE_EQ(g.Sample(-3, -3), 0.0);
}

TEST(FractalTest, DeterministicAndSized) {
  FractalParams p;
  p.side = 65;
  p.seed = 11;
  const DemGrid a = GenerateFractalDem(p);
  const DemGrid b = GenerateFractalDem(p);
  EXPECT_EQ(a.width(), 65);
  EXPECT_EQ(a.height(), 65);
  EXPECT_EQ(a.data(), b.data());
  p.seed = 12;
  const DemGrid c = GenerateFractalDem(p);
  EXPECT_NE(a.data(), c.data());
}

TEST(FractalTest, NonPowerOfTwoSideIsCropped) {
  FractalParams p;
  p.side = 50;
  const DemGrid g = GenerateFractalDem(p);
  EXPECT_EQ(g.width(), 50);
  EXPECT_EQ(g.height(), 50);
}

TEST(FractalTest, HasRelief) {
  const DemGrid g = GenerateFractalDem({.side = 129, .seed = 42});
  double lo;
  double hi;
  g.ElevationRange(&lo, &hi);
  EXPECT_GT(hi - lo, 10.0);
}

TEST(CraterTest, RimIsHigherThanBowlAndPlain) {
  CraterParams p;
  p.side = 129;
  const DemGrid g = GenerateCraterDem(p);
  const int c = p.side / 2;
  const int rim = static_cast<int>(c + p.rim_radius_frac * c);
  const double bowl_z = g.at(c, c);
  const double rim_z = g.at(rim, c);
  const double plain_z = g.at(p.side - 1, c);
  EXPECT_GT(rim_z, bowl_z + 100.0);
  EXPECT_GT(rim_z, plain_z + 100.0);
}

TEST(DemIoTest, BinaryRoundTrip) {
  const DemGrid g = GenerateFractalDem({.side = 33, .seed = 5});
  const std::string path = dm::testing::TempDbPath("dem_io");
  ASSERT_TRUE(WriteDem(g, path).ok());
  auto r = ReadDem(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().data(), g.data());
  std::remove(path.c_str());
}

TEST(DemIoTest, ReadRejectsGarbage) {
  const std::string path = dm::testing::TempDbPath("dem_bad");
  {
    std::ofstream out(path);
    out << "not a dem file at all";
  }
  EXPECT_FALSE(ReadDem(path).ok());
  std::remove(path.c_str());
}

TEST(DemIoTest, ParsesEsriAsciiGrid) {
  const std::string path = dm::testing::TempDbPath("esri");
  {
    std::ofstream out(path);
    out << "ncols 3\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 30\n"
        << "NODATA_value -9999\n"
        << "1 2 3\n4 -9999 6\n";
  }
  auto r = ReadEsriAsciiGrid(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const DemGrid& g = r.value();
  EXPECT_EQ(g.width(), 3);
  EXPECT_EQ(g.height(), 2);
  // First file row is the northernmost: y = 1.
  EXPECT_EQ(g.at(0, 1), 1.0);
  EXPECT_EQ(g.at(2, 0), 6.0);
  // NODATA filled with the minimum valid elevation.
  EXPECT_EQ(g.at(1, 0), 1.0);
  std::remove(path.c_str());
}

TEST(DemIoTest, EsriMissingHeaderFails) {
  const std::string path = dm::testing::TempDbPath("esri_bad");
  {
    std::ofstream out(path);
    out << "cellsize 30\n1 2 3\n";
  }
  EXPECT_FALSE(ReadEsriAsciiGrid(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dm
