#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <utility>
#include <vector>

namespace dm {
namespace {

TEST(EffectiveThreadsTest, PositivePassesThrough) {
  EXPECT_EQ(EffectiveThreads(1), 1);
  EXPECT_EQ(EffectiveThreads(7), 7);
}

TEST(EffectiveThreadsTest, NonPositiveMeansHardware) {
  EXPECT_GE(EffectiveThreads(0), 1);
  EXPECT_GE(EffectiveThreads(-3), 1);
}

TEST(WorkerPoolTest, RunOnAllVisitsEveryIndexOnce) {
  for (int threads : {1, 2, 4}) {
    WorkerPool pool(threads);
    std::vector<std::atomic<int>> hits(static_cast<size_t>(threads));
    for (auto& h : hits) h.store(0);
    pool.RunOnAll([&](int worker) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, threads);
      hits[static_cast<size_t>(worker)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPoolTest, ReusableAcrossManyJobs) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) {
    pool.RunOnAll([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 3);
}

TEST(WorkerPoolTest, CondVarWaitLoopsSurviveChurn) {
  // tsan regression for the annotated CondVar wait loops in
  // WorkerPool::RunOnAll / WorkerLoop (common/parallel.cc). Rapid
  // generation bumps and pool teardown make workers race between
  // "asleep in work_cv_" and "checking generation_", which is exactly
  // where a mis-annotated or predicate-lambda wait would hide a data
  // race from the analysis. Run under -DDM_SANITIZE=thread in CI.
  for (int round = 0; round < 8; ++round) {
    WorkerPool pool(4);
    std::atomic<int> calls{0};
    for (int job = 0; job < 50; ++job) {
      pool.RunOnAll([&](int) { calls.fetch_add(1); });
    }
    EXPECT_EQ(calls.load(), 50 * 4);
  }  // ~WorkerPool joins mid-churn: exercises the stop_ wakeup path
}

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  WorkerPool pool(4);
  bool called = false;
  ParallelFor(pool, 0, 16, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleElement) {
  WorkerPool pool(4);
  std::vector<int> marks(1, 0);
  ParallelFor(pool, 1, 16, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) marks[static_cast<size_t>(i)]++;
  });
  EXPECT_EQ(marks[0], 1);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    for (int64_t n : {1, 5, 64, 1000, 1037}) {
      WorkerPool pool(threads);
      std::vector<std::atomic<int>> marks(static_cast<size_t>(n));
      for (auto& m : marks) m.store(0);
      ParallelFor(pool, n, 64, [&](int64_t begin, int64_t end) {
        ASSERT_LE(0, begin);
        ASSERT_LE(begin, end);
        ASSERT_LE(end, n);
        for (int64_t i = begin; i < end; ++i) {
          marks[static_cast<size_t>(i)].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(marks[static_cast<size_t>(i)].load(), 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  // The chunk decomposition itself (not just its union) must not
  // depend on the thread count, so per-chunk state such as arenas or
  // partial buffers stays deterministic.
  auto chunk_set = [](int threads) {
    WorkerPool pool(threads);
    std::vector<std::pair<int64_t, int64_t>> chunks;
    Mutex mu;
    ParallelFor(pool, 1000, 64, [&](int64_t begin, int64_t end) {
      MutexLock lock(mu);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto one = chunk_set(1);
  EXPECT_EQ(one, chunk_set(2));
  EXPECT_EQ(one, chunk_set(4));
  for (const auto& [begin, end] : one) {
    EXPECT_EQ(begin % 64, 0);
  }
}

TEST(ParallelStableSortTest, EmptyAndSingle) {
  WorkerPool pool(4);
  std::vector<int> empty;
  ParallelStableSort(pool, empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  ParallelStableSort(pool, one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(ParallelStableSortTest, MatchesStdStableSortLargeInput) {
  // Large enough to take the parallel path (kMinParallel = 8192).
  std::mt19937_64 rng(7);
  std::vector<uint32_t> input(50000);
  for (auto& x : input) x = static_cast<uint32_t>(rng() % 1000);
  std::vector<uint32_t> expected = input;
  std::stable_sort(expected.begin(), expected.end());
  for (int threads : {1, 2, 3, 4, 8}) {
    WorkerPool pool(threads);
    std::vector<uint32_t> v = input;
    ParallelStableSort(pool, v);
    EXPECT_EQ(v, expected) << "threads=" << threads;
  }
}

TEST(ParallelStableSortTest, StableOnTies) {
  // Sort (key, original_index) pairs by key only: stability requires
  // equal keys to keep ascending original indices, at any thread
  // count, including inputs big enough to hit the merge passes.
  std::mt19937_64 rng(13);
  std::vector<std::pair<int, int>> input(30000);
  for (int i = 0; i < static_cast<int>(input.size()); ++i) {
    input[static_cast<size_t>(i)] = {static_cast<int>(rng() % 8), i};
  }
  for (int threads : {1, 2, 4, 8}) {
    WorkerPool pool(threads);
    auto v = input;
    ParallelStableSort(pool, v, [](const auto& a, const auto& b) {
      return a.first < b.first;  // deliberately ignores .second
    });
    for (size_t i = 1; i < v.size(); ++i) {
      ASSERT_LE(v[i - 1].first, v[i].first);
      if (v[i - 1].first == v[i].first) {
        ASSERT_LT(v[i - 1].second, v[i].second)
            << "stability violated at " << i << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelStableSortTest, BitIdenticalAcrossThreadCounts) {
  std::mt19937_64 rng(99);
  std::vector<uint64_t> input(20000);
  for (auto& x : input) x = rng() % 64;
  WorkerPool pool1(1);
  std::vector<uint64_t> ref = input;
  ParallelStableSort(pool1, ref);
  for (int threads : {2, 4, 8}) {
    WorkerPool pool(threads);
    std::vector<uint64_t> v = input;
    ParallelStableSort(pool, v);
    EXPECT_EQ(v, ref) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace dm
