#!/usr/bin/env python3
"""Unit tests for tools/dm_lint.py.

Each test builds a tiny fake repository in a temp directory (the checks
key off repo-relative paths like src/storage/buffer_pool.cc) and runs
the importable lint_files() entry point on known-good and
seeded-violation snippets. Registered in ctest as test_dm_lint.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "tools"),
)

import dm_lint  # noqa: E402


class LintCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def lint(self, *paths):
        return dm_lint.lint_files(list(paths), self.root)

    def checks(self, findings):
        return [(f.check, f.line) for f in findings]


class DroppedStatusTest(LintCase):
    HEADER = "struct Status {};\nStatus SaveThing(int v);\n"

    def test_bare_call_flagged(self):
        h = self.write("src/x/x.h", self.HEADER)
        cc = self.write(
            "src/x/x.cc",
            "void F() {\n  SaveThing(1);\n}\n",
        )
        findings = self.lint(h, cc)
        self.assertEqual(self.checks(findings), [("dropped-status", 2)])

    def test_consumed_calls_clean(self):
        h = self.write("src/x/x.h", self.HEADER)
        cc = self.write(
            "src/x/x.cc",
            "Status G() {\n"
            "  auto st = SaveThing(1);\n"
            "  if (!SaveThing(2).ok()) return st;\n"
            "  (void)SaveThing(3);\n"
            "  return SaveThing(4);\n"
            "}\n",
        )
        self.assertEqual(self.lint(h, cc), [])

    def test_test_code_exempt(self):
        h = self.write("src/x/x.h", self.HEADER)
        cc = self.write("tests/test_x.cc", "void F() {\n  SaveThing(1);\n}\n")
        self.assertEqual(self.lint(h, cc), [])

    def test_ambiguous_name_skipped(self):
        # Insert returns Status in one class and void in another; a
        # name-based check cannot tell call sites apart, so it must
        # stay silent rather than false-positive.
        h = self.write(
            "src/x/x.h",
            "struct Status {};\nStatus Insert(int v);\nvoid Insert(long v);\n",
        )
        cc = self.write("src/x/x.cc", "void F() {\n  Insert(1);\n}\n")
        self.assertEqual(self.lint(h, cc), [])

    def test_wrapped_call_flagged(self):
        h = self.write("src/x/x.h", self.HEADER)
        cc = self.write(
            "src/x/x.cc",
            "void F() {\n  SaveThing(\n      42);\n}\n",
        )
        findings = self.lint(h, cc)
        self.assertEqual(self.checks(findings), [("dropped-status", 2)])


class HotPathAllocTest(LintCase):
    def test_alloc_in_hot_file_flagged(self):
        cc = self.write(
            "src/storage/buffer_pool.cc",
            "void F() {\n  auto p = std::make_unique<int>(1);\n}\n",
        )
        findings = self.lint(cc)
        self.assertEqual(self.checks(findings), [("hot-path-alloc", 2)])

    def test_alloc_in_cold_file_clean(self):
        cc = self.write(
            "src/storage/disk_manager.cc",
            "void F() {\n  auto p = std::make_unique<int>(1);\n}\n",
        )
        self.assertEqual(self.lint(cc), [])

    def test_store_fetch_path_only(self):
        cc = self.write(
            "src/dm/dm_store.cc",
            "void DmStore::Open() {\n"
            "  auto a = std::make_shared<int>(1);\n"  # cold: fine
            "}\n"
            "void DmStore::FetchNodes() {\n"
            "  auto b = std::make_shared<int>(2);\n"  # hot: flagged
            "}\n",
        )
        findings = self.lint(cc)
        self.assertEqual(self.checks(findings), [("hot-path-alloc", 5)])

    def test_comment_mention_clean(self):
        cc = self.write(
            "src/dm/dm_query.cc",
            "void F() {\n  // never call new here\n}\n",
        )
        self.assertEqual(self.lint(cc), [])


class RawMutexTest(LintCase):
    def test_std_mutex_flagged(self):
        cc = self.write(
            "src/x/x.cc",
            "#include <mutex>\nstd::mutex mu;\n"
            "void F() {\n  std::lock_guard<std::mutex> l(mu);\n}\n",
        )
        findings = self.lint(cc)
        self.assertEqual(
            self.checks(findings),
            [("raw-mutex", 2), ("raw-mutex", 4)],
        )

    def test_thread_annotations_home_exempt(self):
        h = self.write(
            "src/common/thread_annotations.h",
            "#include <mutex>\nclass Mutex { std::mutex mu_; };\n",
        )
        self.assertEqual(self.lint(h), [])

    def test_string_mention_clean(self):
        cc = self.write(
            "src/x/x.cc",
            'const char* kMsg = "std::mutex is banned";\n',
        )
        self.assertEqual(self.lint(cc), [])


class PinBalanceTest(LintCase):
    def test_pins_outside_pool_flagged(self):
        cc = self.write(
            "src/dm/dm_store.cc",
            "void DmStore::Hack(Frame& f) {\n  ++f.pins;\n}\n",
        )
        findings = self.lint(cc)
        self.assertEqual(self.checks(findings), [("pin-balance", 2)])

    def test_decrement_outside_unpin_flagged(self):
        cc = self.write(
            "src/storage/buffer_pool.cc",
            "void BufferPool::Unpin(Frame& f) {\n  --f.pins;\n}\n"
            "void BufferPool::Evict(Frame& f) {\n  --f.pins;\n}\n",
        )
        findings = self.lint(cc)
        self.assertEqual(self.checks(findings), [("pin-balance", 5)])

    def test_balanced_pool_clean(self):
        cc = self.write(
            "src/storage/buffer_pool.cc",
            "void BufferPool::Pin(Frame& f) {\n  ++f.pins;\n}\n"
            "void BufferPool::Unpin(Frame& f) {\n  --f.pins;\n}\n",
        )
        self.assertEqual(self.lint(cc), [])


class SuppressionTest(LintCase):
    def test_justified_allow_suppresses(self):
        cc = self.write(
            "src/dm/dm_query.cc",
            "void F() {\n"
            "  // dm-lint: allow(hot-path-alloc) one-time warmup buffer\n"
            "  auto p = std::make_unique<int>(1);\n"
            "}\n",
        )
        self.assertEqual(self.lint(cc), [])

    def test_allow_above_wrapped_statement_suppresses(self):
        cc = self.write(
            "src/dm/dm_query.cc",
            "void F() {\n"
            "  // dm-lint: allow(hot-path-alloc) one-time warmup buffer\n"
            "  auto p =\n"
            "      std::make_unique<int>(1);\n"
            "}\n",
        )
        self.assertEqual(self.lint(cc), [])

    def test_unjustified_allow_reported(self):
        cc = self.write(
            "src/dm/dm_query.cc",
            "void F() {\n"
            "  // dm-lint: allow(hot-path-alloc)\n"
            "  auto p = std::make_unique<int>(1);\n"
            "}\n",
        )
        findings = self.lint(cc)
        self.assertEqual(
            [f.check for f in findings], ["bad-suppression"]
        )

    def test_wrong_check_allow_reported(self):
        cc = self.write(
            "src/dm/dm_query.cc",
            "void F() {\n"
            "  // dm-lint: allow(raw-mutex) not even the right check\n"
            "  auto p = std::make_unique<int>(1);\n"
            "}\n",
        )
        findings = self.lint(cc)
        self.assertEqual(
            sorted(f.check for f in findings),
            ["bad-suppression", "hot-path-alloc"],
        )

    def test_allow_does_not_leak_past_statement(self):
        # A suppression above an unrelated earlier statement must not
        # cover a later finding.
        cc = self.write(
            "src/dm/dm_query.cc",
            "void F() {\n"
            "  // dm-lint: allow(hot-path-alloc) covers only the next line\n"
            "  int unrelated = 0;\n"
            "  auto p = std::make_unique<int>(unrelated);\n"
            "}\n",
        )
        findings = self.lint(cc)
        self.assertEqual(self.checks(findings), [("hot-path-alloc", 4)])


class KnownGoodTreeTest(unittest.TestCase):
    def test_real_tree_is_clean(self):
        """The lint must exit clean on the repository itself — the same
        invariant CI enforces, kept here so a local ctest run catches a
        violation before push."""
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        paths = []
        for sub in ("src", "tools"):
            for dirpath, _dirs, files in os.walk(
                os.path.join(repo_root, sub)
            ):
                for name in files:
                    if name.endswith((".h", ".cc")):
                        paths.append(os.path.join(dirpath, name))
        findings = dm_lint.lint_files(sorted(paths), repo_root)
        self.assertEqual(
            [f.render(repo_root) for f in findings], []
        )


if __name__ == "__main__":
    unittest.main()
