// Unit tests for the query hot-path machinery added with the
// decoded-node cache: the bump arena, the open-addressing flat hash
// containers, the NodeCache itself, and end-to-end equivalence of
// query results with the cache and arena toggled.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "dm/node_cache.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::OpenTempEnv;
using testing::Scene;

// --- Arena -----------------------------------------------------------------

TEST(ArenaTest, AllocatesAlignedAndGrows) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  void* a = arena.Allocate(10, 8);
  void* b = arena.Allocate(100, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 16, 0u);
  EXPECT_GE(arena.bytes_used(), 110u);
  // Far past the first block: must chain new blocks, not crash.
  for (int i = 0; i < 64; ++i) {
    void* p = arena.Allocate(8192, 8);
    ASSERT_NE(p, nullptr);
    std::fill_n(static_cast<uint8_t*>(p), 8192, 0xAB);  // must be writable
  }
}

TEST(ArenaTest, ResetKeepsCapacityAndReusesIt) {
  Arena arena;
  (void)arena.Allocate(64 << 10, 8);
  const size_t reserved = arena.bytes_reserved();
  const int64_t blocks = arena.block_allocations();
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_LE(arena.bytes_reserved(), reserved);
  // Steady state: same-size allocation after Reset must not allocate
  // a new block from the heap.
  (void)arena.Allocate(32 << 10, 8);
  EXPECT_EQ(arena.block_allocations(), blocks);
}

TEST(ArenaTest, AllocatorFallsBackToHeapWithoutArena) {
  // ArenaAllocator<T> with no arena is a plain heap allocator — the
  // container types can be shared between arena-on and arena-off
  // paths.
  std::vector<int, ArenaAllocator<int>> v;  // default: arena == nullptr
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999);

  Arena arena;
  std::vector<int, ArenaAllocator<int>> w{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) w.push_back(i);
  EXPECT_EQ(w[999], 999);
  EXPECT_GT(arena.bytes_used(), 0u);
  EXPECT_FALSE(v.get_allocator() == w.get_allocator());
}

// --- FlatHashMap / FlatHashSet ----------------------------------------------

TEST(FlatHashTest, MapInsertFindReserve) {
  FlatHashMap<int64_t, std::string> m(/*empty_key=*/-1, nullptr);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(42), nullptr);
  m.FindOrEmplace(42) = "a";
  m.FindOrEmplace(7) = "b";
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), "a");
  // FindOrEmplace on an existing key returns the same slot.
  m.FindOrEmplace(42) += "x";
  EXPECT_EQ(*m.find(42), "ax");
  EXPECT_EQ(m.size(), 2u);

  // Growth past the load factor keeps every element findable.
  for (int64_t i = 0; i < 5000; ++i) m.FindOrEmplace(i) = std::to_string(i);
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_NE(m.find(i), nullptr) << i;
    EXPECT_EQ(*m.find(i), std::to_string(i));
  }
  EXPECT_EQ(m.find(999999), nullptr);
}

TEST(FlatHashTest, MapIterationCoversAllEntries) {
  Arena arena;
  FlatHashMap<int64_t, int64_t> m(-1, &arena);
  m.reserve(100);
  int64_t want_sum = 0;
  for (int64_t i = 1; i <= 100; ++i) {
    m.FindOrEmplace(i * 11) = i;
    want_sum += i;
  }
  int64_t sum = 0;
  size_t n = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, v * 11);
    sum += v;
    ++n;
  }
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(sum, want_sum);
}

TEST(FlatHashTest, SetInsertContains) {
  Arena arena;
  FlatHashSet<int64_t> s(-1, &arena);
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));  // duplicate
  EXPECT_TRUE(s.contains(3));
  for (int64_t i = 0; i < 3000; ++i) s.insert(i * 2);
  for (int64_t i = 0; i < 3000; ++i) {
    EXPECT_TRUE(s.contains(i * 2));
    if (i * 2 + 1 != 3) {  // 3 was inserted above
      EXPECT_FALSE(s.contains(i * 2 + 1));
    }
  }
}

TEST(FlatHashTest, ArenaBackedMapAllocatesFromArena) {
  Arena arena;
  const size_t used0 = arena.bytes_used();
  FlatHashMap<int64_t, int64_t> m(-1, &arena);
  m.reserve(512);
  for (int64_t i = 0; i < 512; ++i) m.FindOrEmplace(i) = i;
  EXPECT_GT(arena.bytes_used(), used0);
}

// --- NodeCache ---------------------------------------------------------------

NodeRef MakeNode(VertexId id, std::initializer_list<VertexId> conns = {}) {
  DmNode n;
  n.id = id;
  n.pos = Point3{static_cast<double>(id), 0.0, 0.0};
  n.connections.assign(conns.begin(), conns.end());
  return std::make_shared<const DmNode>(std::move(n));
}

TEST(NodeCacheTest, LookupMissThenHit) {
  NodeCache cache(1 << 20, 2);
  EXPECT_EQ(cache.Lookup(5), nullptr);
  cache.Insert(5, MakeNode(5));
  NodeRef hit = cache.Lookup(5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 5);
  const NodeCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.entries, 1);
  EXPECT_GT(st.bytes, 0);
}

TEST(NodeCacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  // A budget that holds only a handful of nodes per shard; one shard
  // makes the LRU order deterministic.
  NodeCache cache(4 * (sizeof(DmNode) + 96 + 64), 1);
  const int n = 32;
  for (VertexId i = 0; i < n; ++i) {
    cache.Insert(static_cast<uint64_t>(i), MakeNode(i, {1, 2, 3}));
  }
  const NodeCacheStats st = cache.stats();
  EXPECT_GT(st.evictions, 0);
  EXPECT_LT(st.entries, n);
  EXPECT_LE(st.bytes, static_cast<int64_t>(4 * (sizeof(DmNode) + 96 + 64)));
  // The most recently inserted key must still be resident.
  EXPECT_NE(cache.Lookup(n - 1), nullptr);
  // The oldest must be gone.
  EXPECT_EQ(cache.Lookup(0), nullptr);
}

TEST(NodeCacheTest, InsertIsFirstWinsAndSharesOwnership) {
  NodeCache cache(1 << 20, 1);
  NodeRef a = MakeNode(9, {1});
  NodeRef b = MakeNode(9, {2});
  cache.Insert(9, a);
  cache.Insert(9, b);  // duplicate key: first insert wins
  NodeRef got = cache.Lookup(9);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got.get(), a.get());
  // The cached node survives eviction of our local refs.
  a.reset();
  b.reset();
  EXPECT_EQ(cache.Lookup(9)->id, 9);
}

TEST(NodeCacheTest, ClearEmptiesEverything) {
  NodeCache cache(1 << 20, 4);
  for (VertexId i = 0; i < 50; ++i) {
    cache.Insert(static_cast<uint64_t>(i), MakeNode(i));
  }
  cache.Clear();
  const NodeCacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 0);
  EXPECT_EQ(st.bytes, 0);
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(NodeCacheTest, OversizeEntryIsSkipped) {
  NodeCache cache(64, 1);  // budget below a single node's footprint
  cache.Insert(1, MakeNode(1, {1, 2, 3, 4, 5}));
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
}

// --- End-to-end: cache and arena do not change results ----------------------

class HotPathQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scene_ = new Scene(MakeScene(33));
    env_ = OpenTempEnv("hotpath").release();
    auto store_or =
        DmStore::Build(env_, scene_->base, scene_->tree, scene_->sr);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    store_ = new DmStore(std::move(store_or).value());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete env_;
    delete scene_;
  }

  static Scene* scene_;
  static DbEnv* env_;
  static DmStore* store_;
};
Scene* HotPathQueryTest::scene_ = nullptr;
DbEnv* HotPathQueryTest::env_ = nullptr;
DmStore* HotPathQueryTest::store_ = nullptr;

void ExpectSameGeometry(const DmQueryResult& a, const DmQueryResult& b) {
  EXPECT_EQ(a.vertices, b.vertices);
  ASSERT_EQ(a.triangles.size(), b.triangles.size());
  for (size_t k = 0; k < a.triangles.size(); ++k) {
    EXPECT_EQ(a.triangles[k].v, b.triangles[k].v) << "triangle " << k;
  }
}

TEST_F(HotPathQueryTest, CacheAndArenaPreserveGeometry) {
  const Rect b = scene_->tree.bounds();
  const Rect roi = Rect::Of(b.lo_x + 0.1 * b.width(), b.lo_y + 0.1 * b.height(),
                            b.lo_x + 0.9 * b.width(), b.lo_y + 0.9 * b.height());
  const double lod = scene_->tree.max_lod();

  // Reference: cache off, arena off (the seed configuration).
  store_->EnableNodeCache(0);
  DmQueryOptions off;
  off.use_arena = false;
  std::vector<DmQueryResult> ref;
  {
    DmQueryProcessor proc(store_, off);
    for (double frac : {0.02, 0.1, 0.4}) {
      auto r = proc.ViewpointIndependent(roi, frac * lod);
      ASSERT_TRUE(r.ok());
      ref.push_back(std::move(r).value());
    }
    ViewQuery vq;
    vq.roi = roi;
    vq.e_min = 0.01 * lod;
    vq.e_max = 0.3 * lod;
    auto r = proc.SingleBase(vq);
    ASSERT_TRUE(r.ok());
    ref.push_back(std::move(r).value());
    auto m = proc.MultiBase(vq);
    ASSERT_TRUE(m.ok());
    ref.push_back(std::move(m).value());
  }

  // All three other configurations must produce byte-identical
  // geometry — and with the cache enabled the second pass must hit.
  for (const bool use_cache : {false, true}) {
    for (const bool use_arena : {false, true}) {
      if (!use_cache && !use_arena) continue;
      store_->EnableNodeCache(use_cache ? (8u << 20) : 0);
      DmQueryOptions qo;
      qo.use_arena = use_arena;
      for (int pass = 0; pass < 2; ++pass) {
        DmQueryProcessor proc(store_, qo);
        size_t k = 0;
        for (double frac : {0.02, 0.1, 0.4}) {
          auto r = proc.ViewpointIndependent(roi, frac * lod);
          ASSERT_TRUE(r.ok());
          ExpectSameGeometry(r.value(), ref[k]);
          ++k;
        }
        ViewQuery vq;
        vq.roi = roi;
        vq.e_min = 0.01 * lod;
        vq.e_max = 0.3 * lod;
        auto r = proc.SingleBase(vq);
        ASSERT_TRUE(r.ok());
        ExpectSameGeometry(r.value(), ref[k]);
        ++k;
        auto m = proc.MultiBase(vq);
        ASSERT_TRUE(m.ok());
        ExpectSameGeometry(m.value(), ref[k]);
        if (use_cache && pass == 1) {
          EXPECT_GT(m.value().stats.cache_hits, 0);
          EXPECT_EQ(m.value().stats.cache_misses, 0);
        }
      }
    }
  }
  store_->EnableNodeCache(0);
}

TEST_F(HotPathQueryTest, StatsReportDiskReadSavings) {
  const Rect b = scene_->tree.bounds();
  const Rect roi = Rect::Of(b.lo_x, b.lo_y, b.lo_x + 0.5 * b.width(),
                            b.lo_y + 0.5 * b.height());
  const double e = 0.1 * scene_->tree.max_lod();

  store_->EnableNodeCache(8u << 20);
  DmQueryProcessor proc(store_);
  ASSERT_TRUE(proc.ViewpointIndependent(roi, e).ok());  // warm
  ASSERT_TRUE(store_->env()->FlushDirty().ok());

  auto r = proc.ViewpointIndependent(roi, e);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().stats.cache_hits, 0);
  EXPECT_EQ(r.value().stats.cache_misses, 0);

  const NodeCacheStats cs = store_->node_cache_stats();
  EXPECT_GT(cs.hits, 0);
  EXPECT_GT(cs.entries, 0);
  store_->EnableNodeCache(0);
  EXPECT_EQ(store_->node_cache_stats().entries, 0);
}

}  // namespace
}  // namespace dm
