#include "index/btree/bplus_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "test_util.h"

namespace dm {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = dm::testing::OpenTempEnv("btree", DbOptions{.page_size = 512,
                                                       .pool_pages = 64});
    tree_.emplace(std::move(BPlusTree::Create(env_.get())).ValueOrDie());
  }
  std::unique_ptr<DbEnv> env_;
  std::optional<BPlusTree> tree_;
};

TEST_F(BPlusTreeTest, InsertAndGet) {
  ASSERT_TRUE(tree_->Insert(10, 100).ok());
  ASSERT_TRUE(tree_->Insert(-5, 55).ok());
  auto v = std::move(tree_->Get(10)).ValueOrDie();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 100u);
  EXPECT_EQ(*std::move(tree_->Get(-5)).ValueOrDie(), 55u);
  EXPECT_FALSE(std::move(tree_->Get(11)).ValueOrDie().has_value());
  EXPECT_EQ(tree_->size(), 2);
}

TEST_F(BPlusTreeTest, OverwriteKeepsSizeStable) {
  ASSERT_TRUE(tree_->Insert(1, 10).ok());
  ASSERT_TRUE(tree_->Insert(1, 20).ok());
  EXPECT_EQ(tree_->size(), 1);
  EXPECT_EQ(*std::move(tree_->Get(1)).ValueOrDie(), 20u);
}

TEST_F(BPlusTreeTest, ManyInsertsSplitAndStayConsistent) {
  const int n = 5000;  // forces multi-level splits at 512B pages
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_->Insert(i * 7 % n, static_cast<uint64_t>(i)).ok());
  }
  EXPECT_GT(tree_->height(), 1);
  for (int k = 0; k < n; ++k) {
    auto v = std::move(tree_->Get(k)).ValueOrDie();
    ASSERT_TRUE(v.has_value()) << k;
  }
}

TEST_F(BPlusTreeTest, ScanReturnsSortedRange) {
  for (int i = 100; i > 0; --i) {
    ASSERT_TRUE(tree_->Insert(i * 2, static_cast<uint64_t>(i)).ok());
  }
  std::vector<int64_t> keys;
  ASSERT_TRUE(tree_->Scan(30, 60, [&](int64_t k, uint64_t) {
                     keys.push_back(k);
                     return true;
                   }).ok());
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 30);
  EXPECT_EQ(keys.back(), 60);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 16u);  // 30,32,...,60
}

TEST_F(BPlusTreeTest, ScanEarlyStop) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_->Insert(i, static_cast<uint64_t>(i)).ok());
  }
  int seen = 0;
  ASSERT_TRUE(tree_->Scan(0, 100, [&](int64_t, uint64_t) {
                     return ++seen < 5;
                   }).ok());
  EXPECT_EQ(seen, 5);
}

TEST_F(BPlusTreeTest, RandomizedAgainstStdMap) {
  Rng rng(777);
  std::map<int64_t, uint64_t> model;
  for (int i = 0; i < 4000; ++i) {
    const int64_t k = rng.UniformInt(-2000, 2000);
    const uint64_t v = rng.Next();
    ASSERT_TRUE(tree_->Insert(k, v).ok());
    model[k] = v;
  }
  EXPECT_EQ(tree_->size(), static_cast<int64_t>(model.size()));
  for (const auto& [k, v] : model) {
    auto got = std::move(tree_->Get(k)).ValueOrDie();
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, v) << k;
  }
  // Full scan equals the model.
  std::vector<std::pair<int64_t, uint64_t>> scanned;
  ASSERT_TRUE(tree_->Scan(-3000, 3000, [&](int64_t k, uint64_t v) {
                     scanned.emplace_back(k, v);
                     return true;
                   }).ok());
  EXPECT_EQ(scanned.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : scanned) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST_F(BPlusTreeTest, SurvivesPoolFlushes) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Insert(i, static_cast<uint64_t>(i * 3)).ok());
    if (i % 100 == 0) {
      ASSERT_TRUE(env_->FlushAll().ok());
    }
  }
  ASSERT_TRUE(env_->FlushAll().ok());
  env_->ResetStats();
  EXPECT_EQ(*std::move(tree_->Get(999)).ValueOrDie(), 2997u);
  // Cold lookup did real I/O proportional to the height.
  EXPECT_GT(env_->stats().disk_reads, 0);
  EXPECT_LE(env_->stats().disk_reads, 5);
}

}  // namespace
}  // namespace dm
