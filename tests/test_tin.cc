// End-to-end pipeline over an *irregular* mesh (TIN): the paper's
// surfaces are "a regular or irregular mesh"; everything downstream of
// triangulation is representation-agnostic, which this suite proves by
// re-checking the core invariants on Delaunay-triangulated scattered
// samples.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dem/fractal.h"
#include "dm/connectivity.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "mesh/delaunay.h"
#include "mesh/validate.h"
#include "pm/cut_replay.h"
#include "pm/pm_tree.h"
#include "simplify/simplifier.h"
#include "test_util.h"

namespace dm {
namespace {

class TinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Scattered sampling of a fractal surface.
    const DemGrid dem = GenerateFractalDem({.side = 65, .seed = 99});
    Rng rng(17);
    std::vector<Point3> pts;
    for (int i = 0; i < 1200; ++i) {
      const double x = rng.Uniform(0, 64);
      const double y = rng.Uniform(0, 64);
      pts.push_back(Point3{x, y, dem.Sample(x, y)});
    }
    auto mesh_or = DelaunayTriangulate(std::move(pts));
    ASSERT_TRUE(mesh_or.ok()) << mesh_or.status().ToString();
    base_ = new TriangleMesh(std::move(mesh_or).value());
    sr_ = new SimplifyResult(SimplifyMesh(*base_));
    auto tree_or = PmTree::Build(*base_, *sr_);
    ASSERT_TRUE(tree_or.ok()) << tree_or.status().ToString();
    tree_ = new PmTree(std::move(tree_or).value());
  }
  static void TearDownTestSuite() {
    delete tree_;
    delete sr_;
    delete base_;
  }
  static TriangleMesh* base_;
  static SimplifyResult* sr_;
  static PmTree* tree_;
};
TriangleMesh* TinTest::base_ = nullptr;
SimplifyResult* TinTest::sr_ = nullptr;
PmTree* TinTest::tree_ = nullptr;

TEST_F(TinTest, SimplifierFullyCollapsesTheTin) {
  EXPECT_EQ(sr_->roots.size(), 1u);
  EXPECT_EQ(tree_->num_nodes(), 2 * tree_->num_leaves() - 1);
}

TEST_F(TinTest, IntervalsStillPartitionPaths) {
  for (VertexId leaf = 0; leaf < tree_->num_leaves(); leaf += 37) {
    double expected_low = 0.0;
    for (VertexId v = leaf; v != kInvalidVertex; v = tree_->node(v).parent) {
      EXPECT_EQ(tree_->node(v).e_low, expected_low);
      expected_low = tree_->node(v).e_high;
    }
  }
}

TEST_F(TinTest, ConnectionListsExactOnIrregularMesh) {
  const auto conn = BuildConnectionLists(*base_, *tree_, *sr_);
  for (double frac : {0.0, 0.03, 0.2, 0.6}) {
    const double e = frac * tree_->max_lod();
    const QuotientCut cut =
        ComputeUniformCut(*base_, *tree_, tree_->bounds(), e);
    const auto edge_list = cut.Edges();
    std::set<std::pair<VertexId, VertexId>> expected(edge_list.begin(),
                                                     edge_list.end());
    std::set<VertexId> alive(cut.vertices.begin(), cut.vertices.end());
    std::set<std::pair<VertexId, VertexId>> got;
    for (VertexId u : cut.vertices) {
      for (VertexId v : conn[static_cast<size_t>(u)]) {
        if (u < v && alive.count(v)) got.emplace(u, v);
      }
    }
    EXPECT_EQ(got, expected) << "e = " << e;
  }
}

TEST_F(TinTest, DmQueriesMatchSelectiveRefinementOnTin) {
  auto env = testing::OpenTempEnv("tin");
  auto store_or = DmStore::Build(env.get(), *base_, *tree_, *sr_);
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  DmQueryProcessor proc(&store_or.value());

  const Rect b = tree_->bounds();
  const Rect roi = Rect::Of(b.lo_x + b.width() * 0.2,
                            b.lo_y + b.height() * 0.2,
                            b.lo_x + b.width() * 0.8,
                            b.lo_y + b.height() * 0.8);
  for (double frac : {0.02, 0.15, 0.5}) {
    const double e = frac * tree_->max_lod();
    auto r_or = proc.ViewpointIndependent(roi, e);
    ASSERT_TRUE(r_or.ok());
    EXPECT_EQ(r_or.value().vertices, tree_->SelectiveRefine(roi, e));
  }

  ViewQuery q;
  q.roi = roi;
  q.e_min = 0.0;
  q.e_max = 0.4 * tree_->max_lod();
  auto sb_or = proc.SingleBase(q);
  ASSERT_TRUE(sb_or.ok());
  EXPECT_FALSE(sb_or.value().vertices.empty());
  const MeshStats stats =
      ComputeMeshStats(sb_or.value().vertices, sb_or.value().positions,
                       sb_or.value().triangles);
  EXPECT_EQ(stats.duplicate_triangles, 0);
  EXPECT_EQ(stats.nonmanifold_edges, 0);
}

}  // namespace
}  // namespace dm
