#include "pm/pm_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "pm/cut_replay.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::Scene;

class PmTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { scene_ = new Scene(MakeScene(33)); }
  static void TearDownTestSuite() {
    delete scene_;
    scene_ = nullptr;
  }
  static Scene* scene_;
};
Scene* PmTreeTest::scene_ = nullptr;

TEST_F(PmTreeTest, FullCollapseProducesSingleRoot) {
  EXPECT_EQ(scene_->sr.roots.size(), 1u);
  EXPECT_EQ(scene_->sr.forced_collapses, 0);
  // A full binary tree over n leaves has n - 1 internal nodes.
  EXPECT_EQ(scene_->tree.num_nodes(), 2 * scene_->tree.num_leaves() - 1);
}

TEST_F(PmTreeTest, NormalizationIsMonotoneUpThePaths) {
  const PmTree& tree = scene_->tree;
  for (const PmNode& n : tree.nodes()) {
    if (n.is_root()) {
      EXPECT_TRUE(std::isinf(n.e_high));
      continue;
    }
    const PmNode& p = tree.node(n.parent);
    EXPECT_GE(p.e_low, n.e_low) << "node " << n.id;
    EXPECT_EQ(n.e_high, p.e_low);
  }
}

TEST_F(PmTreeTest, LeavesHaveZeroLod) {
  for (const PmNode& n : scene_->tree.nodes()) {
    if (n.is_leaf()) {
      EXPECT_EQ(n.e_low, 0.0);
    }
  }
}

TEST_F(PmTreeTest, IntervalsPartitionEveryRootPath) {
  // Walking leaf -> root, intervals must tile [0, inf) exactly.
  const PmTree& tree = scene_->tree;
  for (VertexId leaf = 0; leaf < tree.num_leaves(); leaf += 17) {
    double expected_low = 0.0;
    VertexId v = leaf;
    while (v != kInvalidVertex) {
      const PmNode& n = tree.node(v);
      EXPECT_EQ(n.e_low, expected_low);
      expected_low = n.e_high;
      v = n.parent;
    }
    EXPECT_TRUE(std::isinf(expected_low));
  }
}

TEST_F(PmTreeTest, ExactlyOneAliveNodePerPathAtAnyLod) {
  const PmTree& tree = scene_->tree;
  for (double frac : {0.0, 0.01, 0.1, 0.5, 0.9}) {
    const double e = frac * tree.max_lod();
    for (VertexId leaf = 0; leaf < tree.num_leaves(); leaf += 23) {
      int alive = 0;
      for (VertexId v = leaf; v != kInvalidVertex; v = tree.node(v).parent) {
        if (tree.node(v).AliveAt(e)) ++alive;
      }
      EXPECT_EQ(alive, 1) << "leaf " << leaf << " e " << e;
    }
  }
}

TEST_F(PmTreeTest, FootprintsContainDescendantsAndSelf) {
  const PmTree& tree = scene_->tree;
  for (const PmNode& n : tree.nodes()) {
    EXPECT_TRUE(n.footprint.Contains(n.pos.x, n.pos.y)) << n.id;
    if (!n.is_leaf()) {
      EXPECT_TRUE(n.footprint.Contains(tree.node(n.child1).footprint));
      EXPECT_TRUE(n.footprint.Contains(tree.node(n.child2).footprint));
    }
  }
}

TEST_F(PmTreeTest, WingsAreNeverChildrenOrSelf) {
  const PmTree& tree = scene_->tree;
  for (const PmNode& n : tree.nodes()) {
    if (n.is_leaf()) continue;
    for (VertexId w : {n.wing1, n.wing2}) {
      if (w == kInvalidVertex) continue;
      EXPECT_NE(w, n.id);
      EXPECT_NE(w, n.child1);
      EXPECT_NE(w, n.child2);
    }
  }
}

TEST_F(PmTreeTest, SelectiveRefineMatchesBruteForceCut) {
  const PmTree& tree = scene_->tree;
  const Rect b = tree.bounds();
  const Rect roi = Rect::Of(b.lo_x + b.width() * 0.2, b.lo_y + b.height() * 0.3,
                            b.lo_x + b.width() * 0.7, b.lo_y + b.height() * 0.8);
  for (double frac : {0.0, 0.05, 0.3, 0.8}) {
    const double e = frac * tree.max_lod();
    const auto got = tree.SelectiveRefine(roi, e);
    std::vector<VertexId> expected;
    for (const PmNode& n : tree.nodes()) {
      if (n.AliveAt(e) && roi.Contains(n.pos.x, n.pos.y)) {
        expected.push_back(n.id);
      }
    }
    EXPECT_EQ(got, expected) << "e = " << e;
  }
}

TEST_F(PmTreeTest, SelectiveRefineViewMatchesBruteForce) {
  const PmTree& tree = scene_->tree;
  const Rect roi = tree.bounds();
  const double emax = tree.max_lod() * 0.4;
  auto required = [&](const Point3& p) {
    const double t = (p.y - roi.lo_y) / std::max(roi.height(), 1e-9);
    return emax * std::clamp(t, 0.0, 1.0);
  };
  const auto got = tree.SelectiveRefineView(roi, required);
  // Brute force: first node on each root path with e_low <= required.
  std::set<VertexId> expected;
  for (VertexId leaf = 0; leaf < tree.num_leaves(); ++leaf) {
    std::vector<VertexId> path;
    for (VertexId v = leaf; v != kInvalidVertex; v = tree.node(v).parent) {
      path.push_back(v);
    }
    // Walk from the root downwards.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      const PmNode& n = tree.node(*it);
      if (n.e_low <= required(n.pos) || n.is_leaf()) {
        if (roi.Contains(n.pos.x, n.pos.y)) expected.insert(*it);
        break;
      }
    }
  }
  EXPECT_EQ(std::set<VertexId>(got.begin(), got.end()), expected);
}

TEST_F(PmTreeTest, MeanAndMaxLod) {
  EXPECT_GT(scene_->tree.max_lod(), 0.0);
  EXPECT_GT(scene_->tree.mean_lod(), 0.0);
  EXPECT_LT(scene_->tree.mean_lod(), scene_->tree.max_lod());
}

TEST_F(PmTreeTest, BuildRejectsPartialCollapse) {
  Scene partial;
  partial.dem = GenerateFractalDem({.side = 17, .seed = 3});
  partial.base = TriangulateDem(partial.dem);
  SimplifyOptions opt;
  opt.target_vertices = 10;
  partial.sr = SimplifyMesh(partial.base, opt);
  auto tree_or = PmTree::Build(partial.base, partial.sr);
  EXPECT_FALSE(tree_or.ok());
  EXPECT_EQ(tree_or.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PmTreeTest, CutAncestorsAgreesWithAliveAt) {
  const PmTree& tree = scene_->tree;
  const double e = tree.max_lod() * 0.2;
  const auto anc = CutAncestors(tree, tree.num_leaves(), e);
  for (VertexId leaf = 0; leaf < tree.num_leaves(); leaf += 11) {
    const VertexId a = anc[static_cast<size_t>(leaf)];
    EXPECT_TRUE(tree.node(a).AliveAt(e));
    // And a is on the leaf's ancestor path.
    bool found = false;
    for (VertexId v = leaf; v != kInvalidVertex; v = tree.node(v).parent) {
      if (v == a) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(PmTreeTest, QuotientCutIsManifoldTriangulation) {
  const PmTree& tree = scene_->tree;
  for (double frac : {0.02, 0.1, 0.4}) {
    const double e = frac * tree.max_lod();
    const QuotientCut cut =
        ComputeUniformCut(scene_->base, tree, tree.bounds(), e);
    EXPECT_FALSE(cut.vertices.empty());
    // Adjacency symmetric.
    for (const auto& [u, nbrs] : cut.adjacency) {
      for (VertexId v : nbrs) {
        const auto& back = cut.adjacency.at(v);
        EXPECT_TRUE(std::binary_search(back.begin(), back.end(), u));
      }
    }
  }
}

TEST_F(PmTreeTest, QuotientCutAtZeroIsBaseMesh) {
  const PmTree& tree = scene_->tree;
  const QuotientCut cut =
      ComputeUniformCut(scene_->base, tree, tree.bounds(), 0.0);
  // At LOD 0 every leaf with a non-empty interval is its own ancestor;
  // leaves with empty intervals (zero-error collapses) are represented
  // by an ancestor. On random fractal terrain zero-error collapses are
  // rare; the cut must be nearly the full base mesh.
  EXPECT_GE(static_cast<int64_t>(cut.vertices.size()),
            scene_->tree.num_leaves() * 9 / 10);
}

}  // namespace
}  // namespace dm
