// Cross-seed property sweeps: the invariants the whole design rests on,
// re-verified over a grid of terrain shapes, sizes and seeds
// (parameterized gtest). Anything that only holds for one lucky seed
// fails here.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "dm/connectivity.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "pm/cut_replay.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::Scene;

// (side, seed, crater)
using Param = std::tuple<int, uint64_t, bool>;

class InvariantSweep : public ::testing::TestWithParam<Param> {
 protected:
  Scene MakeParamScene() const {
    const auto& [side, seed, crater] = GetParam();
    return MakeScene(side, seed, crater);
  }
};

TEST_P(InvariantSweep, PmConstructionInvariants) {
  const Scene s = MakeParamScene();
  // Full collapse into one root, no forced (non-manifold) collapses.
  EXPECT_EQ(s.sr.roots.size(), 1u);
  EXPECT_EQ(s.sr.forced_collapses, 0);
  EXPECT_EQ(s.tree.num_nodes(), 2 * s.tree.num_leaves() - 1);
  // Monotone normalized LODs; intervals tile [0, inf) on every path.
  for (VertexId leaf = 0; leaf < s.tree.num_leaves(); leaf += 7) {
    double expect_low = 0.0;
    for (VertexId v = leaf; v != kInvalidVertex;
         v = s.tree.node(v).parent) {
      const PmNode& n = s.tree.node(v);
      EXPECT_EQ(n.e_low, expect_low);
      EXPECT_LE(n.e_low, n.e_high);
      expect_low = n.e_high;
    }
    EXPECT_TRUE(std::isinf(expect_low));
  }
}

TEST_P(InvariantSweep, ConnectionListsExactAtEveryLod) {
  const Scene s = MakeParamScene();
  const auto conn = BuildConnectionLists(s.base, s.tree, s.sr);
  for (double frac : {0.0, 0.02, 0.2, 0.7}) {
    const double e = frac * s.tree.max_lod();
    const QuotientCut cut =
        ComputeUniformCut(s.base, s.tree, s.tree.bounds(), e);
    const auto edge_list = cut.Edges();
    std::set<std::pair<VertexId, VertexId>> expected(edge_list.begin(),
                                                     edge_list.end());
    std::set<VertexId> alive(cut.vertices.begin(), cut.vertices.end());
    std::set<std::pair<VertexId, VertexId>> got;
    for (VertexId u : cut.vertices) {
      for (VertexId v : conn[static_cast<size_t>(u)]) {
        if (u < v && alive.count(v)) got.emplace(u, v);
      }
    }
    EXPECT_EQ(got, expected)
        << "side=" << std::get<0>(GetParam())
        << " seed=" << std::get<1>(GetParam()) << " e=" << e;
  }
}

TEST_P(InvariantSweep, DmQueriesEqualSelectiveRefinement) {
  const Scene s = MakeParamScene();
  auto env = testing::OpenTempEnv(
      "prop_" + std::to_string(std::get<0>(GetParam())) +
      std::to_string(std::get<1>(GetParam())));
  auto store_or = DmStore::Build(env.get(), s.base, s.tree, s.sr);
  ASSERT_TRUE(store_or.ok());
  DmQueryProcessor proc(&store_or.value());

  const Rect b = s.tree.bounds();
  const Rect rois[] = {
      b,
      Rect::Of(b.lo_x + b.width() * 0.3, b.lo_y + b.height() * 0.1,
               b.lo_x + b.width() * 0.7, b.lo_y + b.height() * 0.6),
  };
  for (const Rect& roi : rois) {
    for (double frac : {0.01, 0.2}) {
      const double e = frac * s.tree.max_lod();
      auto r_or = proc.ViewpointIndependent(roi, e);
      ASSERT_TRUE(r_or.ok());
      EXPECT_EQ(r_or.value().vertices, s.tree.SelectiveRefine(roi, e))
          << "e=" << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TerrainGrid, InvariantSweep,
    ::testing::Values(Param{17, 1, false}, Param{17, 2, true},
                      Param{25, 3, false}, Param{25, 5, true},
                      Param{33, 8, false}, Param{33, 13, true},
                      Param{41, 21, false}, Param{49, 34, true}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "side" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_crater" : "_fractal");
    });

}  // namespace
}  // namespace dm
