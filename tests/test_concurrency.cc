// Concurrency tests: the sharded buffer pool under multi-threaded
// Fetch/NewPage/FlushDirty traffic (run under the tsan preset in CI),
// and serial-vs-parallel equivalence of the QueryService.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "server/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/db_env.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::OpenTempEnv;
using testing::Scene;

// ---------------------------------------------------------------------------
// Buffer pool hammer
// ---------------------------------------------------------------------------

// Deterministic per-page stamp covering the whole page.
void StampPage(uint8_t* data, uint32_t page_size, PageId id) {
  for (uint32_t i = 0; i < page_size; ++i) {
    data[i] = static_cast<uint8_t>((id * 131 + i * 31) & 0xff);
  }
}

bool CheckStamp(const uint8_t* data, uint32_t page_size, PageId id) {
  for (uint32_t i = 0; i < page_size; ++i) {
    if (data[i] != static_cast<uint8_t>((id * 131 + i * 31) & 0xff)) {
      return false;
    }
  }
  return true;
}

TEST(ConcurrencyTest, ShardedPoolSurvivesConcurrentTraffic) {
  DbOptions options;
  options.pool_pages = 64;  // far below the 256-page working set
  options.pool_shards = 8;
  auto env = OpenTempEnv("concurrency_pool", options);
  BufferPool& pool = env->pool();

  // Pre-populate shared pages single-threaded; readers below only
  // ever see this frozen set, mirroring the immutable-after-build
  // contract of the stores.
  constexpr PageId kSharedPages = 256;
  for (PageId id = 0; id < kSharedPages; ++id) {
    auto guard_or = pool.NewPage();
    ASSERT_TRUE(guard_or.ok()) << guard_or.status().ToString();
    PageGuard g = std::move(guard_or).value();
    ASSERT_EQ(g.id(), id);
    StampPage(g.data(), env->page_size(), id);
    g.MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_EQ(pool.pinned_frames(), 0);

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 2000;
  std::atomic<int> bad_pages{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1234 + static_cast<uint64_t>(t));
      // Each thread also owns a handful of private pages it mutates;
      // no other thread touches them.
      std::vector<PageId> mine;
      for (int i = 0; i < kItersPerThread; ++i) {
        const uint64_t dice = rng.NextBelow(100);
        if (dice < 2 && mine.size() < 8) {
          auto guard_or = pool.NewPage();
          if (!guard_or.ok()) {
            failures.fetch_add(1);
            continue;
          }
          PageGuard g = std::move(guard_or).value();
          StampPage(g.data(), env->page_size(), g.id());
          g.MarkDirty();
          mine.push_back(g.id());
        } else if (dice < 4) {
          if (!pool.FlushDirty().ok()) failures.fetch_add(1);
        } else if (dice < 10 && !mine.empty()) {
          const PageId id = mine[rng.NextBelow(mine.size())];
          auto guard_or = pool.Fetch(id);
          if (!guard_or.ok()) {
            failures.fetch_add(1);
            continue;
          }
          PageGuard g = std::move(guard_or).value();
          if (!CheckStamp(g.data(), env->page_size(), id)) {
            bad_pages.fetch_add(1);
          }
          // Rewrite the same bytes: exercises dirty write-back of a
          // page another thread may concurrently flush (skip-pinned
          // keeps that safe).
          StampPage(g.data(), env->page_size(), id);
          g.MarkDirty();
        } else if (dice < 30) {
          // Batched fetch of a short run of shared pages.
          const PageId first = rng.NextBelow(kSharedPages - 4);
          const uint32_t n = 1 + static_cast<uint32_t>(rng.NextBelow(4));
          std::vector<PageGuard> run;
          const Status s = pool.FetchRun(first, n, &run);
          if (!s.ok()) {
            failures.fetch_add(1);
            continue;
          }
          for (uint32_t k = 0; k < n; ++k) {
            if (!CheckStamp(run[k].data(), env->page_size(), first + k)) {
              bad_pages.fetch_add(1);
            }
          }
        } else {
          const PageId id = rng.NextBelow(kSharedPages);
          auto guard_or = pool.Fetch(id);
          if (!guard_or.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (!CheckStamp(guard_or.value().data(), env->page_size(), id)) {
            bad_pages.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad_pages.load(), 0) << "a fetch returned corrupted page bytes";
  EXPECT_EQ(failures.load(), 0);
  // Pin-balance audit: every guard released, nothing leaked.
  EXPECT_EQ(pool.pinned_frames(), 0);
  EXPECT_EQ(pool.total_pins(), 0);
  // Everything is still readable and intact afterwards.
  for (PageId id = 0; id < kSharedPages; ++id) {
    auto guard_or = pool.Fetch(id);
    ASSERT_TRUE(guard_or.ok());
    EXPECT_TRUE(CheckStamp(guard_or.value().data(), env->page_size(), id))
        << "page " << id;
  }
}

// ---------------------------------------------------------------------------
// Serial vs parallel query equivalence
// ---------------------------------------------------------------------------

class ConcurrentQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scene_ = new Scene(MakeScene(33));
    DbOptions options;
    options.pool_shards = BufferPool::kDefaultShards;
    env_ = OpenTempEnv("concurrency_query", options).release();
    auto store_or =
        DmStore::Build(env_, scene_->base, scene_->tree, scene_->sr);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
    store_ = new DmStore(std::move(store_or).value());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete env_;
    delete scene_;
  }

  static Scene* scene_;
  static DbEnv* env_;
  static DmStore* store_;
};
Scene* ConcurrentQueryTest::scene_ = nullptr;
DbEnv* ConcurrentQueryTest::env_ = nullptr;
DmStore* ConcurrentQueryTest::store_ = nullptr;

Result<DmQueryResult> RunSerial(DmQueryProcessor* proc,
                                const QueryRequest& req) {
  switch (req.kind) {
    case QueryRequest::Kind::kUniform:
      return proc->ViewpointIndependent(req.roi, req.e);
    case QueryRequest::Kind::kView:
      return req.multi_base ? proc->MultiBase(req.view)
                            : proc->SingleBase(req.view);
    case QueryRequest::Kind::kPerspective:
      return proc->Perspective(req.perspective);
  }
  return Status::InvalidArgument("unknown kind");
}

// Byte-exact geometry comparison (stats are never compared: disk
// attribution is approximate under overlap).
void ExpectSameGeometry(const DmQueryResult& s, const DmQueryResult& p,
                        size_t query_index) {
  EXPECT_EQ(s.vertices, p.vertices) << "query " << query_index;
  ASSERT_EQ(s.positions.size(), p.positions.size()) << "query " << query_index;
  for (size_t k = 0; k < s.positions.size(); ++k) {
    EXPECT_EQ(std::memcmp(&s.positions[k], &p.positions[k],
                          sizeof(s.positions[k])),
              0)
        << "query " << query_index << " position " << k;
  }
  ASSERT_EQ(s.triangles.size(), p.triangles.size()) << "query " << query_index;
  for (size_t k = 0; k < s.triangles.size(); ++k) {
    EXPECT_EQ(s.triangles[k].v, p.triangles[k].v)
        << "query " << query_index << " triangle " << k;
  }
}

TEST_F(ConcurrentQueryTest, ParallelResultsMatchSerialExactly) {
  const std::vector<QueryRequest> workload = MakeMixedWorkload(
      scene_->tree.bounds(), scene_->tree.max_lod(), /*count=*/48,
      /*seed=*/99, /*roi_fraction=*/0.1);
  ASSERT_EQ(workload.size(), 48u);

  // Serial reference, one processor, one thread.
  std::vector<DmQueryResult> serial;
  serial.reserve(workload.size());
  DmQueryProcessor proc(store_);
  for (const QueryRequest& req : workload) {
    auto r = RunSerial(&proc, req);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    serial.push_back(std::move(r).value());
  }

  // Parallel run over the same store. Each callback writes only its
  // own slot.
  std::vector<std::optional<DmQueryResult>> parallel(workload.size());
  std::atomic<int> failed{0};
  QueryServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  {
    QueryService service(store_, options);
    for (size_t i = 0; i < workload.size(); ++i) {
      ASSERT_TRUE(service.Submit(
          workload[i], [&parallel, &failed, i](const Result<DmQueryResult>& r,
                                               const QueryTiming& t) {
            EXPECT_GE(t.queue_millis, 0.0);
            EXPECT_GE(t.exec_millis, 0.0);
            if (r.ok()) {
              parallel[i] = r.value();
            } else {
              failed.fetch_add(1);
            }
          }));
    }
    service.Drain();
    EXPECT_EQ(service.completed(), static_cast<int64_t>(workload.size()));
  }
  ASSERT_EQ(failed.load(), 0);

  // Geometry must be byte-identical to the serial run.
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_TRUE(parallel[i].has_value()) << "query " << i;
    ExpectSameGeometry(serial[i], *parallel[i], i);
  }
  EXPECT_EQ(env_->pool().pinned_frames(), 0);
}

TEST_F(ConcurrentQueryTest, NodeCacheKeepsGeometryByteIdentical) {
  const std::vector<QueryRequest> workload = MakeMixedWorkload(
      scene_->tree.bounds(), scene_->tree.max_lod(), /*count=*/32,
      /*seed=*/7, /*roi_fraction=*/0.1);

  // Cache-off serial reference.
  std::vector<DmQueryResult> reference;
  reference.reserve(workload.size());
  {
    DmQueryProcessor proc(store_);
    for (const QueryRequest& req : workload) {
      auto r = RunSerial(&proc, req);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      reference.push_back(std::move(r).value());
    }
  }

  store_->EnableNodeCache(16u << 20);
  // Serial cache-warm pass: the first replay fills the cache, the
  // second must serve hits and still reproduce the reference exactly.
  {
    DmQueryProcessor proc(store_);
    for (const QueryRequest& req : workload) {
      ASSERT_TRUE(RunSerial(&proc, req).ok());
    }
    for (size_t i = 0; i < workload.size(); ++i) {
      auto r = RunSerial(&proc, workload[i]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ExpectSameGeometry(reference[i], r.value(), i);
      EXPECT_GT(r.value().stats.cache_hits, 0) << "query " << i;
    }
  }

  // Parallel replay with the warm cache (workers race on Lookup and
  // Insert; run under tsan in CI).
  std::vector<std::optional<DmQueryResult>> parallel(workload.size());
  std::atomic<int> failed{0};
  QueryServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  {
    QueryService service(store_, options);
    for (size_t i = 0; i < workload.size(); ++i) {
      ASSERT_TRUE(service.Submit(
          workload[i], [&parallel, &failed, i](const Result<DmQueryResult>& r,
                                               const QueryTiming&) {
            if (r.ok()) {
              parallel[i] = r.value();
            } else {
              failed.fetch_add(1);
            }
          }));
    }
    service.Drain();
  }
  ASSERT_EQ(failed.load(), 0);
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_TRUE(parallel[i].has_value()) << "query " << i;
    ExpectSameGeometry(reference[i], *parallel[i], i);
  }

  const NodeCacheStats cs = store_->node_cache_stats();
  EXPECT_GT(cs.hits, 0);
  EXPECT_GT(cs.entries, 0);
  EXPECT_LE(cs.bytes, 16 << 20);
  store_->EnableNodeCache(0);  // restore the suite's shared store
}

TEST_F(ConcurrentQueryTest, CondVarBackpressureSurvivesProducerChurn) {
  // tsan regression for the annotated CondVar wait loops in
  // QueryService (server/query_service.cc): a tiny queue forces
  // producers to block in Submit on not_full_, workers to sleep on
  // not_empty_, and Drain to wait on idle_ — all three explicit wait
  // loops under contention at once. Run under -DDM_SANITIZE=thread in
  // CI; a wait loop that re-checks its predicate without the lock
  // shows up here as a race.
  QueryServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 2;  // well below the offered load
  QueryService service(store_, options);
  const std::vector<QueryRequest> workload = MakeMixedWorkload(
      scene_->tree.bounds(), scene_->tree.max_lod(), /*count=*/8,
      /*seed=*/11, /*roi_fraction=*/0.05);
  std::atomic<int> done{0};
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 16;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const QueryRequest& req = workload[(p + i) % workload.size()];
        // EXPECT (not ASSERT): gtest fatal failures cannot propagate
        // out of a non-test thread.
        EXPECT_TRUE(service.Submit(
            req, [&done](const Result<DmQueryResult>& r, const QueryTiming&) {
              if (r.ok()) done.fetch_add(1);
            }));
      }
    });
  }
  service.Drain();  // races with the producers: quiescence is momentary
  for (std::thread& t : producers) t.join();
  service.Drain();  // now definitive: everything submitted has run
  EXPECT_EQ(done.load(), kProducers * kPerProducer);
  service.Shutdown();
}

TEST_F(ConcurrentQueryTest, ShutdownDrainsQueuedJobs) {
  QueryServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4;
  QueryService service(store_, options);
  const std::vector<QueryRequest> workload = MakeMixedWorkload(
      scene_->tree.bounds(), scene_->tree.max_lod(), /*count=*/12,
      /*seed=*/5, /*roi_fraction=*/0.05);
  std::atomic<int> done{0};
  for (const QueryRequest& req : workload) {
    ASSERT_TRUE(service.Submit(
        req, [&done](const Result<DmQueryResult>& r, const QueryTiming&) {
          if (r.ok()) done.fetch_add(1);
        }));
  }
  service.Shutdown();  // must run everything already accepted
  EXPECT_EQ(done.load(), 12);
  // After shutdown no new work is accepted.
  EXPECT_FALSE(service.Submit(workload[0], nullptr));
}

}  // namespace
}  // namespace dm
