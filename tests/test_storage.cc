#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "common/rng.h"
#include "storage/db_env.h"
#include "storage/heap_file.h"
#include "test_util.h"

namespace dm {
namespace {

using dm::testing::TempDbPath;

TEST(DiskManagerTest, AllocateReadWrite) {
  const std::string path = TempDbPath("disk");
  auto dm_or = DiskManager::Open(path, 512, true);
  ASSERT_TRUE(dm_or.ok());
  auto& disk = *dm_or.value();
  EXPECT_EQ(disk.num_pages(), 0u);
  auto p0 = disk.AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0.value(), 0u);
  std::vector<uint8_t> buf(512, 0xAB);
  ASSERT_TRUE(disk.WritePage(0, buf.data()).ok());
  std::vector<uint8_t> read(512, 0);
  ASSERT_TRUE(disk.ReadPage(0, read.data()).ok());
  EXPECT_EQ(read, buf);
  EXPECT_FALSE(disk.ReadPage(5, read.data()).ok());
  EXPECT_FALSE(disk.WritePage(5, buf.data()).ok());
  std::remove(path.c_str());
}

TEST(DiskManagerTest, RejectsBadPageSize) {
  EXPECT_FALSE(DiskManager::Open(TempDbPath("bad"), 1000, true).ok());
  EXPECT_FALSE(DiskManager::Open(TempDbPath("bad"), 128, true).ok());
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  const std::string path = TempDbPath("persist");
  {
    auto disk = std::move(DiskManager::Open(path, 512, true)).ValueOrDie();
    ASSERT_TRUE(disk->AllocatePage().ok());
    ASSERT_TRUE(disk->AllocatePage().ok());
    std::vector<uint8_t> buf(512, 7);
    ASSERT_TRUE(disk->WritePage(1, buf.data()).ok());
  }
  auto disk = std::move(DiskManager::Open(path, 512, false)).ValueOrDie();
  EXPECT_EQ(disk->num_pages(), 2u);
  std::vector<uint8_t> read(512);
  ASSERT_TRUE(disk->ReadPage(1, read.data()).ok());
  EXPECT_EQ(read[100], 7);
  std::remove(path.c_str());
}

TEST(BufferPoolTest, HitsAndMissesAreCounted) {
  const std::string path = TempDbPath("pool");
  auto disk = std::move(DiskManager::Open(path, 512, true)).ValueOrDie();
  BufferPool pool(disk.get(), 4);
  PageId ids[3];
  for (auto& id : ids) {
    auto g = std::move(pool.NewPage()).ValueOrDie();
    id = g.id();
    g.data()[0] = static_cast<uint8_t>(id + 1);
    g.MarkDirty();
  }
  EXPECT_EQ(pool.stats().disk_reads, 0);
  {
    auto g = std::move(pool.Fetch(ids[0])).ValueOrDie();
    EXPECT_EQ(g.data()[0], 1);  // cached, no read
  }
  EXPECT_EQ(pool.stats().disk_reads, 0);
  ASSERT_TRUE(pool.FlushAll().ok());
  {
    auto g = std::move(pool.Fetch(ids[0])).ValueOrDie();
    EXPECT_EQ(g.data()[0], 1);  // re-read from disk
  }
  EXPECT_EQ(pool.stats().disk_reads, 1);
  std::remove(path.c_str());
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  const std::string path = TempDbPath("lru");
  auto disk = std::move(DiskManager::Open(path, 512, true)).ValueOrDie();
  BufferPool pool(disk.get(), 2);
  PageId a;
  PageId b;
  {
    auto ga = std::move(pool.NewPage()).ValueOrDie();
    a = ga.id();
  }
  {
    auto gb = std::move(pool.NewPage()).ValueOrDie();
    b = gb.id();
  }
  // Touch a so b becomes the LRU victim of the next allocation.
  { auto ga = std::move(pool.Fetch(a)).ValueOrDie(); }
  { auto gc = std::move(pool.NewPage()).ValueOrDie(); }
  pool.ResetStats();
  // a stayed resident...
  { auto ga = std::move(pool.Fetch(a)).ValueOrDie(); }
  EXPECT_EQ(pool.stats().disk_reads, 0);
  // ...and b was the page evicted.
  pool.ResetStats();
  { auto gb = std::move(pool.Fetch(b)).ValueOrDie(); }
  EXPECT_EQ(pool.stats().disk_reads, 1);
  std::remove(path.c_str());
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  const std::string path = TempDbPath("pin");
  auto disk = std::move(DiskManager::Open(path, 512, true)).ValueOrDie();
  BufferPool pool(disk.get(), 2);
  auto a = std::move(pool.NewPage()).ValueOrDie();  // held pin
  auto b_or = pool.NewPage();
  ASSERT_TRUE(b_or.ok());
  auto b = std::move(b_or).value();
  // Both frames pinned: a third page must fail.
  EXPECT_FALSE(pool.NewPage().ok());
  b.Release();
  EXPECT_TRUE(pool.NewPage().ok());
  std::remove(path.c_str());
}

TEST(BufferPoolTest, DirtyPagesSurviveEviction) {
  const std::string path = TempDbPath("dirty");
  auto disk = std::move(DiskManager::Open(path, 512, true)).ValueOrDie();
  BufferPool pool(disk.get(), 2);
  PageId a;
  {
    auto g = std::move(pool.NewPage()).ValueOrDie();
    a = g.id();
    g.data()[9] = 0x5A;
    g.MarkDirty();
  }
  // Evict a by filling the pool.
  { auto g = std::move(pool.NewPage()).ValueOrDie(); }
  { auto g = std::move(pool.NewPage()).ValueOrDie(); }
  auto g = std::move(pool.Fetch(a)).ValueOrDie();
  EXPECT_EQ(g.data()[9], 0x5A);
  std::remove(path.c_str());
}

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = dm::testing::OpenTempEnv("heap", DbOptions{.page_size = 512,
                                                      .pool_pages = 16});
  }
  std::unique_ptr<DbEnv> env_;
};

TEST_F(HeapFileTest, AppendAndGetRoundTrip) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    std::string rec = "record-" + std::to_string(i);
    auto rid_or = hf.Append(reinterpret_cast<const uint8_t*>(rec.data()),
                            static_cast<uint32_t>(rec.size()));
    ASSERT_TRUE(rid_or.ok());
    rids.push_back(rid_or.value());
  }
  EXPECT_EQ(hf.num_records(), 100);
  EXPECT_GT(hf.num_pages(), 1);  // 512-byte pages must have chained
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> buf;
    ASSERT_TRUE(hf.Get(rids[static_cast<size_t>(i)], &buf).ok());
    EXPECT_EQ(std::string(buf.begin(), buf.end()),
              "record-" + std::to_string(i));
  }
}

TEST_F(HeapFileTest, RejectsOversizedRecord) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  std::vector<uint8_t> big(600, 1);
  EXPECT_FALSE(hf.Append(big.data(), static_cast<uint32_t>(big.size())).ok());
  std::vector<uint8_t> fits(hf.MaxRecordSize(), 2);
  EXPECT_TRUE(
      hf.Append(fits.data(), static_cast<uint32_t>(fits.size())).ok());
}

TEST_F(HeapFileTest, GetRejectsBadSlot) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  uint8_t b = 1;
  auto rid = std::move(hf.Append(&b, 1)).ValueOrDie();
  std::vector<uint8_t> buf;
  EXPECT_TRUE(hf.Get(rid, &buf).ok());
  EXPECT_FALSE(hf.Get(RecordId{rid.page, 57}, &buf).ok());
}

TEST_F(HeapFileTest, ScanVisitsAllInOrder) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  for (int i = 0; i < 50; ++i) {
    const uint8_t b = static_cast<uint8_t>(i);
    ASSERT_TRUE(hf.Append(&b, 1).ok());
  }
  int next = 0;
  ASSERT_TRUE(hf.Scan([&](RecordId, const uint8_t* data, uint32_t len) {
                 EXPECT_EQ(len, 1u);
                 EXPECT_EQ(data[0], next++);
                 return true;
               }).ok());
  EXPECT_EQ(next, 50);
  // Early stop.
  int count = 0;
  ASSERT_TRUE(hf.Scan([&](RecordId, const uint8_t*, uint32_t) {
                 return ++count < 10;
               }).ok());
  EXPECT_EQ(count, 10);
}

TEST_F(HeapFileTest, OpenRecountsRecords) {
  PageId first;
  {
    auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
    first = hf.first_page();
    for (int i = 0; i < 77; ++i) {
      const uint8_t b = 0;
      ASSERT_TRUE(hf.Append(&b, 1).ok());
    }
  }
  HeapFile hf = HeapFile::Open(env_.get(), first);
  EXPECT_EQ(hf.num_records(), 77);
  // Appends continue at the tail.
  const uint8_t b = 9;
  ASSERT_TRUE(hf.Append(&b, 1).ok());
  EXPECT_EQ(hf.num_records(), 78);
}

// --- GetMany / FetchRun coalescing edge cases -----------------------------

TEST_F(HeapFileTest, GetManyEmptyInputIsNoOp) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  const uint8_t b = 1;
  ASSERT_TRUE(hf.Append(&b, 1).ok());
  ASSERT_TRUE(env_->FlushAll().ok());
  const int64_t reads0 = env_->stats().disk_reads;
  int calls = 0;
  ASSERT_TRUE(hf.GetMany({}, [&](RecordId, const uint8_t*, uint32_t) {
                  ++calls;
                  return Status::OK();
                }).ok());
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(env_->stats().disk_reads, reads0);
}

TEST_F(HeapFileTest, GetManySinglePageRunReadsOnePage) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  std::vector<RecordId> rids;
  for (int i = 0; i < 5; ++i) {  // 5 x 50B fits one 512B page
    std::vector<uint8_t> rec(50, static_cast<uint8_t>(i));
    rids.push_back(
        std::move(hf.Append(rec.data(), 50)).ValueOrDie());
  }
  ASSERT_EQ(rids.front().page, rids.back().page);
  ASSERT_TRUE(env_->FlushAll().ok());
  const int64_t reads0 = env_->stats().disk_reads;
  int next = 0;
  ASSERT_TRUE(hf.GetMany(rids,
                         [&](RecordId, const uint8_t* data, uint32_t len) {
                           EXPECT_EQ(len, 50u);
                           EXPECT_EQ(data[0], next++);
                           return Status::OK();
                         }).ok());
  EXPECT_EQ(next, 5);
  EXPECT_EQ(env_->stats().disk_reads - reads0, 1);
}

TEST_F(HeapFileTest, GetManyNonAdjacentPagesMatchPerGetAccounting) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  // ~1 record per 512B page, so consecutive records land on
  // consecutive pages.
  std::vector<RecordId> all;
  for (int i = 0; i < 9; ++i) {
    std::vector<uint8_t> rec(400, static_cast<uint8_t>(i));
    all.push_back(std::move(hf.Append(rec.data(), 400)).ValueOrDie());
  }
  // Every other record: pages 0, 2, 4, ... — no two adjacent, so no
  // run may coalesce.
  std::vector<RecordId> sparse;
  std::vector<uint8_t> want;
  for (size_t i = 0; i < all.size(); i += 2) {
    sparse.push_back(all[i]);
    want.push_back(static_cast<uint8_t>(i));
  }
  for (size_t i = 1; i < sparse.size(); ++i) {
    ASSERT_GT(sparse[i].page, sparse[i - 1].page + 1);
  }
  ASSERT_TRUE(env_->FlushAll().ok());
  const int64_t reads0 = env_->stats().disk_reads;
  size_t k = 0;
  ASSERT_TRUE(hf.GetMany(sparse,
                         [&](RecordId, const uint8_t* data, uint32_t len) {
                           EXPECT_EQ(len, 400u);
                           EXPECT_EQ(data[0], want[k++]);
                           return Status::OK();
                         }).ok());
  EXPECT_EQ(k, sparse.size());
  const int64_t batch_reads = env_->stats().disk_reads - reads0;

  // Reference: per-record Get from a cold pool.
  ASSERT_TRUE(env_->FlushAll().ok());
  const int64_t reads1 = env_->stats().disk_reads;
  for (const RecordId rid : sparse) {
    std::vector<uint8_t> buf;
    ASSERT_TRUE(hf.Get(rid, &buf).ok());
  }
  EXPECT_EQ(batch_reads, env_->stats().disk_reads - reads1);
}

TEST_F(HeapFileTest, GetManyRunCrossingLastPage) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  std::vector<RecordId> rids;
  for (int i = 0; i < 6; ++i) {
    std::vector<uint8_t> rec(400, static_cast<uint8_t>(0x40 + i));
    rids.push_back(std::move(hf.Append(rec.data(), 400)).ValueOrDie());
  }
  // A run that starts mid-file and extends through the final page of
  // the heap: coalescing must stop exactly at the tail.
  std::vector<RecordId> tail(rids.begin() + 2, rids.end());
  ASSERT_EQ(tail.back().page, rids.back().page);
  ASSERT_TRUE(env_->FlushAll().ok());
  const int64_t reads0 = env_->stats().disk_reads;
  int i = 2;
  ASSERT_TRUE(hf.GetMany(tail,
                         [&](RecordId, const uint8_t* data, uint32_t len) {
                           EXPECT_EQ(len, 400u);
                           EXPECT_EQ(data[0], 0x40 + i++);
                           return Status::OK();
                         }).ok());
  EXPECT_EQ(i, 6);
  // One read per (single-record) page, coalesced or not.
  EXPECT_EQ(env_->stats().disk_reads - reads0,
            static_cast<int64_t>(tail.size()));
  // Nothing stays pinned after the batch.
  EXPECT_EQ(env_->pool().pinned_frames(), 0);
}

TEST_F(HeapFileTest, GetManyDuplicateRidsOnOnePage) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  const uint8_t b = 0x77;
  const RecordId rid = std::move(hf.Append(&b, 1)).ValueOrDie();
  ASSERT_TRUE(env_->FlushAll().ok());
  const int64_t reads0 = env_->stats().disk_reads;
  int calls = 0;
  ASSERT_TRUE(hf.GetMany({rid, rid, rid},
                         [&](RecordId, const uint8_t* data, uint32_t) {
                           EXPECT_EQ(data[0], 0x77);
                           ++calls;
                           return Status::OK();
                         }).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(env_->stats().disk_reads - reads0, 1);
}

TEST_F(HeapFileTest, RandomizedRoundTripProperty) {
  auto hf = std::move(HeapFile::Create(env_.get())).ValueOrDie();
  Rng rng(321);
  std::map<int, std::vector<uint8_t>> expected;
  std::map<int, RecordId> rids;
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> rec(rng.NextBelow(200) + 1);
    for (auto& byte : rec) byte = static_cast<uint8_t>(rng.Next());
    auto rid_or = hf.Append(rec.data(), static_cast<uint32_t>(rec.size()));
    ASSERT_TRUE(rid_or.ok());
    expected[i] = rec;
    rids[i] = rid_or.value();
  }
  ASSERT_TRUE(env_->FlushAll().ok());  // force re-reads from disk
  for (const auto& [i, rec] : expected) {
    std::vector<uint8_t> buf;
    ASSERT_TRUE(hf.Get(rids[i], &buf).ok());
    EXPECT_EQ(buf, rec) << "record " << i;
  }
}

}  // namespace
}  // namespace dm
