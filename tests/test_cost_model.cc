#include "dm/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace dm {
namespace {

std::vector<RTreeNodeExtent> UniformNodes(int n, double node_side,
                                          double space) {
  Rng rng(17);
  std::vector<RTreeNodeExtent> nodes;
  for (int i = 0; i < n; ++i) {
    RTreeNodeExtent ext;
    const double x = rng.Uniform(0, space - node_side);
    const double y = rng.Uniform(0, space - node_side);
    const double e = rng.Uniform(0, space - node_side);
    ext.box = Box::Of(x, y, e, x + node_side, y + node_side,
                      e + node_side);
    nodes.push_back(ext);
  }
  return nodes;
}

TEST(CostModelTest, BiggerQueriesCostMore) {
  const Box space = Box::Of(0, 0, 0, 100, 100, 100);
  const auto nodes = UniformNodes(200, 10, 100);
  const double small = EstimateDiskAccesses(
      nodes, space, Box::Of(0, 0, 0, 10, 10, 10));
  const double big = EstimateDiskAccesses(
      nodes, space, Box::Of(0, 0, 0, 50, 50, 50));
  EXPECT_GT(big, small);
}

TEST(CostModelTest, ZeroQueryStillPaysNodeOverlap) {
  // A point query costs sum_i w_i*h_i*d_i > 0: the probability of
  // hitting each node.
  const Box space = Box::Of(0, 0, 0, 100, 100, 100);
  const auto nodes = UniformNodes(100, 10, 100);
  const double da = EstimateDiskAccesses(
      nodes, space, Box::Of(5, 5, 5, 5, 5, 5));
  EXPECT_GT(da, 0.0);
  EXPECT_NEAR(da, 100 * 0.1 * 0.1 * 0.1, 0.2);
}

TEST(CostModelTest, SliceBoxCoversTheRightSlice) {
  const Rect roi = Rect::Of(0, 0, 10, 40);
  const BaseCube cube{0.25, 0.5, 1.0, 2.0};
  const Box b = SliceBox(roi, /*gradient_along_y=*/true, cube);
  EXPECT_EQ(b.lo[1], 10.0);
  EXPECT_EQ(b.hi[1], 20.0);
  EXPECT_EQ(b.lo[0], 0.0);
  EXPECT_EQ(b.hi[0], 10.0);
  EXPECT_EQ(b.lo[2], 1.0);
  EXPECT_EQ(b.hi[2], 2.0);
  const Box bx = SliceBox(roi, /*gradient_along_y=*/false, cube);
  EXPECT_EQ(bx.lo[0], 2.5);
  EXPECT_EQ(bx.hi[0], 5.0);
}

TEST(CostModelTest, FlatPlaneNeverSplits) {
  const Box space = Box::Of(0, 0, 0, 100, 100, 100);
  const auto nodes = UniformNodes(300, 8, 100);
  const auto cubes = OptimizeMultiBase(
      nodes, space, Rect::Of(0, 0, 50, 50), true,
      [](double) { return 5.0; }, 64);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].t0, 0.0);
  EXPECT_EQ(cubes[0].t1, 1.0);
}

TEST(CostModelTest, SteepPlaneSplitsIntoStaircase) {
  const Box space = Box::Of(0, 0, 0, 100, 100, 100);
  const auto nodes = UniformNodes(400, 4, 100);
  const auto cubes = OptimizeMultiBase(
      nodes, space, Rect::Of(0, 0, 80, 80), true,
      [](double t) { return 1.0 + 80.0 * t; }, 64);
  EXPECT_GT(cubes.size(), 1u);
  // Slices tile [0, 1] in order and e ranges chain continuously.
  double t = 0.0;
  for (const BaseCube& c : cubes) {
    EXPECT_DOUBLE_EQ(c.t0, t);
    t = c.t1;
    EXPECT_DOUBLE_EQ(c.e_lo, 1.0 + 80.0 * c.t0);
    EXPECT_DOUBLE_EQ(c.e_hi, 1.0 + 80.0 * c.t1);
  }
  EXPECT_DOUBLE_EQ(t, 1.0);
  // And the staircase total volume is below the single cube's volume.
  double staircase = 0.0;
  for (const BaseCube& c : cubes) {
    staircase += SliceBox(Rect::Of(0, 0, 80, 80), true, c).Volume();
  }
  EXPECT_LT(staircase,
            Box::FromRect(Rect::Of(0, 0, 80, 80), 1.0, 81.0).Volume());
}

TEST(CostModelTest, MaxCubesBudgetIsRespected) {
  const Box space = Box::Of(0, 0, 0, 100, 100, 100);
  const auto nodes = UniformNodes(400, 2, 100);
  const auto cubes = OptimizeMultiBase(
      nodes, space, Rect::Of(0, 0, 90, 90), true,
      [](double t) { return 90.0 * t + 0.1; }, 4);
  EXPECT_LE(cubes.size(), 4u);
}

TEST(CostModelTest, SplitEstimateActuallyImproves) {
  // The paper's condition (7): when the optimizer splits, the summed
  // estimate of the halves must be below the whole.
  const Box space = Box::Of(0, 0, 0, 100, 100, 100);
  const auto nodes = UniformNodes(400, 4, 100);
  const Rect roi = Rect::Of(0, 0, 80, 80);
  auto e_at = [](double t) { return 1.0 + 60.0 * t; };
  const double whole = EstimateDiskAccesses(
      nodes, space, SliceBox(roi, true, BaseCube{0, 1, e_at(0), e_at(1)}));
  const double left = EstimateDiskAccesses(
      nodes, space,
      SliceBox(roi, true, BaseCube{0, 0.5, e_at(0), e_at(0.5)}));
  const double right = EstimateDiskAccesses(
      nodes, space,
      SliceBox(roi, true, BaseCube{0.5, 1, e_at(0.5), e_at(1)}));
  EXPECT_LT(left + right, whole);
}


TEST(EAxisMapTest, IdentityByDefault) {
  EAxisMap map;
  EXPECT_TRUE(map.identity());
  EXPECT_EQ(map.Map(3.5), 3.5);
  const Box b = Box::Of(0, 0, 1, 2, 2, 9);
  EXPECT_EQ(map.MapBox(b).hi[2], 9.0);
}

TEST(EAxisMapTest, QuantileMapIsMonotoneAndNormalized) {
  // Leaves concentrated near e = 0 with a long tail, like QEM errors.
  std::vector<RTreeNodeExtent> nodes;
  for (int i = 0; i < 200; ++i) {
    RTreeNodeExtent ext;
    const double e = 0.01 * i * i;  // skewed upward
    ext.box = Box::Of(0, 0, e, 1, 1, e + 0.1);
    ext.level = 0;
    nodes.push_back(ext);
  }
  const EAxisMap map = EAxisMap::FromNodeExtents(nodes);
  EXPECT_FALSE(map.identity());
  double prev = -1;
  for (double e = 0; e < 500; e += 7) {
    const double m = map.Map(e);
    EXPECT_GE(m, prev);
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
    prev = m;
  }
  // The skew is uniformized: the bottom 1% of the raw range (e <= 4 of
  // 0..400) holds ~10% of the measure, and the halfway rank sits at
  // e = 100 (i = 100 of 200).
  EXPECT_GT(map.Map(4.0), 0.05);
  EXPECT_NEAR(map.Map(100.0), 0.5, 0.05);
}

TEST(EAxisMapTest, IgnoresInternalNodes) {
  std::vector<RTreeNodeExtent> nodes;
  RTreeNodeExtent internal;
  internal.box = Box::Of(0, 0, 0, 1, 1, 100);
  internal.level = 3;
  nodes.push_back(internal);
  const EAxisMap map = EAxisMap::FromNodeExtents(nodes);
  EXPECT_TRUE(map.identity());
}

TEST(CostModelTest, RecordTermSeesStaircaseSavings) {
  // Segments heavily skewed toward fine LODs: the record term must
  // rate a staircase below the single cube even when the page term
  // alone cannot (the situation that motivated EstimateQueryCost).
  CostModelInputs inputs;
  std::vector<RTreeNodeExtent> nodes = UniformNodes(50, 10, 100);
  inputs.nodes = &nodes;
  inputs.data_space = Box::Of(0, 0, 0, 100, 100, 100);
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    const double lo = std::pow(rng.NextDouble(), 8.0) * 100.0;
    inputs.segment_sample.emplace_back(lo, lo + rng.Uniform(0, 2));
  }
  inputs.total_records = 100000;
  inputs.records_per_page = 20;

  const Rect roi = Rect::Of(0, 0, 80, 80);
  auto e_at = [](double t) { return 0.5 + 60.0 * t; };
  const double whole = EstimateQueryCost(
      inputs, SliceBox(roi, true, BaseCube{0, 1, e_at(0), e_at(1)}));
  const double parts =
      EstimateQueryCost(
          inputs, SliceBox(roi, true, BaseCube{0, 0.5, e_at(0), e_at(0.5)})) +
      EstimateQueryCost(
          inputs, SliceBox(roi, true, BaseCube{0.5, 1, e_at(0.5), e_at(1)}));
  EXPECT_LT(parts, whole);

  const auto cubes = OptimizeMultiBase(
      inputs, roi, true, e_at, 64);
  EXPECT_GT(cubes.size(), 1u);
}

TEST(CostModelTest, CatalogOptimizerStillRefusesFlatPlanes) {
  CostModelInputs inputs;
  std::vector<RTreeNodeExtent> nodes = UniformNodes(50, 10, 100);
  inputs.nodes = &nodes;
  inputs.data_space = Box::Of(0, 0, 0, 100, 100, 100);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double lo = rng.Uniform(0, 90);
    inputs.segment_sample.emplace_back(lo, lo + 5);
  }
  inputs.total_records = 50000;
  inputs.records_per_page = 20;
  const auto cubes = OptimizeMultiBase(
      inputs, Rect::Of(0, 0, 50, 50), true, [](double) { return 30.0; }, 64);
  EXPECT_EQ(cubes.size(), 1u);
}

}  // namespace
}  // namespace dm
