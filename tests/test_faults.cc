// Fault-injection sweep (DESIGN.md §11): drives seeded disk faults
// through the full stack and checks the three promises of the failure
// model — transients are absorbed, permanent losses surface with the
// right Status class (or degrade to a coarser legal mesh), and no
// injected corruption ever escapes silently.
//
// The sweep seeds default to three fixed values; set DM_FAULT_SEED to
// replay a single seed (the schedule is a pure function of the seed
// and the op sequence, so a failure reproduces exactly).

#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/crc32c.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "dm/invariants.h"
#include "gtest/gtest.h"
#include "mesh/validate.h"
#include "server/query_service.h"
#include "storage/db_env.h"
#include "storage/fault_env.h"
#include "storage/page_crc.h"
#include "test_util.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::OpenTempEnv;
using testing::Scene;

// ---- checksum primitives -------------------------------------------

TEST(Crc32c, KnownAnswer) {
  // The CRC-32C check value: crc of the ASCII digits "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32c, ExtendIsIncremental) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, data.size()}) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(PageTrailer, RoundTripAndBitFlipDetection) {
  constexpr uint32_t kPhysical = 512;
  std::vector<uint8_t> page(kPhysical, 0);
  for (uint32_t i = 0; i < kPhysical - kPageTrailerSize; ++i) {
    page[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  StampPageTrailer(page.data(), kPhysical);
  EXPECT_TRUE(VerifyPageTrailer(page.data(), kPhysical, 3).ok());

  // Any single-bit flip — logical bytes or the trailer itself — must
  // be caught.
  for (uint32_t bit : {0u, 8u * 100u + 3u, 8u * (kPhysical - 3u)}) {
    page[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    const Status st = VerifyPageTrailer(page.data(), kPhysical, 3);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "bit " << bit;
    page[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }

  // A freshly allocated all-zero page carries no stamp yet and is fine.
  std::vector<uint8_t> fresh(kPhysical, 0);
  EXPECT_TRUE(VerifyPageTrailer(fresh.data(), kPhysical, 4).ok());
}

// ---- fixture: a store inside a fault-capable environment -----------

struct FaultDb {
  std::unique_ptr<DbEnv> env;
  std::unique_ptr<DmStore> store;
  FaultInjectingDevice* device = nullptr;
};

FaultDb BuildFaultDb(const std::string& tag, int side = 33,
                     DbOptions options = {}) {
  options.enable_fault_injection = true;
  FaultDb db;
  db.env = OpenTempEnv(tag, options);
  db.device = db.env->fault_device();
  EXPECT_NE(db.device, nullptr);
  const Scene scene = MakeScene(side);
  auto store_or =
      DmStore::Build(db.env.get(), scene.base, scene.tree, scene.sr, {});
  EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();
  db.store = std::make_unique<DmStore>(std::move(store_or).value());
  EXPECT_TRUE(db.env->FlushAll().ok());
  return db;
}

void ExpectValidMesh(const DmQueryResult& r) {
  const MeshStats ms = ComputeMeshStats(r.vertices, r.positions, r.triangles);
  EXPECT_TRUE(ms.IsManifold()) << ms.ToString();
  std::unordered_set<VertexId> ids(r.vertices.begin(), r.vertices.end());
  for (const Triangle& t : r.triangles) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ids.count(t[i]) > 0)
          << "triangle references unfetched vertex " << t[i];
    }
  }
}

// ---- determinism ---------------------------------------------------

TEST(FaultEnv, ScheduleIsDeterministic) {
  FaultDb db = BuildFaultDb("fault_determinism");
  FaultPlan plan;
  plan.seed = 42;
  plan.read_error_rate = 0.10;
  plan.read_transient_rate = 0.10;
  plan.bit_flip_rate = 0.10;
  plan.short_read_rate = 0.05;

  const uint32_t physical = db.env->disk().page_size();
  const PageId pages = db.env->disk().num_pages();
  std::vector<uint8_t> buf(physical);
  const auto run = [&] {
    db.device->set_plan(plan);  // rewinds the schedule to op 0
    std::vector<StatusCode> codes;
    for (PageId id = 0; id < pages; ++id) {
      codes.push_back(db.device->ReadPage(id % pages, buf.data()).code());
    }
    return codes;
  };
  const std::vector<StatusCode> first = run();
  const std::vector<StatusCode> second = run();
  EXPECT_EQ(first, second);
  // At these rates a whole-file sweep must have injected something.
  EXPECT_GT(db.device->stats().injected_total(), 0u);
}

// ---- status classes per fault kind ---------------------------------

TEST(FaultEnv, InjectedEioFailsStrictQueryWithIOError) {
  FaultDb db = BuildFaultDb("fault_eio");
  FaultPlan plan;
  plan.seed = 1;
  plan.read_error_rate = 1.0;
  db.device->set_plan(plan);

  DmQueryProcessor proc(db.store.get());
  const auto r = proc.ViewpointIndependent(db.store->meta().bounds,
                                           db.store->meta().max_lod * 0.2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError)
      << r.status().ToString();
}

TEST(FaultEnv, BitFlipsNeverEscapeSilently) {
  FaultDb db = BuildFaultDb("fault_bitflip");
  FaultPlan plan;
  plan.seed = 2;
  plan.bit_flip_rate = 1.0;
  db.device->set_plan(plan);

  DmQueryProcessor proc(db.store.get());
  const auto r = proc.ViewpointIndependent(db.store->meta().bounds,
                                           db.store->meta().max_lod * 0.2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
      << r.status().ToString();
  // Every injected flip was caught by the checksum layer: detected
  // corrupt pages match injected flips exactly.
  EXPECT_GT(db.device->stats().bit_flips.load(), 0u);
  EXPECT_EQ(static_cast<uint64_t>(db.env->stats().corrupt_pages),
            db.device->stats().bit_flips.load());
}

TEST(FaultEnv, TransientStormsAreAbsorbedByRetries) {
  FaultDb db = BuildFaultDb("fault_transient");
  FaultPlan plan;
  plan.seed = 3;
  plan.read_transient_rate = 0.15;
  db.device->set_plan(plan);

  DmQueryProcessor proc(db.store.get());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.env->FlushAll().ok());  // cold cache: force disk I/O
    const auto r = proc.ViewpointIndependent(
        db.store->meta().bounds, db.store->meta().max_lod * (0.1 + 0.2 * i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectValidMesh(r.value());
  }
  EXPECT_GT(db.env->stats().io_retries, 0);
  EXPECT_GT(db.device->stats().read_transients.load(), 0u);
}

TEST(FaultEnv, WriteFaultsSurfaceAsIOError) {
  FaultDb db = BuildFaultDb("fault_write");
  FaultPlan plan;
  plan.seed = 4;
  plan.write_error_rate = 1.0;
  db.device->set_plan(plan);

  const uint32_t physical = db.env->disk().page_size();
  std::vector<uint8_t> buf(physical, 0xAB);
  StampPageTrailer(buf.data(), physical);
  EXPECT_EQ(db.device->WritePage(0, buf.data()).code(), StatusCode::kIOError);
  EXPECT_EQ(db.device->AllocatePage().status().code(), StatusCode::kIOError);
}

TEST(FaultEnv, TornWriteIsCaughtOnReadback) {
  FaultDb db = BuildFaultDb("fault_torn");
  const uint32_t physical = db.env->disk().page_size();
  const PageId victim = 1;

  // A new version of the page that differs from the on-disk one in its
  // first half (where the torn write lands).
  std::vector<uint8_t> page(physical);
  ASSERT_TRUE(db.env->disk().ReadPage(victim, page.data()).ok());
  for (uint32_t i = 0; i < physical / 4; ++i) page[i] ^= 0x5A;
  StampPageTrailer(page.data(), physical);

  FaultPlan plan;
  plan.seed = 5;
  plan.torn_write_rate = 1.0;
  db.device->set_plan(plan);
  EXPECT_EQ(db.device->WritePage(victim, page.data()).code(),
            StatusCode::kIOError);
  db.device->set_plan(FaultPlan{});  // disarm

  // The platter now holds half new / half stale bytes; the stale
  // trailer cannot match the mixed content.
  std::vector<uint8_t> readback(physical);
  ASSERT_TRUE(db.env->disk().ReadPage(victim, readback.data()).ok());
  EXPECT_EQ(VerifyPageTrailer(readback.data(), physical, victim).code(),
            StatusCode::kCorruption);
}

TEST(FaultEnv, BuildUnderWriteFaultsFailsCleanly) {
  DbOptions options;
  options.enable_fault_injection = true;
  auto env = OpenTempEnv("fault_build", options);
  FaultPlan plan;
  plan.seed = 6;
  plan.write_error_rate = 0.5;
  env->fault_device()->set_plan(plan);

  const Scene scene = MakeScene(33);
  auto store_or = DmStore::Build(env.get(), scene.base, scene.tree, scene.sr,
                                 {});
  // Flush whatever survived, too: every failure must be a clean
  // kIOError, never a crash or a silent success.
  if (store_or.ok()) {
    const Status st = env->FlushAll();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
  } else {
    EXPECT_EQ(store_or.status().code(), StatusCode::kIOError)
        << store_or.status().ToString();
  }
}

// ---- graceful degradation ------------------------------------------

TEST(Degradation, LostHeapPagesYieldCoarserValidMesh) {
  FaultDb db = BuildFaultDb("degrade_eio", 49);
  // A deep cut (the LOD axis is heavily skewed, so a small fraction of
  // max_lod already reaches fine detail) spanning many heap pages.
  const double e = db.store->meta().max_lod * 0.01;

  // Measure the device-op count of a healthy cold run. A query's ops
  // are index reads followed by heap-data reads, so its LAST op is
  // always a heap read — failing exactly that op loses node records
  // without touching the (always-fatal) index pages.
  DmQueryProcessor healthy_proc(db.store.get());
  ASSERT_TRUE(db.env->FlushAll().ok());
  const uint64_t ops0 = db.device->stats().ops.load();
  const auto healthy =
      healthy_proc.ViewpointIndependent(db.store->meta().bounds, e);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  const uint64_t query_ops = db.device->stats().ops.load() - ops0;
  ASSERT_GT(query_ops, 1u);

  DmQueryOptions qopts;
  qopts.allow_degraded = true;
  DmQueryProcessor proc(db.store.get(), qopts);
  FaultPlan plan;
  plan.seed = 7;
  plan.read_error_rate = 1.0;
  plan.trigger_after_n = query_ops - 1;  // arm for the final heap read
  ASSERT_TRUE(db.env->FlushAll().ok());
  db.device->set_plan(plan);
  const auto r = proc.ViewpointIndependent(db.store->meta().bounds, e);
  db.device->set_plan(FaultPlan{});

  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().health.degraded);
  EXPECT_GT(r.value().health.records_failed, 0);
  EXPECT_GT(r.value().health.pages_failed, 0);
  ExpectValidMesh(r.value());
  // Sparser than the healthy run, never richer.
  EXPECT_LT(r.value().vertices.size(), healthy.value().vertices.size());

  // Strict mode over the same fault schedule refuses instead.
  DmQueryProcessor strict(db.store.get());
  ASSERT_TRUE(db.env->FlushAll().ok());
  db.device->set_plan(plan);
  const auto refused = strict.ViewpointIndependent(db.store->meta().bounds, e);
  db.device->set_plan(FaultPlan{});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kIOError)
      << refused.status().ToString();
}

TEST(Degradation, DeadlineTripsToLegalCoarserCut) {
  FaultDb db = BuildFaultDb("degrade_deadline", 65);
  ViewQuery q;
  q.roi = db.store->meta().bounds;
  q.e_min = 0.0;  // full detail at the near edge: deep refinement
  q.e_max = db.store->meta().max_lod * 0.05;

  DmQueryProcessor healthy_proc(db.store.get());
  ASSERT_TRUE(db.env->FlushAll().ok());
  const auto healthy = healthy_proc.SingleBase(q);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.value().health.deadline_hit);
  // Premise of the deadline trip below: the refinement loop must run
  // longer than one deadline-check stride (64 iterations).
  ASSERT_GT(healthy.value().stats.refinement_splits, 64);

  DmQueryOptions qopts;
  qopts.deadline_millis = 1e-6;  // expires before the first check
  DmQueryProcessor proc(db.store.get(), qopts);
  ASSERT_TRUE(db.env->FlushAll().ok());
  const auto r = proc.SingleBase(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().health.deadline_hit);
  EXPECT_TRUE(r.value().health.degraded);
  EXPECT_GT(r.value().health.nodes_degraded, 0);
  ExpectValidMesh(r.value());
  // The deadline can only stop refinement early: the result is coarser.
  EXPECT_LE(r.value().vertices.size(), healthy.value().vertices.size());
}

// ---- resource exhaustion -------------------------------------------

TEST(Exhaustion, AllFramesPinnedIsResourceExhausted) {
  DbOptions options;
  options.pool_pages = 16;
  options.pool_shards = 1;
  auto env = OpenTempEnv("pool_exhaustion", options);
  std::vector<PageGuard> guards;
  Status st = Status::OK();
  for (int i = 0; i < 64 && st.ok(); ++i) {
    auto g = env->pool().NewPage();
    st = g.status();
    if (g.ok()) guards.push_back(std::move(g).value());
  }
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(guards.size(), 16u);
}

// ---- overload shedding ---------------------------------------------

TEST(Shedding, LateJobsAreShedWithUnavailable) {
  FaultDb db = BuildFaultDb("shed", 49);
  QueryServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 64;
  options.max_queue_wait_millis = 0.001;  // everything queued is late
  QueryService service(db.store.get(), options);

  const std::vector<QueryRequest> workload = MakeMixedWorkload(
      db.store->meta().bounds, db.store->meta().max_lod, 32, 99);
  std::atomic<int64_t> unavailable{0};
  std::atomic<int64_t> ok{0};
  for (const QueryRequest& req : workload) {
    service.Submit(req, [&](const Result<DmQueryResult>& r,
                            const QueryTiming&) {
      if (r.ok()) {
        ok.fetch_add(1);
      } else if (r.status().code() == StatusCode::kUnavailable) {
        unavailable.fetch_add(1);
      }
    });
  }
  service.Drain();
  const ServiceHealth health = service.health();
  service.Shutdown();

  EXPECT_EQ(ok.load() + unavailable.load(),
            static_cast<int64_t>(workload.size()));
  EXPECT_EQ(health.shed, unavailable.load());
  EXPECT_GT(health.shed, 0);
  EXPECT_EQ(health.errors, 0);
}

// ---- the seeded sweep ----------------------------------------------

std::vector<uint64_t> SweepSeeds() {
  if (const char* s = std::getenv("DM_FAULT_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(s, nullptr, 10))};
  }
  return {101, 202, 303};
}

struct FaultClass {
  const char* name;
  FaultPlan plan;  // seed filled per sweep iteration
};

std::vector<FaultClass> SweepClasses() {
  std::vector<FaultClass> classes;
  {
    FaultClass c{"eio", {}};
    c.plan.read_error_rate = 0.02;
    classes.push_back(c);
  }
  {
    FaultClass c{"transient", {}};
    c.plan.read_transient_rate = 0.10;
    classes.push_back(c);
  }
  {
    FaultClass c{"short-read", {}};
    c.plan.short_read_rate = 0.02;
    classes.push_back(c);
  }
  {
    FaultClass c{"bit-flip", {}};
    c.plan.bit_flip_rate = 0.02;
    classes.push_back(c);
  }
  {
    FaultClass c{"latency", {}};
    c.plan.latency_spike_rate = 0.05;
    c.plan.latency_spike_micros = 200;
    classes.push_back(c);
  }
  {
    FaultClass c{"mixed", {}};
    c.plan.read_error_rate = 0.01;
    c.plan.read_transient_rate = 0.05;
    c.plan.short_read_rate = 0.01;
    c.plan.bit_flip_rate = 0.01;
    c.plan.latency_spike_rate = 0.02;
    c.plan.latency_spike_micros = 100;
    classes.push_back(c);
  }
  return classes;
}

TEST(FaultSweep, SeededClassesDegradeButNeverCorrupt) {
  for (const uint64_t seed : SweepSeeds()) {
    FaultDb db = BuildFaultDb("sweep_" + std::to_string(seed), 41);
    const DmMeta& meta = db.store->meta();
    DmQueryOptions qopts;
    qopts.allow_degraded = true;
    DmQueryProcessor proc(db.store.get(), qopts);

    for (const FaultClass& fc : SweepClasses()) {
      SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " class " +
                   fc.name);
      ASSERT_TRUE(db.env->FlushAll().ok());
      db.env->ResetStats();
      db.device->ResetStats();
      FaultPlan plan = fc.plan;
      plan.seed = seed;
      db.device->set_plan(plan);

      const std::vector<QueryRequest> workload =
          MakeMixedWorkload(meta.bounds, meta.max_lod, 6, seed * 17 + 5);
      int executed = 0;
      for (const QueryRequest& req : workload) {
        ASSERT_TRUE(db.env->FlushAll().ok());  // cold: faults hit disk I/O
        Result<DmQueryResult> r = Status::Internal("unset");
        switch (req.kind) {
          case QueryRequest::Kind::kUniform:
            r = proc.ViewpointIndependent(req.roi, req.e);
            break;
          case QueryRequest::Kind::kView:
            r = req.multi_base ? proc.MultiBase(req.view)
                               : proc.SingleBase(req.view);
            break;
          case QueryRequest::Kind::kPerspective:
            r = proc.Perspective(req.perspective);
            break;
        }
        ++executed;
        if (!r.ok()) {
          // Index-page losses and storms outlasting the retry budget
          // are legal failures — but only with the right class.
          const StatusCode code = r.status().code();
          EXPECT_TRUE(code == StatusCode::kIOError ||
                      code == StatusCode::kCorruption ||
                      code == StatusCode::kUnavailable)
              << r.status().ToString();
          continue;
        }
        ExpectValidMesh(r.value());
        if (r.value().health.degraded) {
          EXPECT_GT(r.value().health.records_failed +
                        static_cast<int64_t>(r.value().health.deadline_hit),
                    0);
        }
      }
      EXPECT_EQ(executed, static_cast<int>(workload.size()));

      // The zero-silent-escape invariant: every injected bit flip was
      // rejected by the checksum layer.
      EXPECT_EQ(static_cast<uint64_t>(db.env->stats().corrupt_pages),
                db.device->stats().bit_flips.load());
      db.device->set_plan(FaultPlan{});

      // The store on disk is untouched by read faults: with injection
      // disarmed, a strict full-depth query and the invariant audit
      // still pass.
      ASSERT_TRUE(db.env->FlushAll().ok());
      DmQueryProcessor strict(db.store.get());
      const auto clean =
          strict.ViewpointIndependent(meta.bounds, meta.max_lod * 0.2);
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      EXPECT_FALSE(clean.value().health.degraded);
    }

    const auto report = VerifyDmStore(*db.store);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report.value().ok()) << report.value().ToString();
  }
}

}  // namespace
}  // namespace dm
