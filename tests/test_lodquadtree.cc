#include "index/lodquadtree/lod_quadtree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "test_util.h"

namespace dm {
namespace {

class LodQuadtreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = dm::testing::OpenTempEnv(
        "lodqt", DbOptions{.page_size = 512, .pool_pages = 256});
    tree_.emplace(std::move(LodQuadtree::Create(env_.get(),
                                                Rect::Of(0, 0, 100, 100),
                                                10.0))
                      .ValueOrDie());
  }
  std::unique_ptr<DbEnv> env_;
  std::optional<LodQuadtree> tree_;
};

TEST_F(LodQuadtreeTest, EmptyTreeAnswersEmpty) {
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      tree_->RangeQuery(Box::Of(0, 0, 0, 100, 100, 10), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(LodQuadtreeTest, RangeQueryMatchesBruteForceOnSkewedData) {
  Rng rng(99);
  struct Pt {
    double x, y, e;
  };
  std::vector<Pt> pts;
  // LOD values severely skewed toward 0, like normalized QEM errors.
  for (uint64_t i = 0; i < 3000; ++i) {
    Pt p{rng.Uniform(0, 100), rng.Uniform(0, 100),
         std::pow(rng.NextDouble(), 6.0) * 10.0};
    ASSERT_TRUE(tree_->Insert(p.x, p.y, p.e, i).ok());
    pts.push_back(p);
  }
  EXPECT_EQ(tree_->size(), 3000);

  for (int q = 0; q < 25; ++q) {
    const double x0 = rng.Uniform(0, 80);
    const double y0 = rng.Uniform(0, 80);
    const double e0 = rng.Uniform(0, 5);
    const Box query =
        Box::Of(x0, y0, e0, x0 + 20, y0 + 20, e0 + rng.Uniform(0, 5));
    std::vector<uint64_t> got;
    ASSERT_TRUE(tree_->RangeQuery(query, &got).ok());
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < pts.size(); ++i) {
      const Pt& p = pts[static_cast<size_t>(i)];
      if (query.Contains(p.x, p.y, p.e)) expected.insert(i);
    }
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected)
        << "query " << q;
    EXPECT_EQ(got.size(), expected.size());
  }
}

TEST_F(LodQuadtreeTest, HandlesMassiveDuplicatesViaOverflowChains) {
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Insert(50.0, 50.0, 1.0, i).ok());
  }
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      tree_->RangeQuery(Box::Of(49, 49, 0.5, 51, 51, 1.5), &out).ok());
  EXPECT_EQ(out.size(), 500u);
  // And a disjoint query still excludes them.
  out.clear();
  ASSERT_TRUE(tree_->RangeQuery(Box::Of(0, 0, 0, 10, 10, 10), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(LodQuadtreeTest, SplitsAdaptivelyOnLodSkew) {
  // All points at nearly the same (x, y) but spread over e: the tree
  // must split in the e dimension instead of cycling on quadrants.
  Rng rng(5);
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(tree_->Insert(50.0 + rng.Uniform(-0.001, 0.001),
                              50.0 + rng.Uniform(-0.001, 0.001),
                              rng.Uniform(0, 10.0), i)
                    .ok());
  }
  int64_t internal = 0;
  int64_t leaf = 0;
  ASSERT_TRUE(tree_->CountNodes(&internal, &leaf).ok());
  EXPECT_GT(internal, 0);
  // Narrow e-slab query returns the right subset.
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      tree_->RangeQuery(Box::Of(0, 0, 2.0, 100, 100, 3.0), &out).ok());
  EXPECT_GT(out.size(), 10u);
  EXPECT_LT(out.size(), 200u);
}

TEST_F(LodQuadtreeTest, StreamingEntriesExposeCoordinates) {
  ASSERT_TRUE(tree_->Insert(10, 20, 3, 1234).ok());
  bool seen = false;
  ASSERT_TRUE(tree_->RangeQueryEntries(
                     Box::Of(0, 0, 0, 100, 100, 10),
                     [&](double x, double y, double e, uint64_t payload) {
                       EXPECT_EQ(x, 10.0);
                       EXPECT_EQ(y, 20.0);
                       EXPECT_EQ(e, 3.0);
                       EXPECT_EQ(payload, 1234u);
                       seen = true;
                       return true;
                     })
                  .ok());
  EXPECT_TRUE(seen);
}


TEST(ClusterOrderTest, IsAPermutation) {
  Rng rng(13);
  std::vector<LodQuadtree::Point> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back(LodQuadtree::Point{rng.Uniform(0, 100),
                                     rng.Uniform(0, 100),
                                     rng.Uniform(0, 10)});
  }
  const auto order =
      LodQuadtree::ClusterOrder(pts, Rect::Of(0, 0, 100, 100), 10.0, 14);
  ASSERT_EQ(order.size(), pts.size());
  std::vector<bool> seen(pts.size(), false);
  for (size_t i : order) {
    ASSERT_LT(i, pts.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(ClusterOrderTest, GroupsSpatially) {
  // Consecutive runs of the order must span small sub-regions.
  Rng rng(17);
  std::vector<LodQuadtree::Point> pts;
  for (int i = 0; i < 4096; ++i) {
    pts.push_back(LodQuadtree::Point{rng.Uniform(0, 100),
                                     rng.Uniform(0, 100),
                                     std::pow(rng.NextDouble(), 6.0) * 10});
  }
  const uint32_t cap = 16;
  const auto order =
      LodQuadtree::ClusterOrder(pts, Rect::Of(0, 0, 100, 100), 10.0, cap);
  double clustered_area = 0;
  int runs = 0;
  for (size_t i = 0; i < order.size(); i += cap) {
    Rect mbr;
    for (size_t j = i; j < std::min(order.size(), i + cap); ++j) {
      mbr.ExpandToInclude(pts[order[j]].x, pts[order[j]].y);
    }
    clustered_area += mbr.Area();
    ++runs;
  }
  // Average run footprint far below the whole square.
  EXPECT_LT(clustered_area / runs, 100.0 * 100.0 / 20.0);
}

TEST(ClusterOrderTest, HandlesIdenticalPoints) {
  std::vector<LodQuadtree::Point> pts(500,
                                      LodQuadtree::Point{5.0, 5.0, 1.0});
  const auto order =
      LodQuadtree::ClusterOrder(pts, Rect::Of(0, 0, 10, 10), 2.0, 8);
  EXPECT_EQ(order.size(), pts.size());
}

}  // namespace
}  // namespace dm
