// End-to-end determinism of the parallel ingest pipeline: every stage
// (quadric simplification, connection lists, STR packing, record
// encoding, heap append) must produce bit-identical output at any
// thread count. The strongest check is byte-equality of the finished
// database files; the stage-level checks below localize a failure.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "dm/connectivity.h"
#include "dm/dm_store.h"
#include "dm/invariants.h"
#include "index/rtree/rstar_tree.h"
#include "test_util.h"
#include "workload/dataset.h"

namespace dm {
namespace {

using testing::MakeScene;
using testing::Scene;
using testing::TempDbPath;

std::vector<uint8_t> FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(BuildDeterminismTest, SimplifyIsThreadCountInvariant) {
  const DemGrid dem = GenerateFractalDem({.side = 49, .seed = 11});
  const TriangleMesh base = TriangulateDem(dem);
  SimplifyOptions so1;
  so1.threads = 1;
  const SimplifyResult a = SimplifyMesh(base, so1);
  for (int threads : {2, 4}) {
    SimplifyOptions so;
    so.threads = threads;
    const SimplifyResult b = SimplifyMesh(base, so);
    ASSERT_EQ(a.steps.size(), b.steps.size()) << "threads=" << threads;
    for (size_t i = 0; i < a.steps.size(); ++i) {
      const CollapseStep& x = a.steps[i];
      const CollapseStep& y = b.steps[i];
      ASSERT_EQ(x.record.parent, y.record.parent) << "step " << i;
      ASSERT_EQ(x.record.child1, y.record.child1) << "step " << i;
      ASSERT_EQ(x.record.child2, y.record.child2) << "step " << i;
      // Bit-equality, not near-equality: the parallel evaluation must
      // reproduce the sequential floating-point result exactly.
      ASSERT_EQ(x.error, y.error) << "step " << i;
      ASSERT_EQ(x.parent_pos.x, y.parent_pos.x) << "step " << i;
      ASSERT_EQ(x.parent_pos.y, y.parent_pos.y) << "step " << i;
      ASSERT_EQ(x.parent_pos.z, y.parent_pos.z) << "step " << i;
    }
    ASSERT_EQ(a.roots, b.roots);
    ASSERT_EQ(a.forced_collapses, b.forced_collapses);
  }
}

TEST(BuildDeterminismTest, ConnectionListsMatchContractionReference) {
  // The parallel chain-merge builder must agree entry-for-entry with
  // the simple contraction-replay reference implementation.
  const Scene scene = MakeScene(33, /*seed=*/7);
  const auto reference =
      BuildConnectionListsContraction(scene.base, scene.tree, scene.sr);
  for (int threads : {1, 2, 4}) {
    const auto parallel =
        BuildConnectionLists(scene.base, scene.tree, scene.sr, threads);
    ASSERT_EQ(parallel.size(), reference.size()) << "threads=" << threads;
    for (size_t v = 0; v < reference.size(); ++v) {
      ASSERT_EQ(parallel[v], reference[v])
          << "node " << v << " threads=" << threads;
    }
  }
}

TEST(BuildDeterminismTest, StrOrderMatchesSerialAtAnyThreadCount) {
  const Scene scene = MakeScene(33, /*seed=*/3);
  std::vector<Box> boxes;
  boxes.reserve(static_cast<size_t>(scene.tree.num_nodes()));
  for (const PmNode& n : scene.tree.nodes()) {
    boxes.push_back(Box::Of(n.pos.x, n.pos.y, n.e_low, n.pos.x, n.pos.y,
                            n.e_high));
  }
  const std::vector<size_t> serial = RStarTree::StrOrder(boxes, 64);
  for (int threads : {2, 4}) {
    WorkerPool pool(threads);
    EXPECT_EQ(RStarTree::StrOrder(boxes, 64, pool), serial)
        << "threads=" << threads;
  }
}

TEST(BuildDeterminismTest, StoreFilesAreByteIdenticalAcrossThreadCounts) {
  // The acceptance gate: identical .db files from threads=1 and
  // threads=4 builds of the same scene, plus identical (clean) verify
  // reports from the on-disk state.
  const Scene scene = MakeScene(33, /*seed=*/7);
  std::vector<uint8_t> ref_bytes;
  std::string ref_report;
  for (int threads : {1, 4}) {
    const std::string path =
        TempDbPath("determinism_t" + std::to_string(threads));
    std::remove(path.c_str());
    auto env_or = DbEnv::Open(path, {});
    ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
    auto env = std::move(env_or).value();
    DmStoreOptions options;
    options.threads = threads;
    auto store_or =
        DmStore::Build(env.get(), scene.base, scene.tree, scene.sr, options);
    ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();

    auto report_or = VerifyDmStore(store_or.value());
    ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
    EXPECT_TRUE(report_or.value().ok()) << report_or.value().ToString();

    ASSERT_TRUE(env->FlushAll().ok());
    const std::vector<uint8_t> bytes = FileBytes(path);
    ASSERT_FALSE(bytes.empty());
    if (threads == 1) {
      ref_bytes = bytes;
      ref_report = report_or.value().ToString();
    } else {
      EXPECT_EQ(bytes, ref_bytes) << "store bytes differ at threads=4";
      EXPECT_EQ(report_or.value().ToString(), ref_report);
    }
    env.reset();
    std::remove(path.c_str());
  }
}

TEST(BuildDeterminismTest, DatasetBuildIsThreadCountInvariant) {
  // Full BuildOrLoadDataset (all three method databases + cache
  // manifest) built at 1 and 4 threads into separate directories must
  // produce byte-identical database files.
  DatasetSpec spec;
  spec.name = "det";
  spec.side = 33;
  spec.seed = 7;
  const char* tmp = std::getenv("TMPDIR");
  const std::string base_dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                               "/dm_det_" + std::to_string(::getpid());
  const std::string dir1 = base_dir + "_t1";
  const std::string dir4 = base_dir + "_t4";
  for (const auto& dir : {dir1, dir4}) {
    std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
  {
    // Scoped so the environments close (flushing everything) before
    // the files are compared.
    auto built1_or = BuildOrLoadDataset(dir1, spec, {}, /*build_threads=*/1);
    ASSERT_TRUE(built1_or.ok()) << built1_or.status().ToString();
    auto built4_or = BuildOrLoadDataset(dir4, spec, {}, /*build_threads=*/4);
    ASSERT_TRUE(built4_or.ok()) << built4_or.status().ToString();
  }
  for (const char* method : {"dm", "pm", "hdov"}) {
    const std::string f1 = dir1 + "/det." + method + ".db";
    const std::string f4 = dir4 + "/det." + method + ".db";
    EXPECT_EQ(FileBytes(f1), FileBytes(f4)) << method;
  }
  for (const auto& dir : {dir1, dir4}) {
    std::string cmd = "rm -rf '" + dir + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
}

}  // namespace
}  // namespace dm
