file(REMOVE_RECURSE
  "CMakeFiles/dm_pmdb.dir/pmdb_query.cc.o"
  "CMakeFiles/dm_pmdb.dir/pmdb_query.cc.o.d"
  "CMakeFiles/dm_pmdb.dir/pmdb_store.cc.o"
  "CMakeFiles/dm_pmdb.dir/pmdb_store.cc.o.d"
  "libdm_pmdb.a"
  "libdm_pmdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_pmdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
