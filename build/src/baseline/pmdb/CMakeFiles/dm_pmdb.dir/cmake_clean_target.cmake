file(REMOVE_RECURSE
  "libdm_pmdb.a"
)
