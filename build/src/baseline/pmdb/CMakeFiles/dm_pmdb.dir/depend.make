# Empty dependencies file for dm_pmdb.
# This may be replaced when dependencies are built.
