file(REMOVE_RECURSE
  "libdm_hdov.a"
)
