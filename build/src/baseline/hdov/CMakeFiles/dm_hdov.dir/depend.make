# Empty dependencies file for dm_hdov.
# This may be replaced when dependencies are built.
