file(REMOVE_RECURSE
  "CMakeFiles/dm_hdov.dir/hdov_tree.cc.o"
  "CMakeFiles/dm_hdov.dir/hdov_tree.cc.o.d"
  "libdm_hdov.a"
  "libdm_hdov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_hdov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
