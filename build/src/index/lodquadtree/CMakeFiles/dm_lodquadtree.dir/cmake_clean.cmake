file(REMOVE_RECURSE
  "CMakeFiles/dm_lodquadtree.dir/lod_quadtree.cc.o"
  "CMakeFiles/dm_lodquadtree.dir/lod_quadtree.cc.o.d"
  "libdm_lodquadtree.a"
  "libdm_lodquadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_lodquadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
