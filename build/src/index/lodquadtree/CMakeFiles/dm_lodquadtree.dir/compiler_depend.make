# Empty compiler generated dependencies file for dm_lodquadtree.
# This may be replaced when dependencies are built.
