file(REMOVE_RECURSE
  "libdm_lodquadtree.a"
)
