file(REMOVE_RECURSE
  "libdm_btree.a"
)
