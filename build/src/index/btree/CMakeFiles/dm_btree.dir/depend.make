# Empty dependencies file for dm_btree.
# This may be replaced when dependencies are built.
