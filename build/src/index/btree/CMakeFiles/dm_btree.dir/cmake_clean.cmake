file(REMOVE_RECURSE
  "CMakeFiles/dm_btree.dir/bplus_tree.cc.o"
  "CMakeFiles/dm_btree.dir/bplus_tree.cc.o.d"
  "libdm_btree.a"
  "libdm_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
