file(REMOVE_RECURSE
  "libdm_rtree.a"
)
