file(REMOVE_RECURSE
  "CMakeFiles/dm_rtree.dir/rstar_tree.cc.o"
  "CMakeFiles/dm_rtree.dir/rstar_tree.cc.o.d"
  "libdm_rtree.a"
  "libdm_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
