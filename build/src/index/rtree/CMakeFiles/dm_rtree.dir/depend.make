# Empty dependencies file for dm_rtree.
# This may be replaced when dependencies are built.
