file(REMOVE_RECURSE
  "CMakeFiles/dm_core.dir/connectivity.cc.o"
  "CMakeFiles/dm_core.dir/connectivity.cc.o.d"
  "CMakeFiles/dm_core.dir/cost_model.cc.o"
  "CMakeFiles/dm_core.dir/cost_model.cc.o.d"
  "CMakeFiles/dm_core.dir/dm_node.cc.o"
  "CMakeFiles/dm_core.dir/dm_node.cc.o.d"
  "CMakeFiles/dm_core.dir/dm_query.cc.o"
  "CMakeFiles/dm_core.dir/dm_query.cc.o.d"
  "CMakeFiles/dm_core.dir/dm_store.cc.o"
  "CMakeFiles/dm_core.dir/dm_store.cc.o.d"
  "libdm_core.a"
  "libdm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
