
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dm/connectivity.cc" "src/dm/CMakeFiles/dm_core.dir/connectivity.cc.o" "gcc" "src/dm/CMakeFiles/dm_core.dir/connectivity.cc.o.d"
  "/root/repo/src/dm/cost_model.cc" "src/dm/CMakeFiles/dm_core.dir/cost_model.cc.o" "gcc" "src/dm/CMakeFiles/dm_core.dir/cost_model.cc.o.d"
  "/root/repo/src/dm/dm_node.cc" "src/dm/CMakeFiles/dm_core.dir/dm_node.cc.o" "gcc" "src/dm/CMakeFiles/dm_core.dir/dm_node.cc.o.d"
  "/root/repo/src/dm/dm_query.cc" "src/dm/CMakeFiles/dm_core.dir/dm_query.cc.o" "gcc" "src/dm/CMakeFiles/dm_core.dir/dm_query.cc.o.d"
  "/root/repo/src/dm/dm_store.cc" "src/dm/CMakeFiles/dm_core.dir/dm_store.cc.o" "gcc" "src/dm/CMakeFiles/dm_core.dir/dm_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dm_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/simplify/CMakeFiles/dm_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/dm_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/rtree/CMakeFiles/dm_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/dem/CMakeFiles/dm_dem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
