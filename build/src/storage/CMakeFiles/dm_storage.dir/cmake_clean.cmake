file(REMOVE_RECURSE
  "CMakeFiles/dm_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/dm_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/dm_storage.dir/db_env.cc.o"
  "CMakeFiles/dm_storage.dir/db_env.cc.o.d"
  "CMakeFiles/dm_storage.dir/disk_manager.cc.o"
  "CMakeFiles/dm_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/dm_storage.dir/heap_file.cc.o"
  "CMakeFiles/dm_storage.dir/heap_file.cc.o.d"
  "libdm_storage.a"
  "libdm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
