file(REMOVE_RECURSE
  "libdm_storage.a"
)
