# Empty dependencies file for dm_storage.
# This may be replaced when dependencies are built.
