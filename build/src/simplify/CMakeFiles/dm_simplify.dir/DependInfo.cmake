
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simplify/quadric.cc" "src/simplify/CMakeFiles/dm_simplify.dir/quadric.cc.o" "gcc" "src/simplify/CMakeFiles/dm_simplify.dir/quadric.cc.o.d"
  "/root/repo/src/simplify/simplifier.cc" "src/simplify/CMakeFiles/dm_simplify.dir/simplifier.cc.o" "gcc" "src/simplify/CMakeFiles/dm_simplify.dir/simplifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dm_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/dem/CMakeFiles/dm_dem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
