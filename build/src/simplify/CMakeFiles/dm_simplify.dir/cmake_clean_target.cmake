file(REMOVE_RECURSE
  "libdm_simplify.a"
)
