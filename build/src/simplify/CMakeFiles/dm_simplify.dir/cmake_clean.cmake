file(REMOVE_RECURSE
  "CMakeFiles/dm_simplify.dir/quadric.cc.o"
  "CMakeFiles/dm_simplify.dir/quadric.cc.o.d"
  "CMakeFiles/dm_simplify.dir/simplifier.cc.o"
  "CMakeFiles/dm_simplify.dir/simplifier.cc.o.d"
  "libdm_simplify.a"
  "libdm_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
