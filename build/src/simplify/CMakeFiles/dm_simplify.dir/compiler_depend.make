# Empty compiler generated dependencies file for dm_simplify.
# This may be replaced when dependencies are built.
