file(REMOVE_RECURSE
  "libdm_mesh.a"
)
