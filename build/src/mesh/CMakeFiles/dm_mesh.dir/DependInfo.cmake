
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/adjacency.cc" "src/mesh/CMakeFiles/dm_mesh.dir/adjacency.cc.o" "gcc" "src/mesh/CMakeFiles/dm_mesh.dir/adjacency.cc.o.d"
  "/root/repo/src/mesh/delaunay.cc" "src/mesh/CMakeFiles/dm_mesh.dir/delaunay.cc.o" "gcc" "src/mesh/CMakeFiles/dm_mesh.dir/delaunay.cc.o.d"
  "/root/repo/src/mesh/extract.cc" "src/mesh/CMakeFiles/dm_mesh.dir/extract.cc.o" "gcc" "src/mesh/CMakeFiles/dm_mesh.dir/extract.cc.o.d"
  "/root/repo/src/mesh/obj_io.cc" "src/mesh/CMakeFiles/dm_mesh.dir/obj_io.cc.o" "gcc" "src/mesh/CMakeFiles/dm_mesh.dir/obj_io.cc.o.d"
  "/root/repo/src/mesh/render.cc" "src/mesh/CMakeFiles/dm_mesh.dir/render.cc.o" "gcc" "src/mesh/CMakeFiles/dm_mesh.dir/render.cc.o.d"
  "/root/repo/src/mesh/triangle_mesh.cc" "src/mesh/CMakeFiles/dm_mesh.dir/triangle_mesh.cc.o" "gcc" "src/mesh/CMakeFiles/dm_mesh.dir/triangle_mesh.cc.o.d"
  "/root/repo/src/mesh/validate.cc" "src/mesh/CMakeFiles/dm_mesh.dir/validate.cc.o" "gcc" "src/mesh/CMakeFiles/dm_mesh.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dem/CMakeFiles/dm_dem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
