file(REMOVE_RECURSE
  "CMakeFiles/dm_mesh.dir/adjacency.cc.o"
  "CMakeFiles/dm_mesh.dir/adjacency.cc.o.d"
  "CMakeFiles/dm_mesh.dir/delaunay.cc.o"
  "CMakeFiles/dm_mesh.dir/delaunay.cc.o.d"
  "CMakeFiles/dm_mesh.dir/extract.cc.o"
  "CMakeFiles/dm_mesh.dir/extract.cc.o.d"
  "CMakeFiles/dm_mesh.dir/obj_io.cc.o"
  "CMakeFiles/dm_mesh.dir/obj_io.cc.o.d"
  "CMakeFiles/dm_mesh.dir/render.cc.o"
  "CMakeFiles/dm_mesh.dir/render.cc.o.d"
  "CMakeFiles/dm_mesh.dir/triangle_mesh.cc.o"
  "CMakeFiles/dm_mesh.dir/triangle_mesh.cc.o.d"
  "CMakeFiles/dm_mesh.dir/validate.cc.o"
  "CMakeFiles/dm_mesh.dir/validate.cc.o.d"
  "libdm_mesh.a"
  "libdm_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
