# Empty dependencies file for dm_mesh.
# This may be replaced when dependencies are built.
