file(REMOVE_RECURSE
  "CMakeFiles/dm_workload.dir/bench_context.cc.o"
  "CMakeFiles/dm_workload.dir/bench_context.cc.o.d"
  "CMakeFiles/dm_workload.dir/dataset.cc.o"
  "CMakeFiles/dm_workload.dir/dataset.cc.o.d"
  "libdm_workload.a"
  "libdm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
