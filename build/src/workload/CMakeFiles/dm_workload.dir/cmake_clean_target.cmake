file(REMOVE_RECURSE
  "libdm_workload.a"
)
