# Empty dependencies file for dm_workload.
# This may be replaced when dependencies are built.
