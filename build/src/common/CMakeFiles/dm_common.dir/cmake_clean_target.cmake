file(REMOVE_RECURSE
  "libdm_common.a"
)
