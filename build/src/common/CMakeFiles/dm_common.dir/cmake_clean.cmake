file(REMOVE_RECURSE
  "CMakeFiles/dm_common.dir/geometry.cc.o"
  "CMakeFiles/dm_common.dir/geometry.cc.o.d"
  "CMakeFiles/dm_common.dir/hilbert.cc.o"
  "CMakeFiles/dm_common.dir/hilbert.cc.o.d"
  "CMakeFiles/dm_common.dir/status.cc.o"
  "CMakeFiles/dm_common.dir/status.cc.o.d"
  "libdm_common.a"
  "libdm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
