file(REMOVE_RECURSE
  "libdm_pm.a"
)
