# Empty compiler generated dependencies file for dm_pm.
# This may be replaced when dependencies are built.
