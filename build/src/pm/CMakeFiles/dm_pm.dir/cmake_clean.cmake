file(REMOVE_RECURSE
  "CMakeFiles/dm_pm.dir/cut_replay.cc.o"
  "CMakeFiles/dm_pm.dir/cut_replay.cc.o.d"
  "CMakeFiles/dm_pm.dir/pm_tree.cc.o"
  "CMakeFiles/dm_pm.dir/pm_tree.cc.o.d"
  "libdm_pm.a"
  "libdm_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
