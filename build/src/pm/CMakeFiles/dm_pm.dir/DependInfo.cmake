
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/cut_replay.cc" "src/pm/CMakeFiles/dm_pm.dir/cut_replay.cc.o" "gcc" "src/pm/CMakeFiles/dm_pm.dir/cut_replay.cc.o.d"
  "/root/repo/src/pm/pm_tree.cc" "src/pm/CMakeFiles/dm_pm.dir/pm_tree.cc.o" "gcc" "src/pm/CMakeFiles/dm_pm.dir/pm_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dm_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/simplify/CMakeFiles/dm_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/dem/CMakeFiles/dm_dem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
