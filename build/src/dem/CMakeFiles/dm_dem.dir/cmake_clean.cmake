file(REMOVE_RECURSE
  "CMakeFiles/dm_dem.dir/crater.cc.o"
  "CMakeFiles/dm_dem.dir/crater.cc.o.d"
  "CMakeFiles/dm_dem.dir/dem_grid.cc.o"
  "CMakeFiles/dm_dem.dir/dem_grid.cc.o.d"
  "CMakeFiles/dm_dem.dir/dem_io.cc.o"
  "CMakeFiles/dm_dem.dir/dem_io.cc.o.d"
  "CMakeFiles/dm_dem.dir/fractal.cc.o"
  "CMakeFiles/dm_dem.dir/fractal.cc.o.d"
  "libdm_dem.a"
  "libdm_dem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_dem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
