
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dem/crater.cc" "src/dem/CMakeFiles/dm_dem.dir/crater.cc.o" "gcc" "src/dem/CMakeFiles/dm_dem.dir/crater.cc.o.d"
  "/root/repo/src/dem/dem_grid.cc" "src/dem/CMakeFiles/dm_dem.dir/dem_grid.cc.o" "gcc" "src/dem/CMakeFiles/dm_dem.dir/dem_grid.cc.o.d"
  "/root/repo/src/dem/dem_io.cc" "src/dem/CMakeFiles/dm_dem.dir/dem_io.cc.o" "gcc" "src/dem/CMakeFiles/dm_dem.dir/dem_io.cc.o.d"
  "/root/repo/src/dem/fractal.cc" "src/dem/CMakeFiles/dm_dem.dir/fractal.cc.o" "gcc" "src/dem/CMakeFiles/dm_dem.dir/fractal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
