file(REMOVE_RECURSE
  "libdm_dem.a"
)
