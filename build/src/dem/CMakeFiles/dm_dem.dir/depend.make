# Empty dependencies file for dm_dem.
# This may be replaced when dependencies are built.
