file(REMOVE_RECURSE
  "CMakeFiles/dmctl.dir/dmctl.cc.o"
  "CMakeFiles/dmctl.dir/dmctl.cc.o.d"
  "dmctl"
  "dmctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
