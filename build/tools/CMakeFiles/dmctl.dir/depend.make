# Empty dependencies file for dmctl.
# This may be replaced when dependencies are built.
