file(REMOVE_RECURSE
  "CMakeFiles/lod_pyramid.dir/lod_pyramid.cpp.o"
  "CMakeFiles/lod_pyramid.dir/lod_pyramid.cpp.o.d"
  "lod_pyramid"
  "lod_pyramid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_pyramid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
