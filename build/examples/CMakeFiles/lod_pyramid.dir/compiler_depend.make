# Empty compiler generated dependencies file for lod_pyramid.
# This may be replaced when dependencies are built.
