# Empty dependencies file for test_pmdb.
# This may be replaced when dependencies are built.
