file(REMOVE_RECURSE
  "CMakeFiles/test_pmdb.dir/test_pmdb.cc.o"
  "CMakeFiles/test_pmdb.dir/test_pmdb.cc.o.d"
  "test_pmdb"
  "test_pmdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
