# Empty compiler generated dependencies file for test_tin.
# This may be replaced when dependencies are built.
