file(REMOVE_RECURSE
  "CMakeFiles/test_tin.dir/test_tin.cc.o"
  "CMakeFiles/test_tin.dir/test_tin.cc.o.d"
  "test_tin"
  "test_tin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
