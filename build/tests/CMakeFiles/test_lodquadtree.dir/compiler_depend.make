# Empty compiler generated dependencies file for test_lodquadtree.
# This may be replaced when dependencies are built.
