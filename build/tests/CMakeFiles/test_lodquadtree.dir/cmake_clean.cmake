file(REMOVE_RECURSE
  "CMakeFiles/test_lodquadtree.dir/test_lodquadtree.cc.o"
  "CMakeFiles/test_lodquadtree.dir/test_lodquadtree.cc.o.d"
  "test_lodquadtree"
  "test_lodquadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lodquadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
