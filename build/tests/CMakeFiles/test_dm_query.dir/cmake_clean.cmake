file(REMOVE_RECURSE
  "CMakeFiles/test_dm_query.dir/test_dm_query.cc.o"
  "CMakeFiles/test_dm_query.dir/test_dm_query.cc.o.d"
  "test_dm_query"
  "test_dm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
