# Empty dependencies file for test_dm_query.
# This may be replaced when dependencies are built.
