# Empty dependencies file for test_hdov.
# This may be replaced when dependencies are built.
