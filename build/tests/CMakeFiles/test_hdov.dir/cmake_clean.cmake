file(REMOVE_RECURSE
  "CMakeFiles/test_hdov.dir/test_hdov.cc.o"
  "CMakeFiles/test_hdov.dir/test_hdov.cc.o.d"
  "test_hdov"
  "test_hdov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
