file(REMOVE_RECURSE
  "CMakeFiles/test_dm_store.dir/test_dm_store.cc.o"
  "CMakeFiles/test_dm_store.dir/test_dm_store.cc.o.d"
  "test_dm_store"
  "test_dm_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dm_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
