# Empty compiler generated dependencies file for test_dm_store.
# This may be replaced when dependencies are built.
