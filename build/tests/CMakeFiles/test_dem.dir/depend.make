# Empty dependencies file for test_dem.
# This may be replaced when dependencies are built.
