file(REMOVE_RECURSE
  "CMakeFiles/test_dem.dir/test_dem.cc.o"
  "CMakeFiles/test_dem.dir/test_dem.cc.o.d"
  "test_dem"
  "test_dem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
