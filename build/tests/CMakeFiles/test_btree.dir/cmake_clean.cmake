file(REMOVE_RECURSE
  "CMakeFiles/test_btree.dir/test_btree.cc.o"
  "CMakeFiles/test_btree.dir/test_btree.cc.o.d"
  "test_btree"
  "test_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
