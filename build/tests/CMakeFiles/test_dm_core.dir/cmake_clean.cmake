file(REMOVE_RECURSE
  "CMakeFiles/test_dm_core.dir/test_dm_core.cc.o"
  "CMakeFiles/test_dm_core.dir/test_dm_core.cc.o.d"
  "test_dm_core"
  "test_dm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
