# Empty compiler generated dependencies file for test_dm_core.
# This may be replaced when dependencies are built.
