
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_multibase.cc" "bench/CMakeFiles/ablation_multibase.dir/ablation_multibase.cc.o" "gcc" "bench/CMakeFiles/ablation_multibase.dir/ablation_multibase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/pmdb/CMakeFiles/dm_pmdb.dir/DependInfo.cmake"
  "/root/repo/build/src/index/btree/CMakeFiles/dm_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/index/lodquadtree/CMakeFiles/dm_lodquadtree.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/hdov/CMakeFiles/dm_hdov.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/dm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/dm_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/simplify/CMakeFiles/dm_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dm_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/dem/CMakeFiles/dm_dem.dir/DependInfo.cmake"
  "/root/repo/build/src/index/rtree/CMakeFiles/dm_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
