# Empty dependencies file for ablation_multibase.
# This may be replaced when dependencies are built.
