file(REMOVE_RECURSE
  "CMakeFiles/ablation_multibase.dir/ablation_multibase.cc.o"
  "CMakeFiles/ablation_multibase.dir/ablation_multibase.cc.o.d"
  "ablation_multibase"
  "ablation_multibase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multibase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
