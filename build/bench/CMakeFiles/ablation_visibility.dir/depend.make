# Empty dependencies file for ablation_visibility.
# This may be replaced when dependencies are built.
