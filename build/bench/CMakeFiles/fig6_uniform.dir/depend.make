# Empty dependencies file for fig6_uniform.
# This may be replaced when dependencies are built.
