file(REMOVE_RECURSE
  "CMakeFiles/fig6_uniform.dir/fig6_uniform.cc.o"
  "CMakeFiles/fig6_uniform.dir/fig6_uniform.cc.o.d"
  "fig6_uniform"
  "fig6_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
