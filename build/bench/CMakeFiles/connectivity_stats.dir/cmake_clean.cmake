file(REMOVE_RECURSE
  "CMakeFiles/connectivity_stats.dir/connectivity_stats.cc.o"
  "CMakeFiles/connectivity_stats.dir/connectivity_stats.cc.o.d"
  "connectivity_stats"
  "connectivity_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectivity_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
