# Empty dependencies file for connectivity_stats.
# This may be replaced when dependencies are built.
