file(REMOVE_RECURSE
  "CMakeFiles/fig8_viewdep.dir/fig8_viewdep.cc.o"
  "CMakeFiles/fig8_viewdep.dir/fig8_viewdep.cc.o.d"
  "fig8_viewdep"
  "fig8_viewdep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_viewdep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
