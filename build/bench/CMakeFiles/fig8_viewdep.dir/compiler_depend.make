# Empty compiler generated dependencies file for fig8_viewdep.
# This may be replaced when dependencies are built.
