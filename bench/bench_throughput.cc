// Concurrent-serving throughput benchmark: replays one deterministic
// mixed workload (view-dependent, multi-base and perspective queries,
// see MakeMixedWorkload) through the QueryService at several worker
// counts and reports queries/sec, p50/p99/p999 latency (end-to-end
// plus its queue-wait vs execution split) and aggregate disk reads
// per configuration.
//
// Unlike the fig6/fig8 benches this measures steady-state serving
// capacity: the buffer pool runs with its concurrent sharding
// (BufferPool::kDefaultShards) instead of the paper-exact single
// shard, sized below the working set (--pool-pages) so the timed runs
// keep missing, and each page read carries a simulated device latency
// (--read-latency-us) to model the disk-bound regime the paper
// measures — the bench datasets otherwise sit entirely in the OS page
// cache and the run degenerates to a CPU microbenchmark. An untimed
// single-threaded pass first brings the system to steady state.
//
// Usage: bench_throughput [--tiny] [--threads=1,2,4,8] [--queries=N]
//                         [--read-latency-us=N] [--pool-pages=N]
//                         [--out=BENCH_throughput.json]
//
// --tiny switches to a 65x65 dataset for CI smoke runs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "server/query_service.h"
#include "storage/buffer_pool.h"

namespace dm::bench {
namespace {

struct CliOptions {
  bool tiny = false;
  std::vector<int> threads = {1, 2, 4, 8};
  int queries = 200;
  // The datasets fit in the OS page cache, so with zero simulated
  // latency a "disk read" costs a few microseconds and the benchmark
  // degenerates to a CPU microbenchmark (meaningless on small CI
  // machines). The default models an SSD-class device; 0 disables.
  int read_latency_us = 150;
  // Pool deliberately smaller than the working set so the timed runs
  // keep missing, as in the paper's buffer-starved setup.
  int pool_pages = 64;
  std::string out = "BENCH_throughput.json";
};

bool ParseThreadList(const char* s, std::vector<int>* out) {
  out->clear();
  while (*s != '\0') {
    char* end = nullptr;
    const long t = std::strtol(s, &end, 10);
    if (end == s || t <= 0 || t > 256) return false;
    out->push_back(static_cast<int>(t));
    s = *end == ',' ? end + 1 : end;
    if (end == s && *end != '\0') return false;
  }
  return !out->empty();
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--tiny") == 0) {
      opts->tiny = true;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!ParseThreadList(arg + 10, &opts->threads)) {
        std::fprintf(stderr, "bad --threads list: %s\n", arg + 10);
        return false;
      }
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      opts->queries = std::atoi(arg + 10);
      if (opts->queries <= 0) {
        std::fprintf(stderr, "bad --queries: %s\n", arg + 10);
        return false;
      }
    } else if (std::strncmp(arg, "--read-latency-us=", 18) == 0) {
      opts->read_latency_us = std::atoi(arg + 18);
      if (opts->read_latency_us < 0) {
        std::fprintf(stderr, "bad --read-latency-us: %s\n", arg + 18);
        return false;
      }
    } else if (std::strncmp(arg, "--pool-pages=", 13) == 0) {
      opts->pool_pages = std::atoi(arg + 13);
      if (opts->pool_pages < 16) {
        std::fprintf(stderr, "bad --pool-pages (min 16): %s\n", arg + 13);
        return false;
      }
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opts->out = arg + 6;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_throughput [--tiny] "
                   "[--threads=1,2,4] [--queries=N] [--read-latency-us=N] "
                   "[--pool-pages=N] [--out=FILE]\n",
                   arg);
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;

  DatasetSpec spec = SmallDatasetSpec();
  if (opts.tiny) {
    spec.name = "tiny";
    spec.side = 65;
  }
  DbOptions db_options;
  db_options.pool_shards = BufferPool::kDefaultShards;
  db_options.pool_pages = static_cast<uint32_t>(opts.pool_pages);
  std::fprintf(stderr, "[bench] preparing dataset '%s' (%d x %d)...\n",
               spec.name.c_str(), spec.side, spec.side);
  auto ctx_or = BenchContext::Create(BenchDataDir(), spec, db_options);
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n",
                 ctx_or.status().ToString().c_str());
    return 1;
  }
  BenchContext ctx = std::move(ctx_or).value();
  BuiltDataset& ds = ctx.mutable_dataset();
  DmStore* store = &ds.dm.value();
  // Latency applies only from here on: the dataset build above ran at
  // native page-cache speed.
  ds.dm_env->disk().set_simulated_read_latency_micros(
      static_cast<uint32_t>(opts.read_latency_us));

  const std::vector<QueryRequest> workload =
      MakeMixedWorkload(ds.bounds, ds.max_lod, opts.queries, /*seed=*/12345);

  // Untimed warm-up: faults the working set into the pool so every
  // timed configuration sees the same warm cache.
  {
    auto warm_or = RunThroughput(store, workload, 1);
    if (!warm_or.ok()) {
      std::fprintf(stderr, "warm-up failed: %s\n",
                   warm_or.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] warm-up: %s\n",
                 warm_or.value().ToString().c_str());
  }

  BenchJsonWriter writer("bench_throughput");
  writer.Add("queries", static_cast<double>(opts.queries));
  writer.Add("dataset_side", static_cast<double>(spec.side));
  writer.Add("read_latency_us", static_cast<double>(opts.read_latency_us));
  writer.Add("pool_pages", static_cast<double>(opts.pool_pages));

  // CRC verification A/B: single-threaded pass with checksums off,
  // then on. The pool is smaller than the working set, so misses (and
  // thus per-fetch CRC work) keep flowing in both passes; the gate in
  // check_bench_regression.py holds the overhead under 10%.
  {
    BufferPool& pool = ds.dm_env->pool();
    pool.set_verify_checksums(false);
    auto off_or = RunThroughput(store, workload, 1);
    pool.set_verify_checksums(true);
    auto on_or = RunThroughput(store, workload, 1);
    if (!off_or.ok() || !on_or.ok()) {
      std::fprintf(stderr, "checksum A/B failed: %s\n",
                   (!off_or.ok() ? off_or : on_or).status()
                       .ToString()
                       .c_str());
      return 1;
    }
    const double off_qps = off_or.value().qps;
    const double on_qps = on_or.value().qps;
    const double overhead_pct =
        (off_qps > 0 && on_qps > 0) ? 100.0 * (off_qps / on_qps - 1.0) : 0.0;
    std::printf("checksum A/B: off=%.1f qps on=%.1f qps overhead=%.2f%%\n",
                off_qps, on_qps, overhead_pct);
    writer.Add("checksum_overhead_pct", overhead_pct);
  }

  int64_t total_failed = 0;
  for (int threads : opts.threads) {
    auto report_or = RunThroughput(store, workload, threads);
    if (!report_or.ok()) {
      std::fprintf(stderr, "run (threads=%d) failed: %s\n", threads,
                   report_or.status().ToString().c_str());
      return 1;
    }
    const ThroughputReport& r = report_or.value();
    std::printf("%s\n", r.ToString().c_str());
    const std::string prefix = "threads_" + std::to_string(threads) + "/";
    writer.Add(prefix + "qps", r.qps);
    writer.Add(prefix + "p50_millis", r.p50_millis);
    writer.Add(prefix + "p99_millis", r.p99_millis);
    writer.Add(prefix + "p999_millis", r.p999_millis);
    writer.Add(prefix + "queue_p50_millis", r.queue_p50_millis);
    writer.Add(prefix + "queue_p99_millis", r.queue_p99_millis);
    writer.Add(prefix + "exec_p50_millis", r.exec_p50_millis);
    writer.Add(prefix + "exec_p99_millis", r.exec_p99_millis);
    writer.Add(prefix + "wall_millis", r.wall_millis);
    writer.Add(prefix + "disk_reads", static_cast<double>(r.disk_reads));
    writer.Add(prefix + "failed", static_cast<double>(r.failed));
    total_failed += r.failed;
  }
  if (!writer.WriteFile(opts.out)) return 1;
  if (total_failed > 0) {
    std::fprintf(stderr, "%lld queries failed\n",
                 static_cast<long long>(total_failed));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dm::bench

int main(int argc, char** argv) { return dm::bench::Main(argc, argv); }
