// Ingest (build-pipeline) scaling benchmark: runs the full DEM ->
// triangulation -> QEM simplification -> PM tree -> connection lists
// -> record encoding -> R*-tree STR pack pipeline at several thread
// counts and reports the per-stage wall-clock breakdown, end-to-end
// speedups, and a byte-level determinism check over the built store.
//
// Ingest of production terrain is fetch-bound: source tiles live on a
// tile server or object store, not in local RAM. The bench models
// that with a fetch stage that copies the source DEM block by block,
// charging a simulated per-block latency (--fetch-latency-us, the
// same technique bench_throughput uses for disk reads); blocks fetch
// concurrently across the build workers. The CPU stages (simplify,
// connection lists, STR sort, encode) parallelize for real and scale
// on multicore hosts. Every stage is deterministic by construction,
// so the bench asserts that the stores built at different thread
// counts are byte-identical (metrics key `determinism_ok`).
//
// Usage: bench_build [--tiny] [--threads=1,2,4,8] [--side=N]
//                    [--fetch-latency-us=N] [--fetch-block=N]
//                    [--out=BENCH_build.json]
//
// --tiny switches to a 65x65 DEM with microsecond fetch latency for
// CI smoke runs (determinism still checked; speedup not meaningful).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "dem/fractal.h"
#include "dm/dm_store.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"
#include "simplify/simplifier.h"
#include "storage/db_env.h"

namespace dm::bench {
namespace {

struct CliOptions {
  bool tiny = false;
  std::vector<int> threads = {1, 2, 4, 8};
  int side = 385;
  // Per-block fetch latency. The default models a remote tile server
  // (tens of ms per tile request); --tiny drops it to microseconds.
  int fetch_latency_us = 80000;
  int fetch_block = 32;
  std::string out = "BENCH_build.json";
};

bool ParseThreadList(const char* s, std::vector<int>* out) {
  out->clear();
  while (*s != '\0') {
    char* end = nullptr;
    const long t = std::strtol(s, &end, 10);
    if (end == s || t <= 0 || t > 256) return false;
    out->push_back(static_cast<int>(t));
    s = *end == ',' ? end + 1 : end;
    if (end == s && *end != '\0') return false;
  }
  return !out->empty();
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--tiny") == 0) {
      opts->tiny = true;
      opts->side = 65;
      opts->threads = {1, 2};
      opts->fetch_latency_us = 200;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!ParseThreadList(arg + 10, &opts->threads)) {
        std::fprintf(stderr, "bad --threads list: %s\n", arg + 10);
        return false;
      }
    } else if (std::strncmp(arg, "--side=", 7) == 0) {
      opts->side = std::atoi(arg + 7);
      if (opts->side < 17) {
        std::fprintf(stderr, "bad --side (min 17): %s\n", arg + 7);
        return false;
      }
    } else if (std::strncmp(arg, "--fetch-latency-us=", 19) == 0) {
      opts->fetch_latency_us = std::atoi(arg + 19);
      if (opts->fetch_latency_us < 0) {
        std::fprintf(stderr, "bad --fetch-latency-us: %s\n", arg + 19);
        return false;
      }
    } else if (std::strncmp(arg, "--fetch-block=", 14) == 0) {
      opts->fetch_block = std::atoi(arg + 14);
      if (opts->fetch_block < 8) {
        std::fprintf(stderr, "bad --fetch-block (min 8): %s\n", arg + 14);
        return false;
      }
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opts->out = arg + 6;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_build [--tiny] "
                   "[--threads=1,2,4,8] [--side=N] [--fetch-latency-us=N] "
                   "[--fetch-block=N] [--out=FILE]\n",
                   arg);
      return false;
    }
  }
  return true;
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// "Fetches" the source DEM into a local grid, block by block, paying
/// `latency_us` per block (the remote-tile round trip). Blocks are
/// disjoint, so they fetch concurrently over the pool; the assembled
/// grid is identical at any thread count.
DemGrid FetchDem(const DemGrid& remote, WorkerPool& pool, int block,
                 int latency_us) {
  DemGrid local(remote.width(), remote.height());
  const int bx = (remote.width() + block - 1) / block;
  const int by = (remote.height() + block - 1) / block;
  const int64_t blocks = static_cast<int64_t>(bx) * by;
  ParallelFor(pool, blocks, 1, [&](int64_t begin, int64_t end) {
    for (int64_t b = begin; b < end; ++b) {
      const int x0 = static_cast<int>(b % bx) * block;
      const int y0 = static_cast<int>(b / bx) * block;
      if (latency_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
      }
      const int x1 = std::min(remote.width(), x0 + block);
      const int y1 = std::min(remote.height(), y0 + block);
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          local.set(x, y, remote.at(x, y));
        }
      }
    }
  });
  return local;
}

/// FNV-1a over a whole file; 0 on open failure.
uint64_t HashFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  uint64_t h = 1469598103934665603ull;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ull;
    }
    if (n < static_cast<std::streamsize>(sizeof(buf))) break;
  }
  return h;
}

struct StageTimes {
  double fetch = 0, triangulate = 0, simplify = 0, pm_tree = 0;
  DmBuildTimings store;
  double total() const {
    return fetch + triangulate + simplify + pm_tree + store.conn_millis +
           store.str_millis + store.encode_millis + store.append_millis +
           store.bulkload_millis + store.catalog_millis;
  }
};

int Main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;

  FractalParams fp;
  fp.side = opts.side;
  fp.seed = 42;
  const DemGrid remote = GenerateFractalDem(fp);
  std::fprintf(stderr,
               "[bench] source DEM %d x %d; fetch %d us per %dx%d block\n",
               remote.width(), remote.height(), opts.fetch_latency_us,
               opts.fetch_block, opts.fetch_block);

  BenchJsonWriter writer("bench_build");
  writer.Add("dataset_side", static_cast<double>(opts.side));
  writer.Add("fetch_latency_us", static_cast<double>(opts.fetch_latency_us));
  writer.Add("fetch_block", static_cast<double>(opts.fetch_block));
  writer.Add("hardware_threads",
             static_cast<double>(std::thread::hardware_concurrency()));

  std::vector<std::pair<int, double>> totals;
  uint64_t first_hash = 0;
  bool determinism_ok = true;
  for (const int threads : opts.threads) {
    WorkerPool pool(threads);
    StageTimes st;
    auto clock = std::chrono::steady_clock::now();
    auto lap = [&](double* slot) {
      *slot = MillisSince(clock);
      clock = std::chrono::steady_clock::now();
    };

    const DemGrid dem =
        FetchDem(remote, pool, opts.fetch_block, opts.fetch_latency_us);
    lap(&st.fetch);
    const TriangleMesh mesh = TriangulateDem(dem);
    lap(&st.triangulate);
    SimplifyOptions so;
    so.threads = threads;
    const SimplifyResult sr = SimplifyMesh(mesh, so);
    lap(&st.simplify);
    auto tree_or = PmTree::Build(mesh, sr);
    if (!tree_or.ok()) {
      std::fprintf(stderr, "pm tree build failed: %s\n",
                   tree_or.status().ToString().c_str());
      return 1;
    }
    const PmTree tree = std::move(tree_or).value();
    lap(&st.pm_tree);

    const std::string db_path =
        BenchDataDir() + "/bench_build_t" + std::to_string(threads) + ".db";
    std::remove(db_path.c_str());
    auto env_or = DbEnv::Open(db_path, {});
    if (!env_or.ok()) {
      std::fprintf(stderr, "env open failed: %s\n",
                   env_or.status().ToString().c_str());
      return 1;
    }
    auto env = std::move(env_or).value();
    DmStoreOptions dm_opts;
    dm_opts.threads = threads;
    dm_opts.timings = &st.store;
    auto store_or = DmStore::Build(env.get(), mesh, tree, sr, dm_opts);
    if (!store_or.ok()) {
      std::fprintf(stderr, "store build failed: %s\n",
                   store_or.status().ToString().c_str());
      return 1;
    }
    if (auto flush = env->FlushAll(); !flush.ok()) {
      std::fprintf(stderr, "flush failed: %s\n",
                   flush.ToString().c_str());
      return 1;
    }

    const uint64_t hash = HashFile(db_path);
    if (first_hash == 0) {
      first_hash = hash;
    } else if (hash != first_hash) {
      determinism_ok = false;
    }
    std::printf(
        "threads=%d total=%.1fms  fetch=%.1f triangulate=%.1f "
        "simplify=%.1f pm=%.1f conn=%.1f str=%.1f encode=%.1f append=%.1f "
        "rtree=%.1f catalog=%.1f  hash=%016llx\n",
        threads, st.total(), st.fetch, st.triangulate, st.simplify,
        st.pm_tree, st.store.conn_millis, st.store.str_millis,
        st.store.encode_millis, st.store.append_millis,
        st.store.bulkload_millis, st.store.catalog_millis,
        static_cast<unsigned long long>(hash));

    const std::string p = "threads_" + std::to_string(threads) + "/";
    writer.Add(p + "fetch_millis", st.fetch);
    writer.Add(p + "triangulate_millis", st.triangulate);
    writer.Add(p + "simplify_millis", st.simplify);
    writer.Add(p + "pm_tree_millis", st.pm_tree);
    writer.Add(p + "conn_millis", st.store.conn_millis);
    writer.Add(p + "str_millis", st.store.str_millis);
    writer.Add(p + "encode_millis", st.store.encode_millis);
    writer.Add(p + "append_millis", st.store.append_millis);
    writer.Add(p + "rtree_pack_millis", st.store.bulkload_millis);
    writer.Add(p + "catalog_millis", st.store.catalog_millis);
    writer.Add(p + "total_millis", st.total());
    totals.emplace_back(threads, st.total());
    std::remove(db_path.c_str());
  }

  // End-to-end speedups versus the slowest-threaded run measured.
  double base_total = 0.0;
  for (const auto& [t, total] : totals) {
    if (t == 1) base_total = total;
  }
  if (base_total > 0) {
    for (const auto& [t, total] : totals) {
      if (t != 1 && total > 0) {
        writer.Add("speedup_" + std::to_string(t) + "t", base_total / total);
      }
    }
  }
  writer.Add("determinism_ok", determinism_ok ? 1.0 : 0.0);
  char hash_str[32];
  std::snprintf(hash_str, sizeof(hash_str), "%016llx",
                static_cast<unsigned long long>(first_hash));
  writer.Add("store_hash", std::string(hash_str));
  if (!writer.WriteFile(opts.out)) return 1;
  if (!determinism_ok) {
    std::fprintf(stderr,
                 "DETERMINISM FAILURE: stores differ across thread counts\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dm::bench

int main(int argc, char** argv) { return dm::bench::Main(argc, argv); }
