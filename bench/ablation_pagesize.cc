// Ablation of the page size: rebuilds the 'small' dataset at several
// page sizes and reports disk accesses for a fixed uniform query mix.
// Bigger pages cut the access count roughly proportionally (fewer,
// larger transfers) but each access moves more data; the paper's
// Oracle setup fixes this at the block size, so this ablation shows
// how sensitive the DM-vs-PM gap is to that constant.

#include <benchmark/benchmark.h>

#include <string>
#include <sys/stat.h>

#include "bench_util.h"

namespace dm::bench {
namespace {

void PageSizeSweep(benchmark::State& state) {
  const uint32_t page_size = static_cast<uint32_t>(state.range(0));
  DbOptions options;
  options.page_size = page_size;
  // Page size changes the on-disk layout: use a size-specific cache
  // directory so the builds do not clobber each other.
  const std::string dir =
      BenchDataDir() + "/ps" + std::to_string(page_size);
  ::mkdir(dir.c_str(), 0755);
  DatasetSpec spec = SmallDatasetSpec();

  auto ctx_or = BenchContext::Create(dir, spec, options);
  if (!ctx_or.ok()) {
    state.SkipWithError(ctx_or.status().ToString().c_str());
    return;
  }
  BenchContext ctx = std::move(ctx_or).value();
  const auto rois = ctx.SampleRois(0.10, QueryLocations());
  const double e = ctx.dataset().LodForCutFraction(0.1);

  for (auto _ : state) {
    for (Method m : {Method::kDmSingleBase, Method::kPm}) {
      auto point_or = ctx.Average(rois, [&](const Rect& roi) {
        return ctx.RunUniform(m, roi, e);
      });
      if (!point_or.ok()) {
        state.SkipWithError(point_or.status().ToString().c_str());
        return;
      }
      state.counters[std::string("DA_") + MethodName(m)] =
          point_or.value().disk_accesses;
      state.counters[std::string("KiB_") + MethodName(m)] =
          point_or.value().disk_accesses * page_size / 1024.0;
    }
  }
}

BENCHMARK(PageSizeSweep)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dm::bench

BENCHMARK_MAIN();
