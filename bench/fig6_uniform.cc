// Reproduces Figure 6 of the paper: viewpoint-independent (uniform
// LOD) query cost, measured in disk accesses, for DM (single-base; the
// multi-base optimization "is not applicable to viewpoint-independent
// queries"), the PM + LOD-quadtree baseline, and the HDoV-tree.
//
//   fig6a: varying ROI, small dataset   fig6b: varying LOD, small
//   fig6c: varying ROI, crater dataset  fig6d: varying LOD, crater
//
// The LOD of the varying-ROI tests is the dataset's average LOD; the
// ROI of the varying-LOD tests is 10% (small) / 5% (crater), matching
// Section 6.1.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dm::bench {
namespace {

constexpr double kRoiSweep[] = {0.01, 0.02, 0.05, 0.10, 0.15, 0.20};
// LOD swept as the fraction of original points the uniform cut keeps
// (QEM error values span orders of magnitude, so a naive percentage of
// the max LOD collapses onto the coarse end; the paper likewise
// restricts its sweep to "the LOD value range that contains
// substantial number of points").
constexpr double kLodSweep[] = {0.50, 0.25, 0.10, 0.05, 0.02, 0.01};
// Stand-in for the paper's "average LOD value of the dataset" in the
// varying-ROI tests: the cut keeping 10% of the points.
constexpr double kWorkingResolution = 0.10;

Method MethodFromIndex(int64_t i) {
  switch (i) {
    case 0:
      return Method::kDmSingleBase;
    case 1:
      return Method::kPm;
    default:
      return Method::kHdov;
  }
}

void RunVaryRoi(benchmark::State& state, bool crater, FigureTable* fig) {
  BenchContext& ctx = GetContext(crater);
  const Method method = MethodFromIndex(state.range(0));
  const double roi_pct = static_cast<double>(state.range(1)) / 100.0;
  const double e = ctx.dataset().LodForCutFraction(kWorkingResolution);
  const auto rois = ctx.SampleRois(roi_pct, QueryLocations());

  double avg_da = 0;
  for (auto _ : state) {
    auto point_or = ctx.Average(rois, [&](const Rect& roi) {
      return ctx.RunUniform(method, roi, e);
    });
    if (!point_or.ok()) {
      state.SkipWithError(point_or.status().ToString().c_str());
      return;
    }
    avg_da = point_or.value().disk_accesses;
    state.counters["DA"] = avg_da;
    state.counters["nodes"] = point_or.value().nodes_fetched;
  }
  fig->Add(roi_pct * 100.0, method, avg_da);
}

void RunVaryLod(benchmark::State& state, bool crater, FigureTable* fig) {
  BenchContext& ctx = GetContext(crater);
  const Method method = MethodFromIndex(state.range(0));
  const double cut_frac = static_cast<double>(state.range(1)) / 1000.0;
  const double roi_pct = crater ? 0.05 : 0.10;
  const double e = ctx.dataset().LodForCutFraction(cut_frac);
  const auto rois = ctx.SampleRois(roi_pct, QueryLocations());

  double avg_da = 0;
  for (auto _ : state) {
    auto point_or = ctx.Average(rois, [&](const Rect& roi) {
      return ctx.RunUniform(method, roi, e);
    });
    if (!point_or.ok()) {
      state.SkipWithError(point_or.status().ToString().c_str());
      return;
    }
    avg_da = point_or.value().disk_accesses;
    state.counters["DA"] = avg_da;
    state.counters["e"] = e;
  }
  fig->Add(cut_frac * 100.0, method, avg_da);
}

void RegisterAll() {
  auto& figs = Figures();
  figs.reserve(4);
  figs.emplace_back(
      "Figure 6(a): varying ROI (% of area), 'small' dataset, DA", "fig6a");
  figs.emplace_back(
      "Figure 6(b): varying LOD (cut keeps x% of points), 'small', DA",
      "fig6b");
  figs.emplace_back(
      "Figure 6(c): varying ROI (% of area), 'crater' dataset, DA", "fig6c");
  figs.emplace_back(
      "Figure 6(d): varying LOD (cut keeps x% of points), 'crater', DA",
      "fig6d");
  FigureTable* fig6a = &figs[0];
  FigureTable* fig6b = &figs[1];
  FigureTable* fig6c = &figs[2];
  FigureTable* fig6d = &figs[3];

  for (int method = 0; method < 3; ++method) {
    const std::string mname = MethodName(MethodFromIndex(method));
    for (double roi : kRoiSweep) {
      const std::string suffix =
          mname + "/roi_pct:" + std::to_string(static_cast<int>(roi * 100));
      benchmark::RegisterBenchmark(
          ("fig6a/" + suffix).c_str(),
          [fig6a](benchmark::State& s) { RunVaryRoi(s, false, fig6a); })
          ->Args({method, static_cast<int64_t>(roi * 100)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("fig6c/" + suffix).c_str(),
          [fig6c](benchmark::State& s) { RunVaryRoi(s, true, fig6c); })
          ->Args({method, static_cast<int64_t>(roi * 100)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    for (double lod : kLodSweep) {
      const std::string suffix =
          mname + "/cut_pct:" + std::to_string(static_cast<int>(lod * 100));
      benchmark::RegisterBenchmark(
          ("fig6b/" + suffix).c_str(),
          [fig6b](benchmark::State& s) { RunVaryLod(s, false, fig6b); })
          ->Args({method, static_cast<int64_t>(lod * 1000)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("fig6d/" + suffix).c_str(),
          [fig6d](benchmark::State& s) { RunVaryLod(s, true, fig6d); })
          ->Args({method, static_cast<int64_t>(lod * 1000)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace dm::bench

int main(int argc, char** argv) {
  dm::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dm::bench::PrintAllFigures();
  dm::bench::WriteFiguresJson("fig6_uniform", "BENCH_fig6.json");
  return 0;
}
