// Reproduces the Section 4 measurements that justify the similar-LOD
// restriction: "for each point the average number of connection points
// with a similar LOD is 12 in both test datasets ... whereas the
// average number of total connection points is 180 for the
// 2-million-point dataset and 840 for the 17-million-point dataset."
//
// At bench scale the absolute closure sizes are smaller (they grow
// with tree depth), but the shape — similar-LOD lists stay around a
// dozen, the closure is an order of magnitude larger and grows with
// dataset size — must reproduce.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dm::bench {
namespace {

void ConnStats(benchmark::State& state, bool crater) {
  BenchContext& ctx = GetContext(crater);
  const ConnectivityStats& s = ctx.dataset().conn_stats;
  for (auto _ : state) {
    state.counters["avg_similar_lod"] = s.avg_similar_lod;
    state.counters["max_similar_lod"] =
        static_cast<double>(s.max_similar_lod);
    state.counters["avg_total_closure"] = s.avg_total_connections;
    state.counters["blowup_factor"] =
        s.avg_total_connections / std::max(1.0, s.avg_similar_lod);
  }
}

void StorageOverhead(benchmark::State& state, bool crater) {
  // DM's storage price for the connection lists versus the plain PM
  // records, in pages.
  BenchContext& ctx = GetContext(crater);
  for (auto _ : state) {
    state.counters["dm_heap_pages"] =
        static_cast<double>(ctx.dataset().dm->heap().num_pages());
    state.counters["pm_heap_pages"] =
        static_cast<double>(ctx.dataset().pm->heap().num_pages());
    state.counters["overhead_ratio"] =
        static_cast<double>(ctx.dataset().dm->heap().num_pages()) /
        static_cast<double>(ctx.dataset().pm->heap().num_pages());
  }
}

BENCHMARK_CAPTURE(ConnStats, small, false)->Iterations(1);
BENCHMARK_CAPTURE(ConnStats, crater, true)->Iterations(1);
BENCHMARK_CAPTURE(StorageOverhead, small, false)->Iterations(1);
BENCHMARK_CAPTURE(StorageOverhead, crater, true)->Iterations(1);

}  // namespace
}  // namespace dm::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using dm::bench::GetContext;
  std::printf("\n=== Section 4 connectivity table ===\n");
  std::printf("%10s %18s %18s %14s\n", "dataset", "avg similar-LOD",
              "avg total closure", "points");
  for (bool crater : {false, true}) {
    auto& ctx = GetContext(crater);
    const auto& s = ctx.dataset().conn_stats;
    std::printf("%10s %18.1f %18.1f %14lld\n",
                ctx.dataset().spec.name.c_str(), s.avg_similar_lod,
                s.avg_total_connections,
                static_cast<long long>(ctx.dataset().num_leaves));
  }
  return 0;
}
