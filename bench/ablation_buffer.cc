// Ablation of the buffer-pool capacity supporting the cold-buffer
// methodology: the paper flushes "the database and system buffer ...
// before each test", so reported disk accesses should be insensitive
// to pool size as long as one query's working set fits. This bench
// sweeps the pool size and confirms the plateau (and shows where
// thrashing would start for undersized pools).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dm/dm_query.h"

namespace dm::bench {
namespace {

void BufferSweep(benchmark::State& state) {
  const uint32_t pool_pages = static_cast<uint32_t>(state.range(0));
  // A dedicated context per pool size (separate cache dir key is not
  // needed: the database file is identical, only the pool differs).
  DbOptions options;
  options.pool_pages = pool_pages;
  const DatasetSpec spec = SmallDatasetSpec();
  auto ctx_or = BenchContext::Create(BenchDataDir(), spec, options);
  if (!ctx_or.ok()) {
    state.SkipWithError(ctx_or.status().ToString().c_str());
    return;
  }
  BenchContext ctx = std::move(ctx_or).value();
  const auto rois = ctx.SampleRois(0.10, QueryLocations());
  const double e = ctx.dataset().LodForCutFraction(0.1);

  for (auto _ : state) {
    auto point_or = ctx.Average(rois, [&](const Rect& roi) {
      return ctx.RunUniform(Method::kDmSingleBase, roi, e);
    });
    if (!point_or.ok()) {
      state.SkipWithError(point_or.status().ToString().c_str());
      return;
    }
    state.counters["DA_dm"] = point_or.value().disk_accesses;
    auto pm_or = ctx.Average(rois, [&](const Rect& roi) {
      return ctx.RunUniform(Method::kPm, roi, e);
    });
    if (!pm_or.ok()) {
      state.SkipWithError(pm_or.status().ToString().c_str());
      return;
    }
    state.counters["DA_pm"] = pm_or.value().disk_accesses;
  }
}

BENCHMARK(BufferSweep)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dm::bench

BENCHMARK_MAIN();
