// Reproduces Figure 8 of the paper: viewpoint-dependent query cost in
// disk accesses for DM single-base (SB), DM multi-base (MB), the PM +
// LOD-quadtree baseline, and the HDoV-tree.
//
//   fig8a/d: varying ROI   (angle = theta_max / 2)
//   fig8b/e: varying e_min (angle = theta_max / 2)
//   fig8c/f: varying angle (e_min = 1% of max LOD)
//
// a-c run on the 'small' dataset, d-f on 'crater' (Section 6.2).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dm::bench {
namespace {

constexpr double kRoiSweep[] = {0.01, 0.02, 0.05, 0.10, 0.15, 0.20};
// e_min swept as the resolution fraction of its uniform cut (see
// fig6_uniform.cc for why the raw e axis is unusable with QEM errors);
// smaller fraction = coarser near plane.
constexpr double kEminSweep[] = {0.75, 0.50, 0.25, 0.10, 0.05};
constexpr double kAngleSweep[] = {0.1, 0.25, 0.5, 0.75, 0.9};
// Near-plane resolution for the ROI and angle sweeps (the paper pins
// e_min to 1% of the max LOD "to allow for a large angle range"; ours
// keeps half the points, the analogous fine setting).
constexpr double kDefaultEminFraction = 0.5;

Method MethodFromIndex(int64_t i) {
  switch (i) {
    case 0:
      return Method::kDmSingleBase;
    case 1:
      return Method::kDmMultiBase;
    case 2:
      return Method::kPm;
    default:
      return Method::kHdov;
  }
}

struct Sweep {
  double roi_pct = 0.10;
  double e_min_frac = kDefaultEminFraction;
  double angle_frac = 0.5;
};

void RunView(benchmark::State& state, bool crater, const Sweep& sweep,
             double x_value, FigureTable* fig) {
  BenchContext& ctx = GetContext(crater);
  const Method method = MethodFromIndex(state.range(0));
  const auto rois = ctx.SampleRois(sweep.roi_pct, QueryLocations());
  const double e_min = ctx.dataset().LodForCutFraction(sweep.e_min_frac);

  double avg_da = 0;
  for (auto _ : state) {
    auto point_or = ctx.Average(rois, [&](const Rect& roi) {
      const ViewQuery q = ViewQuery::FromAngle(
          roi, e_min, sweep.angle_frac, ctx.dataset().max_lod);
      return ctx.RunView(method, q);
    });
    if (!point_or.ok()) {
      state.SkipWithError(point_or.status().ToString().c_str());
      return;
    }
    avg_da = point_or.value().disk_accesses;
    state.counters["DA"] = avg_da;
    state.counters["nodes"] = point_or.value().nodes_fetched;
  }
  fig->Add(x_value, method, avg_da);
}

void RegisterAll() {
  auto& figs = Figures();
  figs.reserve(6);
  figs.emplace_back("Figure 8(a): varying ROI (%), 'small', DA", "fig8a");
  figs.emplace_back(
      "Figure 8(b): varying e_min (cut keeps x% of points), 'small', DA",
      "fig8b");
  figs.emplace_back("Figure 8(c): varying angle (% of theta_max), 'small', DA",
                    "fig8c");
  figs.emplace_back("Figure 8(d): varying ROI (%), 'crater', DA", "fig8d");
  figs.emplace_back(
      "Figure 8(e): varying e_min (cut keeps x% of points), 'crater', DA",
      "fig8e");
  figs.emplace_back("Figure 8(f): varying angle (% of theta_max), 'crater', DA",
                    "fig8f");

  for (int crater = 0; crater <= 1; ++crater) {
    FigureTable* roi_fig = &Figures()[crater == 0 ? 0 : 3];
    FigureTable* emin_fig = &Figures()[crater == 0 ? 1 : 4];
    FigureTable* angle_fig = &Figures()[crater == 0 ? 2 : 5];
    const char* tag = crater == 0 ? "small" : "crater";
    const std::string prefix_roi =
        std::string("fig8_roi/") + tag + "/";
    for (int method = 0; method < 4; ++method) {
      const std::string mname = MethodName(MethodFromIndex(method));
      for (double roi : kRoiSweep) {
        Sweep sweep;
        sweep.roi_pct = roi;
        const std::string name =
            prefix_roi + mname + "/roi_pct:" +
            std::to_string(static_cast<int>(roi * 100));
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& s) {
              RunView(s, crater != 0, sweep, roi * 100, roi_fig);
            })
            ->Args({method})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
      for (double emin : kEminSweep) {
        Sweep sweep;
        sweep.e_min_frac = emin;
        const std::string name =
            std::string("fig8_emin/") + tag + "/" + mname + "/cut_pct:" +
            std::to_string(static_cast<int>(emin * 100));
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& s) {
              RunView(s, crater != 0, sweep, emin * 100, emin_fig);
            })
            ->Args({method})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
      for (double angle : kAngleSweep) {
        Sweep sweep;
        sweep.angle_frac = angle;
        const std::string name =
            std::string("fig8_angle/") + tag + "/" + mname +
            "/angle_pct:" + std::to_string(static_cast<int>(angle * 100));
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& s) {
              RunView(s, crater != 0, sweep, angle * 100, angle_fig);
            })
            ->Args({method})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace dm::bench

int main(int argc, char** argv) {
  dm::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dm::bench::PrintAllFigures();
  dm::bench::WriteFiguresJson("fig8_viewdep", "BENCH_fig8.json");
  return 0;
}
