// Ablation of record compression (the compressed-MTM direction of the
// paper's reference [2], Danovaro et al.): the same Direct Mesh built
// with flat records versus delta/varint-compressed records, compared
// on storage footprint and query disk accesses.
//
// Compression shrinks each record (~2x), so more records share a page
// and every query's heap portion drops proportionally; the index
// portion is unchanged. Decoding cost shows up in cpu_millis, which
// the paper already reports as negligible next to I/O.

#include <benchmark/benchmark.h>

#include <memory>

#include "dem/fractal.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "pm/pm_tree.h"
#include "simplify/simplifier.h"
#include "workload/bench_context.h"

namespace dm::bench {
namespace {

struct Built {
  std::unique_ptr<DbEnv> env;
  std::unique_ptr<DmStore> store;
  double max_lod = 0.0;
  Rect bounds;
};

Built BuildVariant(bool compress) {
  FractalParams params;
  params.side = 193;
  params.seed = 42;
  const DemGrid dem = GenerateFractalDem(params);
  const TriangleMesh base = TriangulateDem(dem);
  const SimplifyResult sr = SimplifyMesh(base);
  auto tree_or = PmTree::Build(base, sr);
  if (!tree_or.ok()) std::abort();
  const PmTree& tree = tree_or.value();

  Built b;
  const std::string path = BenchDataDir() + (compress ? "/comp_on.db"
                                                      : "/comp_off.db");
  b.env = std::move(DbEnv::Open(path, {})).ValueOrDie();
  DmStoreOptions options;
  options.compress_records = compress;
  auto store_or = DmStore::Build(b.env.get(), base, tree, sr, options);
  if (!store_or.ok()) std::abort();
  b.store = std::make_unique<DmStore>(std::move(store_or).value());
  b.max_lod = tree.max_lod();
  b.bounds = tree.bounds();
  return b;
}

Built& Variant(bool compress) {
  static Built flat = BuildVariant(false);
  static Built packed = BuildVariant(true);
  return compress ? packed : flat;
}

void Compression(benchmark::State& state) {
  const bool compress = state.range(0) != 0;
  Built& b = Variant(compress);
  DmQueryProcessor proc(b.store.get());

  // A uniform query at a fine LOD plus a steep view-dependent query.
  const Rect roi = Rect::Of(
      b.bounds.lo_x + b.bounds.width() * 0.2,
      b.bounds.lo_y + b.bounds.height() * 0.2,
      b.bounds.lo_x + b.bounds.width() * 0.7,
      b.bounds.lo_y + b.bounds.height() * 0.7);

  for (auto _ : state) {
    if (!b.env->FlushAll().ok()) {
      state.SkipWithError("flush failed");
      return;
    }
    auto uni_or = proc.ViewpointIndependent(roi, 0.0);
    if (!uni_or.ok()) {
      state.SkipWithError(uni_or.status().ToString().c_str());
      return;
    }
    ViewQuery q;
    q.roi = roi;
    q.e_min = 0.0;
    q.e_max = 0.2 * b.max_lod;
    if (!b.env->FlushAll().ok()) {
      state.SkipWithError("flush failed");
      return;
    }
    auto view_or = proc.MultiBase(q);
    if (!view_or.ok()) {
      state.SkipWithError(view_or.status().ToString().c_str());
      return;
    }
    state.counters["heap_pages"] =
        static_cast<double>(b.store->heap().num_pages());
    state.counters["DA_uniform"] =
        static_cast<double>(uni_or.value().stats.disk_accesses);
    state.counters["DA_view"] =
        static_cast<double>(view_or.value().stats.disk_accesses);
    state.counters["cpu_ms"] = uni_or.value().stats.cpu_millis +
                               view_or.value().stats.cpu_millis;
  }
}

BENCHMARK(Compression)->Arg(0)->Arg(1)->Iterations(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace dm::bench

BENCHMARK_MAIN();
