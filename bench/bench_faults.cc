// Fault-sweep serving benchmark: replays the same deterministic mixed
// workload as bench_throughput through the QueryService while the
// fault-injection shim (storage/fault_env.h) fails a growing fraction
// of device reads, and reports what graceful degradation costs.
//
// Each configuration arms one read-fault rate (split evenly between
// permanent EIO and transient EINTR-storm faults, so both the retry
// loop and the degraded-fetch path are exercised), flushes the buffer
// pool so the timed run actually reads the device, and runs with
// `allow_degraded` on — lost heap pages coarsen the mesh instead of
// failing the query. Reported per rate: qps, latency percentiles
// (retries and degradation inflate the tail first), the fraction of
// queries that degraded, queries that failed outright (index-page
// faults are always fatal), and transient faults absorbed by retries.
//
// The zero-rate configuration doubles as the regression anchor: it
// must finish with failed == 0 and degraded == 0, and its qps is
// comparable against the committed baseline.
//
// Usage: bench_faults [--tiny] [--threads=N] [--queries=N]
//                     [--read-latency-us=N] [--pool-pages=N]
//                     [--out=BENCH_faults.json]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "server/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/fault_env.h"

namespace dm::bench {
namespace {

struct CliOptions {
  bool tiny = false;
  int threads = 4;
  int queries = 120;
  int read_latency_us = 150;
  // Below the working set so the timed runs keep missing; a pool that
  // holds everything would absorb the fault rates after the first pass.
  int pool_pages = 64;
  std::string out = "BENCH_faults.json";
};

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--tiny") == 0) {
      opts->tiny = true;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opts->threads = std::atoi(arg + 10);
      if (opts->threads <= 0 || opts->threads > 256) {
        std::fprintf(stderr, "bad --threads: %s\n", arg + 10);
        return false;
      }
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      opts->queries = std::atoi(arg + 10);
      if (opts->queries <= 0) {
        std::fprintf(stderr, "bad --queries: %s\n", arg + 10);
        return false;
      }
    } else if (std::strncmp(arg, "--read-latency-us=", 18) == 0) {
      opts->read_latency_us = std::atoi(arg + 18);
      if (opts->read_latency_us < 0) {
        std::fprintf(stderr, "bad --read-latency-us: %s\n", arg + 18);
        return false;
      }
    } else if (std::strncmp(arg, "--pool-pages=", 13) == 0) {
      opts->pool_pages = std::atoi(arg + 13);
      if (opts->pool_pages < 16) {
        std::fprintf(stderr, "bad --pool-pages (min 16): %s\n", arg + 13);
        return false;
      }
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opts->out = arg + 6;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_faults [--tiny] "
                   "[--threads=N] [--queries=N] [--read-latency-us=N] "
                   "[--pool-pages=N] [--out=FILE]\n",
                   arg);
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;

  DatasetSpec spec = SmallDatasetSpec();
  if (opts.tiny) {
    spec.name = "tiny";
    spec.side = 65;
  }
  DbOptions db_options;
  db_options.pool_shards = BufferPool::kDefaultShards;
  db_options.pool_pages = static_cast<uint32_t>(opts.pool_pages);
  db_options.enable_fault_injection = true;
  std::fprintf(stderr, "[bench] preparing dataset '%s' (%d x %d)...\n",
               spec.name.c_str(), spec.side, spec.side);
  auto ctx_or = BenchContext::Create(BenchDataDir(), spec, db_options);
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n",
                 ctx_or.status().ToString().c_str());
    return 1;
  }
  BenchContext ctx = std::move(ctx_or).value();
  BuiltDataset& ds = ctx.mutable_dataset();
  DmStore* store = &ds.dm.value();
  FaultInjectingDevice* device = ds.dm_env->fault_device();
  if (device == nullptr) {
    std::fprintf(stderr, "fault device missing despite injection enabled\n");
    return 1;
  }
  ds.dm_env->disk().set_simulated_read_latency_micros(
      static_cast<uint32_t>(opts.read_latency_us));

  const std::vector<QueryRequest> workload =
      MakeMixedWorkload(ds.bounds, ds.max_lod, opts.queries, /*seed=*/12345);
  DmQueryOptions query;
  query.allow_degraded = true;

  const double kRates[] = {0.0, 0.001, 0.01};
  BenchJsonWriter writer("bench_faults");
  writer.Add("queries", static_cast<double>(opts.queries));
  writer.Add("threads", static_cast<double>(opts.threads));
  writer.Add("dataset_side", static_cast<double>(spec.side));
  writer.Add("read_latency_us", static_cast<double>(opts.read_latency_us));
  writer.Add("pool_pages", static_cast<double>(opts.pool_pages));
  bool clean_run_ok = true;
  for (size_t i = 0; i < sizeof(kRates) / sizeof(kRates[0]); ++i) {
    const double rate = kRates[i];
    // Cold pool per configuration: with everything resident no read
    // would touch the device and the fault rate would measure nothing.
    auto flush = ds.dm_env->FlushAll();
    if (!flush.ok()) {
      std::fprintf(stderr, "flush failed: %s\n",
                   flush.ToString().c_str());
      return 1;
    }
    FaultPlan plan;
    plan.seed = 0xFA171000 + i;  // fixed per rate: reruns replay exactly
    plan.read_error_rate = rate / 2;
    plan.read_transient_rate = rate / 2;
    device->ResetStats();
    device->set_plan(plan);

    auto report_or =
        RunThroughput(store, workload, opts.threads, query);
    if (!report_or.ok()) {
      std::fprintf(stderr, "run (rate=%g) failed: %s\n", rate,
                   report_or.status().ToString().c_str());
      return 1;
    }
    const ThroughputReport& r = report_or.value();
    const double degraded_fraction =
        r.queries > 0 ? static_cast<double>(r.degraded) /
                            static_cast<double>(r.queries)
                      : 0.0;
    std::printf("rate=%g %s degraded_fraction=%.3f injected=%llu\n", rate,
                r.ToString().c_str(), degraded_fraction,
                static_cast<unsigned long long>(
                    device->stats().injected_total()));
    char rbuf[32];
    std::snprintf(rbuf, sizeof(rbuf), "%g", rate);
    const std::string prefix = std::string("rate_") + rbuf + "/";
    writer.Add(prefix + "qps", r.qps);
    writer.Add(prefix + "p50_millis", r.p50_millis);
    writer.Add(prefix + "p99_millis", r.p99_millis);
    writer.Add(prefix + "p999_millis", r.p999_millis);
    writer.Add(prefix + "wall_millis", r.wall_millis);
    writer.Add(prefix + "disk_reads", static_cast<double>(r.disk_reads));
    writer.Add(prefix + "failed", static_cast<double>(r.failed));
    writer.Add(prefix + "degraded", static_cast<double>(r.degraded));
    writer.Add(prefix + "degraded_fraction", degraded_fraction);
    writer.Add(prefix + "io_retries", static_cast<double>(r.io_retries));
    writer.Add(prefix + "injected_faults",
               static_cast<double>(device->stats().injected_total()));
    if (rate == 0.0 && (r.failed > 0 || r.degraded > 0)) {
      clean_run_ok = false;
      std::fprintf(stderr,
                   "zero-rate run not clean: failed=%lld degraded=%lld\n",
                   static_cast<long long>(r.failed),
                   static_cast<long long>(r.degraded));
    }
  }
  // Disarm before teardown flushes.
  device->set_plan(FaultPlan{});
  if (!writer.WriteFile(opts.out)) return 1;
  return clean_run_ok ? 0 : 1;
}

}  // namespace
}  // namespace dm::bench

int main(int argc, char** argv) { return dm::bench::Main(argc, argv); }
