// Ablation of the Section 5.3 multi-base optimization: sweep the
// maximum number of query cubes the optimizer may use and report the
// measured disk accesses next to the cost model's estimate. max_cubes
// = 1 degenerates to the single-base algorithm, so the sweep shows
// where the recursive halving stops paying off (the paper's trade-off:
// "the more range queries used, the less the total amount of data
// retrieved. At the same time, the cost related to the number of
// queries executed increases").

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dm/cost_model.h"
#include "dm/dm_query.h"

namespace dm::bench {
namespace {

void MultiBaseCubes(benchmark::State& state, bool crater) {
  BenchContext& ctx = GetContext(crater);
  const int max_cubes = static_cast<int>(state.range(0));
  const auto rois = ctx.SampleRois(0.15, QueryLocations());
  const double e_min = ctx.dataset().LodForCutFraction(0.5);

  double avg_da = 0;
  double avg_cubes = 0;
  double avg_nodes = 0;
  for (auto _ : state) {
    avg_da = avg_cubes = avg_nodes = 0;
    for (const Rect& roi : rois) {
      const ViewQuery q =
          ViewQuery::FromAngle(roi, e_min, 0.7, ctx.dataset().max_lod);
      // Count the cubes the optimizer actually picks.
      const auto cubes = OptimizeMultiBase(
          ctx.dataset().dm->cost_inputs(), q.roi, q.gradient_along_y,
          [&](double t) { return q.EAt(t); }, max_cubes);
      avg_cubes += static_cast<double>(cubes.size());

      if (!ctx.dataset().dm_env->FlushAll().ok()) {
        state.SkipWithError("flush failed");
        return;
      }
      DmQueryProcessor proc(&*ctx.mutable_dataset().dm);
      auto r_or = proc.MultiBase(q, max_cubes);
      if (!r_or.ok()) {
        state.SkipWithError(r_or.status().ToString().c_str());
        return;
      }
      avg_da += static_cast<double>(r_or.value().stats.disk_accesses);
      avg_nodes += static_cast<double>(r_or.value().stats.nodes_fetched);
    }
    const double n = static_cast<double>(rois.size());
    avg_da /= n;
    avg_cubes /= n;
    avg_nodes /= n;
    state.counters["DA"] = avg_da;
    state.counters["cubes"] = avg_cubes;
    state.counters["nodes"] = avg_nodes;
  }
}

BENCHMARK_CAPTURE(MultiBaseCubes, small, false)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(MultiBaseCubes, crater, true)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dm::bench

BENCHMARK_MAIN();
