// Query hot-path microbenchmark: measures what the decoded-node cache
// and the per-query arena each buy on a single-threaded query stream.
//
// Four configurations run the same deterministic mixed workload (see
// MakeMixedWorkload) against one store:
//
//   baseline     node_cache_bytes=0, arena off  (the seed's hot path)
//   arena        node_cache_bytes=0, arena on
//   cache        cache on,           arena off
//   cache_arena  cache on,           arena on   (the serving default)
//
// Each configuration gets one untimed warm-up replay (fills the buffer
// pool and, when enabled, the node cache), then a timed replay loop.
// Reported per configuration: qps, allocations/query (the binary
// overrides global operator new to count them), disk reads, and node
// cache hit/miss totals. Headline metrics `speedup_cache_warm` (qps of
// cache_arena over baseline) and `alloc_reduction_arena` (allocs/query
// of cache over cache_arena) are what ISSUE acceptance tracks.
//
// As in bench_throughput, page reads carry a simulated device latency
// (--read-latency-us) and the pool is sized below the working set
// (--pool-pages), modelling the paper's disk-bound regime; the node
// cache then removes the heap-page portion of that I/O entirely.
//
// Usage: bench_hotpath [--tiny] [--queries=N] [--repeats=N]
//                      [--read-latency-us=N] [--pool-pages=N]
//                      [--cache-bytes=N] [--out=BENCH_hotpath.json]

#include <execinfo.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "server/query_service.h"
#include "storage/buffer_pool.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Overriding the global operators in the
// bench binary counts every heap allocation on the query path without
// instrumenting the library; relaxed atomics keep the overhead to a
// few nanoseconds per call.
// ---------------------------------------------------------------------------

namespace {
std::atomic<int64_t> g_allocs{0};
std::atomic<int64_t> g_alloc_bytes{0};
// --trace-allocs: dump a raw backtrace for every allocation inside the
// traced timed region to stderr (resolve with addr2line). Debug aid for
// hunting residual hot-path allocations; off in normal runs.
std::atomic<bool> g_trace{false};
thread_local bool t_in_trace = false;

void MaybeTrace(std::size_t n) {
  if (!g_trace.load(std::memory_order_relaxed) || t_in_trace) return;
  t_in_trace = true;  // backtrace() itself may allocate on first use
  void* frames[24];
  const int depth = backtrace(frames, 24);
  dprintf(2, "----ALLOC %zu----\n", n);
  backtrace_symbols_fd(frames, depth, 2);
  t_in_trace = false;
}

void* CountedAlloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  MaybeTrace(n);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  MaybeTrace(n);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n != 0 ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dm::bench {
namespace {

struct CliOptions {
  bool tiny = false;
  int queries = 100;
  int repeats = 3;
  int read_latency_us = 150;
  int pool_pages = 64;
  // 64 MiB default: comfortably holds the bench datasets' decoded
  // nodes, so the warm passes measure the pure hit path.
  size_t cache_bytes = 64u << 20;
  // Denser than the serving default (0.02): hot-path A/B wants cuts of
  // tens-to-hundreds of nodes, the regime the paper's queries operate
  // in, so per-node costs (decode, adjacency scratch) dominate the
  // fixed per-query overhead.
  double roi_fraction = 0.25;
  std::string out = "BENCH_hotpath.json";
  bool trace_allocs = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--tiny") == 0) {
      opts->tiny = true;
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      opts->queries = std::atoi(arg + 10);
      if (opts->queries <= 0) return false;
    } else if (std::strncmp(arg, "--repeats=", 10) == 0) {
      opts->repeats = std::atoi(arg + 10);
      if (opts->repeats <= 0) return false;
    } else if (std::strncmp(arg, "--read-latency-us=", 18) == 0) {
      opts->read_latency_us = std::atoi(arg + 18);
      if (opts->read_latency_us < 0) return false;
    } else if (std::strncmp(arg, "--pool-pages=", 13) == 0) {
      opts->pool_pages = std::atoi(arg + 13);
      if (opts->pool_pages < 16) return false;
    } else if (std::strncmp(arg, "--cache-bytes=", 14) == 0) {
      const long long v = std::atoll(arg + 14);
      if (v <= 0) return false;
      opts->cache_bytes = static_cast<size_t>(v);
    } else if (std::strncmp(arg, "--roi-fraction=", 15) == 0) {
      opts->roi_fraction = std::atof(arg + 15);
      if (opts->roi_fraction <= 0 || opts->roi_fraction > 1) return false;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opts->out = arg + 6;
    } else if (std::strcmp(arg, "--trace-allocs") == 0) {
      opts->trace_allocs = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_hotpath [--tiny] "
                   "[--queries=N] [--repeats=N] [--read-latency-us=N] "
                   "[--pool-pages=N] [--cache-bytes=N] [--out=FILE]\n",
                   arg);
      return false;
    }
  }
  return true;
}

Result<DmQueryResult> RunOne(DmQueryProcessor* proc,
                             const QueryRequest& req) {
  switch (req.kind) {
    case QueryRequest::Kind::kUniform:
      return proc->ViewpointIndependent(req.roi, req.e);
    case QueryRequest::Kind::kView:
      return req.multi_base ? proc->MultiBase(req.view)
                            : proc->SingleBase(req.view);
    case QueryRequest::Kind::kPerspective:
      return proc->Perspective(req.perspective);
  }
  return Status::InvalidArgument("unknown query kind");
}

struct ConfigResult {
  double qps = 0.0;
  double allocs_per_query = 0.0;
  double alloc_kb_per_query = 0.0;
  double disk_reads_per_query = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  bool ok = true;
};

// Debug hooks: breakpoints for allocation tracing (see tools notes).
extern "C" void BenchTimedRegionBegin() { asm volatile("" ::: "memory"); }
extern "C" void BenchTimedRegionEnd() { asm volatile("" ::: "memory"); }

ConfigResult RunConfig(DmStore* store,
                       const std::vector<QueryRequest>& workload,
                       size_t cache_bytes, bool use_arena, int repeats,
                       bool trace_allocs = false) {
  ConfigResult res;
  store->EnableNodeCache(cache_bytes);

  DmQueryOptions qopts;
  qopts.use_arena = use_arena;
  DmQueryProcessor proc(store, qopts);

  // Untimed warm-up: steady-state buffer pool, full node cache, warm
  // arena slab. The timed passes then measure the serving regime.
  for (const QueryRequest& req : workload) {
    if (!RunOne(&proc, req).ok()) {
      res.ok = false;
      return res;
    }
  }

  const NodeCacheStats cache0 = store->node_cache_stats();
  const int64_t reads0 = store->env()->stats().disk_reads;
  const int64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const int64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  BenchTimedRegionBegin();
  if (trace_allocs) g_trace.store(true, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const QueryRequest& req : workload) {
      if (!RunOne(&proc, req).ok()) {
        res.ok = false;
        return res;
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (trace_allocs) g_trace.store(false, std::memory_order_relaxed);
  BenchTimedRegionEnd();
  const double wall_millis =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double n =
      static_cast<double>(workload.size()) * static_cast<double>(repeats);

  res.qps = wall_millis > 0 ? 1000.0 * n / wall_millis : 0.0;
  res.allocs_per_query =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed) -
                          allocs0) /
      n;
  res.alloc_kb_per_query =
      static_cast<double>(g_alloc_bytes.load(std::memory_order_relaxed) -
                          bytes0) /
      (1024.0 * n);
  res.disk_reads_per_query =
      static_cast<double>(store->env()->stats().disk_reads - reads0) / n;
  const NodeCacheStats cache1 = store->node_cache_stats();
  res.cache_hits = cache1.hits - cache0.hits;
  res.cache_misses = cache1.misses - cache0.misses;
  return res;
}

int Main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;

  DatasetSpec spec = SmallDatasetSpec();
  if (opts.tiny) {
    spec.name = "tiny";
    spec.side = 65;
  }
  DbOptions db_options;
  // Single shard everywhere: this bench is single-threaded, and one
  // LRU makes the cache-off disk-read counts reproduce the seed's.
  db_options.pool_shards = 1;
  db_options.pool_pages = static_cast<uint32_t>(opts.pool_pages);
  std::fprintf(stderr, "[bench] preparing dataset '%s' (%d x %d)...\n",
               spec.name.c_str(), spec.side, spec.side);
  auto ctx_or = BenchContext::Create(BenchDataDir(), spec, db_options);
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n",
                 ctx_or.status().ToString().c_str());
    return 1;
  }
  BenchContext ctx = std::move(ctx_or).value();
  BuiltDataset& ds = ctx.mutable_dataset();
  DmStore* store = &ds.dm.value();
  ds.dm_env->disk().set_simulated_read_latency_micros(
      static_cast<uint32_t>(opts.read_latency_us));

  const std::vector<QueryRequest> workload =
      MakeMixedWorkload(ds.bounds, ds.max_lod, opts.queries, /*seed=*/4242,
                        opts.roi_fraction);

  struct Config {
    const char* name;
    size_t cache_bytes;
    bool use_arena;
  };
  const Config configs[] = {
      {"baseline", 0, false},
      {"arena", 0, true},
      {"cache", opts.cache_bytes, false},
      {"cache_arena", opts.cache_bytes, true},
  };

  BenchJsonWriter writer("bench_hotpath");
  writer.Add("queries", static_cast<double>(opts.queries));
  writer.Add("repeats", static_cast<double>(opts.repeats));
  writer.Add("dataset_side", static_cast<double>(spec.side));
  writer.Add("read_latency_us", static_cast<double>(opts.read_latency_us));
  writer.Add("pool_pages", static_cast<double>(opts.pool_pages));
  writer.Add("cache_bytes", static_cast<double>(opts.cache_bytes));
  writer.Add("roi_fraction", opts.roi_fraction);

  ConfigResult results[4];
  for (int i = 0; i < 4; ++i) {
    const Config& c = configs[i];
    results[i] = RunConfig(store, workload, c.cache_bytes, c.use_arena,
                           opts.repeats,
                           /*trace_allocs=*/opts.trace_allocs && i == 3);
    if (!results[i].ok) {
      std::fprintf(stderr, "config %s: a query failed\n", c.name);
      return 1;
    }
    const ConfigResult& r = results[i];
    std::printf(
        "%-12s qps=%8.1f allocs/q=%8.1f kb/q=%8.1f reads/q=%6.1f "
        "hits=%lld misses=%lld\n",
        c.name, r.qps, r.allocs_per_query, r.alloc_kb_per_query,
        r.disk_reads_per_query, static_cast<long long>(r.cache_hits),
        static_cast<long long>(r.cache_misses));
    const std::string prefix = std::string(c.name) + "/";
    writer.Add(prefix + "qps", r.qps);
    writer.Add(prefix + "allocs_per_query", r.allocs_per_query);
    writer.Add(prefix + "alloc_kb_per_query", r.alloc_kb_per_query);
    writer.Add(prefix + "disk_reads_per_query", r.disk_reads_per_query);
    writer.Add(prefix + "cache_hits", static_cast<double>(r.cache_hits));
    writer.Add(prefix + "cache_misses",
               static_cast<double>(r.cache_misses));
  }
  store->EnableNodeCache(0);

  const double speedup =
      results[0].qps > 0 ? results[3].qps / results[0].qps : 0.0;
  // Arena A/B at equal cache setting isolates the allocator change.
  const double alloc_reduction =
      results[3].allocs_per_query > 0
          ? results[2].allocs_per_query / results[3].allocs_per_query
          : 0.0;
  writer.Add("speedup_cache_warm", speedup);
  writer.Add("alloc_reduction_arena", alloc_reduction);
  std::printf("speedup_cache_warm=%.2fx alloc_reduction_arena=%.1fx\n",
              speedup, alloc_reduction);

  if (!writer.WriteFile(opts.out)) return 1;
  return 0;
}

}  // namespace
}  // namespace dm::bench

int main(int argc, char** argv) { return dm::bench::Main(argc, argv); }
