#ifndef DIRECTMESH_BENCH_BENCH_UTIL_H_
#define DIRECTMESH_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workload/bench_context.h"

namespace dm::bench {

/// Number of random query locations averaged per data point (the paper
/// uses 20); override with DM_BENCH_LOCATIONS for quick runs.
inline int QueryLocations() {
  const char* v = std::getenv("DM_BENCH_LOCATIONS");
  const int n = v != nullptr ? std::atoi(v) : 20;
  return n > 0 ? n : 20;
}

/// Lazily built, process-wide contexts for the two paper datasets.
inline BenchContext& GetContext(bool crater) {
  static std::unique_ptr<BenchContext> small;
  static std::unique_ptr<BenchContext> big;
  auto& slot = crater ? big : small;
  if (!slot) {
    const DatasetSpec spec =
        crater ? CraterDatasetSpec() : SmallDatasetSpec();
    std::fprintf(stderr, "[bench] preparing dataset '%s' (%d x %d)...\n",
                 spec.name.c_str(), spec.side, spec.side);
    auto ctx_or = BenchContext::Create(BenchDataDir(), spec);
    if (!ctx_or.ok()) {
      std::fprintf(stderr, "dataset build failed: %s\n",
                   ctx_or.status().ToString().c_str());
      std::abort();
    }
    slot = std::make_unique<BenchContext>(std::move(ctx_or).value());
    std::fprintf(stderr,
                 "[bench] '%s' ready: %lld points, %lld PM nodes, "
                 "max LOD %.3f\n",
                 spec.name.c_str(),
                 static_cast<long long>(slot->dataset().num_leaves),
                 static_cast<long long>(slot->dataset().num_nodes),
                 slot->dataset().max_lod);
  }
  return *slot;
}

/// Collects the series so each binary can end by printing the figure
/// the same way the paper plots it: one row per x value, one column
/// per method.
class FigureTable {
 public:
  explicit FigureTable(std::string title) : title_(std::move(title)) {}

  void Add(double x, Method m, double da) { rows_[x][m] = da; }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%10s", "x");
    for (Method m : {Method::kDmSingleBase, Method::kDmMultiBase,
                     Method::kPm, Method::kHdov}) {
      bool any = false;
      for (const auto& [x, cols] : rows_) any |= cols.count(m) > 0;
      if (any) std::printf("%12s", MethodName(m));
    }
    std::printf("\n");
    for (const auto& [x, cols] : rows_) {
      std::printf("%10.3f", x);
      for (Method m : {Method::kDmSingleBase, Method::kDmMultiBase,
                       Method::kPm, Method::kHdov}) {
        bool any = false;
        for (const auto& [x2, cols2] : rows_) any |= cols2.count(m) > 0;
        if (!any) continue;
        auto it = cols.find(m);
        if (it != cols.end()) {
          std::printf("%12.1f", it->second);
        } else {
          std::printf("%12s", "-");
        }
      }
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::map<double, std::map<Method, double>> rows_;
};

/// Shared registry of figures to print after the benchmark run.
inline std::vector<FigureTable>& Figures() {
  static std::vector<FigureTable> figures;
  return figures;
}

inline void PrintAllFigures() {
  for (const auto& fig : Figures()) fig.Print();
}

}  // namespace dm::bench

#endif  // DIRECTMESH_BENCH_BENCH_UTIL_H_
