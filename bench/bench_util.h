#ifndef DIRECTMESH_BENCH_BENCH_UTIL_H_
#define DIRECTMESH_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "workload/bench_context.h"

namespace dm::bench {

/// Minimal ordered JSON emitter for machine-readable bench artifacts
/// (BENCH_*.json at the repo root). Output shape:
///
///   {"bench": "<name>", "metrics": {"<metric>": <number>, ...}}
///
/// Metrics keep insertion order; non-finite values are emitted as
/// `null` so the file always parses as strict JSON.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench) : bench_(std::move(bench)) {}

  void Add(const std::string& name, double value) {
    metrics_.emplace_back(name, Value{value, "", false});
  }
  /// String-valued metric (host names, dataset labels, git revisions);
  /// emitted as a JSON string with full escaping.
  void Add(const std::string& name, const std::string& value) {
    metrics_.emplace_back(name, Value{0.0, value, true});
  }

  std::string ToJson() const {
    std::string out;
    out.append("{\"bench\": \"");
    out.append(Escaped(bench_));
    out.append("\", \"metrics\": {");
    bool first = true;
    for (const auto& [name, value] : metrics_) {
      if (!first) out += ", ";
      first = false;
      out.append("\"");
      out.append(Escaped(name));
      out.append("\": ");
      if (value.is_string) {
        out.append("\"");
        out.append(Escaped(value.str));
        out.append("\"");
      } else if (std::isfinite(value.num)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value.num);
        out += buf;
      } else {
        out += "null";
      }
    }
    out += "}}\n";
    return out;
  }

  /// Writes the JSON document to `path`; returns false (and logs) on
  /// I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    const std::string doc = ToJson();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (ok) std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    return ok;
  }

 private:
  struct Value {
    double num = 0.0;
    std::string str;
    bool is_string = false;
  };

  /// Escapes `"`, `\`, and the control range (U+0000..U+001F) per RFC
  /// 8259, so any byte sequence round-trips as a strict-JSON string.
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      const auto u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (u < 0x20) {
        switch (c) {
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            out += buf;
          }
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string bench_;
  std::vector<std::pair<std::string, Value>> metrics_;
};

/// Number of random query locations averaged per data point (the paper
/// uses 20); override with DM_BENCH_LOCATIONS for quick runs.
inline int QueryLocations() {
  const char* v = std::getenv("DM_BENCH_LOCATIONS");
  const int n = v != nullptr ? std::atoi(v) : 20;
  return n > 0 ? n : 20;
}

/// Lazily built, process-wide contexts for the two paper datasets.
inline BenchContext& GetContext(bool crater) {
  static std::unique_ptr<BenchContext> small;
  static std::unique_ptr<BenchContext> big;
  auto& slot = crater ? big : small;
  if (!slot) {
    const DatasetSpec spec =
        crater ? CraterDatasetSpec() : SmallDatasetSpec();
    std::fprintf(stderr, "[bench] preparing dataset '%s' (%d x %d)...\n",
                 spec.name.c_str(), spec.side, spec.side);
    auto ctx_or = BenchContext::Create(BenchDataDir(), spec);
    if (!ctx_or.ok()) {
      std::fprintf(stderr, "dataset build failed: %s\n",
                   ctx_or.status().ToString().c_str());
      std::abort();
    }
    slot = std::make_unique<BenchContext>(std::move(ctx_or).value());
    std::fprintf(stderr,
                 "[bench] '%s' ready: %lld points, %lld PM nodes, "
                 "max LOD %.3f\n",
                 spec.name.c_str(),
                 static_cast<long long>(slot->dataset().num_leaves),
                 static_cast<long long>(slot->dataset().num_nodes),
                 slot->dataset().max_lod);
  }
  return *slot;
}

/// Collects the series so each binary can end by printing the figure
/// the same way the paper plots it: one row per x value, one column
/// per method.
class FigureTable {
 public:
  /// `key` is the short machine-readable id ("fig6a") used for JSON
  /// metric names; figures constructed without one are skipped by
  /// AppendJson.
  explicit FigureTable(std::string title, std::string key = "")
      : title_(std::move(title)), key_(std::move(key)) {}

  void Add(double x, Method m, double da) { rows_[x][m] = da; }

  /// Appends every cell as "<key>/x_<x>/<method>" -> DA.
  void AppendJson(BenchJsonWriter* writer) const {
    if (key_.empty()) return;
    for (const auto& [x, cols] : rows_) {
      char xbuf[32];
      std::snprintf(xbuf, sizeof(xbuf), "%g", x);
      for (const auto& [m, da] : cols) {
        writer->Add(key_ + "/x_" + xbuf + "/" + MethodName(m), da);
      }
    }
  }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%10s", "x");
    for (Method m : {Method::kDmSingleBase, Method::kDmMultiBase,
                     Method::kPm, Method::kHdov}) {
      bool any = false;
      for (const auto& [x, cols] : rows_) any |= cols.count(m) > 0;
      if (any) std::printf("%12s", MethodName(m));
    }
    std::printf("\n");
    for (const auto& [x, cols] : rows_) {
      std::printf("%10.3f", x);
      for (Method m : {Method::kDmSingleBase, Method::kDmMultiBase,
                       Method::kPm, Method::kHdov}) {
        bool any = false;
        for (const auto& [x2, cols2] : rows_) any |= cols2.count(m) > 0;
        if (!any) continue;
        auto it = cols.find(m);
        if (it != cols.end()) {
          std::printf("%12.1f", it->second);
        } else {
          std::printf("%12s", "-");
        }
      }
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::string key_;
  std::map<double, std::map<Method, double>> rows_;
};

/// Shared registry of figures to print after the benchmark run.
inline std::vector<FigureTable>& Figures() {
  static std::vector<FigureTable> figures;
  return figures;
}

inline void PrintAllFigures() {
  for (const auto& fig : Figures()) fig.Print();
}

/// Dumps every keyed figure in the registry into one BENCH_*.json
/// document named `bench_name` at `path`.
inline void WriteFiguresJson(const std::string& bench_name,
                             const std::string& path) {
  BenchJsonWriter writer(bench_name);
  for (const auto& fig : Figures()) fig.AppendJson(&writer);
  writer.WriteFile(path);
}

}  // namespace dm::bench

#endif  // DIRECTMESH_BENCH_BENCH_UTIL_H_
