// Ablation of the HDoV-tree's visibility selection: viewpoint-
// dependent queries with the stored degree-of-visibility either used
// (occluded regions accept coarser LODs) or ignored (plain LOD-R-tree
// behaviour).
//
// The paper's Section 6.2 finding: "the visibility selection does not
// help the HDoV-tree much because obstruction among the areas of the
// terrain is not as much as in the synthetic city model" — on open
// terrain the two curves should nearly coincide, with the caldera
// (real interior occlusion) showing the larger, still modest, gap.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dm::bench {
namespace {

void VisibilityToggle(benchmark::State& state, bool crater) {
  BenchContext& ctx = GetContext(crater);
  const bool use_visibility = state.range(0) != 0;
  const auto rois = ctx.SampleRois(0.15, QueryLocations());
  const double e_min = ctx.dataset().LodForCutFraction(0.5);

  for (auto _ : state) {
    double avg_da = 0;
    double avg_points = 0;
    for (const Rect& roi : rois) {
      const ViewQuery q =
          ViewQuery::FromAngle(roi, e_min, 0.5, ctx.dataset().max_lod);
      const Point2 viewer{(roi.lo_x + roi.hi_x) / 2, roi.lo_y};
      if (!ctx.mutable_dataset().hdov_env->FlushAll().ok()) {
        state.SkipWithError("flush failed");
        return;
      }
      auto r_or = ctx.mutable_dataset().hdov->ViewDependent(q, viewer,
                                                            use_visibility);
      if (!r_or.ok()) {
        state.SkipWithError(r_or.status().ToString().c_str());
        return;
      }
      avg_da += static_cast<double>(r_or.value().stats.disk_accesses);
      avg_points += static_cast<double>(r_or.value().vertices.size());
    }
    const double n = static_cast<double>(rois.size());
    state.counters["DA"] = avg_da / n;
    state.counters["points"] = avg_points / n;
  }
}

BENCHMARK_CAPTURE(VisibilityToggle, small, false)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(VisibilityToggle, crater, true)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dm::bench

BENCHMARK_MAIN();
