// Flythrough: a camera tracking across the terrain issuing one
// viewpoint-dependent query per frame.
//
// Each frame asks for high resolution near the camera and coarser
// terrain toward the horizon (a query plane rising from e_min at the
// camera edge to e_max at the far edge), processed with the multi-base
// algorithm — the paper's motivating scenario for interactive terrain
// visualization on top of a relational database. Per-frame disk
// accesses, fetched record counts and mesh sizes are printed; one
// frame is exported as OBJ.
//
// Run: ./build/examples/flythrough [frames]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "dem/crater.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "mesh/obj_io.h"
#include "mesh/render.h"
#include "pm/pm_tree.h"
#include "simplify/simplifier.h"
#include "storage/db_env.h"

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::max(1, std::atoi(argv[1])) : 12;

  // Caldera terrain (the Crater Lake stand-in).
  dm::CraterParams params;
  params.side = 129;
  const dm::DemGrid dem = dm::GenerateCraterDem(params);
  const dm::TriangleMesh base = dm::TriangulateDem(dem);
  const dm::SimplifyResult sr = dm::SimplifyMesh(base);
  auto tree_or = dm::PmTree::Build(base, sr);
  if (!tree_or.ok()) return 1;
  const dm::PmTree& tree = tree_or.value();

  auto env_or = dm::DbEnv::Open("flythrough.db", {});
  if (!env_or.ok()) return 1;
  dm::DbEnv& env = *env_or.value();
  auto store_or = dm::DmStore::Build(&env, base, tree, sr);
  if (!store_or.ok()) return 1;
  dm::DmQueryProcessor proc(&store_or.value());

  const dm::Rect bounds = tree.bounds();
  // A viewport half the terrain wide, marching along y.
  const double view_w = bounds.width() * 0.5;
  const double view_d = bounds.height() * 0.4;  // view depth

  std::printf("%6s %12s %12s %10s %10s %8s\n", "frame", "disk-accesses",
              "records", "vertices", "triangles", "cubes*");
  std::printf("(*range queries issued by the multi-base optimizer)\n");

  int64_t total_da = 0;
  for (int f = 0; f < frames; ++f) {
    const double t = frames > 1 ? static_cast<double>(f) / (frames - 1) : 0;
    const double cam_y =
        bounds.lo_y + t * (bounds.height() - view_d);
    dm::ViewQuery q;
    q.roi = dm::Rect::Of(bounds.lo_x + (bounds.width() - view_w) / 2,
                         cam_y,
                         bounds.lo_x + (bounds.width() + view_w) / 2,
                         cam_y + view_d);
    // Fine at the camera edge (full detail), coarse at the far edge
    // (the LOD that keeps ~3% of the points).
    q.e_min = 0.0;
    q.e_max = tree.LodForCutFraction(0.03);
    q.gradient_along_y = true;

    if (!env.FlushAll().ok()) return 1;  // nothing cached across frames
    auto result_or = proc.MultiBase(q);
    if (!result_or.ok()) {
      std::fprintf(stderr, "frame %d failed: %s\n", f,
                   result_or.status().ToString().c_str());
      return 1;
    }
    const dm::DmQueryResult& r = result_or.value();
    total_da += r.stats.disk_accesses;
    std::printf("%6d %12lld %12lld %10zu %10zu %8lld\n", f,
                static_cast<long long>(r.stats.disk_accesses),
                static_cast<long long>(r.stats.nodes_fetched),
                r.vertices.size(), r.triangles.size(),
                static_cast<long long>(r.stats.range_queries));

    if (f == frames / 2) {
      if (dm::WriteObj(r.vertices, r.positions, r.triangles,
                       "flythrough_frame.obj")
              .ok() &&
          dm::RenderHillshade(r.vertices, r.positions, r.triangles,
                              "flythrough_frame.ppm")
              .ok()) {
        std::printf("       ^ exported flythrough_frame.{obj,ppm}\n");
      }
    }
  }
  std::printf("total: %lld disk accesses over %d frames\n",
              static_cast<long long>(total_da), frames);
  return 0;
}
