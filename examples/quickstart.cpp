// Quickstart: the full Direct Mesh pipeline in one file.
//
//   terrain -> triangle mesh -> QEM collapse sequence -> PM tree
//           -> DM database (heap file + 3D R*-tree)
//           -> viewpoint-independent query -> OBJ export
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [out.obj]

#include <cstdio>

#include "dem/fractal.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "mesh/obj_io.h"
#include "mesh/render.h"
#include "mesh/triangle_mesh.h"
#include "pm/pm_tree.h"
#include "simplify/simplifier.h"
#include "storage/db_env.h"

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "quickstart_mesh.obj";

  // 1. Terrain. Synthetic fractal DEM; swap in ReadEsriAsciiGrid() to
  //    load a real USGS DEM instead.
  dm::FractalParams params;
  params.side = 129;
  params.seed = 2024;
  const dm::DemGrid dem = dm::GenerateFractalDem(params);
  std::printf("DEM: %d x %d samples\n", dem.width(), dem.height());

  // 2. Base mesh and the bottom-up PM construction (quadric error
  //    metrics pick the pair to collapse at every step).
  const dm::TriangleMesh base = dm::TriangulateDem(dem);
  const dm::SimplifyResult collapse_sequence = dm::SimplifyMesh(base);
  auto tree_or = dm::PmTree::Build(base, collapse_sequence);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "PM build failed: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  const dm::PmTree& tree = tree_or.value();
  std::printf("PM tree: %lld nodes (%lld leaves), max LOD %.3f\n",
              static_cast<long long>(tree.num_nodes()),
              static_cast<long long>(tree.num_leaves()), tree.max_lod());

  // 3. Direct Mesh database: node records with similar-LOD connection
  //    lists in a heap file, indexed by a 3D R*-tree on the vertical
  //    segments <(x, y, e_low), (x, y, e_high)>.
  auto env_or = dm::DbEnv::Open("quickstart.db", {});
  if (!env_or.ok()) {
    std::fprintf(stderr, "db open failed\n");
    return 1;
  }
  auto store_or =
      dm::DmStore::Build(env_or.value().get(), base, tree,
                         collapse_sequence);
  if (!store_or.ok()) {
    std::fprintf(stderr, "DM build failed: %s\n",
                 store_or.status().ToString().c_str());
    return 1;
  }
  dm::DmStore& store = store_or.value();

  // 4. Query: "give me the middle half of the terrain at the LOD that
  //    keeps ~10% of the points" — one 3D range query with a plane, no
  //    tree traversal. (LOD values are skewed; picking by cut fraction
  //    is how applications choose e in practice.)
  const dm::Rect bounds = tree.bounds();
  const dm::Rect roi = dm::Rect::Of(
      bounds.lo_x + bounds.width() * 0.25,
      bounds.lo_y + bounds.height() * 0.25,
      bounds.lo_x + bounds.width() * 0.75,
      bounds.lo_y + bounds.height() * 0.75);
  const double e = tree.LodForCutFraction(0.10);

  if (!env_or.value()->FlushAll().ok()) return 1;  // cold cache
  dm::DmQueryProcessor proc(&store);
  auto result_or = proc.ViewpointIndependent(roi, e);
  if (!result_or.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const dm::DmQueryResult& result = result_or.value();
  std::printf(
      "query: %zu vertices, %zu triangles, %lld disk accesses, "
      "%.2f ms mesh construction\n",
      result.vertices.size(), result.triangles.size(),
      static_cast<long long>(result.stats.disk_accesses),
      result.stats.cpu_millis);

  // 5. Export the approximation for any OBJ viewer.
  const dm::Status st =
      dm::WriteObj(result.vertices, result.positions, result.triangles,
                   out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "OBJ export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  // 6. And a shaded-relief preview (PPM, viewable anywhere).
  const dm::Status render_st =
      dm::RenderHillshade(result.vertices, result.positions,
                          result.triangles, "quickstart_mesh.ppm");
  if (render_st.ok()) {
    std::printf("wrote quickstart_mesh.ppm\n");
  }
  return 0;
}
