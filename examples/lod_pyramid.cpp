// LOD pyramid: extract a ladder of uniform-LOD approximations of the
// same region and compare what each retrieval method pays for them.
//
// Optionally operates on a real DEM: pass the path of an Esri ASCII
// grid (.asc — the USGS distribution format of the paper's Crater Lake
// dataset) as the first argument; otherwise a synthetic caldera is
// used. Each LOD level is exported as an OBJ (pyramid_<pct>.obj).
//
// Run: ./build/examples/lod_pyramid [dem.asc]

#include <cstdio>
#include <string>

#include "baseline/pmdb/pmdb_query.h"
#include "dem/crater.h"
#include "dem/dem_io.h"
#include "dm/dm_query.h"
#include "dm/dm_store.h"
#include "mesh/obj_io.h"
#include "pm/pm_tree.h"
#include "simplify/simplifier.h"
#include "storage/db_env.h"

int main(int argc, char** argv) {
  dm::DemGrid dem;
  if (argc > 1) {
    auto dem_or = dm::ReadEsriAsciiGrid(argv[1]);
    if (!dem_or.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                   dem_or.status().ToString().c_str());
      return 1;
    }
    dem = std::move(dem_or).value();
    std::printf("loaded %s: %d x %d\n", argv[1], dem.width(), dem.height());
  } else {
    dm::CraterParams params;
    params.side = 129;
    dem = dm::GenerateCraterDem(params);
    std::printf("synthetic caldera: %d x %d\n", dem.width(), dem.height());
  }

  const dm::TriangleMesh base = dm::TriangulateDem(dem);
  const dm::SimplifyResult sr = dm::SimplifyMesh(base);
  auto tree_or = dm::PmTree::Build(base, sr);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "%s\n", tree_or.status().ToString().c_str());
    return 1;
  }
  const dm::PmTree& tree = tree_or.value();

  // Build both databases so the cost of each method is comparable on
  // identical data.
  auto dm_env_or = dm::DbEnv::Open("pyramid_dm.db", {});
  auto pm_env_or = dm::DbEnv::Open("pyramid_pm.db", {});
  if (!dm_env_or.ok() || !pm_env_or.ok()) return 1;
  auto dm_store_or =
      dm::DmStore::Build(dm_env_or.value().get(), base, tree, sr);
  auto pm_store_or = dm::PmDbStore::Build(pm_env_or.value().get(), tree);
  if (!dm_store_or.ok() || !pm_store_or.ok()) return 1;
  dm::DmQueryProcessor dm_proc(&dm_store_or.value());
  dm::PmQueryProcessor pm_proc(&pm_store_or.value());

  const dm::Rect roi = tree.bounds();

  // LOD ladder: e values whose cuts keep ~50 / 25 / 10 / 5 / 2 percent
  // of the points (computed by inverting the collapse-LOD sequence).
  std::vector<double> collapse_lods;
  for (const dm::PmNode& n : tree.nodes()) {
    if (!n.is_leaf()) collapse_lods.push_back(n.e_low);
  }
  std::sort(collapse_lods.begin(), collapse_lods.end());

  std::printf("\n%8s %10s %12s %12s %10s %10s\n", "keep%", "e",
              "DA (DM)", "DA (PM)", "vertices", "triangles");
  for (double frac : {0.50, 0.25, 0.10, 0.05, 0.02}) {
    const auto target = static_cast<int64_t>(frac * tree.num_leaves());
    const int64_t k = tree.num_leaves() - target;
    const double e =
        k <= 0 ? 0.0
               : collapse_lods[std::min<size_t>(
                     static_cast<size_t>(k), collapse_lods.size()) - 1];

    if (!dm_env_or.value()->FlushAll().ok()) return 1;
    auto dm_res_or = dm_proc.ViewpointIndependent(roi, e);
    if (!pm_env_or.value()->FlushAll().ok()) return 1;
    auto pm_res_or = pm_proc.Uniform(roi, e);
    if (!dm_res_or.ok() || !pm_res_or.ok()) {
      std::fprintf(stderr, "query failed at frac=%.2f\n", frac);
      return 1;
    }
    const dm::DmQueryResult& r = dm_res_or.value();
    std::printf("%8.0f %10.4g %12lld %12lld %10zu %10zu\n", frac * 100,
                e,
                static_cast<long long>(r.stats.disk_accesses),
                static_cast<long long>(
                    pm_res_or.value().stats.disk_accesses),
                r.vertices.size(), r.triangles.size());

    const std::string out =
        "pyramid_" + std::to_string(static_cast<int>(frac * 100)) + ".obj";
    if (!dm::WriteObj(r.vertices, r.positions, r.triangles, out).ok()) {
      std::fprintf(stderr, "OBJ export failed for %s\n", out.c_str());
    }
  }
  std::printf("\nexported pyramid_<pct>.obj at each level\n");
  return 0;
}
